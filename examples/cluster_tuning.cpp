// Cluster tuning: explores the knobs the paper analyzes — grid resolution
// (PPD, Section 3.3), reducer count (Section 7.4), and group-merging
// strategy (Section 5.4.1) — and prints the modeled cluster runtimes so
// an operator can pick a configuration for their workload.

#include <cmath>
#include <cstdio>

#include "src/skymr.h"

namespace {

skymr::RunnerConfig BaseConfig() {
  skymr::RunnerConfig config;
  config.algorithm = skymr::Algorithm::kMrGpmrs;
  config.engine.num_map_tasks = 13;
  config.engine.num_reducers = 13;
  return config;
}

}  // namespace

int main() {
  const skymr::Dataset data =
      skymr::data::GenerateAntiCorrelated(30000, 5, 2024);
  std::printf("workload: %zu tuples, %zu-d anti-correlated\n\n", data.size(),
              data.dim());

  // ---- 1. Grid resolution (tuples per partition trade-off) ----
  std::printf("PPD sweep (explicit grid resolutions vs the Section 3.3 "
              "heuristic):\n");
  std::printf("%6s %10s %12s %14s %16s\n", "ppd", "cells", "nonempty",
              "modeled[s]", "partition cmps");
  for (const uint32_t ppd : {2u, 3u, 4u, 6u, 8u}) {
    skymr::RunnerConfig config = BaseConfig();
    config.ppd.explicit_ppd = ppd;
    auto result = skymr::ComputeSkyline(data, config);
    if (!result.ok()) {
      std::fprintf(stderr, "ppd %u failed: %s\n", ppd,
                   result.status().ToString().c_str());
      return 1;
    }
    int64_t comparisons = 0;
    for (const auto& job : result->jobs) {
      comparisons +=
          job.counters.Get(skymr::mr::kCounterPartitionComparisons);
    }
    std::printf("%6u %10.0f %12llu %14.1f %16lld\n", ppd,
                std::pow(static_cast<double>(ppd),
                         static_cast<double>(data.dim())),
                static_cast<unsigned long long>(result->nonempty_partitions),
                result->modeled_seconds,
                static_cast<long long>(comparisons));
  }
  {
    auto result = skymr::ComputeSkyline(data, BaseConfig());
    if (result.ok()) {
      std::printf("heuristic (Section 3.3) selected PPD %u, modeled %.1f s\n",
                  result->ppd, result->modeled_seconds);
    }
  }

  // ---- 2. Reducer count (the paper's Figure 10 experiment) ----
  std::printf("\nreducer sweep (modeled 13-node cluster):\n");
  std::printf("%10s %14s %12s\n", "reducers", "modeled[s]", "skyline");
  for (const int reducers : {1, 3, 5, 9, 13, 17}) {
    skymr::RunnerConfig config = BaseConfig();
    config.algorithm = reducers == 1 ? skymr::Algorithm::kMrGpsrs
                                     : skymr::Algorithm::kMrGpmrs;
    config.engine.num_reducers = reducers;
    auto result = skymr::ComputeSkyline(data, config);
    if (!result.ok()) {
      std::fprintf(stderr, "r=%d failed: %s\n", reducers,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%10d %14.1f %12zu\n", reducers, result->modeled_seconds,
                result->skyline.size());
  }

  // ---- 3. Group-merging strategy (Section 5.4.1) ----
  std::printf("\ngroup-merging strategies with 4 reducers:\n");
  std::printf("%20s %14s %14s\n", "strategy", "modeled[s]", "shuffle[KB]");
  for (const auto strategy :
       {skymr::core::GroupMergeStrategy::kRoundRobin,
        skymr::core::GroupMergeStrategy::kComputationCost,
        skymr::core::GroupMergeStrategy::kCommunicationCost,
        skymr::core::GroupMergeStrategy::kBalanced}) {
    skymr::RunnerConfig config = BaseConfig();
    config.engine.num_reducers = 4;
    config.merge = strategy;
    auto result = skymr::ComputeSkyline(data, config);
    if (!result.ok()) {
      return 1;
    }
    uint64_t shuffle = 0;
    for (const auto& job : result->jobs) {
      shuffle += job.shuffle_bytes;
    }
    std::printf("%20s %14.1f %14.1f\n",
                skymr::core::GroupMergeStrategyName(strategy),
                result->modeled_seconds,
                static_cast<double>(shuffle) / 1024.0);
  }
  return 0;
}
