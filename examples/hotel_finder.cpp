// Hotel finder: the classic skyline motivation. Each hotel has a price, a
// distance to the beach, and a (negated) guest rating — smaller is better
// on every dimension. The skyline contains every hotel that is not
// strictly worse than another on all criteria, i.e. every defensible
// choice for some visitor.
//
// The example also demonstrates CSV export/import and the hybrid
// algorithm that auto-selects between MR-GPSRS and MR-GPMRS.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/relation/preferences.h"
#include "src/skymr.h"

namespace {

/// Synthesizes a plausible hotel market: price correlates with rating
/// (better hotels cost more) and anti-correlates with distance (beach
/// front demands a premium).
skymr::Dataset SynthesizeHotels(size_t count, uint64_t seed) {
  skymr::Rng rng(seed);
  skymr::Dataset hotels(3);
  for (size_t i = 0; i < count; ++i) {
    const double quality = rng.NextDouble();  // Hidden desirability.
    const double price =
        60.0 + 340.0 * quality + rng.Gaussian(0.0, 30.0);
    const double distance_km =
        0.2 + 18.0 * (1.0 - quality) * rng.NextDouble();
    double rating = 2.0 + 3.0 * quality + rng.Gaussian(0.0, 0.4);
    rating = rating > 5.0 ? 5.0 : (rating < 0.0 ? 0.0 : rating);
    hotels.Append({price < 30.0 ? 30.0 : price,
                   distance_km < 0.05 ? 0.05 : distance_km, rating});
  }
  return hotels;
}

}  // namespace

int main() {
  const skymr::Dataset hotels = SynthesizeHotels(50000, 7);
  std::printf("hotel market: %zu hotels, criteria = "
              "(min price $, min beach distance km, MAX rating)\n",
              hotels.size());

  // Persist to CSV and read back — the library works from files too.
  const std::string path =
      (std::filesystem::temp_directory_path() / "hotels.csv").string();
  if (auto s = skymr::data::SaveCsv(hotels, path,
                                    {"price", "distance_km", "rating"});
      !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto loaded = skymr::data::LoadCsv(path, /*has_header=*/true);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("round-tripped through %s\n", path.c_str());

  // Mixed preference directions: ratings are better when *larger*.
  // ApplyPreferences reflects maximize-dimensions so the standard
  // min-skyline applies; tuple ids still index the original data.
  auto prepared = skymr::ApplyPreferences(
      *loaded, {skymr::Preference::kMinimize, skymr::Preference::kMinimize,
                skymr::Preference::kMaximize});
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }

  // Hybrid mode: the library samples the skyline fraction and picks the
  // single- or multiple-reducer algorithm automatically (the paper's
  // Section 8 future-work direction).
  skymr::RunnerConfig config;
  config.algorithm = skymr::Algorithm::kHybrid;
  config.engine.num_map_tasks = 13;
  config.engine.num_reducers = 13;
  config.unit_bounds = false;  // Prices are dollars, not [0,1).

  auto result = skymr::ComputeSkyline(*prepared, config);
  if (!result.ok()) {
    std::fprintf(stderr, "skyline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nhybrid decision: sampled skyline fraction %.3f, "
              "%llu independent groups -> %s with %zu reducer task(s)\n",
              result->hybrid_decision.sampled_skyline_fraction,
              static_cast<unsigned long long>(
                  result->hybrid_decision.num_groups),
              skymr::AlgorithmName(result->algorithm_used),
              result->jobs.back().reduce_tasks.size());

  std::printf("skyline: %zu of %zu hotels are undominated\n",
              result->skyline.size(), loaded->size());

  // Print the cheapest few skyline hotels, reading the *original* values
  // back by tuple id.
  std::vector<size_t> order(result->skyline.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return result->skyline.RowAt(a)[0] < result->skyline.RowAt(b)[0];
  });
  std::printf("\n%8s %10s %12s %8s\n", "hotel", "price", "distance", "rating");
  const size_t show = order.size() < 8 ? order.size() : 8;
  for (size_t i = 0; i < show; ++i) {
    const skymr::TupleId id = result->skyline.IdAt(order[i]);
    const double* row = loaded->RowPtr(id);
    std::printf("%8u %9.0f$ %10.2fkm %8.1f\n", id, row[0], row[1], row[2]);
  }

  const std::string mismatch =
      skymr::ExplainSkylineMismatch(*prepared, result->SkylineIds());
  std::printf("\nverification: %s\n",
              mismatch.empty() ? "EXACT MATCH" : mismatch.c_str());
  std::remove(path.c_str());
  return mismatch.empty() ? 0 : 1;
}
