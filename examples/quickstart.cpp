// Quickstart: generate a synthetic dataset, compute its skyline with
// MR-GPMRS (the paper's main algorithm), and inspect the result.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "src/skymr.h"

int main() {
  // 1. A 3-dimensional anti-correlated dataset of 20,000 tuples, the
  //    workload family where skylines are large (paper Section 7.1).
  const skymr::Dataset data =
      skymr::data::GenerateAntiCorrelated(20000, 3, /*seed=*/42);
  std::printf("dataset: %zu tuples, %zu dimensions (anti-correlated)\n",
              data.size(), data.dim());

  // 2. Configure the run: 13 mappers and 13 reducers, mirroring the
  //    paper's 13-node Hadoop cluster; grid resolution picked by the
  //    Section 3.3 PPD heuristic.
  skymr::RunnerConfig config;
  config.algorithm = skymr::Algorithm::kMrGpmrs;
  config.engine.num_map_tasks = 13;
  config.engine.num_reducers = 13;

  // 3. Run the two-job pipeline: bitstring generation, then the skyline
  //    job.
  auto result = skymr::ComputeSkyline(data, config);
  if (!result.ok()) {
    std::fprintf(stderr, "skyline computation failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the outcome.
  std::printf("skyline size: %zu tuples (%.1f%% of the data)\n",
              result->skyline.size(),
              100.0 * static_cast<double>(result->skyline.size()) /
                  static_cast<double>(data.size()));
  std::printf("grid: PPD %u -> %u^%zu cells, %llu non-empty, %llu pruned\n",
              result->ppd, result->ppd, data.dim(),
              static_cast<unsigned long long>(result->nonempty_partitions),
              static_cast<unsigned long long>(result->pruned_partitions));
  std::printf("jobs: %zu (bitstring + skyline)\n", result->jobs.size());
  std::printf("modeled 13-node cluster runtime: %.1f s\n",
              result->modeled_seconds);
  std::printf("local wall time: %.3f s\n", result->wall_seconds);

  std::printf("\nfirst skyline tuples (id: values):\n");
  const size_t show = result->skyline.size() < 5 ? result->skyline.size() : 5;
  for (size_t i = 0; i < show; ++i) {
    std::printf("  %6u: (", result->skyline.IdAt(i));
    for (size_t k = 0; k < data.dim(); ++k) {
      std::printf("%s%.4f", k > 0 ? ", " : "", result->skyline.RowAt(i)[k]);
    }
    std::printf(")\n");
  }

  // 5. Verify against the O(n^2) reference — the result is exact, not
  //    approximate.
  const std::string mismatch =
      skymr::ExplainSkylineMismatch(data, result->SkylineIds());
  std::printf("\nverification against reference skyline: %s\n",
              mismatch.empty() ? "EXACT MATCH" : mismatch.c_str());
  return mismatch.empty() ? 0 : 1;
}
