// Market screener: multi-criteria security screening over anti-correlated
// attributes (risk vs. expected return trade off against each other, plus
// fees) — the regime where skylines are large and the paper's MR-GPMRS
// shines. The example compares all four MapReduce algorithms on the same
// workload and prints runtime and traffic metrics side by side.

#include <cstdio>

#include "src/common/rng.h"
#include "src/skymr.h"

namespace {

/// Instruments with anti-correlated (negated return, risk) plus an
/// independent fee dimension.
skymr::Dataset SynthesizeInstruments(size_t count, uint64_t seed) {
  const skymr::Dataset base =
      skymr::data::GenerateAntiCorrelated(count, 2, seed);
  skymr::Rng rng(seed ^ 0xabcdef);
  skymr::Dataset instruments(3);
  for (size_t i = 0; i < count; ++i) {
    const double* row = base.RowPtr(static_cast<skymr::TupleId>(i));
    // row[0] ~ negated expected return, row[1] ~ volatility; both in
    // [0,1) and anti-correlated: high return comes with high risk.
    instruments.Append({row[0], row[1], rng.NextDouble() * 0.02});
  }
  return instruments;
}

}  // namespace

int main() {
  const skymr::Dataset instruments = SynthesizeInstruments(30000, 99);
  std::printf("universe: %zu instruments, criteria = "
              "(-return, volatility, fees)\n\n",
              instruments.size());

  std::printf("%-10s %10s %12s %12s %10s %9s\n", "algorithm", "skyline",
              "modeled[s]", "shuffle[KB]", "reducers", "exact");
  const skymr::Algorithm algorithms[] = {
      skymr::Algorithm::kMrGpsrs,
      skymr::Algorithm::kMrGpmrs,
      skymr::Algorithm::kMrBnl,
      skymr::Algorithm::kMrAngle,
      skymr::Algorithm::kSkyMr,
  };
  for (const skymr::Algorithm algorithm : algorithms) {
    skymr::RunnerConfig config;
    config.algorithm = algorithm;
    config.engine.num_map_tasks = 13;
    config.engine.num_reducers = 13;
    auto result = skymr::ComputeSkyline(instruments, config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   skymr::AlgorithmName(algorithm),
                   result.status().ToString().c_str());
      return 1;
    }
    uint64_t shuffle = 0;
    for (const auto& job : result->jobs) {
      shuffle += job.shuffle_bytes;
    }
    const std::string mismatch =
        skymr::ExplainSkylineMismatch(instruments, result->SkylineIds());
    std::printf("%-10s %10zu %12.1f %12.1f %10zu %9s\n",
                skymr::AlgorithmName(algorithm), result->skyline.size(),
                result->modeled_seconds,
                static_cast<double>(shuffle) / 1024.0,
                result->jobs.back().reduce_tasks.size(),
                mismatch.empty() ? "yes" : "NO");
    if (!mismatch.empty()) {
      std::fprintf(stderr, "  mismatch: %s\n", mismatch.c_str());
      return 1;
    }
  }

  // Show the "efficient frontier" extremes from one run.
  skymr::RunnerConfig config;
  config.algorithm = skymr::Algorithm::kMrGpmrs;
  config.engine.num_map_tasks = 13;
  config.engine.num_reducers = 13;
  auto result = skymr::ComputeSkyline(instruments, config);
  if (!result.ok()) {
    return 1;
  }
  size_t best_return = 0;
  size_t best_risk = 0;
  for (size_t i = 0; i < result->skyline.size(); ++i) {
    if (result->skyline.RowAt(i)[0] <
        result->skyline.RowAt(best_return)[0]) {
      best_return = i;
    }
    if (result->skyline.RowAt(i)[1] < result->skyline.RowAt(best_risk)[1]) {
      best_risk = i;
    }
  }
  std::printf("\nefficient frontier has %zu instruments, e.g.:\n",
              result->skyline.size());
  std::printf("  max return: id %u (-ret %.3f, vol %.3f, fee %.4f)\n",
              result->skyline.IdAt(best_return),
              result->skyline.RowAt(best_return)[0],
              result->skyline.RowAt(best_return)[1],
              result->skyline.RowAt(best_return)[2]);
  std::printf("  min risk:   id %u (-ret %.3f, vol %.3f, fee %.4f)\n",
              result->skyline.IdAt(best_risk),
              result->skyline.RowAt(best_risk)[0],
              result->skyline.RowAt(best_risk)[1],
              result->skyline.RowAt(best_risk)[2]);
  return 0;
}
