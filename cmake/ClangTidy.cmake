# clang-tidy wiring.
#
#   cmake -B build-tidy -S . -DSKYMR_CLANG_TIDY=ON
#   cmake --build build-tidy        # every src/ TU is linted as it compiles
#
# The check set lives in the committed .clang-tidy at the repo root.
# Warnings are promoted to errors so a violation fails the build. The
# property is applied to the `skymr` library (all of src/) by
# src/CMakeLists.txt; tests and benches stay unlinted to keep iteration
# fast — lint them by setting CMAKE_CXX_CLANG_TIDY yourself if wanted.
#
# Exports: SKYMR_CLANG_TIDY_COMMAND (empty when the toggle is off).

option(SKYMR_CLANG_TIDY "Lint src/ with clang-tidy during the build" OFF)

set(SKYMR_CLANG_TIDY_COMMAND "")

if(SKYMR_CLANG_TIDY)
  find_program(SKYMR_CLANG_TIDY_EXE
               NAMES clang-tidy
                     clang-tidy-19 clang-tidy-18 clang-tidy-17
                     clang-tidy-16 clang-tidy-15 clang-tidy-14)
  if(NOT SKYMR_CLANG_TIDY_EXE)
    message(FATAL_ERROR
        "SKYMR_CLANG_TIDY=ON but no clang-tidy executable was found; "
        "install clang-tidy or configure with -DSKYMR_CLANG_TIDY=OFF")
  endif()
  set(SKYMR_CLANG_TIDY_COMMAND
      "${SKYMR_CLANG_TIDY_EXE};--warnings-as-errors=*")
  message(STATUS "skymr: clang-tidy enabled: ${SKYMR_CLANG_TIDY_EXE}")
endif()
