# Sanitizer wiring for every target in the build.
#
#   cmake -B build-asan -S . -DSKYMR_SANITIZE="address;undefined"
#   cmake -B build-tsan -S . -DSKYMR_SANITIZE=thread
#
# The value is a ;- or ,-separated list of sanitizers. ASan/UBSan compose;
# TSan must run alone. Sanitizer builds also force the SKYMR_DCHECK layer
# on (see src/common/logging.h), so one CI configuration exercises both
# the memory/race detectors and every debug invariant.
#
# Exported for tests/CMakeLists.txt:
#   SKYMR_SANITIZE_LIST      normalized list of enabled sanitizers
#   SKYMR_TEST_SANITIZER_ENV ENVIRONMENT entries pointing the sanitizer
#                            runtimes at the committed suppression files

set(SKYMR_SANITIZE "" CACHE STRING
    "Sanitizers for all targets: 'address;undefined', 'thread', or empty")

set(SKYMR_SANITIZE_LIST "")
set(SKYMR_TEST_SANITIZER_ENV "")

if(NOT SKYMR_SANITIZE STREQUAL "")
  string(REPLACE "," ";" SKYMR_SANITIZE_LIST "${SKYMR_SANITIZE}")

  if("thread" IN_LIST SKYMR_SANITIZE_LIST AND
     ("address" IN_LIST SKYMR_SANITIZE_LIST OR
      "leak" IN_LIST SKYMR_SANITIZE_LIST))
    message(FATAL_ERROR
        "SKYMR_SANITIZE: 'thread' cannot be combined with 'address'/'leak'")
  endif()

  set(_skymr_fsanitize "")
  foreach(_san IN LISTS SKYMR_SANITIZE_LIST)
    if(NOT _san MATCHES "^(address|undefined|thread|leak)$")
      message(FATAL_ERROR "SKYMR_SANITIZE: unknown sanitizer '${_san}'")
    endif()
    list(APPEND _skymr_fsanitize "-fsanitize=${_san}")
  endforeach()

  # -fno-sanitize-recover turns UBSan diagnostics into hard failures so
  # ctest actually goes red; frame pointers + -g keep reports readable.
  add_compile_options(${_skymr_fsanitize}
                      -fno-omit-frame-pointer
                      -fno-sanitize-recover=all
                      -g)
  add_link_options(${_skymr_fsanitize})

  set(_skymr_supp_dir "${PROJECT_SOURCE_DIR}/sanitizers")
  if("thread" IN_LIST SKYMR_SANITIZE_LIST)
    list(APPEND SKYMR_TEST_SANITIZER_ENV
         "TSAN_OPTIONS=suppressions=${_skymr_supp_dir}/tsan.supp:halt_on_error=1:second_deadlock_stack=1")
  endif()
  if("address" IN_LIST SKYMR_SANITIZE_LIST)
    list(APPEND SKYMR_TEST_SANITIZER_ENV
         "ASAN_OPTIONS=detect_stack_use_after_return=1:strict_string_checks=1:detect_invalid_pointer_pairs=1"
         "LSAN_OPTIONS=suppressions=${_skymr_supp_dir}/lsan.supp")
  endif()
  if("undefined" IN_LIST SKYMR_SANITIZE_LIST)
    list(APPEND SKYMR_TEST_SANITIZER_ENV
         "UBSAN_OPTIONS=print_stacktrace=1:suppressions=${_skymr_supp_dir}/ubsan.supp")
  endif()

  message(STATUS "skymr: sanitizers enabled (${SKYMR_SANITIZE_LIST}), "
                 "SKYMR_DCHECK forced on")
endif()
