# libFuzzer wiring.
#
#   CC=clang CXX=clang++ cmake -B build-fuzz -S . -DSKYMR_FUZZERS=ON
#   cmake --build build-fuzz --target fuzz_json_parse
#   build-fuzz/fuzz/fuzz_json_parse -max_total_time=60 fuzz/corpus/json_parse
#
# SKYMR_FUZZERS=ON builds the coverage-guided fuzz_<name> binaries under
# fuzz/. libFuzzer is a Clang feature, so the toggle hard-requires Clang;
# the fuzz_<name>_replay drivers (which run the committed corpora as
# plain ctest regressions) build unconditionally with any compiler and do
# NOT need this option.
#
# Must be included before Sanitizers.cmake: a fuzzing build defaults
# SKYMR_SANITIZE to "address;undefined" (fuzzing without sanitizers finds
# almost nothing), and the whole tree gets -fsanitize=fuzzer-no-link so
# library code feeds coverage to the fuzzer.
#
# Exports: SKYMR_FUZZERS (the option, read by fuzz/CMakeLists.txt).

option(SKYMR_FUZZERS
       "Build the libFuzzer harnesses under fuzz/ (requires Clang)" OFF)

if(SKYMR_FUZZERS)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
        "SKYMR_FUZZERS=ON requires Clang (libFuzzer ships with it); "
        "configure with CC=clang CXX=clang++, or drop the option — the "
        "fuzz_<name>_replay corpus regressions build with any compiler")
  endif()
  if(NOT SKYMR_SANITIZE)
    set(SKYMR_SANITIZE "address;undefined" CACHE STRING
        "Sanitizers for all targets (defaulted by SKYMR_FUZZERS)" FORCE)
    message(STATUS
        "skymr: SKYMR_FUZZERS defaulted SKYMR_SANITIZE=address;undefined")
  endif()
  add_compile_options(-fsanitize=fuzzer-no-link)
  add_link_options(-fsanitize=fuzzer-no-link)
endif()
