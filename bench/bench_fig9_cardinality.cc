// Figure 9: effect of cardinality.
//
// Paper setup: 3-d and 8-d datasets of both distributions, cardinality
// 1x10^5 .. 3x10^6. Expected shape (Section 7.3): on 3-d independent
// data MR-GPMRS is slowest (small skylines, parallel-reduce overhead)
// while MR-GPSRS leads; on 8-d data the grid algorithms dominate both
// baselines; on 8-d anti-correlated data MR-GPSRS degrades with
// cardinality and the paper drops it at the highest cardinalities, while
// MR-GPMRS scales.
//
// Default scale: 2.5% of the paper's cardinalities.

#include "bench/bench_common.h"

namespace {

constexpr double kScale = 0.025;
const size_t kPaperCards[] = {100000, 500000, 1000000, 2000000, 3000000};

void Fig9(benchmark::State& state) {
  const auto algorithm = static_cast<skymr::Algorithm>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  const auto paper_card = static_cast<size_t>(state.range(2));
  const auto dist =
      static_cast<skymr::data::Distribution>(state.range(3));
  const size_t card = skymr::bench::ScaledCardinality(paper_card, kScale);
  const skymr::Dataset& data =
      skymr::bench::CachedDataset(dist, card, dim);
  state.counters["card"] = static_cast<double>(card);
  skymr::bench::RunAndReport(state, data,
                             skymr::bench::PaperConfig(algorithm));
}

bool IncludedInPaper(skymr::Algorithm algorithm, size_t dim,
                     skymr::data::Distribution dist, size_t paper_card) {
  // Figure 9(d): MR-GPSRS "fails to terminate in a reasonable period of
  // time for the highest cardinalities" on 8-d anti-correlated data.
  if (algorithm == skymr::Algorithm::kMrGpsrs && dim == 8 &&
      dist == skymr::data::Distribution::kAntiCorrelated &&
      paper_card >= 2000000) {
    return false;
  }
  // Baselines blow up on 8-d anti-correlated data (cf. Figure 8).
  if ((algorithm == skymr::Algorithm::kMrBnl ||
       algorithm == skymr::Algorithm::kMrAngle) &&
      dim == 8 && dist == skymr::data::Distribution::kAntiCorrelated &&
      paper_card >= 1000000) {
    return false;
  }
  return true;
}

void RegisterAll() {
  for (const auto dist : {skymr::data::Distribution::kIndependent,
                          skymr::data::Distribution::kAntiCorrelated}) {
    for (const size_t dim : {size_t{3}, size_t{8}}) {
      for (const skymr::Algorithm algorithm :
           {skymr::Algorithm::kMrGpsrs, skymr::Algorithm::kMrGpmrs,
            skymr::Algorithm::kMrBnl, skymr::Algorithm::kMrAngle}) {
        for (const size_t paper_card : kPaperCards) {
          if (!IncludedInPaper(algorithm, dim, dist, paper_card)) {
            continue;
          }
          const std::string name =
              std::string("Fig9/") + skymr::data::DistributionName(dist) +
              "/d:" + std::to_string(dim) + "/" +
              skymr::AlgorithmName(algorithm) +
              "/card:" + std::to_string(paper_card);
          skymr::bench::RegisterRow(name, Fig9)
              ->Args({static_cast<long>(algorithm),
                      static_cast<long>(dim),
                      static_cast<long>(paper_card),
                      static_cast<long>(dist)})
              ->Iterations(1)
              ->Unit(benchmark::kMillisecond);
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return skymr::bench::BenchMain(argc, argv, "bench_fig9_cardinality");
}
