// Ablation C: group-merging strategies (Section 5.4.1).
//
// The paper reports preliminary tests where computation-cost merging
// "results in more balanced loads among reducers and better overall
// efficiency" than communication-cost merging. This bench reproduces that
// comparison (plus plain round-robin distribution) on anti-correlated
// data with fewer reducers than independent groups, reporting the modeled
// runtime, per-reducer load imbalance, and shuffle traffic.

#include <algorithm>

#include "bench/bench_common.h"

namespace {

constexpr double kScale = 0.01;
constexpr size_t kPaperCard = 2000000;

void Merging(benchmark::State& state) {
  const auto strategy =
      static_cast<skymr::core::GroupMergeStrategy>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  const auto reducers = static_cast<int>(state.range(2));
  const size_t card = skymr::bench::ScaledCardinality(kPaperCard, kScale);
  const skymr::Dataset& data = skymr::bench::CachedDataset(
      skymr::data::Distribution::kAntiCorrelated, card, dim);
  skymr::RunnerConfig config =
      skymr::bench::PaperConfig(skymr::Algorithm::kMrGpmrs, reducers);
  config.merge = strategy;
  for (auto _ : state) {
    auto result = skymr::ComputeSkyline(data, config);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    const auto& reduce_tasks = result->jobs[1].reduce_tasks;
    double max_busy = 0.0;
    double total_busy = 0.0;
    for (const auto& task : reduce_tasks) {
      max_busy = std::max(max_busy, task.busy_seconds);
      total_busy += task.busy_seconds;
    }
    const double mean_busy =
        reduce_tasks.empty() ? 0.0
                             : total_busy /
                                   static_cast<double>(reduce_tasks.size());
    state.counters["modeled_s"] = result->modeled_seconds;
    state.counters["reduce_imbalance"] =
        mean_busy > 0.0 ? max_busy / mean_busy : 0.0;
    uint64_t shuffle = 0;
    for (const auto& job : result->jobs) {
      shuffle += job.shuffle_bytes;
    }
    state.counters["shuffleKB"] = static_cast<double>(shuffle) / 1024.0;
    state.counters["skyline"] =
        static_cast<double>(result->skyline.size());
  }
}

void RegisterAll() {
  for (const auto strategy :
       {skymr::core::GroupMergeStrategy::kRoundRobin,
        skymr::core::GroupMergeStrategy::kComputationCost,
        skymr::core::GroupMergeStrategy::kCommunicationCost,
        skymr::core::GroupMergeStrategy::kBalanced}) {
    for (const size_t dim : {size_t{4}, size_t{8}}) {
      for (const int reducers : {4, 13}) {
        const std::string name =
            std::string("AblationMerging/") +
            skymr::core::GroupMergeStrategyName(strategy) +
            "/d:" + std::to_string(dim) +
            "/reducers:" + std::to_string(reducers);
        benchmark::RegisterBenchmark(name.c_str(), Merging)
            ->Args({static_cast<long>(strategy), static_cast<long>(dim),
                    reducers})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
