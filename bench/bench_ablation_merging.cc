// Ablation C: group-merging strategies (Section 5.4.1).
//
// The paper reports preliminary tests where computation-cost merging
// "results in more balanced loads among reducers and better overall
// efficiency" than communication-cost merging. This bench reproduces that
// comparison (plus plain round-robin distribution) on anti-correlated
// data with fewer reducers than independent groups, reporting the modeled
// runtime, per-reducer load imbalance, and shuffle traffic.

#include <algorithm>

#include "bench/bench_common.h"

namespace {

constexpr double kScale = 0.01;
constexpr size_t kPaperCard = 2000000;

void Merging(benchmark::State& state) {
  const auto strategy =
      static_cast<skymr::core::GroupMergeStrategy>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  const auto reducers = static_cast<int>(state.range(2));
  const size_t card = skymr::bench::ScaledCardinality(kPaperCard, kScale);
  const skymr::Dataset& data = skymr::bench::CachedDataset(
      skymr::data::Distribution::kAntiCorrelated, card, dim);
  skymr::RunnerConfig config =
      skymr::bench::PaperConfig(skymr::Algorithm::kMrGpmrs, reducers);
  config.merge = strategy;
  skymr::bench::RunAndReport(
      state, data, config,
      [](const skymr::SkylineResult& result,
         std::map<std::string, double>* metrics) {
        const auto& reduce_tasks = result.jobs[1].reduce_tasks;
        double max_busy = 0.0;
        double total_busy = 0.0;
        for (const auto& task : reduce_tasks) {
          max_busy = std::max(max_busy, task.busy_seconds);
          total_busy += task.busy_seconds;
        }
        const double mean_busy =
            reduce_tasks.empty()
                ? 0.0
                : total_busy / static_cast<double>(reduce_tasks.size());
        (*metrics)["reduce_imbalance"] =
            mean_busy > 0.0 ? max_busy / mean_busy : 0.0;
      });
}

void RegisterAll() {
  for (const auto strategy :
       {skymr::core::GroupMergeStrategy::kRoundRobin,
        skymr::core::GroupMergeStrategy::kComputationCost,
        skymr::core::GroupMergeStrategy::kCommunicationCost,
        skymr::core::GroupMergeStrategy::kBalanced}) {
    for (const size_t dim : {size_t{4}, size_t{8}}) {
      for (const int reducers : {4, 13}) {
        const std::string name =
            std::string("AblationMerging/") +
            skymr::core::GroupMergeStrategyName(strategy) +
            "/d:" + std::to_string(dim) +
            "/reducers:" + std::to_string(reducers);
        skymr::bench::RegisterRow(name, Merging)
            ->Args({static_cast<long>(strategy), static_cast<long>(dim),
                    reducers})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return skymr::bench::BenchMain(argc, argv, "bench_ablation_merging");
}
