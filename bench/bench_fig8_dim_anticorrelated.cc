// Figure 8: effect of dimensionality on anti-correlated data.
//
// Paper setup: anti-correlated distribution, cardinalities 1x10^5 and
// 2x10^6, dimensionality 2..10. Expected shape (Section 7.2): MR-GPMRS
// best almost everywhere (large skyline fractions reward reducer
// parallelism); MR-GPSRS competitive only below d = 5 and degrading
// steeply at high d; MR-BNL and MR-Angle "cannot terminate in a
// reasonable period of time for higher dimensionalities" — the paper
// omits them from panels (b) and (d), and this bench mirrors those
// omissions (baselines stop at d = 6; MR-GPSRS stops at d = 7 for the
// high cardinality).
//
// Default scale: 2.5% of the paper's cardinalities — anti-correlated
// skylines are huge and the baselines' reduce phases are quadratic in
// them.

#include "bench/bench_common.h"

namespace {

constexpr double kScale = 0.025;
constexpr size_t kLowCard = 100000;
constexpr size_t kHighCard = 2000000;

void Fig8(benchmark::State& state) {
  const auto algorithm = static_cast<skymr::Algorithm>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  const auto paper_card = static_cast<size_t>(state.range(2));
  const size_t card = skymr::bench::ScaledCardinality(paper_card, kScale);
  const skymr::Dataset& data = skymr::bench::CachedDataset(
      skymr::data::Distribution::kAntiCorrelated, card, dim);
  state.counters["card"] = static_cast<double>(card);
  skymr::bench::RunAndReport(state, data,
                             skymr::bench::PaperConfig(algorithm));
}

bool IncludedInPaper(skymr::Algorithm algorithm, size_t dim,
                     size_t paper_card) {
  switch (algorithm) {
    case skymr::Algorithm::kMrBnl:
    case skymr::Algorithm::kMrAngle:
      // Excluded from Figures 8(b) and 8(d): d in [7..10].
      return dim <= 6;
    case skymr::Algorithm::kMrGpsrs:
      // "MR-GPSRS does not terminate in a reasonable period of time for
      // the highest dimensionality from 8 to 10" at 2x10^6.
      return paper_card < 2000000 || dim <= 7;
    default:
      return true;
  }
}

void RegisterAll() {
  for (const skymr::Algorithm algorithm :
       {skymr::Algorithm::kMrGpsrs, skymr::Algorithm::kMrGpmrs,
        skymr::Algorithm::kMrBnl, skymr::Algorithm::kMrAngle}) {
    for (const size_t paper_card : {kLowCard, kHighCard}) {
      for (size_t dim = 2; dim <= 10; ++dim) {
        if (!IncludedInPaper(algorithm, dim, paper_card)) {
          continue;
        }
        const std::string name =
            std::string("Fig8/") + skymr::AlgorithmName(algorithm) +
            "/card:" + std::to_string(paper_card) +
            "/d:" + std::to_string(dim);
        skymr::bench::RegisterRow(name, Fig8)
            ->Args({static_cast<long>(algorithm), static_cast<long>(dim),
                    static_cast<long>(paper_card)})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return skymr::bench::BenchMain(argc, argv, "bench_fig8_dim_anticorrelated");
}
