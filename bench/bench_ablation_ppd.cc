// Ablation B: sensitivity to the grid resolution (PPD), validating the
// Section 3.3 trade-off — too few tuples per partition makes partition
// checks overhead, too many makes the grid too coarse to prune.
//
// Runs MR-GPMRS with explicit PPD values and reports the modeled runtime,
// comparison counts, and shuffle traffic per resolution, plus one row for
// the paper's selection heuristic (both decision rules).

#include "bench/bench_common.h"

namespace {

constexpr double kScale = 0.02;
constexpr size_t kPaperCard = 1000000;
constexpr size_t kDim = 4;

void ExplicitPpd(benchmark::State& state) {
  const auto dist =
      static_cast<skymr::data::Distribution>(state.range(0));
  const auto ppd = static_cast<uint32_t>(state.range(1));
  const size_t card = skymr::bench::ScaledCardinality(kPaperCard, kScale);
  const skymr::Dataset& data =
      skymr::bench::CachedDataset(dist, card, kDim);
  skymr::RunnerConfig config =
      skymr::bench::PaperConfig(skymr::Algorithm::kMrGpmrs);
  config.ppd.explicit_ppd = ppd;
  skymr::bench::RunAndReport(
      state, data, config,
      [](const skymr::SkylineResult& result,
         std::map<std::string, double>* metrics) {
        int64_t partition_cmps = 0;
        int64_t tuple_cmps = 0;
        for (const auto& job : result.jobs) {
          partition_cmps +=
              job.counters.Get(skymr::mr::kCounterPartitionComparisons);
          tuple_cmps +=
              job.counters.Get(skymr::mr::kCounterTupleComparisons);
        }
        (*metrics)["partition_cmps"] =
            static_cast<double>(partition_cmps);
        (*metrics)["tuple_cmps"] = static_cast<double>(tuple_cmps);
        (*metrics)["nonempty"] =
            static_cast<double>(result.nonempty_partitions);
      });
}

void HeuristicPpd(benchmark::State& state) {
  const auto dist =
      static_cast<skymr::data::Distribution>(state.range(0));
  const auto strategy =
      static_cast<skymr::core::PpdStrategy>(state.range(1));
  const size_t card = skymr::bench::ScaledCardinality(kPaperCard, kScale);
  const skymr::Dataset& data =
      skymr::bench::CachedDataset(dist, card, kDim);
  skymr::RunnerConfig config =
      skymr::bench::PaperConfig(skymr::Algorithm::kMrGpmrs);
  config.ppd.strategy = strategy;
  skymr::bench::RunAndReport(state, data, config);
}

void RegisterAll() {
  for (const auto dist : {skymr::data::Distribution::kIndependent,
                          skymr::data::Distribution::kAntiCorrelated}) {
    for (const uint32_t ppd : {2u, 3u, 4u, 6u, 8u, 12u}) {
      const std::string name =
          std::string("AblationPpd/") +
          skymr::data::DistributionName(dist) +
          "/ppd:" + std::to_string(ppd);
      skymr::bench::RegisterRow(name, ExplicitPpd)
          ->Args({static_cast<long>(dist), static_cast<long>(ppd)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
    for (const auto strategy : {skymr::core::PpdStrategy::kPaperLiteral,
                                skymr::core::PpdStrategy::kTargetTpp}) {
      const std::string name =
          std::string("AblationPpd/") +
          skymr::data::DistributionName(dist) + "/heuristic:" +
          skymr::core::PpdStrategyName(strategy);
      skymr::bench::RegisterRow(name, HeuristicPpd)
          ->Args({static_cast<long>(dist), static_cast<long>(strategy)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return skymr::bench::BenchMain(argc, argv, "bench_ablation_ppd");
}
