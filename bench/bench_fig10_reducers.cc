// Figure 10: effect of the number of reducers in MR-GPMRS.
//
// Paper setup: 8-dimensional data, cardinality 2x10^6, both
// distributions, reducer count 1..17 (1 = MR-GPSRS; Hadoop multi-slot
// nodes allow 17 reducers on 13 nodes). Expected shape (Section 7.4): on
// independent data more reducers do not help (even a small increase from
// 1 to 5 due to overhead); on anti-correlated data the largest
// improvement is from 1 to 5 reducers, with moderate further gains up to
// 17.
//
// Default scale: 5% of the paper's cardinality.

#include "bench/bench_common.h"

namespace {

constexpr double kScale = 0.05;
constexpr size_t kPaperCard = 2000000;
constexpr size_t kDim = 8;

void Fig10(benchmark::State& state) {
  const auto dist =
      static_cast<skymr::data::Distribution>(state.range(0));
  const auto reducers = static_cast<int>(state.range(1));
  const size_t card = skymr::bench::ScaledCardinality(kPaperCard, kScale);
  const skymr::Dataset& data =
      skymr::bench::CachedDataset(dist, card, kDim);
  state.counters["card"] = static_cast<double>(card);
  // Reducer count 1 runs MR-GPSRS, as in the paper's figure.
  const skymr::Algorithm algorithm = reducers == 1
                                         ? skymr::Algorithm::kMrGpsrs
                                         : skymr::Algorithm::kMrGpmrs;
  skymr::RunnerConfig config =
      skymr::bench::PaperConfig(algorithm, reducers);
  // Pin the grid resolution to what the Section 3.3 heuristic selects at
  // the paper's full cardinality. At scaled-down cardinality the sparser
  // occupancy makes the heuristic pick PPD 2, which caps the independent
  // group count and hides the reducer-scaling effect this figure
  // measures.
  config.ppd.explicit_ppd = 3;
  skymr::bench::RunAndReport(state, data, config);
}

void RegisterAll() {
  for (const auto dist : {skymr::data::Distribution::kIndependent,
                          skymr::data::Distribution::kAntiCorrelated}) {
    for (const int reducers : {1, 3, 5, 7, 9, 11, 13, 15, 17}) {
      const std::string name =
          std::string("Fig10/") + skymr::data::DistributionName(dist) +
          "/reducers:" + std::to_string(reducers);
      skymr::bench::RegisterRow(name, Fig10)
          ->Args({static_cast<long>(dist), reducers})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return skymr::bench::BenchMain(argc, argv, "bench_fig10_reducers");
}
