// Ablation F: does the hybrid switch (Section 8 future work) pick the
// right algorithm? For each distribution x dimensionality cell, run
// MR-GPSRS, MR-GPMRS, and the hybrid; the hybrid should track the better
// of the two fixed choices (its cost is one driver-side sample pass).
//
// Reported per run: modeled compute seconds, the algorithm the hybrid
// resolved to (0 = GPSRS, 1 = GPMRS), and the sampled skyline fraction
// that drove the decision.

#include "bench/bench_common.h"

namespace {

constexpr double kScale = 0.02;
constexpr size_t kPaperCard = 1000000;

void Hybrid(benchmark::State& state) {
  const auto dist =
      static_cast<skymr::data::Distribution>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  const auto algorithm = static_cast<skymr::Algorithm>(state.range(2));
  const size_t card = skymr::bench::ScaledCardinality(kPaperCard, kScale);
  const skymr::Dataset& data =
      skymr::bench::CachedDataset(dist, card, dim);
  skymr::RunnerConfig config = skymr::bench::PaperConfig(algorithm);
  skymr::bench::RunAndReport(
      state, data, config,
      [algorithm](const skymr::SkylineResult& result,
                  std::map<std::string, double>* metrics) {
        if (algorithm == skymr::Algorithm::kHybrid) {
          (*metrics)["resolved_gpmrs"] =
              result.algorithm_used == skymr::Algorithm::kMrGpmrs ? 1.0
                                                                  : 0.0;
          (*metrics)["sampled_fraction"] =
              result.hybrid_decision.sampled_skyline_fraction;
        }
      });
}

void RegisterAll() {
  for (const auto dist : {skymr::data::Distribution::kIndependent,
                          skymr::data::Distribution::kAntiCorrelated,
                          skymr::data::Distribution::kCorrelated}) {
    for (const size_t dim : {size_t{3}, size_t{6}, size_t{9}}) {
      for (const skymr::Algorithm algorithm :
           {skymr::Algorithm::kMrGpsrs, skymr::Algorithm::kMrGpmrs,
            skymr::Algorithm::kHybrid}) {
        const std::string name =
            std::string("AblationHybrid/") +
            skymr::data::DistributionName(dist) +
            "/d:" + std::to_string(dim) + "/" +
            skymr::AlgorithmName(algorithm);
        skymr::bench::RegisterRow(name, Hybrid)
            ->Args({static_cast<long>(dist), static_cast<long>(dim),
                    static_cast<long>(algorithm)})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return skymr::bench::BenchMain(argc, argv, "bench_ablation_hybrid");
}
