// Figure 11: evaluation of the Section 6 cost estimation.
//
// Paper setup: MR-GPMRS on datasets of cardinality 1x10^6 (both
// distributions), dimensionality 2..10; for each run, record the highest
// per-mapper and per-reducer partition-wise comparison counts and compare
// them with the Equation 8 / Equation 9 estimates at the same grid
// resolution. Expected shape (Section 7.5): estimates closely track
// mapper costs on independent data, are looser for anti-correlated data
// and for reducers, and upper-bound the measured cost in every case.
//
// Counters reported per run:
//   measured_mapper / estimate_mapper   (Figure 11a)
//   measured_reducer / estimate_reducer (Figure 11b)
//   bound_ok = 1 when both estimates upper-bound the measurements.
//
// Default scale: 2% of the paper's cardinality.

#include "bench/bench_common.h"
#include "src/cost/cost_model.h"

namespace {

constexpr double kScale = 0.02;
constexpr size_t kPaperCard = 1000000;

void Fig11(benchmark::State& state) {
  const auto dist =
      static_cast<skymr::data::Distribution>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  const size_t card = skymr::bench::ScaledCardinality(kPaperCard, kScale);
  const skymr::Dataset& data =
      skymr::bench::CachedDataset(dist, card, dim);
  state.counters["card"] = static_cast<double>(card);

  skymr::bench::RunAndReport(
      state, data, skymr::bench::PaperConfig(skymr::Algorithm::kMrGpmrs),
      [dim](const skymr::SkylineResult& result,
            std::map<std::string, double>* metrics) {
        const auto& skyline_job = result.jobs[1];
        const double measured_mapper =
            static_cast<double>(skyline_job.MaxMapCounter(
                skymr::mr::kCounterPartitionComparisons));
        const double measured_reducer =
            static_cast<double>(skyline_job.MaxReduceCounter(
                skymr::mr::kCounterPartitionComparisons));
        const double estimate_mapper =
            skymr::cost::MapperCost(result.ppd, dim);
        const double estimate_reducer =
            skymr::cost::ReducerCost(result.ppd, dim);
        (*metrics)["measured_mapper"] = measured_mapper;
        (*metrics)["estimate_mapper"] = estimate_mapper;
        (*metrics)["measured_reducer"] = measured_reducer;
        (*metrics)["estimate_reducer"] = estimate_reducer;
        (*metrics)["bound_ok"] =
            measured_mapper <= estimate_mapper &&
                    measured_reducer <= estimate_reducer
                ? 1.0
                : 0.0;
      });
}

void RegisterAll() {
  for (const auto dist : {skymr::data::Distribution::kIndependent,
                          skymr::data::Distribution::kAntiCorrelated}) {
    for (size_t dim = 2; dim <= 10; ++dim) {
      const std::string name =
          std::string("Fig11/") + skymr::data::DistributionName(dist) +
          "/d:" + std::to_string(dim);
      skymr::bench::RegisterRow(name, Fig11)
          ->Args({static_cast<long>(dist), static_cast<long>(dim)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return skymr::bench::BenchMain(argc, argv, "bench_fig11_cost_model");
}
