// Shared infrastructure for the figure-reproduction benchmarks.
//
// Every bench binary regenerates one figure of the paper's Section 7 on a
// scaled-down workload (the paper's largest runs need cluster-hours; see
// EXPERIMENTS.md). Scaling is controlled by environment variables:
//
//   SKYMR_SCALE       multiplier on the per-figure default cardinality
//                     scale (default 1.0; e.g. SKYMR_SCALE=5 runs 5x more
//                     data)
//   SKYMR_FULL        when set to 1, uses the paper's full cardinalities
//                     (several hours per figure on one machine)
//   SKYMR_BENCH_REPS  pipeline repetitions per reported row (default 1);
//                     more repetitions tighten the wall-time statistics
//                     in the bench artifact
//   SKYMR_BENCH_OUT   path of the skymr-bench-v1 artifact (default
//                     BENCH_<bench>.json in the working directory)
//   SKYMR_BENCH_CACHE_MB
//                     dataset-cache budget in MiB (default 1024); a sweep
//                     evicts least-recently-used datasets beyond it
//
// Each benchmark runs `SKYMR_BENCH_REPS` pipeline executions per reported
// row and exposes the paper's y-axes as counters:
//   modeled_s   modeled 13-node cluster makespan (paper "Runtime [s]")
//   skyline     skyline cardinality
//   shuffleKB   total shuffle traffic
//   ppd         selected grid resolution
//
// Besides the console table, every bench binary writes a machine-readable
// skymr-bench-v1 artifact (src/obs/bench_artifact.h): per-row wall-time
// statistics plus the deterministic counters CI diffs against the
// committed baselines under bench/baselines/ (tools/bench_diff.py).

#ifndef SKYMR_BENCH_BENCH_COMMON_H_
#define SKYMR_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/obs/bench_artifact.h"
#include "src/skymr.h"

namespace skymr::bench {

/// Effective cardinality for a paper cardinality under the figure's
/// default scale and the SKYMR_SCALE / SKYMR_FULL environment overrides.
inline size_t ScaledCardinality(size_t paper_cardinality,
                                double figure_scale) {
  const char* full = std::getenv("SKYMR_FULL");
  if (full != nullptr && std::string(full) == "1") {
    return paper_cardinality;
  }
  double scale = figure_scale;
  if (const char* env = std::getenv("SKYMR_SCALE"); env != nullptr) {
    scale *= std::strtod(env, nullptr);
  }
  auto scaled = static_cast<size_t>(static_cast<double>(paper_cardinality) *
                                    scale);
  return scaled < 500 ? 500 : scaled;
}

/// Memoized dataset generation: figures sweep algorithms over the same
/// dataset, so generate each (distribution, cardinality, dim) once. The
/// cache is bounded (SKYMR_BENCH_CACHE_MB, default 1 GiB): once a sweep
/// moves on, least-recently-used datasets are evicted instead of pinning
/// every cardinality of the sweep in memory for the process lifetime.
/// The returned reference stays valid until the second-next CachedDataset
/// call (the most recently returned dataset is never evicted), which
/// covers the benchmark pattern of one dataset per row.
inline const Dataset& CachedDataset(data::Distribution distribution,
                                    size_t cardinality, size_t dim) {
  using Key = std::tuple<int, size_t, size_t>;
  struct Entry {
    std::unique_ptr<Dataset> data;
    uint64_t last_used = 0;
  };
  static std::map<Key, Entry> cache;
  static uint64_t tick = 0;
  static uint64_t cached_bytes = 0;

  uint64_t budget_bytes = 1024ull << 20;
  if (const char* env = std::getenv("SKYMR_BENCH_CACHE_MB");
      env != nullptr) {
    const double mb = std::strtod(env, nullptr);
    budget_bytes = mb < 1.0 ? 1ull << 20
                            : static_cast<uint64_t>(mb * (1ull << 20));
  }

  ++tick;
  const Key key{static_cast<int>(distribution), cardinality, dim};
  auto it = cache.find(key);
  if (it == cache.end()) {
    // Make room for the incoming dataset first, so the sweep's peak RSS
    // stays near the budget instead of budget + one dataset. Keep the
    // most recently used entry: the caller of the previous row may hold
    // a reference to it until this call returns.
    const uint64_t incoming = static_cast<uint64_t>(cardinality) * dim *
                              sizeof(double);
    while (cached_bytes + incoming > budget_bytes && cache.size() > 1) {
      auto victim = cache.end();
      uint64_t newest = 0;
      for (auto probe = cache.begin(); probe != cache.end(); ++probe) {
        newest = std::max(newest, probe->second.last_used);
        if (victim == cache.end() ||
            probe->second.last_used < victim->second.last_used) {
          victim = probe;
        }
      }
      if (victim == cache.end() || victim->second.last_used == newest) {
        break;
      }
      cached_bytes -= victim->second.data->size() *
                      victim->second.data->dim() * sizeof(double);
      cache.erase(victim);
    }
    data::GeneratorConfig config;
    config.distribution = distribution;
    config.cardinality = cardinality;
    config.dim = dim;
    config.seed = 20140324;  // EDBT'14 conference date.
    it = cache
             .emplace(key,
                      Entry{std::make_unique<Dataset>(std::move(
                                data::Generate(config)).value()),
                            tick})
             .first;
    cached_bytes += incoming;
  }
  it->second.last_used = tick;
  return *it->second.data;
}

/// The paper's experimental configuration: 13 nodes, one mapper split per
/// node, MR-GPMRS defaults to one reducer per node (Section 7.1).
inline RunnerConfig PaperConfig(Algorithm algorithm, int reducers = 13) {
  RunnerConfig config;
  config.algorithm = algorithm;
  config.engine.num_map_tasks = 13;
  config.engine.num_reducers = reducers;
  return config;
}

/// One worker pool for the whole bench binary: every pipeline iteration
/// reuses it instead of spawning threads per ComputeSkyline call.
inline ThreadPool& SharedBenchPool() {
  static ThreadPool pool(ThreadPool::DefaultThreads());
  return pool;
}

/// Artifact rows accumulated by RunAndReport across the whole binary;
/// BenchMain writes them out at exit.
inline std::vector<obs::BenchRow>& CollectedRows() {
  static std::vector<obs::BenchRow> rows;
  return rows;
}

/// Name of the row currently executing, stashed by RegisterRow's wrapper.
/// Benchmarks run sequentially on one thread, so a single slot suffices.
inline std::string& CurrentRowName() {
  static std::string name;
  return name;
}

/// Registers a benchmark whose artifact row is labeled `name`. Drop-in for
/// benchmark::RegisterBenchmark; the wrapper records the name where
/// RunAndReport can pick it up (the installed google-benchmark has no
/// State::name accessor).
template <typename Fn>
benchmark::internal::Benchmark* RegisterRow(const std::string& name, Fn fn) {
  return benchmark::RegisterBenchmark(
      name.c_str(), [name, fn](benchmark::State& state) {
        CurrentRowName() = name;
        fn(state);
      });
}

/// Bench-specific extra metrics: called once per repetition with the
/// finished pipeline; values land in both the benchmark's console
/// counters and the artifact row's "metrics" section.
using RowAnnotator =
    std::function<void(const SkylineResult&, std::map<std::string, double>*)>;

/// Runs SKYMR_BENCH_REPS pipeline executions, reports the paper's
/// metrics on the benchmark state, and collects one skymr-bench-v1
/// artifact row: wall-time statistics over the repetitions plus the
/// deterministic counters harvested from the per-job telemetry. Aborts
/// the benchmark on error, on a wrong skyline, and when the
/// deterministic counters disagree across repetitions.
inline void RunAndReport(benchmark::State& state, const Dataset& data,
                         const RunnerConfig& config,
                         const RowAnnotator& annotate = nullptr) {
  RunnerConfig pooled = config;
  if (pooled.pool == nullptr) {
    pooled.pool = &SharedBenchPool();
  }
  const int reps = obs::BenchRepsFromEnv();
  for (auto _ : state) {
    std::vector<double> wall_samples;
    wall_samples.reserve(static_cast<size_t>(reps));
    std::map<std::string, int64_t> deterministic;
    std::map<std::string, double> extra_metrics;
    double modeled_s = 0.0;
    double compute_s = 0.0;
    double skyline_size = 0.0;
    double shuffle_kb = 0.0;
    double ppd = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      auto result = ComputeSkyline(data, pooled);
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      wall_samples.push_back(result->wall_seconds);
      auto rep_counters = obs::DeterministicCounters(*result, data.size());
      if (rep == 0) {
        deterministic = std::move(rep_counters);
      } else if (rep_counters != deterministic) {
        // The regression gate relies on these being bit-identical; a
        // mismatch within one process is a bug worth failing loudly on.
        state.SkipWithError(
            "deterministic counters differ across repetitions");
        return;
      }
      uint64_t shuffle = 0;
      for (const auto& job : result->jobs) {
        shuffle += job.shuffle_bytes;
      }
      modeled_s = result->modeled_seconds;
      compute_s = result->modeled_compute_seconds;
      skyline_size = static_cast<double>(result->skyline.size());
      shuffle_kb = static_cast<double>(shuffle) / 1024.0;
      ppd = static_cast<double>(result->ppd);
      if (annotate) {
        annotate(*result, &extra_metrics);
      }
      benchmark::DoNotOptimize(result->skyline.size());
    }
    state.counters["modeled_s"] = modeled_s;
    state.counters["compute_s"] = compute_s;
    state.counters["skyline"] = skyline_size;
    state.counters["shuffleKB"] = shuffle_kb;
    state.counters["ppd"] = ppd;

    obs::BenchRow row;
    row.name = CurrentRowName();
    row.wall = obs::WallStats::FromSamples(wall_samples);
    row.metrics["modeled_s"] = modeled_s;
    row.metrics["compute_s"] = compute_s;
    row.metrics["shuffle_kb"] = shuffle_kb;
    for (const auto& [name, value] : extra_metrics) {
      state.counters[name] = value;
      row.metrics[name] = value;
    }
    row.deterministic = std::move(deterministic);
    CollectedRows().push_back(std::move(row));
  }
}

/// Shared main for the figure benches: runs the registered benchmarks,
/// then writes the skymr-bench-v1 artifact to SKYMR_BENCH_OUT (default
/// BENCH_<bench>.json).
inline int BenchMain(int argc, char** argv, const std::string& bench_name) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The framework may invoke a benchmark several times while calibrating
  // the iteration count; keep only the final (measured) row per name.
  obs::BenchArtifact artifact(bench_name);
  std::map<std::string, size_t> last_by_name;
  for (size_t i = 0; i < CollectedRows().size(); ++i) {
    last_by_name.insert_or_assign(CollectedRows()[i].name, i);
  }
  for (size_t i = 0; i < CollectedRows().size(); ++i) {
    if (last_by_name.at(CollectedRows()[i].name) == i) {
      artifact.AddRow(std::move(CollectedRows()[i]));
    }
  }
  CollectedRows().clear();
  std::string out_path = "BENCH_" + bench_name + ".json";
  if (const char* env = std::getenv("SKYMR_BENCH_OUT"); env != nullptr) {
    out_path = env;
  }
  if (const Status s = artifact.WriteFile(out_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu bench rows to %s\n", artifact.row_count(),
               out_path.c_str());
  return 0;
}

}  // namespace skymr::bench

#endif  // SKYMR_BENCH_BENCH_COMMON_H_
