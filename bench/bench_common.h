// Shared infrastructure for the figure-reproduction benchmarks.
//
// Every bench binary regenerates one figure of the paper's Section 7 on a
// scaled-down workload (the paper's largest runs need cluster-hours; see
// EXPERIMENTS.md). Scaling is controlled by environment variables:
//
//   SKYMR_SCALE  multiplier on the per-figure default cardinality scale
//                (default 1.0; e.g. SKYMR_SCALE=5 runs 5x more data)
//   SKYMR_FULL   when set to 1, uses the paper's full cardinalities
//                (several hours per figure on one machine)
//
// Each benchmark runs exactly one pipeline execution per reported row and
// exposes the paper's y-axes as counters:
//   modeled_s   modeled 13-node cluster makespan (paper "Runtime [s]")
//   skyline     skyline cardinality
//   shuffleKB   total shuffle traffic
//   ppd         selected grid resolution

#ifndef SKYMR_BENCH_BENCH_COMMON_H_
#define SKYMR_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "src/skymr.h"

namespace skymr::bench {

/// Effective cardinality for a paper cardinality under the figure's
/// default scale and the SKYMR_SCALE / SKYMR_FULL environment overrides.
inline size_t ScaledCardinality(size_t paper_cardinality,
                                double figure_scale) {
  const char* full = std::getenv("SKYMR_FULL");
  if (full != nullptr && std::string(full) == "1") {
    return paper_cardinality;
  }
  double scale = figure_scale;
  if (const char* env = std::getenv("SKYMR_SCALE"); env != nullptr) {
    scale *= std::strtod(env, nullptr);
  }
  auto scaled = static_cast<size_t>(static_cast<double>(paper_cardinality) *
                                    scale);
  return scaled < 500 ? 500 : scaled;
}

/// Memoized dataset generation: figures sweep algorithms over the same
/// dataset, so generate each (distribution, cardinality, dim) once.
inline const Dataset& CachedDataset(data::Distribution distribution,
                                    size_t cardinality, size_t dim) {
  using Key = std::tuple<int, size_t, size_t>;
  static std::map<Key, std::unique_ptr<Dataset>> cache;
  const Key key{static_cast<int>(distribution), cardinality, dim};
  auto it = cache.find(key);
  if (it == cache.end()) {
    data::GeneratorConfig config;
    config.distribution = distribution;
    config.cardinality = cardinality;
    config.dim = dim;
    config.seed = 20140324;  // EDBT'14 conference date.
    it = cache
             .emplace(key, std::make_unique<Dataset>(
                               std::move(data::Generate(config)).value()))
             .first;
  }
  return *it->second;
}

/// The paper's experimental configuration: 13 nodes, one mapper split per
/// node, MR-GPMRS defaults to one reducer per node (Section 7.1).
inline RunnerConfig PaperConfig(Algorithm algorithm, int reducers = 13) {
  RunnerConfig config;
  config.algorithm = algorithm;
  config.engine.num_map_tasks = 13;
  config.engine.num_reducers = reducers;
  return config;
}

/// One worker pool for the whole bench binary: every pipeline iteration
/// reuses it instead of spawning threads per ComputeSkyline call.
inline ThreadPool& SharedBenchPool() {
  static ThreadPool pool(ThreadPool::DefaultThreads());
  return pool;
}

/// Runs one pipeline and reports the paper's metrics on the benchmark
/// state. Aborts the benchmark on error or on a wrong skyline.
inline void RunAndReport(benchmark::State& state, const Dataset& data,
                         const RunnerConfig& config) {
  RunnerConfig pooled = config;
  if (pooled.pool == nullptr) {
    pooled.pool = &SharedBenchPool();
  }
  for (auto _ : state) {
    auto result = ComputeSkyline(data, pooled);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    uint64_t shuffle = 0;
    for (const auto& job : result->jobs) {
      shuffle += job.shuffle_bytes;
    }
    state.counters["modeled_s"] = result->modeled_seconds;
    state.counters["compute_s"] = result->modeled_compute_seconds;
    state.counters["skyline"] =
        static_cast<double>(result->skyline.size());
    state.counters["shuffleKB"] = static_cast<double>(shuffle) / 1024.0;
    state.counters["ppd"] = static_cast<double>(result->ppd);
    benchmark::DoNotOptimize(result->skyline.size());
  }
}

}  // namespace skymr::bench

#endif  // SKYMR_BENCH_BENCH_COMMON_H_
