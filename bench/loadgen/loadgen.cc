#include "bench/loadgen/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "src/common/thread_pool.h"
#include "src/mapreduce/chaos.h"
#include "src/obs/bench_artifact.h"
#include "src/obs/json.h"
#include "src/serve/session.h"

namespace skymr::loadgen {
namespace {

using Clock = std::chrono::steady_clock;

/// Per-size-class dataset seed: shared across runs and independent of the
/// schedule seed, so changing the arrival seed re-orders traffic without
/// changing any query's answer.
constexpr uint64_t kDatasetSeedBase = 20140324;

/// Salts for the two independent deterministic draws per query.
constexpr uint64_t kSaltArrival = 0x6172726976616c73ULL;  // "arrivals"
constexpr uint64_t kSaltSizePick = 0x73697a657069636bULL;  // "sizepick"

/// One uniform draw in (0, 1]: the top 53 bits of a mixed counter. The
/// *integer* bits feed the schedule hash so it is machine-independent;
/// only the timing (never the gate) sees the derived double.
uint64_t DrawBits(uint64_t seed, uint64_t salt, uint64_t i) {
  return mr::ChaosMix64(mr::ChaosMix64(seed ^ salt) ^ (i + 1));
}

double BitsToUnitOpen(uint64_t bits) {
  // (0, 1]: never 0, so -log() below is finite.
  return (static_cast<double>(bits >> 11) + 1.0) * 0x1.0p-53;
}

double NowUs(Clock::time_point epoch) {
  return std::chrono::duration<double, std::micro>(Clock::now() - epoch)
      .count();
}

}  // namespace

std::vector<SizeClass> DefaultMix(double scale) {
  auto scaled = [scale](size_t n) {
    const double s = static_cast<double>(n) * scale;
    return std::max<size_t>(200, static_cast<size_t>(s));
  };
  std::vector<SizeClass> mix(4);
  mix[0] = {"small", scaled(600), 3, data::Distribution::kIndependent,
            Algorithm::kMrGpsrs, /*constrained=*/false, /*weight=*/6};
  mix[1] = {"medium", scaled(2000), 4, data::Distribution::kIndependent,
            Algorithm::kMrGpmrs, /*constrained=*/false, /*weight=*/3};
  mix[2] = {"large", scaled(5000), 5, data::Distribution::kAntiCorrelated,
            Algorithm::kMrGpmrs, /*constrained=*/false, /*weight=*/1};
  mix[3] = {"constrained", scaled(1500), 4, data::Distribution::kIndependent,
            Algorithm::kMrGpmrs, /*constrained=*/true, /*weight=*/2};
  return mix;
}

std::vector<SizeClass> ResidentServeMix() {
  // Dataset-shape fields are the non-resident fallback; with a resident
  // dataset the classes differ only by algorithm/constraint/lane. The two
  // unconstrained classes share one bitstring fingerprint (the fingerprint
  // never includes the algorithm), the constrained class has its own.
  std::vector<SizeClass> mix(3);
  mix[0] = {"gpsrs", 1500, 3, data::Distribution::kIndependent,
            Algorithm::kMrGpsrs, /*constrained=*/false, /*weight=*/4,
            AdmissionClass::kSmall};
  mix[1] = {"gpmrs", 4000, 3, data::Distribution::kIndependent,
            Algorithm::kMrGpmrs, /*constrained=*/false, /*weight=*/3,
            AdmissionClass::kLarge};
  mix[2] = {"constrained", 1500, 3, data::Distribution::kIndependent,
            Algorithm::kMrGpmrs, /*constrained=*/true, /*weight=*/2,
            AdmissionClass::kSmall};
  return mix;
}

ArrivalSchedule BuildSchedule(const LoadConfig& config) {
  const std::vector<SizeClass> mix =
      config.mix.empty() ? DefaultMix(1.0) : config.mix;
  uint64_t total_weight = 0;
  for (const SizeClass& sc : mix) {
    total_weight += sc.weight;
  }
  ArrivalSchedule schedule;
  schedule.arrival_us.reserve(config.queries);
  schedule.size_class.reserve(config.queries);
  const double mean_gap_us = 1e6 / config.target_qps;
  double t = 0.0;
  uint64_t hash = mr::ChaosMix64(config.seed ^ kSaltArrival);
  for (int i = 0; i < config.queries; ++i) {
    const uint64_t gap_bits = DrawBits(config.seed, kSaltArrival, i);
    // Poisson arrivals: exponential inter-arrival gaps at the target rate.
    t += -std::log(BitsToUnitOpen(gap_bits)) * mean_gap_us;
    schedule.arrival_us.push_back(t);

    const uint64_t pick_bits = DrawBits(config.seed, kSaltSizePick, i);
    int chosen = 0;
    if (total_weight > 0) {
      uint64_t ticket = pick_bits % total_weight;
      for (size_t c = 0; c < mix.size(); ++c) {
        if (ticket < mix[c].weight) {
          chosen = static_cast<int>(c);
          break;
        }
        ticket -= mix[c].weight;
      }
    }
    schedule.size_class.push_back(chosen);

    // Integer-only fingerprint: raw draw bits + the pick, never the
    // floating-point arrival times.
    hash = mr::ChaosMix64(hash ^ gap_bits);
    hash = mr::ChaosMix64(hash ^ static_cast<uint64_t>(chosen));
  }
  schedule.hash = hash;
  return schedule;
}

StatusOr<LoadReport> RunLoad(const LoadConfig& config,
                             obs::MetricsRegistry* metrics,
                             obs::Logger* logger) {
  if (config.queries <= 0) {
    return Status::InvalidArgument("loadgen: queries must be positive");
  }
  if (!(config.target_qps > 0.0)) {
    return Status::InvalidArgument("loadgen: target_qps must be positive");
  }
  if (config.admission_slots <= 0) {
    return Status::InvalidArgument(
        "loadgen: admission_slots must be positive");
  }
  const std::vector<SizeClass> mix =
      config.mix.empty() ? DefaultMix(1.0) : config.mix;
  uint64_t total_weight = 0;
  for (const SizeClass& sc : mix) {
    total_weight += sc.weight;
  }
  if (total_weight == 0) {
    return Status::InvalidArgument("loadgen: mix weights sum to zero");
  }

  // Datasets and runner configs are built once per size class; every
  // query of a class reuses them, so per-query work is pure compute.
  std::vector<Dataset> datasets;
  std::vector<RunnerConfig> runner_configs;
  datasets.reserve(mix.size());
  runner_configs.reserve(mix.size());
  ThreadPool pool(config.threads > 0 ? config.threads
                                     : ThreadPool::DefaultThreads());
  for (size_t c = 0; c < mix.size(); ++c) {
    const SizeClass& sc = mix[c];
    data::GeneratorConfig gen;
    gen.distribution = sc.distribution;
    gen.cardinality = sc.cardinality;
    gen.dim = sc.dim;
    gen.seed = kDatasetSeedBase + c;
    auto data_or = data::Generate(gen);
    if (!data_or.ok()) {
      return data_or.status();
    }
    datasets.push_back(std::move(data_or).value());

    RunnerConfig rc;
    rc.algorithm = sc.algorithm;
    rc.engine.num_map_tasks = config.num_map_tasks;
    rc.engine.num_reducers = config.num_reducers;
    rc.engine.max_task_attempts = config.max_task_attempts;
    rc.engine.chaos = config.chaos;
    rc.engine.metrics = metrics;
    rc.engine.log = logger;
    rc.pool = &pool;
    if (sc.constrained) {
      // lint:allow(deprecated-constraint) batch mode drives the legacy shim
      rc.constraint = Box{std::vector<double>(sc.dim, 0.0),
                          std::vector<double>(sc.dim, 0.6)};
    }
    Status valid = rc.Validate();
    if (!valid.ok()) {
      return valid;
    }
    runner_configs.push_back(std::move(rc));
  }

  const ArrivalSchedule schedule = BuildSchedule(config);

  LoadReport report;
  report.schedule_hash = schedule.hash;
  report.outcomes.resize(config.queries);
  report.per_size_latency_us.resize(mix.size());

  // Admission state. Arrived queries wait in FIFO order until one of the
  // admission_slots frees up; each admitted query runs as one pool task
  // (ComputeSkyline nests its own parallelism onto the same pool via
  // work-helping, so slots bound *queries*, not threads).
  std::mutex mu;
  std::condition_variable all_done;
  std::deque<int> pending;
  int inflight = 0;
  int completed = 0;
  int64_t max_queue_depth = 0;
  int64_t max_inflight = 0;

  obs::MetricsRegistry::Gauge* inflight_gauge =
      metrics != nullptr ? metrics->gauge("query.inflight") : nullptr;
  obs::MetricsRegistry::Gauge* depth_gauge =
      metrics != nullptr ? metrics->gauge("query.queue_depth") : nullptr;

  const Clock::time_point epoch = Clock::now();

  // Runs query q on the calling (pool) thread, then admits successors.
  std::function<void(int)> run_query;
  std::function<void()> admit_locked = [&]() {
    while (inflight < config.admission_slots && !pending.empty()) {
      const int q = pending.front();
      pending.pop_front();
      ++inflight;
      max_inflight = std::max<int64_t>(max_inflight, inflight);
      if (inflight_gauge != nullptr) {
        inflight_gauge->Set(inflight);
      }
      if (depth_gauge != nullptr) {
        depth_gauge->Set(static_cast<int64_t>(pending.size()));
      }
      pool.Submit([&run_query, q]() { run_query(q); });
    }
  };

  run_query = [&](int q) {
    QueryOutcome& out = report.outcomes[q];
    out.query_id = static_cast<uint64_t>(q) + 1;
    out.size_class = schedule.size_class[q];
    out.scheduled_us = schedule.arrival_us[q];
    out.dispatch_us = NowUs(epoch);

    if (q == config.slow_query_index && config.slow_query_ms > 0.0) {
      // The coordinated-omission probe: a deterministic stall occupying
      // one admission slot. Queries scheduled behind it inherit the
      // stall in their own (arrival-anchored) latency.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(config.slow_query_ms));
    }

    const SizeClass& sc = mix[out.size_class];
    RunnerConfig rc = runner_configs[out.size_class];
    rc.engine.query.id = out.query_id;
    rc.engine.query.deadline_ms = config.deadline_ms;
    rc.engine.query.tag = sc.name;

    auto result_or = ComputeSkyline(datasets[out.size_class], rc);
    out.done_us = NowUs(epoch);
    out.ok = result_or.ok();
    if (out.ok) {
      const SkylineResult& result = result_or.value();
      const auto counters =
          obs::DeterministicCounters(result, sc.cardinality);
      const auto it = counters.find("skymr.tuple_comparisons");
      out.comparisons = it != counters.end() ? it->second : 0;
      out.skyline_size = static_cast<int64_t>(result.skyline.size());
    }
    const double latency_us = out.done_us - out.scheduled_us;
    out.deadline_missed =
        config.deadline_ms > 0.0 && latency_us > config.deadline_ms * 1e3;

    if (metrics != nullptr) {
      metrics->counter(out.ok ? "query.completed" : "query.errors")->Add(1);
      if (out.deadline_missed) {
        metrics->counter("query.deadline_missed")->Add(1);
      }
      metrics->sketch("query.latency_us")->Record(latency_us);
      metrics->sketch("query.queue_wait_us")
          ->Record(out.dispatch_us - out.scheduled_us);
    }
    if (logger != nullptr && out.deadline_missed) {
      std::ostringstream msg;
      msg << "latency " << static_cast<int64_t>(latency_us)
          << " us over budget " << config.deadline_ms << " ms";
      obs::Logger::Fields fields;
      fields.query_id = out.query_id;
      fields.tag = sc.name;
      logger->Log(obs::LogSeverity::kWarn, "query.deadline", msg.str(),
                  fields);
    }

    std::lock_guard<std::mutex> lock(mu);
    --inflight;
    if (inflight_gauge != nullptr) {
      inflight_gauge->Set(inflight);
    }
    ++completed;
    admit_locked();
    if (completed == config.queries) {
      all_done.notify_all();
    }
  };

  // The open-loop dispatcher: arrivals happen at their scheduled time no
  // matter how the system is doing — a stalled engine grows the queue, it
  // never slows the clock.
  for (int q = 0; q < config.queries; ++q) {
    std::this_thread::sleep_until(
        epoch + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::micro>(
                        schedule.arrival_us[q])));
    std::lock_guard<std::mutex> lock(mu);
    pending.push_back(q);
    max_queue_depth =
        std::max<int64_t>(max_queue_depth, static_cast<int64_t>(pending.size()));
    if (depth_gauge != nullptr) {
      depth_gauge->Set(static_cast<int64_t>(pending.size()));
    }
    admit_locked();
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    all_done.wait(lock, [&]() { return completed == config.queries; });
  }
  pool.WaitIdle();
  report.wall_seconds = NowUs(epoch) / 1e6;

  // Sketches are rebuilt from the outcome table in arrival order, so the
  // report is independent of completion interleaving.
  for (const QueryOutcome& out : report.outcomes) {
    const double latency_us = out.done_us - out.scheduled_us;
    report.latency_us.Add(latency_us);
    report.queue_wait_us.Add(out.dispatch_us - out.scheduled_us);
    report.per_size_latency_us[out.size_class].Add(latency_us);
    report.completed += out.ok ? 1 : 0;
    report.errors += out.ok ? 0 : 1;
    report.deadline_missed += out.deadline_missed ? 1 : 0;
  }
  report.max_queue_depth = max_queue_depth;
  report.max_inflight = max_inflight;
  report.log_dropped = logger != nullptr ? logger->dropped() : 0;
  return report;
}

StatusOr<LoadReport> RunServeLoad(const LoadConfig& config,
                                  obs::MetricsRegistry* metrics,
                                  obs::Logger* logger) {
  if (config.queries <= 0) {
    return Status::InvalidArgument("loadgen: queries must be positive");
  }
  if (!(config.target_qps > 0.0)) {
    return Status::InvalidArgument("loadgen: target_qps must be positive");
  }
  if (config.admission_slots <= 0) {
    return Status::InvalidArgument(
        "loadgen: admission_slots must be positive");
  }
  if (config.small_reserved_slots < 0 ||
      config.small_reserved_slots >= config.admission_slots) {
    return Status::InvalidArgument(
        "loadgen: small_reserved_slots must leave at least one admission "
        "slot for large queries");
  }
  const std::vector<SizeClass> mix =
      config.mix.empty() ? (config.resident != nullptr ? ResidentServeMix()
                                                       : DefaultMix(1.0))
                         : config.mix;
  uint64_t total_weight = 0;
  for (const SizeClass& sc : mix) {
    total_weight += sc.weight;
  }
  if (total_weight == 0) {
    return Status::InvalidArgument("loadgen: mix weights sum to zero");
  }

  ThreadPool pool(config.threads > 0 ? config.threads
                                     : ThreadPool::DefaultThreads());
  // One two-lane slot budget across every session: admission bounds the
  // *server*, not any single dataset.
  AdmissionController admission(
      {config.admission_slots, config.small_reserved_slots});

  // Resident mode: one session answers every class. Otherwise each class
  // generates its own dataset (same seeds as RunLoad) behind its own
  // session; the pool and admission controller stay shared either way.
  std::vector<Dataset> generated;
  std::vector<const Dataset*> class_data(mix.size(), config.resident);
  std::vector<size_t> class_session(mix.size(), 0);
  if (config.resident == nullptr) {
    generated.reserve(mix.size());
    for (size_t c = 0; c < mix.size(); ++c) {
      const SizeClass& sc = mix[c];
      data::GeneratorConfig gen;
      gen.distribution = sc.distribution;
      gen.cardinality = sc.cardinality;
      gen.dim = sc.dim;
      gen.seed = kDatasetSeedBase + c;
      auto data_or = data::Generate(gen);
      if (!data_or.ok()) {
        return data_or.status();
      }
      generated.push_back(std::move(data_or).value());
      class_data[c] = &generated.back();
      class_session[c] = c;
    }
  }

  SessionOptions session_options;
  session_options.engine.num_map_tasks = config.num_map_tasks;
  session_options.engine.num_reducers = config.num_reducers;
  session_options.engine.max_task_attempts = config.max_task_attempts;
  session_options.engine.chaos = config.chaos;
  session_options.engine.metrics = metrics;
  session_options.engine.log = logger;
  session_options.pool = &pool;
  session_options.cache = true;
  session_options.admission = &admission;

  std::vector<std::unique_ptr<Session>> sessions;
  const size_t session_count =
      config.resident != nullptr ? 1 : mix.size();
  sessions.reserve(session_count);
  for (size_t s = 0; s < session_count; ++s) {
    const Dataset& data =
        config.resident != nullptr ? *config.resident : *class_data[s];
    auto session_or = Session::Open(data, session_options);
    if (!session_or.ok()) {
      return session_or.status();
    }
    sessions.push_back(std::move(session_or).value());
  }

  std::vector<QuerySpec> specs(mix.size());
  for (size_t c = 0; c < mix.size(); ++c) {
    const SizeClass& sc = mix[c];
    specs[c].algorithm = sc.algorithm;
    specs[c].admission = sc.lane;
    if (sc.constrained) {
      const size_t dim = class_data[c]->dim();
      specs[c].constraint = Box{std::vector<double>(dim, 0.0),
                                std::vector<double>(dim, 0.6)};
    }
    Status valid = specs[c].Validate();
    if (!valid.ok()) {
      return valid;
    }
  }

  // Prime the caches before the open-loop clock starts: the warmup
  // misses (one per distinct fingerprint) then happen off the clock and
  // every query of the run proper is a hit. Warmups of classes sharing a
  // fingerprint count as hits too, so stats stay deterministic.
  if (config.warmup) {
    for (size_t c = 0; c < mix.size(); ++c) {
      Status warm = sessions[class_session[c]]->Warmup(specs[c]);
      if (!warm.ok()) {
        return warm;
      }
    }
  }

  // BuildSchedule resolves an empty mix to DefaultMix on its own; hand
  // it the serve-resolved mix so class picks index this run's classes.
  LoadConfig resolved = config;
  resolved.mix = mix;
  const ArrivalSchedule schedule = BuildSchedule(resolved);

  LoadReport report;
  report.serve = true;
  report.schedule_hash = schedule.hash;
  report.outcomes.resize(config.queries);
  report.per_size_latency_us.resize(mix.size());

  // Thread-per-query dispatch: Submit blocks inside the admission layer,
  // and the pool threads must stay free to run the admitted queries'
  // map/reduce tasks — parking arrivals on pool threads would deadlock
  // the pool behind its own queue. Each dispatcher sleeps to its own
  // scheduled arrival, so a stalled engine grows the admission wait, it
  // never slows the arrival clock.
  std::vector<double> submit_begin_us(config.queries, 0.0);
  const Clock::time_point epoch = Clock::now();
  std::vector<std::thread> dispatchers;
  dispatchers.reserve(config.queries);
  for (int q = 0; q < config.queries; ++q) {
    dispatchers.emplace_back([&, q]() {
      std::this_thread::sleep_until(
          epoch + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::micro>(
                          schedule.arrival_us[q])));
      QueryOutcome& out = report.outcomes[q];
      out.query_id = static_cast<uint64_t>(q) + 1;
      out.size_class = schedule.size_class[q];
      out.scheduled_us = schedule.arrival_us[q];

      if (q == config.slow_query_index && config.slow_query_ms > 0.0) {
        // The coordinated-omission probe. Unlike batch mode the stall
        // holds a dispatcher thread, not an admission slot — the queries
        // behind it still inherit the delay through their own
        // arrival-anchored latency once slots saturate.
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            config.slow_query_ms));
      }

      const SizeClass& sc = mix[out.size_class];
      QuerySpec spec = specs[out.size_class];
      spec.query.id = out.query_id;
      spec.query.deadline_ms = config.deadline_ms;
      spec.query.tag = sc.name;

      const double begin_us = NowUs(epoch);
      submit_begin_us[q] = begin_us;
      SubmitInfo info;
      auto result_or =
          sessions[class_session[out.size_class]]->Submit(spec, &info);
      out.done_us = NowUs(epoch);
      out.dispatch_us = begin_us + info.queue_wait_seconds * 1e6;
      out.ok = result_or.ok();
      out.cache_hit = info.cache_hit;
      if (out.ok) {
        const SkylineResult& result = result_or.value();
        out.jobs = static_cast<int64_t>(result.jobs.size());
        out.skyline_size = static_cast<int64_t>(result.skyline.size());
        // Skyline-phase comparisons only (the last job): a query's count
        // must not depend on whether it happened to lead the cache's
        // single-flight — per-class sums stay deterministic even when
        // classes share a fingerprint and race for the miss.
        if (!result.jobs.empty()) {
          const auto& values = result.jobs.back().counters.values();
          const auto it = values.find("skymr.tuple_comparisons");
          out.comparisons = it != values.end() ? it->second : 0;
        }
      }
      const double latency_us = out.done_us - out.scheduled_us;
      out.deadline_missed =
          config.deadline_ms > 0.0 && latency_us > config.deadline_ms * 1e3;

      if (metrics != nullptr) {
        metrics->counter(out.ok ? "query.completed" : "query.errors")->Add(1);
        if (out.deadline_missed) {
          metrics->counter("query.deadline_missed")->Add(1);
        }
        metrics->sketch("query.latency_us")->Record(latency_us);
        metrics->sketch("query.queue_wait_us")
            ->Record(out.dispatch_us - out.scheduled_us);
      }
      if (logger != nullptr && out.deadline_missed) {
        std::ostringstream msg;
        msg << "latency " << static_cast<int64_t>(latency_us)
            << " us over budget " << config.deadline_ms << " ms";
        obs::Logger::Fields fields;
        fields.query_id = out.query_id;
        fields.tag = sc.name;
        logger->Log(obs::LogSeverity::kWarn, "query.deadline", msg.str(),
                    fields);
      }
    });
  }
  for (std::thread& t : dispatchers) {
    t.join();
  }
  pool.WaitIdle();
  report.wall_seconds = NowUs(epoch) / 1e6;

  for (const QueryOutcome& out : report.outcomes) {
    const double latency_us = out.done_us - out.scheduled_us;
    report.latency_us.Add(latency_us);
    report.queue_wait_us.Add(out.dispatch_us - out.scheduled_us);
    report.per_size_latency_us[out.size_class].Add(latency_us);
    report.completed += out.ok ? 1 : 0;
    report.errors += out.ok ? 0 : 1;
    report.deadline_missed += out.deadline_missed ? 1 : 0;
  }

  // Queue depth is reconstructed from the waiting intervals
  // [submit, admission): the count of queries simultaneously parked in
  // the admission layer. Departures sort before arrivals at a tie.
  std::vector<std::pair<double, int>> events;
  events.reserve(static_cast<size_t>(config.queries) * 2);
  for (int q = 0; q < config.queries; ++q) {
    events.emplace_back(submit_begin_us[q], 1);
    events.emplace_back(report.outcomes[q].dispatch_us, -1);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first < b.first
                                        : a.second < b.second;
            });
  int64_t depth = 0;
  for (const auto& [when, delta] : events) {
    (void)when;
    depth += delta;
    report.max_queue_depth = std::max(report.max_queue_depth, depth);
  }
  report.max_inflight = admission.peak_inflight();

  for (const std::unique_ptr<Session>& session : sessions) {
    const SessionStats stats = session->stats();
    report.session_cache_hits += stats.cache_hits;
    report.session_cache_misses += stats.cache_misses;
  }
  // Every bitstring phase that actually executed went through the cache
  // as a miss (this harness runs no external checkpoint), so misses ==
  // bitstring jobs == distinct fingerprints queried.
  report.bitstring_jobs = report.session_cache_misses;
  report.log_dropped = logger != nullptr ? logger->dropped() : 0;
  return report;
}

namespace {

void WriteSketchSummary(obs::JsonWriter& w, const obs::QuantileSketch& s) {
  w.BeginObject();
  w.Key("count");
  w.Uint(s.count());
  w.Key("p50_us");
  w.Double(s.Quantile(0.50));
  w.Key("p95_us");
  w.Double(s.Quantile(0.95));
  w.Key("p99_us");
  w.Double(s.Quantile(0.99));
  w.Key("max_us");
  w.Double(s.max());
  w.Key("mean_us");
  w.Double(s.count() > 0 ? s.sum() / static_cast<double>(s.count()) : 0.0);
  w.EndObject();
}

void WriteEnvironment(obs::JsonWriter& w, const obs::BenchEnvironment& env) {
  w.BeginObject();
  w.Key("git_sha");
  w.String(env.git_sha);
  w.Key("compiler");
  w.String(env.compiler);
  w.Key("build_type");
  w.String(env.build_type);
  w.Key("cxx_flags");
  w.String(env.cxx_flags);
  w.Key("cpu");
  w.String(env.cpu);
  w.Key("kernel_backend");
  w.String(env.kernel_backend);
  w.Key("tracing_compiled");
  w.Bool(env.tracing_compiled);
  w.Key("threads");
  w.Int(env.threads);
  w.Key("scale_env");
  w.String(env.scale_env);
  w.Key("full_env");
  w.String(env.full_env);
  w.Key("reps");
  w.Int(env.reps);
  w.EndObject();
}

/// Emits one bench-v1-shaped row so tools/bench_diff.py can gate the
/// deterministic section with its existing row machinery. Wall medians
/// are latency p50 in seconds (soft-warn territory, like every wall).
void WriteRow(obs::JsonWriter& w, const std::string& name,
              const obs::QuantileSketch& latency,
              const std::map<std::string, double>& metrics,
              const std::map<std::string, int64_t>& deterministic) {
  w.BeginObject();
  w.Key("name");
  w.String(name);
  w.Key("wall");
  w.BeginObject();
  w.Key("reps");
  w.Int(static_cast<int64_t>(latency.count()));
  w.Key("median_seconds");
  w.Double(latency.Quantile(0.5) / 1e6);
  w.Key("mad_seconds");
  w.Double(0.0);
  w.Key("cv");
  w.Double(0.0);
  w.Key("min_seconds");
  w.Double(latency.min() / 1e6);
  w.Key("max_seconds");
  w.Double(latency.max() / 1e6);
  w.Key("mean_seconds");
  w.Double(latency.count() > 0
               ? latency.sum() / static_cast<double>(latency.count()) / 1e6
               : 0.0);
  w.EndObject();
  w.Key("metrics");
  w.BeginObject();
  for (const auto& [key, value] : metrics) {
    w.Key(key);
    w.Double(value);
  }
  w.EndObject();
  w.Key("deterministic");
  w.BeginObject();
  for (const auto& [key, value] : deterministic) {
    w.Key(key);
    w.Int(value);
  }
  w.EndObject();
  w.EndObject();
}

}  // namespace

void WriteLoadArtifact(const LoadConfig& config, const LoadReport& report,
                       std::ostream& os) {
  // Must resolve the empty-mix default exactly as the run did, or the
  // per-size rows would be read against the wrong class list.
  const std::vector<SizeClass> mix =
      !config.mix.empty() ? config.mix
      : report.serve && config.resident != nullptr ? ResidentServeMix()
                                                   : DefaultMix(1.0);
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("schema");
  w.String("skymr-load-v1");
  w.Key("bench");
  w.String("loadgen");
  w.Key("environment");
  WriteEnvironment(w, obs::CaptureBenchEnvironment());

  w.Key("config");
  w.BeginObject();
  w.Key("seed");
  w.Uint(config.seed);
  w.Key("target_qps");
  w.Double(config.target_qps);
  w.Key("queries");
  w.Int(config.queries);
  w.Key("admission_slots");
  w.Int(config.admission_slots);
  w.Key("threads");
  w.Int(config.threads);
  w.Key("deadline_ms");
  w.Double(config.deadline_ms);
  w.Key("chaos_enabled");
  w.Bool(config.chaos.enabled());
  w.Key("slow_query_index");
  w.Int(config.slow_query_index);
  w.Key("slow_query_ms");
  w.Double(config.slow_query_ms);
  w.Key("mode");
  w.String(report.serve ? "serve" : "batch");
  if (report.serve) {
    w.Key("small_reserved_slots");
    w.Int(config.small_reserved_slots);
    w.Key("warmup");
    w.Bool(config.warmup);
    w.Key("resident");
    w.Bool(config.resident != nullptr);
  }
  w.EndObject();

  // Machine-dependent load summary: the tail-latency story.
  w.Key("load");
  w.BeginObject();
  w.Key("latency");
  WriteSketchSummary(w, report.latency_us);
  w.Key("queue_wait");
  WriteSketchSummary(w, report.queue_wait_us);
  w.Key("throughput_qps");
  w.Double(report.wall_seconds > 0.0
               ? static_cast<double>(report.completed) / report.wall_seconds
               : 0.0);
  w.Key("wall_seconds");
  w.Double(report.wall_seconds);
  w.Key("counters");
  w.BeginObject();
  w.Key("completed");
  w.Int(report.completed);
  w.Key("errors");
  w.Int(report.errors);
  w.Key("deadline_missed");
  w.Int(report.deadline_missed);
  w.Key("max_queue_depth");
  w.Int(report.max_queue_depth);
  w.Key("max_inflight");
  w.Int(report.max_inflight);
  w.Key("log_dropped");
  w.Int(report.log_dropped);
  if (report.serve) {
    w.Key("session_cache_hits");
    w.Int(report.session_cache_hits);
    w.Key("session_cache_misses");
    w.Int(report.session_cache_misses);
    w.Key("bitstring_jobs");
    w.Int(report.bitstring_jobs);
  }
  w.EndObject();
  w.EndObject();

  // Per-size deterministic aggregates, in arrival (index) order.
  std::vector<int64_t> size_queries(mix.size(), 0);
  std::vector<int64_t> size_ok(mix.size(), 0);
  std::vector<int64_t> size_comparisons(mix.size(), 0);
  std::vector<int64_t> size_skyline(mix.size(), 0);
  std::vector<int64_t> size_cache_hits(mix.size(), 0);
  for (const QueryOutcome& out : report.outcomes) {
    ++size_queries[out.size_class];
    size_ok[out.size_class] += out.ok ? 1 : 0;
    size_comparisons[out.size_class] += out.comparisons;
    size_skyline[out.size_class] += out.skyline_size;
    size_cache_hits[out.size_class] += out.cache_hit ? 1 : 0;
  }

  w.Key("rows");
  w.BeginArray();
  {
    // The aggregate row: the schedule fingerprint is split into two
    // 32-bit halves because JSON numbers are doubles (53-bit mantissa).
    std::map<std::string, double> m;
    m["throughput_qps"] =
        report.wall_seconds > 0.0
            ? static_cast<double>(report.completed) / report.wall_seconds
            : 0.0;
    m["latency_p99_us"] = report.latency_us.Quantile(0.99);
    m["queue_wait_p99_us"] = report.queue_wait_us.Quantile(0.99);
    std::map<std::string, int64_t> d;
    d["queries"] = config.queries;
    d["schedule_hash_hi"] = static_cast<int64_t>(report.schedule_hash >> 32);
    d["schedule_hash_lo"] =
        static_cast<int64_t>(report.schedule_hash & 0xffffffffULL);
    d["completed"] = report.completed;
    d["errors"] = report.errors;
    d["comparisons"] = 0;
    for (size_t c = 0; c < mix.size(); ++c) {
      d["comparisons"] += size_comparisons[c];
    }
    if (report.serve) {
      // Serve-only keys stay out of batch artifacts: bench_diff compares
      // the key-union of deterministic sections, so adding them
      // unconditionally would break every committed batch baseline.
      // Single-flight makes both deterministic for a fixed config; which
      // *query* led a miss is racy, so hit counts only ever appear in
      // aggregates, never per class.
      d["session_cache_hits"] = report.session_cache_hits;
      d["bitstring_jobs"] = report.bitstring_jobs;
    }
    WriteRow(w, "loadgen", report.latency_us, m, d);
  }
  for (size_t c = 0; c < mix.size(); ++c) {
    std::map<std::string, double> m;
    m["latency_p99_us"] = report.per_size_latency_us[c].Quantile(0.99);
    if (report.serve) {
      // Informational (metrics are never hard-gated): without warmup the
      // class that wins a shared fingerprint's single-flight race eats
      // the miss, so the split is timing-dependent.
      m["cache_hits"] = static_cast<double>(size_cache_hits[c]);
    }
    std::map<std::string, int64_t> d;
    d["queries"] = size_queries[c];
    d["ok"] = size_ok[c];
    d["comparisons"] = size_comparisons[c];
    d["skyline_size"] = size_skyline[c];
    WriteRow(w, "size:" + mix[c].name, report.per_size_latency_us[c], m, d);
  }
  w.EndArray();
  w.EndObject();
  os << "\n";
}

Status WriteLoadArtifactFile(const LoadConfig& config,
                             const LoadReport& report,
                             const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::Internal("loadgen: cannot open artifact path " + path);
  }
  WriteLoadArtifact(config, report, file);
  if (!file) {
    return Status::Internal("loadgen: artifact write failed: " + path);
  }
  return Status::OK();
}

}  // namespace skymr::loadgen
