// skymr_loadgen: the open-loop traffic harness CLI.
//
//   skymr_loadgen [--seed=S] [--qps=Q] [--queries=N] [--slots=K]
//                 [--threads=T] [--deadline-ms=D] [--scale=X]
//                 [--serve] [--small-reserved=K] [--warmup]
//                 [--chaos-profile=NAME] [--chaos-seed=S] [--attempts=N]
//                 [--slow-query=I] [--slow-ms=MS]
//                 [--out=FILE] [--log-out=FILE] [--crash-dump=FILE]
//                 [--log-level=debug|info|warn|error]
//
// --serve drives the traffic through resident serve::Sessions (one per
// size class here; `skymr_cli serve` is the single-resident-dataset
// server) with the cross-query bitstring cache and the two-lane
// admission layer (--small-reserved) on; --warmup primes the caches
// before the open-loop clock starts.
//
// Runs the seeded arrival schedule against the in-process engine and
// writes the skymr-load-v1 artifact (--out; validated by
// tools/check_obs_json.py --load and diffed by tools/bench_diff.py).
// --log-out streams every structured record as JSON lines; --crash-dump
// arms the flight recorder, so a fatal chaos fault (e.g.
// --chaos-profile=storm --attempts=1) leaves a skymr-flight-v1 dump with
// the failing query's events.
//
// Exit code 0 even when individual queries fail (errors are part of the
// workload under chaos and appear in the artifact); nonzero only for bad
// flags or harness-level failures.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include "bench/loadgen/loadgen.h"
#include "src/mapreduce/chaos.h"
#include "src/obs/metrics.h"

namespace {

struct Args {
  std::map<std::string, std::string> flags;

  bool Has(const std::string& name) const {
    return flags.find(name) != flags.end();
  }
  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  long GetInt(const std::string& name, long fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : std::strtol(it->second.c_str(),
                                                      nullptr, 10);
  }
  double GetDouble(const std::string& name, double fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : std::strtod(it->second.c_str(),
                                                      nullptr);
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: skymr_loadgen [--seed=S] [--qps=Q] [--queries=N] [--slots=K]\n"
      "                     [--threads=T] [--deadline-ms=D] [--scale=X]\n"
      "                     [--serve] [--small-reserved=K] [--warmup]\n"
      "                     [--chaos-profile=NAME] [--chaos-seed=S]\n"
      "                     [--attempts=N] [--slow-query=I] [--slow-ms=MS]\n"
      "                     [--out=FILE] [--log-out=FILE]\n"
      "                     [--crash-dump=FILE]\n"
      "                     [--log-level=debug|info|warn|error]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n",
                   token.c_str());
      return Usage();
    }
    token.erase(0, 2);
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      args.flags.insert_or_assign(token, std::string("1"));
    } else {
      args.flags.insert_or_assign(token.substr(0, eq), token.substr(eq + 1));
    }
  }
  if (args.Has("help")) {
    return Usage();
  }

  skymr::loadgen::LoadConfig config;
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  config.target_qps = args.GetDouble("qps", 40.0);
  config.queries = static_cast<int>(args.GetInt("queries", 48));
  config.admission_slots = static_cast<int>(args.GetInt("slots", 2));
  config.threads = static_cast<int>(args.GetInt("threads", 0));
  config.deadline_ms = args.GetDouble("deadline-ms", 0.0);
  config.slow_query_index = static_cast<int>(args.GetInt("slow-query", -1));
  config.slow_query_ms = args.GetDouble("slow-ms", 0.0);
  config.max_task_attempts = static_cast<int>(args.GetInt("attempts", 1));
  const bool serve = args.Has("serve");
  config.small_reserved_slots =
      static_cast<int>(args.GetInt("small-reserved", 0));
  config.warmup = args.Has("warmup");
  // Cardinalities honor SKYMR_SCALE / SKYMR_FULL like every bench; an
  // explicit --scale multiplies on top of that (DefaultMix floors each
  // class at 200 tuples).
  double env_scale = 1.0;
  const char* full = std::getenv("SKYMR_FULL");
  if (full == nullptr || std::string(full) != "1") {
    if (const char* env = std::getenv("SKYMR_SCALE"); env != nullptr) {
      const double s = std::strtod(env, nullptr);
      if (s > 0.0) {
        env_scale = s;
      }
    }
  }
  config.mix =
      skymr::loadgen::DefaultMix(env_scale * args.GetDouble("scale", 1.0));
  if (args.Has("chaos-profile")) {
    auto schedule =
        skymr::mr::ChaosProfile(args.GetString("chaos-profile", "none"));
    if (!schedule.ok()) {
      std::fprintf(stderr, "%s\n", schedule.status().ToString().c_str());
      return 2;
    }
    config.chaos = schedule.value();
  }
  if (args.Has("chaos-seed")) {
    config.chaos.seed = static_cast<uint64_t>(args.GetInt("chaos-seed", 0));
  }

  skymr::obs::MetricsRegistry metrics;
  skymr::obs::Logger::Options log_options;
  log_options.metrics = &metrics;
  log_options.crash_dump_path = args.GetString("crash-dump", "");
  auto level = skymr::obs::ParseLogSeverity(
      args.GetString("log-level", "info"));
  if (!level.ok()) {
    std::fprintf(stderr, "%s\n", level.status().ToString().c_str());
    return 2;
  }
  log_options.min_severity = level.value();
  skymr::obs::Logger logger(log_options);
  logger.InstallAsFatalDumper();

  std::ofstream log_file;
  std::unique_ptr<skymr::obs::StreamLogSink> log_sink;
  const std::string log_out = args.GetString("log-out", "");
  if (!log_out.empty()) {
    log_file.open(log_out, std::ios::trunc);
    if (!log_file) {
      std::fprintf(stderr, "cannot open --log-out=%s\n", log_out.c_str());
      return 1;
    }
    log_sink = std::make_unique<skymr::obs::StreamLogSink>(log_file);
    logger.AddSink(log_sink.get());
  }

  auto report_or = serve
                       ? skymr::loadgen::RunServeLoad(config, &metrics, &logger)
                       : skymr::loadgen::RunLoad(config, &metrics, &logger);
  if (!report_or.ok()) {
    std::fprintf(stderr, "%s\n", report_or.status().ToString().c_str());
    return 1;
  }
  const skymr::loadgen::LoadReport& report = report_or.value();

  const std::string out = args.GetString("out", "");
  if (!out.empty()) {
    auto written =
        skymr::loadgen::WriteLoadArtifactFile(config, report, out);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }

  std::printf(
      "loadgen: %d queries (%lld ok, %lld errors, %lld deadline-missed) "
      "in %.2f s\n",
      config.queries, static_cast<long long>(report.completed),
      static_cast<long long>(report.errors),
      static_cast<long long>(report.deadline_missed), report.wall_seconds);
  std::printf(
      "latency from scheduled arrival: p50 %.0f us, p95 %.0f us, "
      "p99 %.0f us, max %.0f us\n",
      report.latency_us.Quantile(0.50), report.latency_us.Quantile(0.95),
      report.latency_us.Quantile(0.99), report.latency_us.max());
  std::printf(
      "queue: wait p99 %.0f us, depth max %lld, inflight max %lld, "
      "log records dropped %lld\n",
      report.queue_wait_us.Quantile(0.99),
      static_cast<long long>(report.max_queue_depth),
      static_cast<long long>(report.max_inflight),
      static_cast<long long>(report.log_dropped));
  if (report.serve) {
    std::printf(
        "session cache: %lld hits, %lld misses, %lld bitstring jobs\n",
        static_cast<long long>(report.session_cache_hits),
        static_cast<long long>(report.session_cache_misses),
        static_cast<long long>(report.bitstring_jobs));
  }
  if (!out.empty()) {
    std::printf("artifact: %s (schedule hash %016llx)\n", out.c_str(),
                static_cast<unsigned long long>(report.schedule_hash));
  }
  return 0;
}
