// Open-loop workload driver for query-level observability: the traffic
// harness a resident skyline server would face, run against the
// in-process engine.
//
// Open-loop means arrivals are scheduled ahead of time from a seeded
// Poisson process at the configured QPS and never wait for the system:
// if the engine stalls, queries pile up in the admission queue instead
// of silently slowing the generator down. Latency is measured from each
// query's *scheduled arrival*, not from when it was dispatched — the
// coordinated-omission-safe convention (Tene, "How NOT to measure
// latency"): a 300 ms stall does not just make one query slow, it makes
// every query scheduled behind it slow, and the percentiles must say so.
//
// Determinism: the arrival schedule, size-class assignment, datasets,
// and every per-query comparison counter depend only on LoadConfig
// (seed, qps, query count, mix) — never on wall-clock timing — so the
// `deterministic` section of the emitted skymr-load-v1 artifact is
// bit-identical across same-seed runs and is hard-gated by
// tools/bench_diff.py in CI. Latency/throughput numbers are
// machine-dependent and informational.

#ifndef SKYMR_BENCH_LOADGEN_LOADGEN_H_
#define SKYMR_BENCH_LOADGEN_LOADGEN_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/runner.h"
#include "src/data/generator.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/serve/query_spec.h"

namespace skymr::loadgen {

/// One query flavour in the traffic mix: a dataset shape plus the
/// algorithm/variant answering it. Weighted random assignment per query.
/// In serve mode over a resident dataset (LoadConfig::resident) the
/// dataset-shape fields are ignored — classes differ only by
/// algorithm/constraint/lane, all answered by one Session.
struct SizeClass {
  std::string name;
  size_t cardinality = 1000;
  size_t dim = 3;
  data::Distribution distribution = data::Distribution::kIndependent;
  Algorithm algorithm = Algorithm::kMrGpmrs;
  /// Constrained-skyline variant: query only the [0, 0.6]^d corner box.
  bool constrained = false;
  /// Relative weight in the mix (0 drops the class).
  uint32_t weight = 1;
  /// Admission lane in serve mode (two-lane slot layer; kAuto
  /// classifies by the session dataset's cardinality).
  AdmissionClass lane = AdmissionClass::kAuto;
};

/// The default small/medium/large/constrained mix, with cardinalities
/// multiplied by `scale` (floored at 200 tuples).
std::vector<SizeClass> DefaultMix(double scale);

/// The serve-mode mix over one resident dataset: the same tuples asked
/// different questions (GPSRS, GPMRS, a constrained box). The
/// unconstrained classes share one bitstring fingerprint, so the
/// cross-query cache turns all but the first of their bitstring phases
/// into hits — the cross-algorithm sharing the session API exists for.
std::vector<SizeClass> ResidentServeMix();

struct LoadConfig {
  /// Seeds the arrival schedule and size assignment (not the datasets,
  /// which are seeded per size class so every run shares them).
  uint64_t seed = 1;
  /// Open-loop arrival rate, queries per second.
  double target_qps = 40.0;
  /// Total queries in the schedule.
  int queries = 48;
  /// Admission: queries running concurrently; arrivals beyond this wait
  /// in FIFO order (query.queue_depth gauge).
  int admission_slots = 2;
  /// Worker threads of the shared ThreadPool all queries run on
  /// (0 = hardware concurrency).
  int threads = 0;
  /// Latency budget per query; > 0 counts query.deadline_missed.
  double deadline_ms = 0.0;
  /// The traffic mix (empty = DefaultMix(1.0)).
  std::vector<SizeClass> mix;
  /// Fault injection applied to every query's engine (storm profile +
  /// max_task_attempts=1 makes queries fail permanently, firing the
  /// flight-recorder crash dump).
  mr::ChaosSchedule chaos;
  int max_task_attempts = 1;
  /// Deterministic stall injected into query index `slow_query_index`
  /// (0-based arrival order) after dispatch: the coordinated-omission
  /// probe. Queries scheduled behind it must show the stall in their
  /// own latency.
  int slow_query_index = -1;
  double slow_query_ms = 0.0;
  /// Map tasks per query job (small jobs; keep the default modest).
  int num_map_tasks = 4;
  int num_reducers = 2;
  /// ---- Serve mode (RunServeLoad) ----
  /// Resident dataset shared by every size class; when null each class
  /// generates its own dataset exactly like batch mode (one Session per
  /// class instead of one shared Session). Must outlive the run.
  const Dataset* resident = nullptr;
  /// Admission slots large queries may not occupy (two-lane layer).
  int small_reserved_slots = 0;
  /// Prime the session cache(s) before the open-loop clock starts, so
  /// even the first arrival of each fingerprint is a hit.
  bool warmup = false;
};

/// Outcome of one query, indexes parallel to the arrival schedule.
struct QueryOutcome {
  uint64_t query_id = 0;       // 1-based stable id
  int size_class = 0;          // index into config.mix
  double scheduled_us = 0.0;   // arrival offset from harness epoch
  double dispatch_us = 0.0;    // when a slot started executing it
  double done_us = 0.0;        // completion offset
  bool ok = false;
  bool deadline_missed = false;
  /// Deterministic per-query signal: skymr.tuple_comparisons summed over
  /// the query's jobs, and the skyline cardinality.
  int64_t comparisons = 0;
  int64_t skyline_size = 0;
  /// Serve mode: jobs the query ran (grid cache hits run 1, misses 2)
  /// and whether its bitstring phase came from the session cache.
  int64_t jobs = 0;
  bool cache_hit = false;
};

struct LoadReport {
  std::vector<QueryOutcome> outcomes;
  /// End-to-end latency from scheduled arrival (CO-safe) and the
  /// arrival→dispatch queueing wait, microseconds.
  obs::QuantileSketch latency_us;
  obs::QuantileSketch queue_wait_us;
  /// Per size class latency sketches (parallel to config.mix).
  std::vector<obs::QuantileSketch> per_size_latency_us;
  uint64_t schedule_hash = 0;
  int64_t completed = 0;
  int64_t errors = 0;
  int64_t deadline_missed = 0;
  int64_t max_queue_depth = 0;
  int64_t max_inflight = 0;
  double wall_seconds = 0.0;
  /// Logger drop count at the end of the run (mr.log_dropped).
  int64_t log_dropped = 0;
  /// ---- Serve mode ----
  bool serve = false;
  /// Session cache traffic summed over every session of the run, and
  /// the bitstring jobs that actually executed. Deterministic for a
  /// fixed config: single-flight guarantees exactly one miss per
  /// distinct fingerprint no matter how queries interleave.
  int64_t session_cache_hits = 0;
  int64_t session_cache_misses = 0;
  int64_t bitstring_jobs = 0;
};

/// The precomputed open-loop schedule: arrival offsets (us, ascending)
/// and size-class assignment per query, plus the mix fingerprint. Pure
/// function of (seed, qps, queries, mix weights).
struct ArrivalSchedule {
  std::vector<double> arrival_us;
  std::vector<int> size_class;
  uint64_t hash = 0;
};
ArrivalSchedule BuildSchedule(const LoadConfig& config);

/// Runs the workload. `metrics` (optional) receives the query.* gauges/
/// counters/sketches live; `logger` (optional) receives per-query
/// structured events and is handed to every query's engine — configure
/// its crash_dump_path to get flight-recorder dumps on chaos faults.
StatusOr<LoadReport> RunLoad(const LoadConfig& config,
                             obs::MetricsRegistry* metrics,
                             obs::Logger* logger);

/// Runs the workload through resident serve::Sessions instead of
/// one-shot ComputeSkyline calls: one Session over config.resident (or
/// one per size class when it is null), all sharing one ThreadPool and
/// one two-lane AdmissionController, with the cross-query bitstring
/// cache on. Each arrival dispatches on its own thread — Session::Submit
/// blocks for admission, and pool threads must stay free to run the
/// admitted queries' map/reduce tasks. Same open-loop clock and
/// CO-safe latency accounting as RunLoad.
StatusOr<LoadReport> RunServeLoad(const LoadConfig& config,
                                  obs::MetricsRegistry* metrics,
                                  obs::Logger* logger);

/// Writes the skymr-load-v1 artifact (see DESIGN.md §16 for the layout).
void WriteLoadArtifact(const LoadConfig& config, const LoadReport& report,
                       std::ostream& os);
Status WriteLoadArtifactFile(const LoadConfig& config,
                             const LoadReport& report,
                             const std::string& path);

}  // namespace skymr::loadgen

#endif  // SKYMR_BENCH_LOADGEN_LOADGEN_H_
