// bench_kernel_crossover: charts the local skyline kernels — BNL, SFS,
// and the R-tree BBS — against each other across (distribution x
// dimensionality x cardinality), as wall time and as the deterministic
// dominance-work counters, and records which side kAuto picks per cell.
//
//   bench_kernel_crossover [--out=BENCH_kernel_crossover.json]
//                          [--scale=1.0] [--reps=3]
//
// Every cell validates that all kernels return the same skyline id set
// before reporting. The output is a skymr-bench-v1 artifact whose
// deterministic section (comparison units, skymr.bbs.* stats, skyline
// size, kAuto's choice) tools/bench_diff.py hard-gates against
// bench/baselines/BENCH_kernel_crossover.json; wall times only warn.
// This is the artifact behind the kAuto thresholds in
// core::ResolveAutoKernel and DESIGN.md §14's crossover discussion.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/skyline_job_common.h"
#include "src/data/generator.h"
#include "src/local/bbs.h"
#include "src/local/bnl.h"
#include "src/local/sfs.h"
#include "src/local/skyline_window.h"
#include "src/obs/bench_artifact.h"
#include "src/relation/dominance_kernel.h"

namespace skymr {
namespace {

volatile uint64_t g_sink = 0;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
std::vector<double> RepSeconds(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const double start = Now();
    fn();
    samples.push_back(Now() - start);
  }
  return samples;
}

double BestOf(const std::vector<double>& samples) {
  double best = 1e300;
  for (const double s : samples) {
    best = s < best ? s : best;
  }
  return best;
}

/// SKYMR_SCALE / SKYMR_FULL on top of --scale, like the figure benches.
size_t ScaledTuples(size_t full_tuples, double scale) {
  if (const char* env = std::getenv("SKYMR_FULL");
      env != nullptr && std::strcmp(env, "1") == 0) {
    return full_tuples;
  }
  if (const char* env = std::getenv("SKYMR_SCALE"); env != nullptr) {
    scale *= std::strtod(env, nullptr);
  }
  const auto scaled =
      static_cast<size_t>(static_cast<double>(full_tuples) * scale);
  return scaled < 500 ? 500 : scaled;
}

std::vector<TupleId> SortedIds(const SkylineWindow& window) {
  std::vector<TupleId> ids = window.ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// One kernel's measurement on one cell.
struct KernelRun {
  size_t skyline_size = 0;
  uint64_t comparisons = 0;
  double seconds = 0.0;
  std::vector<double> samples;
  std::vector<TupleId> ids;
};

template <typename Fn>
KernelRun Measure(int reps, Fn&& run) {
  KernelRun out;
  // One counted run for the deterministic section and the parity check;
  // its wall time calibrates an inner repeat count so every sample spans
  // at least a few milliseconds (sub-millisecond cells are otherwise
  // dominated by timer noise).
  const double cal_start = Now();
  DominanceCounter counter;
  const SkylineWindow window = run(&counter);
  const double cal_seconds = Now() - cal_start;
  out.skyline_size = window.size();
  out.comparisons = counter.count();
  out.ids = SortedIds(window);
  const auto iters = static_cast<size_t>(std::min(
      1000.0, std::max(1.0, 0.005 / std::max(cal_seconds, 1e-9))));
  out.samples = RepSeconds(reps, [&] {
    for (size_t i = 0; i < iters; ++i) {
      g_sink = run(nullptr).size();
    }
  });
  for (double& s : out.samples) {
    s /= static_cast<double>(iters);
  }
  out.seconds = BestOf(out.samples);
  return out;
}

int Run(int argc, char** argv) {
  std::string out_path = "BENCH_kernel_crossover.json";
  double scale = 1.0;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = static_cast<int>(std::strtol(arg.c_str() + 7, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_kernel_crossover [--out=FILE] [--scale=F] "
                   "[--reps=N]\n");
      return 2;
    }
  }
  if (scale <= 0.0 || reps < 1) {
    std::fprintf(stderr, "bad --scale or --reps\n");
    return 2;
  }
  std::fprintf(stderr, "backend: %s\n", DominanceKernelBackend());

  obs::BenchArtifact artifact("bench_kernel_crossover");
  artifact.environment().reps = reps;

  const data::Distribution distributions[] = {
      data::Distribution::kIndependent,
      data::Distribution::kCorrelated,
      data::Distribution::kAntiCorrelated,
  };
  const size_t dims[] = {2, 4, 6, 8};
  const size_t cardinalities[] = {2000, 10000};

  BbsScratch scratch;
  for (const data::Distribution dist : distributions) {
    for (const size_t dim : dims) {
      for (const size_t base_n : cardinalities) {
        const size_t n = ScaledTuples(base_n, scale);
        data::GeneratorConfig config;
        config.distribution = dist;
        config.cardinality = n;
        config.dim = dim;
        config.seed = 20140324;
        const Dataset data = std::move(data::Generate(config)).value();

        const KernelRun bnl = Measure(reps, [&](DominanceCounter* c) {
          return BnlSkyline(data, c);
        });
        const KernelRun sfs = Measure(reps, [&](DominanceCounter* c) {
          return SfsSkyline(data, c);
        });
        BbsStats stats;
        const KernelRun bbs = Measure(reps, [&](DominanceCounter* c) {
          BbsStats local;
          SkylineWindow window =
              BbsSkyline(data, c, &local, /*constraint=*/nullptr, &scratch);
          if (c != nullptr) {
            stats = local;
          }
          return window;
        });
        const core::LocalAlgorithm chosen = core::ResolveAutoKernel(n, dim);
        const KernelRun auto_run = Measure(reps, [&](DominanceCounter* c) {
          return chosen == core::LocalAlgorithm::kBbs
                     ? BbsSkyline(data, c, nullptr, nullptr, &scratch)
                     : SfsSkyline(data, c);
        });

        if (bnl.ids != sfs.ids || bnl.ids != bbs.ids ||
            bnl.ids != auto_run.ids) {
          std::fprintf(stderr, "kernel_crossover: skyline mismatch at "
                               "%s d=%zu n=%zu\n",
                       data::DistributionName(dist), dim, n);
          return 1;
        }

        std::string name = data::DistributionName(dist);
        std::replace(name.begin(), name.end(), '-', '_');
        name += "_d" + std::to_string(dim) + "_n" + std::to_string(base_n);
        const double worse = std::max(sfs.seconds, bbs.seconds);
        std::fprintf(stderr,
                     "%-28s |S|=%6zu sfs/bbs cmp %.2fx wall %.2fx "
                     "auto=%s\n",
                     name.c_str(), bbs.skyline_size,
                     static_cast<double>(sfs.comparisons) /
                         static_cast<double>(bbs.comparisons),
                     sfs.seconds / bbs.seconds,
                     core::LocalAlgorithmName(chosen));

        obs::BenchRow row;
        row.name = name;
        row.wall = obs::WallStats::FromSamples(bbs.samples);
        row.metrics["scale"] = scale;
        row.metrics["bnl_seconds"] = bnl.seconds;
        row.metrics["sfs_seconds"] = sfs.seconds;
        row.metrics["bbs_seconds"] = bbs.seconds;
        row.metrics["auto_seconds"] = auto_run.seconds;
        row.metrics["sfs_vs_bbs_wall"] = sfs.seconds / bbs.seconds;
        // kAuto's regret against the WORSE kernel; must stay <= ~1.1
        // (it runs one of the two, so only measurement noise moves it).
        row.metrics["auto_loss_vs_worse"] = auto_run.seconds / worse;
        row.deterministic["tuples"] = static_cast<int64_t>(n);
        row.deterministic["dim"] = static_cast<int64_t>(dim);
        row.deterministic["skyline_size"] =
            static_cast<int64_t>(bbs.skyline_size);
        row.deterministic["bnl_comparisons"] =
            static_cast<int64_t>(bnl.comparisons);
        row.deterministic["sfs_comparisons"] =
            static_cast<int64_t>(sfs.comparisons);
        row.deterministic["bbs_comparisons"] =
            static_cast<int64_t>(bbs.comparisons);
        row.deterministic["auto_comparisons"] =
            static_cast<int64_t>(auto_run.comparisons);
        row.deterministic["bbs_nodes_visited"] =
            static_cast<int64_t>(stats.nodes_visited);
        row.deterministic["bbs_entries_pruned"] =
            static_cast<int64_t>(stats.entries_pruned);
        row.deterministic["bbs_heap_peak"] =
            static_cast<int64_t>(stats.heap_peak);
        row.deterministic["auto_chose_bbs"] =
            chosen == core::LocalAlgorithm::kBbs ? 1 : 0;
        artifact.AddRow(std::move(row));
      }
    }
  }

  if (const Status s = artifact.WriteFile(out_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace skymr

int main(int argc, char** argv) { return skymr::Run(argc, argv); }
