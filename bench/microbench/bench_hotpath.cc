// bench_hotpath: microbenchmarks for the two hot paths this library
// optimizes — block dominance kernels and the allocation-lean shuffle —
// reported as a machine-readable JSON file (BENCH_hotpath.json).
//
//   bench_hotpath [--out=BENCH_hotpath.json] [--scale=1.0] [--reps=3]
//
// Three benchmarks:
//
//   dominance_kernel  block FirstDominatorIndex over an anti-correlated
//                     row block vs the scalar CompareDominance loop
//   window_insert     SkylineWindow::Insert over 10^6 * scale
//                     anti-correlated 6-d tuples vs a scalar reference
//                     window (the pre-kernel implementation, retained
//                     below verbatim)
//   shuffle_roundtrip one MapReduce job shuffling 5*10^5 * scale records
//                     map -> sort -> reduce, end to end
//   metrics_overhead  the shuffle_roundtrip job twice — engine metrics
//                     off vs a live MetricsRegistry + 10 ms sampler
//                     thread attached — reporting the overhead fraction
//                     (the ISSUE-8 gate: < 2%, measured like the
//                     tracing-on/off comparison)
//
// Speedups are computed from best-of-`reps` wall time; every benchmark
// validates its result against the reference before reporting. The
// output is a skymr-bench-v1 artifact (src/obs/bench_artifact.h): one
// row per benchmark with wall-time statistics over the repetitions,
// derived metrics (speedups, throughputs), and the deterministic
// counters (row counts, skyline size, shuffle bytes) that
// tools/bench_diff.py hard-gates against a committed baseline.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/data/generator.h"
#include "src/local/skyline_window.h"
#include "src/mapreduce/job.h"
#include "src/obs/bench_artifact.h"
#include "src/obs/metrics.h"
#include "src/relation/dominance.h"
#include "src/relation/dominance_kernel.h"

namespace skymr {
namespace {

/// Keeps a computed value alive without letting the optimizer see it.
volatile uint64_t g_sink = 0;

/// Applies the SKYMR_SCALE / SKYMR_FULL environment overrides on top of
/// the --scale flag, the way the figure benches scale their
/// cardinalities (bench/bench_common.h): SKYMR_FULL=1 restores the full
/// workload, SKYMR_SCALE multiplies into the scale. Keeps the heaviest
/// row (window_insert: ~10.7 s at full scale, ~75 s for its scalar
/// reference) shrinkable without flag plumbing.
size_t EnvScaledTuples(size_t full_tuples, double scale) {
  if (const char* env = std::getenv("SKYMR_FULL");
      env != nullptr && std::strcmp(env, "1") == 0) {
    return full_tuples;
  }
  if (const char* env = std::getenv("SKYMR_SCALE"); env != nullptr) {
    scale *= std::strtod(env, nullptr);
  }
  const auto scaled =
      static_cast<size_t>(static_cast<double>(full_tuples) * scale);
  return scaled < 1000 ? 1000 : scaled;
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall time of each of `reps` executions of `fn`, in run order.
template <typename Fn>
std::vector<double> RepSeconds(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const double start = Now();
    fn();
    samples.push_back(Now() - start);
  }
  return samples;
}

double BestOf(const std::vector<double>& samples) {
  double best = 1e300;
  for (const double s : samples) {
    best = s < best ? s : best;
  }
  return best;
}

// ---------------------------------------------------------------------
// The retained scalar reference: the tuple-at-a-time SkylineWindow
// insert this PR replaced, kept verbatim so the speedup claim in
// BENCH_hotpath.json is always measured against the real baseline.
// ---------------------------------------------------------------------
class ScalarReferenceWindow {
 public:
  explicit ScalarReferenceWindow(size_t dim) : dim_(dim) {}

  size_t size() const { return ids_.size(); }
  const double* RowAt(size_t i) const { return &values_[i * dim_]; }
  const std::vector<TupleId>& ids() const { return ids_; }

  bool Insert(const double* row, TupleId id) {
    size_t i = 0;
    bool keep = true;
    while (i < size()) {
      const DominanceResult cmp = CompareDominance(RowAt(i), row, dim_);
      if (cmp == DominanceResult::kADominatesB) {
        keep = false;
        break;
      }
      if (cmp == DominanceResult::kBDominatesA) {
        SwapRemove(i);
        continue;
      }
      ++i;
    }
    if (keep) {
      ids_.push_back(id);
      values_.insert(values_.end(), row, row + dim_);
    }
    return keep;
  }

 private:
  void SwapRemove(size_t i) {
    const size_t last = size() - 1;
    if (i != last) {
      ids_[i] = ids_[last];
      for (size_t k = 0; k < dim_; ++k) {
        values_[i * dim_ + k] = values_[last * dim_ + k];
      }
    }
    ids_.pop_back();
    values_.resize(values_.size() - dim_);
  }

  size_t dim_;
  std::vector<TupleId> ids_;
  std::vector<double> values_;
};

// ---------------------------------------------------------------------
// Benchmark 1: raw kernel throughput.
// ---------------------------------------------------------------------
struct KernelResult {
  size_t rows = 0;
  size_t candidates = 0;
  uint64_t dominator_index_sum = 0;
  std::vector<double> kernel_samples;
  double kernel_seconds = 0.0;
  double scalar_seconds = 0.0;
  double speedup = 0.0;
  double kernel_mcomparisons_per_s = 0.0;
};

KernelResult BenchDominanceKernel(double scale, int reps) {
  KernelResult out;
  const size_t dim = 6;
  out.rows = static_cast<size_t>(4096 * (scale < 1.0 ? scale : 1.0));
  out.rows = out.rows < 64 ? 64 : out.rows;
  out.candidates = 512;

  data::GeneratorConfig config;
  config.distribution = data::Distribution::kAntiCorrelated;
  config.cardinality = out.rows + out.candidates;
  config.dim = dim;
  config.seed = 20140324;
  const Dataset data = std::move(data::Generate(config)).value();
  const double* rows = data.RowPtr(0);
  const double* candidates = data.RowPtr(out.rows);

  uint64_t kernel_hits = 0;
  out.kernel_samples = RepSeconds(reps, [&] {
    uint64_t hits = 0;
    for (size_t c = 0; c < out.candidates; ++c) {
      hits += FirstDominatorIndex(candidates + c * dim, 0.0, rows,
                                  /*sums=*/nullptr, out.rows, dim);
    }
    g_sink = kernel_hits = hits;
  });
  out.kernel_seconds = BestOf(out.kernel_samples);

  uint64_t scalar_hits = 0;
  out.scalar_seconds = BestOf(RepSeconds(reps, [&] {
    uint64_t hits = 0;
    for (size_t c = 0; c < out.candidates; ++c) {
      size_t first = out.rows;
      for (size_t i = 0; i < out.rows; ++i) {
        if (CompareDominance(rows + i * dim, candidates + c * dim, dim) ==
            DominanceResult::kADominatesB) {
          first = i;
          break;
        }
      }
      hits += first;
    }
    g_sink = scalar_hits = hits;
  }));

  if (kernel_hits != scalar_hits) {
    std::fprintf(stderr, "dominance_kernel: kernel/scalar disagree\n");
    std::exit(1);
  }
  out.dominator_index_sum = kernel_hits;
  out.speedup = out.scalar_seconds / out.kernel_seconds;
  out.kernel_mcomparisons_per_s =
      static_cast<double>(out.rows) * static_cast<double>(out.candidates) /
      out.kernel_seconds / 1e6;
  return out;
}

// ---------------------------------------------------------------------
// Benchmark 2: SkylineWindow::Insert vs the scalar reference.
// ---------------------------------------------------------------------
struct InsertResult {
  size_t tuples = 0;
  size_t dim = 6;
  size_t skyline_size = 0;
  std::vector<double> kernel_samples;
  double kernel_seconds = 0.0;
  double scalar_seconds = 0.0;
  double speedup = 0.0;
  double kernel_tuples_per_s = 0.0;
};

InsertResult BenchWindowInsert(double scale, int reps) {
  InsertResult out;
  out.tuples = EnvScaledTuples(1000000, scale);
  out.dim = 6;

  data::GeneratorConfig config;
  config.distribution = data::Distribution::kAntiCorrelated;
  config.cardinality = out.tuples;
  config.dim = out.dim;
  config.seed = 20140324;
  const Dataset data = std::move(data::Generate(config)).value();

  size_t kernel_size = 0;
  out.kernel_samples = RepSeconds(reps, [&] {
    SkylineWindow window(out.dim);
    for (size_t i = 0; i < out.tuples; ++i) {
      window.Insert(data.RowPtr(i), static_cast<TupleId>(i), nullptr);
    }
    g_sink = kernel_size = window.size();
  });
  out.kernel_seconds = BestOf(out.kernel_samples);

  size_t scalar_size = 0;
  out.scalar_seconds = BestOf(RepSeconds(reps, [&] {
    ScalarReferenceWindow window(out.dim);
    for (size_t i = 0; i < out.tuples; ++i) {
      window.Insert(data.RowPtr(i), static_cast<TupleId>(i));
    }
    g_sink = scalar_size = window.size();
  }));

  if (kernel_size != scalar_size) {
    std::fprintf(stderr, "window_insert: kernel/scalar skyline differ\n");
    std::exit(1);
  }
  out.skyline_size = kernel_size;
  out.speedup = out.scalar_seconds / out.kernel_seconds;
  out.kernel_tuples_per_s =
      static_cast<double>(out.tuples) / out.kernel_seconds;
  return out;
}

// ---------------------------------------------------------------------
// Benchmark 3: one full map -> shuffle -> reduce round trip.
// ---------------------------------------------------------------------
struct ShuffleResult {
  size_t records = 0;
  uint64_t shuffle_bytes = 0;
  std::vector<double> samples;
  double seconds = 0.0;
  double records_per_s = 0.0;
  double mb_per_s = 0.0;
};

/// Emits (seed % kKeys, 4-double payload) per input record.
class PayloadMapper : public mr::Mapper<int, int, std::vector<double>> {
 public:
  static constexpr int kKeys = 512;
  void Map(const int& value,
           mr::MapContext<int, std::vector<double>>& ctx) override {
    const double v = static_cast<double>(value);
    ctx.Emit(value % kKeys, {v, v * 0.5, v * 0.25, v * 0.125});
  }
};

class PayloadReducer
    : public mr::Reducer<int, std::vector<double>, double> {
 public:
  void Reduce(const int& key, mr::ValueIterator<std::vector<double>>& values,
              mr::ReduceContext<double>& ctx) override {
    (void)key;
    double total = 0.0;
    while (values.HasNext()) {
      for (const double v : values.Next()) {
        total += v;
      }
    }
    ctx.Emit(total);
  }
};

ShuffleResult BenchShuffleRoundTrip(double scale, int reps) {
  ShuffleResult out;
  out.records = static_cast<size_t>(5e5 * scale);
  out.records = out.records < 1000 ? 1000 : out.records;

  std::vector<int> inputs(out.records);
  Rng rng(7);
  for (int& v : inputs) {
    v = static_cast<int>(rng.NextBounded(1 << 20));
  }

  mr::EngineOptions options;
  options.num_map_tasks = 8;
  options.num_reducers = 4;
  mr::DistributedCache cache;

  double expected = -1.0;
  out.samples = RepSeconds(reps, [&] {
    mr::Job<int, int, std::vector<double>, double> job(
        "hotpath-shuffle", [] { return std::make_unique<PayloadMapper>(); },
        [] { return std::make_unique<PayloadReducer>(); });
    auto result = job.Run(inputs, options, cache);
    if (!result.ok()) {
      std::fprintf(stderr, "shuffle_roundtrip: %s\n",
                   result.status.ToString().c_str());
      std::exit(1);
    }
    double total = 0.0;
    for (const double v : result.outputs) {
      total += v;
    }
    if (expected < 0.0) {
      expected = total;
    } else if (expected != total) {
      std::fprintf(stderr, "shuffle_roundtrip: nondeterministic result\n");
      std::exit(1);
    }
    out.shuffle_bytes = result.metrics.shuffle_bytes;
    g_sink = static_cast<uint64_t>(total);
  });
  out.seconds = BestOf(out.samples);

  out.records_per_s = static_cast<double>(out.records) / out.seconds;
  out.mb_per_s =
      static_cast<double>(out.shuffle_bytes) / out.seconds / 1e6;
  return out;
}

// ---------------------------------------------------------------------
// Benchmark 4: live-metrics cost on the same shuffle workload.
// ---------------------------------------------------------------------
struct MetricsOverheadResult {
  size_t records = 0;
  double plain_seconds = 0.0;
  double metrics_seconds = 0.0;
  /// (metrics - plain) / plain; negative values mean noise, not a win.
  double overhead_fraction = 0.0;
  uint64_t samples_taken = 0;
  std::vector<double> samples;
};

MetricsOverheadResult BenchMetricsOverhead(double scale, int reps) {
  MetricsOverheadResult out;
  out.records = static_cast<size_t>(5e5 * scale);
  out.records = out.records < 1000 ? 1000 : out.records;

  std::vector<int> inputs(out.records);
  Rng rng(7);
  for (int& v : inputs) {
    v = static_cast<int>(rng.NextBounded(1 << 20));
  }
  mr::DistributedCache cache;

  const auto run_job = [&](const mr::EngineOptions& options) {
    mr::Job<int, int, std::vector<double>, double> job(
        "hotpath-metrics", [] { return std::make_unique<PayloadMapper>(); },
        [] { return std::make_unique<PayloadReducer>(); });
    auto result = job.Run(inputs, options, cache);
    if (!result.ok()) {
      std::fprintf(stderr, "metrics_overhead: %s\n",
                   result.status.ToString().c_str());
      std::exit(1);
    }
    g_sink = result.metrics.shuffle_bytes;
  };

  mr::EngineOptions plain;
  plain.num_map_tasks = 8;
  plain.num_reducers = 4;
  out.plain_seconds = BestOf(RepSeconds(reps, [&] { run_job(plain); }));

  // Metrics run: registry handles recorded per task + the sampler thread
  // snapshotting every 10 ms, exactly what `stats --metrics-out` wires up.
  obs::MetricsRegistry registry;
  obs::MetricsSampler sampler(&registry, /*period_ms=*/10);
  mr::EngineOptions with_metrics = plain;
  with_metrics.metrics = &registry;
  out.samples = RepSeconds(reps, [&] { run_job(with_metrics); });
  out.metrics_seconds = BestOf(out.samples);
  sampler.Stop();
  out.samples_taken = sampler.samples_taken();

  out.overhead_fraction =
      (out.metrics_seconds - out.plain_seconds) / out.plain_seconds;
  return out;
}

int Run(int argc, char** argv) {
  std::string out_path = "BENCH_hotpath.json";
  double scale = 1.0;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = static_cast<int>(std::strtol(arg.c_str() + 7, nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_hotpath [--out=FILE] [--scale=F] "
                   "[--reps=N]\n");
      return 2;
    }
  }
  if (scale <= 0.0 || reps < 1) {
    std::fprintf(stderr, "bad --scale or --reps\n");
    return 2;
  }

  std::fprintf(stderr, "backend: %s\n", DominanceKernelBackend());
  std::fprintf(stderr, "dominance_kernel...\n");
  const KernelResult kernel = BenchDominanceKernel(scale, reps);
  std::fprintf(stderr, "  %.2fx vs scalar (%.0f Mcmp/s)\n", kernel.speedup,
               kernel.kernel_mcomparisons_per_s);
  std::fprintf(stderr, "window_insert...\n");
  const InsertResult insert = BenchWindowInsert(scale, reps);
  std::fprintf(stderr, "  %.2fx vs scalar (%zu tuples -> %zu skyline)\n",
               insert.speedup, insert.tuples, insert.skyline_size);
  std::fprintf(stderr, "shuffle_roundtrip...\n");
  const ShuffleResult shuffle = BenchShuffleRoundTrip(scale, reps);
  std::fprintf(stderr, "  %.0f records/s, %.1f MB/s\n",
               shuffle.records_per_s, shuffle.mb_per_s);
  std::fprintf(stderr, "metrics_overhead...\n");
  const MetricsOverheadResult metrics = BenchMetricsOverhead(scale, reps);
  std::fprintf(stderr,
               "  %+.2f%% vs metrics-off (%llu sampler snapshots)\n",
               metrics.overhead_fraction * 100.0,
               static_cast<unsigned long long>(metrics.samples_taken));

  obs::BenchArtifact artifact("bench_hotpath");
  artifact.environment().reps = reps;

  {
    obs::BenchRow row;
    row.name = "dominance_kernel";
    row.wall = obs::WallStats::FromSamples(kernel.kernel_samples);
    row.metrics["scale"] = scale;
    row.metrics["kernel_seconds"] = kernel.kernel_seconds;
    row.metrics["scalar_seconds"] = kernel.scalar_seconds;
    row.metrics["kernel_mcomparisons_per_s"] =
        kernel.kernel_mcomparisons_per_s;
    row.metrics["speedup_vs_scalar"] = kernel.speedup;
    row.deterministic["rows"] = static_cast<int64_t>(kernel.rows);
    row.deterministic["candidates"] =
        static_cast<int64_t>(kernel.candidates);
    row.deterministic["dominator_index_sum"] =
        static_cast<int64_t>(kernel.dominator_index_sum);
    artifact.AddRow(std::move(row));
  }
  {
    obs::BenchRow row;
    row.name = "window_insert";
    row.wall = obs::WallStats::FromSamples(insert.kernel_samples);
    row.metrics["scale"] = scale;
    row.metrics["kernel_seconds"] = insert.kernel_seconds;
    row.metrics["scalar_seconds"] = insert.scalar_seconds;
    row.metrics["kernel_tuples_per_s"] = insert.kernel_tuples_per_s;
    row.metrics["speedup_vs_scalar"] = insert.speedup;
    row.deterministic["tuples"] = static_cast<int64_t>(insert.tuples);
    row.deterministic["dim"] = static_cast<int64_t>(insert.dim);
    row.deterministic["skyline_size"] =
        static_cast<int64_t>(insert.skyline_size);
    artifact.AddRow(std::move(row));
  }
  {
    obs::BenchRow row;
    row.name = "shuffle_roundtrip";
    row.wall = obs::WallStats::FromSamples(shuffle.samples);
    row.metrics["scale"] = scale;
    row.metrics["seconds"] = shuffle.seconds;
    row.metrics["records_per_s"] = shuffle.records_per_s;
    row.metrics["mb_per_s"] = shuffle.mb_per_s;
    row.deterministic["records"] = static_cast<int64_t>(shuffle.records);
    row.deterministic["shuffle_bytes"] =
        static_cast<int64_t>(shuffle.shuffle_bytes);
    artifact.AddRow(std::move(row));
  }
  {
    obs::BenchRow row;
    row.name = "metrics_overhead";
    row.wall = obs::WallStats::FromSamples(metrics.samples);
    row.metrics["scale"] = scale;
    row.metrics["plain_seconds"] = metrics.plain_seconds;
    row.metrics["metrics_seconds"] = metrics.metrics_seconds;
    row.metrics["overhead_fraction"] = metrics.overhead_fraction;
    row.metrics["sampler_samples"] =
        static_cast<double>(metrics.samples_taken);
    row.deterministic["records"] = static_cast<int64_t>(metrics.records);
    artifact.AddRow(std::move(row));
  }

  if (const Status s = artifact.WriteFile(out_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace skymr

int main(int argc, char** argv) { return skymr::Run(argc, argv); }
