// Figure 7: effect of dimensionality on independent data.
//
// Paper setup: independent distribution, cardinalities 1x10^5 and 2x10^6,
// dimensionality 2..10, algorithms MR-GPSRS, MR-GPMRS, MR-BNL, MR-Angle.
// Expected shape (Section 7.2): MR-GPSRS best overall; MR-GPMRS slightly
// worse at low dimensionality (multi-reducer overhead does not pay off on
// small skylines) but steady as d grows; MR-BNL and MR-Angle deteriorate
// sharply for d >= 7.
//
// Default scale: 5% of the paper's cardinalities (see bench_common.h).

#include "bench/bench_common.h"

namespace {

constexpr double kScale = 0.05;
constexpr size_t kLowCard = 100000;    // Paper: 1x10^5.
constexpr size_t kHighCard = 2000000;  // Paper: 2x10^6.

void Fig7(benchmark::State& state) {
  const auto algorithm = static_cast<skymr::Algorithm>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  const auto paper_card = static_cast<size_t>(state.range(2));
  const size_t card = skymr::bench::ScaledCardinality(paper_card, kScale);
  const skymr::Dataset& data = skymr::bench::CachedDataset(
      skymr::data::Distribution::kIndependent, card, dim);
  state.counters["card"] = static_cast<double>(card);
  skymr::bench::RunAndReport(state, data,
                             skymr::bench::PaperConfig(algorithm));
}

void RegisterAll() {
  for (const skymr::Algorithm algorithm :
       {skymr::Algorithm::kMrGpsrs, skymr::Algorithm::kMrGpmrs,
        skymr::Algorithm::kMrBnl, skymr::Algorithm::kMrAngle}) {
    for (const size_t paper_card : {kLowCard, kHighCard}) {
      for (size_t dim = 2; dim <= 10; ++dim) {
        const std::string name =
            std::string("Fig7/") + skymr::AlgorithmName(algorithm) +
            "/card:" + std::to_string(paper_card) +
            "/d:" + std::to_string(dim);
        skymr::bench::RegisterRow(name, Fig7)
            ->Args({static_cast<long>(algorithm), static_cast<long>(dim),
                    static_cast<long>(paper_card)})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return skymr::bench::BenchMain(argc, argv, "bench_fig7_dim_independent");
}
