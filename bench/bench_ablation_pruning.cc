// Ablation A: what does the bitstring's dominated-partition pruning
// (Equation 1 -> Equation 2) buy?
//
// The paper argues its bitstring enables "early and much more aggressive
// pruning of unpromising data partitions" than MR-BNL's partition codes
// (Section 2.2). This ablation runs MR-GPSRS with the Equation 2
// bitstring against an all-ones bitstring of the same grid (pruning
// disabled) and reports tuples dropped at the mappers, shuffle traffic,
// and tuple-dominance work saved.
//
// It also compares the two Equation 2 implementations (Algorithm 2
// literal DR walk vs the prefix-OR dynamic program) on bitstring-job
// runtime.

#include <numeric>

#include "bench/bench_common.h"
#include "src/core/bitstring_job.h"
#include "src/core/gpsrs.h"
#include "src/core/partition_bitstring.h"

namespace {

constexpr double kScale = 0.02;
constexpr size_t kPaperCard = 1000000;

void PruningOnOff(benchmark::State& state) {
  const auto dist =
      static_cast<skymr::data::Distribution>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  const bool prune = state.range(2) != 0;
  const size_t card = skymr::bench::ScaledCardinality(kPaperCard, kScale);
  const skymr::Dataset& dataset =
      skymr::bench::CachedDataset(dist, card, dim);

  for (auto _ : state) {
    // Build the grid + bitstring once per run, as the runner would.
    skymr::Stopwatch watch;
    const skymr::Bounds bounds = skymr::Bounds::UnitCube(dim);
    skymr::core::PpdOptions ppd_options;
    const auto candidates =
        skymr::core::CandidatePpds(card, dim, ppd_options);
    auto shared = std::make_shared<const skymr::Dataset>(dataset);
    skymr::core::BitstringJobConfig config;
    config.bounds = bounds;
    config.candidates = candidates;
    config.ppd = ppd_options;
    config.cardinality = card;
    skymr::mr::EngineOptions engine;
    engine.num_map_tasks = 13;
    auto bitstring = skymr::core::RunBitstringJob(shared, config, engine);
    if (!bitstring.ok()) {
      state.SkipWithError(bitstring.status().ToString().c_str());
      return;
    }
    auto grid = skymr::core::Grid::Create(dim, bitstring->result.ppd,
                                          bounds);
    skymr::DynamicBitset bits = bitstring->result.bits;
    if (!prune) {
      bits.Fill();  // Disable both empty-cell and dominance pruning.
    }
    auto run = skymr::core::RunGpsrsJob(shared, grid.value(), bits, engine);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    state.counters["ppd"] = bitstring->result.ppd;
    state.counters["tuples_pruned"] = static_cast<double>(
        run->metrics.counters.Get(skymr::mr::kCounterTuplesPruned));
    state.counters["shuffleKB"] =
        static_cast<double>(run->metrics.shuffle_bytes) / 1024.0;
    state.counters["tuple_cmps"] = static_cast<double>(
        run->metrics.counters.Get(skymr::mr::kCounterTupleComparisons));
    state.counters["skyline"] = static_cast<double>(run->skyline.size());

    // This bench drives the jobs directly (no SkylineResult), so collect
    // its artifact row by hand.
    skymr::obs::BenchRow row;
    row.name = skymr::bench::CurrentRowName();
    row.wall = skymr::obs::WallStats::FromSamples({watch.ElapsedSeconds()});
    row.metrics["shuffle_kb"] =
        static_cast<double>(run->metrics.shuffle_bytes) / 1024.0;
    row.deterministic["input_tuples"] = static_cast<int64_t>(card);
    row.deterministic["ppd"] =
        static_cast<int64_t>(bitstring->result.ppd);
    row.deterministic["tuples_pruned"] =
        run->metrics.counters.Get(skymr::mr::kCounterTuplesPruned);
    row.deterministic["tuple_comparisons"] =
        run->metrics.counters.Get(skymr::mr::kCounterTupleComparisons);
    row.deterministic["shuffle_bytes"] =
        static_cast<int64_t>(run->metrics.shuffle_bytes);
    row.deterministic["skyline_size"] =
        static_cast<int64_t>(run->skyline.size());
    skymr::bench::CollectedRows().push_back(std::move(row));
  }
}

void PruneModeRuntime(benchmark::State& state) {
  const auto mode = static_cast<skymr::core::PruneMode>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  const size_t card = skymr::bench::ScaledCardinality(kPaperCard, kScale);
  const skymr::Dataset& dataset = skymr::bench::CachedDataset(
      skymr::data::Distribution::kIndependent, card, dim);
  const skymr::Bounds bounds = skymr::Bounds::UnitCube(dim);
  skymr::core::PpdOptions ppd_options;
  const auto candidates =
      skymr::core::CandidatePpds(card, dim, ppd_options);
  const uint32_t ppd = candidates.back();
  auto grid = skymr::core::Grid::Create(dim, ppd, bounds);
  const skymr::DynamicBitset base = skymr::core::BuildLocalBitstring(
      grid.value(), dataset, 0, static_cast<skymr::TupleId>(dataset.size()));
  uint64_t pruned = 0;
  std::vector<double> samples;
  for (auto _ : state) {
    skymr::Stopwatch watch;
    skymr::DynamicBitset bits = base;
    pruned = skymr::core::PruneDominated(grid.value(), &bits, mode);
    benchmark::DoNotOptimize(bits.Count());
    samples.push_back(watch.ElapsedSeconds());
  }
  state.counters["ppd"] = ppd;
  state.counters["pruned"] = static_cast<double>(pruned);

  skymr::obs::BenchRow row;
  row.name = skymr::bench::CurrentRowName();
  row.wall = skymr::obs::WallStats::FromSamples(std::move(samples));
  row.deterministic["input_tuples"] = static_cast<int64_t>(card);
  row.deterministic["ppd"] = static_cast<int64_t>(ppd);
  row.deterministic["pruned"] = static_cast<int64_t>(pruned);
  skymr::bench::CollectedRows().push_back(std::move(row));
}

/// Pruning-device comparison: the paper's bitstring (Section 3) versus
/// SKY-MR's sample + sky-quadtree (Park et al., discussed in Section
/// 2.2). Both prune tuples before the shuffle; this measures which drops
/// more and at what shuffle cost, isolating the paper's claim that the
/// bitstring enables aggressive pruning without sampling.
void VsSampling(benchmark::State& state) {
  const auto dist =
      static_cast<skymr::data::Distribution>(state.range(0));
  const auto dim = static_cast<size_t>(state.range(1));
  const bool use_skymr = state.range(2) != 0;
  const size_t card = skymr::bench::ScaledCardinality(kPaperCard, kScale);
  const skymr::Dataset& data = skymr::bench::CachedDataset(dist, card, dim);
  skymr::RunnerConfig config = skymr::bench::PaperConfig(
      use_skymr ? skymr::Algorithm::kSkyMr : skymr::Algorithm::kMrGpsrs);
  skymr::bench::RunAndReport(
      state, data, config,
      [](const skymr::SkylineResult& result,
         std::map<std::string, double>* metrics) {
        int64_t tuples_pruned = 0;
        for (const auto& job : result.jobs) {
          tuples_pruned +=
              job.counters.Get(skymr::mr::kCounterTuplesPruned);
        }
        (*metrics)["tuples_pruned"] = static_cast<double>(tuples_pruned);
      });
}

/// Mapper-side local skyline algorithm (BNL vs SFS), the Section 8
/// future-work optimization.
void LocalAlgo(benchmark::State& state) {
  const auto dist =
      static_cast<skymr::data::Distribution>(state.range(0));
  const auto local =
      static_cast<skymr::core::LocalAlgorithm>(state.range(1));
  const size_t card = skymr::bench::ScaledCardinality(kPaperCard, kScale);
  const skymr::Dataset& data = skymr::bench::CachedDataset(dist, card, 4);
  skymr::RunnerConfig config =
      skymr::bench::PaperConfig(skymr::Algorithm::kMrGpmrs);
  config.local_algorithm = local;
  skymr::bench::RunAndReport(
      state, data, config,
      [](const skymr::SkylineResult& result,
         std::map<std::string, double>* metrics) {
        int64_t tuple_cmps = 0;
        for (const auto& job : result.jobs) {
          tuple_cmps +=
              job.counters.Get(skymr::mr::kCounterTupleComparisons);
        }
        (*metrics)["tuple_cmps"] = static_cast<double>(tuple_cmps);
      });
}

void RegisterAll() {
  for (const auto dist : {skymr::data::Distribution::kIndependent,
                          skymr::data::Distribution::kAntiCorrelated}) {
    for (const size_t dim : {size_t{3}, size_t{6}}) {
      for (const bool use_skymr : {false, true}) {
        const std::string name =
            std::string("AblationVsSampling/") +
            skymr::data::DistributionName(dist) + "/d:" +
            std::to_string(dim) +
            (use_skymr ? "/sky-mr" : "/bitstring");
        skymr::bench::RegisterRow(name, VsSampling)
            ->Args({static_cast<long>(dist), static_cast<long>(dim),
                    use_skymr ? 1 : 0})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  for (const auto dist : {skymr::data::Distribution::kIndependent,
                          skymr::data::Distribution::kAntiCorrelated}) {
    for (const auto local : {skymr::core::LocalAlgorithm::kBnl,
                             skymr::core::LocalAlgorithm::kSfs}) {
      const std::string name =
          std::string("AblationLocalAlgo/") +
          skymr::data::DistributionName(dist) + "/" +
          skymr::core::LocalAlgorithmName(local);
      skymr::bench::RegisterRow(name, LocalAlgo)
          ->Args({static_cast<long>(dist), static_cast<long>(local)})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
  for (const auto dist : {skymr::data::Distribution::kIndependent,
                          skymr::data::Distribution::kAntiCorrelated}) {
    for (const size_t dim : {size_t{3}, size_t{6}, size_t{9}}) {
      for (const bool prune : {true, false}) {
        const std::string name =
            std::string("AblationPruning/") +
            skymr::data::DistributionName(dist) + "/d:" +
            std::to_string(dim) + (prune ? "/pruning:on" : "/pruning:off");
        skymr::bench::RegisterRow(name, PruningOnOff)
            ->Args({static_cast<long>(dist), static_cast<long>(dim),
                    prune ? 1 : 0})
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
      }
    }
  }
  for (const auto mode : {skymr::core::PruneMode::kLiteral,
                          skymr::core::PruneMode::kPrefix}) {
    for (const size_t dim : {size_t{2}, size_t{3}, size_t{6}}) {
      const std::string name =
          std::string("AblationPruneMode/") +
          (mode == skymr::core::PruneMode::kLiteral ? "literal"
                                                    : "prefix") +
          "/d:" + std::to_string(dim);
      skymr::bench::RegisterRow(name, PruneModeRuntime)
          ->Args({static_cast<long>(mode), static_cast<long>(dim)})
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  return skymr::bench::BenchMain(argc, argv, "bench_ablation_pruning");
}
