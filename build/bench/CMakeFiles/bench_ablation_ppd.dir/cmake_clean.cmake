file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ppd.dir/bench_ablation_ppd.cc.o"
  "CMakeFiles/bench_ablation_ppd.dir/bench_ablation_ppd.cc.o.d"
  "bench_ablation_ppd"
  "bench_ablation_ppd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ppd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
