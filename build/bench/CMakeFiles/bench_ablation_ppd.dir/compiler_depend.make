# Empty compiler generated dependencies file for bench_ablation_ppd.
# This may be replaced when dependencies are built.
