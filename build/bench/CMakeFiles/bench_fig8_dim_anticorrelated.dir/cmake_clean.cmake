file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_dim_anticorrelated.dir/bench_fig8_dim_anticorrelated.cc.o"
  "CMakeFiles/bench_fig8_dim_anticorrelated.dir/bench_fig8_dim_anticorrelated.cc.o.d"
  "bench_fig8_dim_anticorrelated"
  "bench_fig8_dim_anticorrelated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_dim_anticorrelated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
