# Empty compiler generated dependencies file for bench_fig8_dim_anticorrelated.
# This may be replaced when dependencies are built.
