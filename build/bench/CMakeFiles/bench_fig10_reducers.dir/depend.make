# Empty dependencies file for bench_fig10_reducers.
# This may be replaced when dependencies are built.
