# Empty compiler generated dependencies file for bench_fig7_dim_independent.
# This may be replaced when dependencies are built.
