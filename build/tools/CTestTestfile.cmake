# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_cli_usage "/root/repo/build/tools/skymr_cli")
set_tests_properties(tools_cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_cli_end_to_end "bash" "-c" "set -e; T=\$(mktemp -d); trap 'rm -rf \$T' EXIT; /root/repo/build/tools/skymr_cli generate --dist=anti-correlated --card=2000 --dim=3 --seed=5 --out=\$T/d.csv; /root/repo/build/tools/skymr_cli skyline --in=\$T/d.csv --algorithm=mr-gpmrs --verify --out=\$T/s.csv; /root/repo/build/tools/skymr_cli skyline --in=\$T/d.csv --algorithm=sky-mr --verify; /root/repo/build/tools/skymr_cli skyline --in=\$T/d.csv --constraint=0:1,0:1,0:0.5; /root/repo/build/tools/skymr_cli compare --in=\$T/d.csv")
set_tests_properties(tools_cli_end_to_end PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
