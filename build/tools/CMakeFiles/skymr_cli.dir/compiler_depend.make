# Empty compiler generated dependencies file for skymr_cli.
# This may be replaced when dependencies are built.
