file(REMOVE_RECURSE
  "CMakeFiles/skymr_cli.dir/skymr_cli.cc.o"
  "CMakeFiles/skymr_cli.dir/skymr_cli.cc.o.d"
  "skymr_cli"
  "skymr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skymr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
