# Empty compiler generated dependencies file for example_hotel_finder.
# This may be replaced when dependencies are built.
