file(REMOVE_RECURSE
  "CMakeFiles/example_hotel_finder.dir/hotel_finder.cpp.o"
  "CMakeFiles/example_hotel_finder.dir/hotel_finder.cpp.o.d"
  "example_hotel_finder"
  "example_hotel_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hotel_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
