file(REMOVE_RECURSE
  "CMakeFiles/example_cluster_tuning.dir/cluster_tuning.cpp.o"
  "CMakeFiles/example_cluster_tuning.dir/cluster_tuning.cpp.o.d"
  "example_cluster_tuning"
  "example_cluster_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cluster_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
