# Empty compiler generated dependencies file for example_cluster_tuning.
# This may be replaced when dependencies are built.
