file(REMOVE_RECURSE
  "CMakeFiles/example_market_screener.dir/market_screener.cpp.o"
  "CMakeFiles/example_market_screener.dir/market_screener.cpp.o.d"
  "example_market_screener"
  "example_market_screener.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_market_screener.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
