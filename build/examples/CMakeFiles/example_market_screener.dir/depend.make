# Empty dependencies file for example_market_screener.
# This may be replaced when dependencies are built.
