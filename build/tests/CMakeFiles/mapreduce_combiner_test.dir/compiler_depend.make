# Empty compiler generated dependencies file for mapreduce_combiner_test.
# This may be replaced when dependencies are built.
