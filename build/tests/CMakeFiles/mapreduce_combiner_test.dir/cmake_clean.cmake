file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_combiner_test.dir/mapreduce/combiner_test.cc.o"
  "CMakeFiles/mapreduce_combiner_test.dir/mapreduce/combiner_test.cc.o.d"
  "mapreduce_combiner_test"
  "mapreduce_combiner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_combiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
