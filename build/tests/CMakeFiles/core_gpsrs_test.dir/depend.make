# Empty dependencies file for core_gpsrs_test.
# This may be replaced when dependencies are built.
