file(REMOVE_RECURSE
  "CMakeFiles/core_gpsrs_test.dir/core/gpsrs_test.cc.o"
  "CMakeFiles/core_gpsrs_test.dir/core/gpsrs_test.cc.o.d"
  "core_gpsrs_test"
  "core_gpsrs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gpsrs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
