# Empty compiler generated dependencies file for core_partition_bitstring_test.
# This may be replaced when dependencies are built.
