file(REMOVE_RECURSE
  "CMakeFiles/core_partition_bitstring_test.dir/core/partition_bitstring_test.cc.o"
  "CMakeFiles/core_partition_bitstring_test.dir/core/partition_bitstring_test.cc.o.d"
  "core_partition_bitstring_test"
  "core_partition_bitstring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_partition_bitstring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
