# Empty dependencies file for relation_skyline_verify_test.
# This may be replaced when dependencies are built.
