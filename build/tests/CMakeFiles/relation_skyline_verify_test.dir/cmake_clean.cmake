file(REMOVE_RECURSE
  "CMakeFiles/relation_skyline_verify_test.dir/relation/skyline_verify_test.cc.o"
  "CMakeFiles/relation_skyline_verify_test.dir/relation/skyline_verify_test.cc.o.d"
  "relation_skyline_verify_test"
  "relation_skyline_verify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_skyline_verify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
