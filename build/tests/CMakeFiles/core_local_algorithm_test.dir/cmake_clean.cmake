file(REMOVE_RECURSE
  "CMakeFiles/core_local_algorithm_test.dir/core/local_algorithm_test.cc.o"
  "CMakeFiles/core_local_algorithm_test.dir/core/local_algorithm_test.cc.o.d"
  "core_local_algorithm_test"
  "core_local_algorithm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_local_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
