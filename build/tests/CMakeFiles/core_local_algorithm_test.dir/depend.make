# Empty dependencies file for core_local_algorithm_test.
# This may be replaced when dependencies are built.
