file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_distributed_cache_test.dir/mapreduce/distributed_cache_test.cc.o"
  "CMakeFiles/mapreduce_distributed_cache_test.dir/mapreduce/distributed_cache_test.cc.o.d"
  "mapreduce_distributed_cache_test"
  "mapreduce_distributed_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_distributed_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
