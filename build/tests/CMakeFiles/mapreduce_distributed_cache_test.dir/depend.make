# Empty dependencies file for mapreduce_distributed_cache_test.
# This may be replaced when dependencies are built.
