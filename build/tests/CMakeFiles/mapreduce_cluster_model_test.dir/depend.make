# Empty dependencies file for mapreduce_cluster_model_test.
# This may be replaced when dependencies are built.
