file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_cluster_model_test.dir/mapreduce/cluster_model_test.cc.o"
  "CMakeFiles/mapreduce_cluster_model_test.dir/mapreduce/cluster_model_test.cc.o.d"
  "mapreduce_cluster_model_test"
  "mapreduce_cluster_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_cluster_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
