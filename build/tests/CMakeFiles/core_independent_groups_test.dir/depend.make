# Empty dependencies file for core_independent_groups_test.
# This may be replaced when dependencies are built.
