file(REMOVE_RECURSE
  "CMakeFiles/core_independent_groups_test.dir/core/independent_groups_test.cc.o"
  "CMakeFiles/core_independent_groups_test.dir/core/independent_groups_test.cc.o.d"
  "core_independent_groups_test"
  "core_independent_groups_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_independent_groups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
