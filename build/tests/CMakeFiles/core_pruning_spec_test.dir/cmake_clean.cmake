file(REMOVE_RECURSE
  "CMakeFiles/core_pruning_spec_test.dir/core/pruning_spec_test.cc.o"
  "CMakeFiles/core_pruning_spec_test.dir/core/pruning_spec_test.cc.o.d"
  "core_pruning_spec_test"
  "core_pruning_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pruning_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
