file(REMOVE_RECURSE
  "CMakeFiles/core_grid_test.dir/core/grid_test.cc.o"
  "CMakeFiles/core_grid_test.dir/core/grid_test.cc.o.d"
  "core_grid_test"
  "core_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
