# Empty compiler generated dependencies file for core_grid_test.
# This may be replaced when dependencies are built.
