# Empty compiler generated dependencies file for core_gpmrs_test.
# This may be replaced when dependencies are built.
