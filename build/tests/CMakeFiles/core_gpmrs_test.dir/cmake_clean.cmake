file(REMOVE_RECURSE
  "CMakeFiles/core_gpmrs_test.dir/core/gpmrs_test.cc.o"
  "CMakeFiles/core_gpmrs_test.dir/core/gpmrs_test.cc.o.d"
  "core_gpmrs_test"
  "core_gpmrs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gpmrs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
