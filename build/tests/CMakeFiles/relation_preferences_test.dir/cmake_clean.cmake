file(REMOVE_RECURSE
  "CMakeFiles/relation_preferences_test.dir/relation/preferences_test.cc.o"
  "CMakeFiles/relation_preferences_test.dir/relation/preferences_test.cc.o.d"
  "relation_preferences_test"
  "relation_preferences_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_preferences_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
