# Empty dependencies file for relation_preferences_test.
# This may be replaced when dependencies are built.
