# Empty dependencies file for local_skyline_window_test.
# This may be replaced when dependencies are built.
