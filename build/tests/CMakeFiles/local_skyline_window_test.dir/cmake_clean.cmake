file(REMOVE_RECURSE
  "CMakeFiles/local_skyline_window_test.dir/local/skyline_window_test.cc.o"
  "CMakeFiles/local_skyline_window_test.dir/local/skyline_window_test.cc.o.d"
  "local_skyline_window_test"
  "local_skyline_window_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_skyline_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
