file(REMOVE_RECURSE
  "CMakeFiles/core_compare_partitions_test.dir/core/compare_partitions_test.cc.o"
  "CMakeFiles/core_compare_partitions_test.dir/core/compare_partitions_test.cc.o.d"
  "core_compare_partitions_test"
  "core_compare_partitions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_compare_partitions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
