# Empty compiler generated dependencies file for core_compare_partitions_test.
# This may be replaced when dependencies are built.
