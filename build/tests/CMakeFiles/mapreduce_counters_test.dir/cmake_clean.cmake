file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_counters_test.dir/mapreduce/counters_test.cc.o"
  "CMakeFiles/mapreduce_counters_test.dir/mapreduce/counters_test.cc.o.d"
  "mapreduce_counters_test"
  "mapreduce_counters_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_counters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
