# Empty dependencies file for mapreduce_counters_test.
# This may be replaced when dependencies are built.
