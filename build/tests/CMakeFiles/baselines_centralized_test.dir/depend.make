# Empty dependencies file for baselines_centralized_test.
# This may be replaced when dependencies are built.
