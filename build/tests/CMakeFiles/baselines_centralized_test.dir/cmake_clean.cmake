file(REMOVE_RECURSE
  "CMakeFiles/baselines_centralized_test.dir/baselines/centralized_test.cc.o"
  "CMakeFiles/baselines_centralized_test.dir/baselines/centralized_test.cc.o.d"
  "baselines_centralized_test"
  "baselines_centralized_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_centralized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
