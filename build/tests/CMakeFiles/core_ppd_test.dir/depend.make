# Empty dependencies file for core_ppd_test.
# This may be replaced when dependencies are built.
