file(REMOVE_RECURSE
  "CMakeFiles/core_ppd_test.dir/core/ppd_test.cc.o"
  "CMakeFiles/core_ppd_test.dir/core/ppd_test.cc.o.d"
  "core_ppd_test"
  "core_ppd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ppd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
