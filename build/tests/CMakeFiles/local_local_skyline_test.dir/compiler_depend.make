# Empty compiler generated dependencies file for local_local_skyline_test.
# This may be replaced when dependencies are built.
