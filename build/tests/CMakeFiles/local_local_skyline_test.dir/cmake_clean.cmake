file(REMOVE_RECURSE
  "CMakeFiles/local_local_skyline_test.dir/local/local_skyline_test.cc.o"
  "CMakeFiles/local_local_skyline_test.dir/local/local_skyline_test.cc.o.d"
  "local_local_skyline_test"
  "local_local_skyline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_local_skyline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
