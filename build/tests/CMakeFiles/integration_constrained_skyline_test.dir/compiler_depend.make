# Empty compiler generated dependencies file for integration_constrained_skyline_test.
# This may be replaced when dependencies are built.
