file(REMOVE_RECURSE
  "CMakeFiles/integration_constrained_skyline_test.dir/integration/constrained_skyline_test.cc.o"
  "CMakeFiles/integration_constrained_skyline_test.dir/integration/constrained_skyline_test.cc.o.d"
  "integration_constrained_skyline_test"
  "integration_constrained_skyline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_constrained_skyline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
