file(REMOVE_RECURSE
  "CMakeFiles/baselines_sky_quadtree_test.dir/baselines/sky_quadtree_test.cc.o"
  "CMakeFiles/baselines_sky_quadtree_test.dir/baselines/sky_quadtree_test.cc.o.d"
  "baselines_sky_quadtree_test"
  "baselines_sky_quadtree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_sky_quadtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
