# Empty compiler generated dependencies file for baselines_sky_quadtree_test.
# This may be replaced when dependencies are built.
