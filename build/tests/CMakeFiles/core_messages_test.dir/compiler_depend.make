# Empty compiler generated dependencies file for core_messages_test.
# This may be replaced when dependencies are built.
