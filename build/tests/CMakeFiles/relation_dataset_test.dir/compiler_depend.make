# Empty compiler generated dependencies file for relation_dataset_test.
# This may be replaced when dependencies are built.
