file(REMOVE_RECURSE
  "CMakeFiles/relation_dataset_test.dir/relation/dataset_test.cc.o"
  "CMakeFiles/relation_dataset_test.dir/relation/dataset_test.cc.o.d"
  "relation_dataset_test"
  "relation_dataset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_dataset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
