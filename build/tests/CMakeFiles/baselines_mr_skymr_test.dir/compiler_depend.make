# Empty compiler generated dependencies file for baselines_mr_skymr_test.
# This may be replaced when dependencies are built.
