file(REMOVE_RECURSE
  "CMakeFiles/mapreduce_task_metrics_test.dir/mapreduce/task_metrics_test.cc.o"
  "CMakeFiles/mapreduce_task_metrics_test.dir/mapreduce/task_metrics_test.cc.o.d"
  "mapreduce_task_metrics_test"
  "mapreduce_task_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapreduce_task_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
