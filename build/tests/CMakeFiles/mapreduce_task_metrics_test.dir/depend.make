# Empty dependencies file for mapreduce_task_metrics_test.
# This may be replaced when dependencies are built.
