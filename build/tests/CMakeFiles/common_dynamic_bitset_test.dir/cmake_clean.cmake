file(REMOVE_RECURSE
  "CMakeFiles/common_dynamic_bitset_test.dir/common/dynamic_bitset_test.cc.o"
  "CMakeFiles/common_dynamic_bitset_test.dir/common/dynamic_bitset_test.cc.o.d"
  "common_dynamic_bitset_test"
  "common_dynamic_bitset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_dynamic_bitset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
