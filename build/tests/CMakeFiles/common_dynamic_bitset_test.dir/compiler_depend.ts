# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for common_dynamic_bitset_test.
