file(REMOVE_RECURSE
  "CMakeFiles/relation_dominance_test.dir/relation/dominance_test.cc.o"
  "CMakeFiles/relation_dominance_test.dir/relation/dominance_test.cc.o.d"
  "relation_dominance_test"
  "relation_dominance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_dominance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
