# Empty dependencies file for relation_dominance_test.
# This may be replaced when dependencies are built.
