file(REMOVE_RECURSE
  "CMakeFiles/baselines_mr_bnl_test.dir/baselines/mr_bnl_test.cc.o"
  "CMakeFiles/baselines_mr_bnl_test.dir/baselines/mr_bnl_test.cc.o.d"
  "baselines_mr_bnl_test"
  "baselines_mr_bnl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_mr_bnl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
