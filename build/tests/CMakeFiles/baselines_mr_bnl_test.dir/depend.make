# Empty dependencies file for baselines_mr_bnl_test.
# This may be replaced when dependencies are built.
