# Empty dependencies file for common_serde_test.
# This may be replaced when dependencies are built.
