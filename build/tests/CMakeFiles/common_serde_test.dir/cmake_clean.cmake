file(REMOVE_RECURSE
  "CMakeFiles/common_serde_test.dir/common/serde_test.cc.o"
  "CMakeFiles/common_serde_test.dir/common/serde_test.cc.o.d"
  "common_serde_test"
  "common_serde_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_serde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
