file(REMOVE_RECURSE
  "CMakeFiles/core_bitstring_job_test.dir/core/bitstring_job_test.cc.o"
  "CMakeFiles/core_bitstring_job_test.dir/core/bitstring_job_test.cc.o.d"
  "core_bitstring_job_test"
  "core_bitstring_job_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_bitstring_job_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
