file(REMOVE_RECURSE
  "CMakeFiles/baselines_mr_angle_test.dir/baselines/mr_angle_test.cc.o"
  "CMakeFiles/baselines_mr_angle_test.dir/baselines/mr_angle_test.cc.o.d"
  "baselines_mr_angle_test"
  "baselines_mr_angle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_mr_angle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
