# Empty compiler generated dependencies file for baselines_mr_angle_test.
# This may be replaced when dependencies are built.
