file(REMOVE_RECURSE
  "libskymr.a"
)
