# Empty dependencies file for skymr.
# This may be replaced when dependencies are built.
