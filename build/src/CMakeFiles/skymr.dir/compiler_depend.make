# Empty compiler generated dependencies file for skymr.
# This may be replaced when dependencies are built.
