
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/centralized.cc" "src/CMakeFiles/skymr.dir/baselines/centralized.cc.o" "gcc" "src/CMakeFiles/skymr.dir/baselines/centralized.cc.o.d"
  "/root/repo/src/baselines/mr_angle.cc" "src/CMakeFiles/skymr.dir/baselines/mr_angle.cc.o" "gcc" "src/CMakeFiles/skymr.dir/baselines/mr_angle.cc.o.d"
  "/root/repo/src/baselines/mr_bnl.cc" "src/CMakeFiles/skymr.dir/baselines/mr_bnl.cc.o" "gcc" "src/CMakeFiles/skymr.dir/baselines/mr_bnl.cc.o.d"
  "/root/repo/src/baselines/mr_skymr.cc" "src/CMakeFiles/skymr.dir/baselines/mr_skymr.cc.o" "gcc" "src/CMakeFiles/skymr.dir/baselines/mr_skymr.cc.o.d"
  "/root/repo/src/baselines/sky_quadtree.cc" "src/CMakeFiles/skymr.dir/baselines/sky_quadtree.cc.o" "gcc" "src/CMakeFiles/skymr.dir/baselines/sky_quadtree.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/skymr.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/skymr.dir/common/csv.cc.o.d"
  "/root/repo/src/common/dynamic_bitset.cc" "src/CMakeFiles/skymr.dir/common/dynamic_bitset.cc.o" "gcc" "src/CMakeFiles/skymr.dir/common/dynamic_bitset.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/skymr.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/skymr.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/skymr.dir/common/status.cc.o" "gcc" "src/CMakeFiles/skymr.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/skymr.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/skymr.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/bitstring_job.cc" "src/CMakeFiles/skymr.dir/core/bitstring_job.cc.o" "gcc" "src/CMakeFiles/skymr.dir/core/bitstring_job.cc.o.d"
  "/root/repo/src/core/compare_partitions.cc" "src/CMakeFiles/skymr.dir/core/compare_partitions.cc.o" "gcc" "src/CMakeFiles/skymr.dir/core/compare_partitions.cc.o.d"
  "/root/repo/src/core/gpmrs.cc" "src/CMakeFiles/skymr.dir/core/gpmrs.cc.o" "gcc" "src/CMakeFiles/skymr.dir/core/gpmrs.cc.o.d"
  "/root/repo/src/core/gpsrs.cc" "src/CMakeFiles/skymr.dir/core/gpsrs.cc.o" "gcc" "src/CMakeFiles/skymr.dir/core/gpsrs.cc.o.d"
  "/root/repo/src/core/grid.cc" "src/CMakeFiles/skymr.dir/core/grid.cc.o" "gcc" "src/CMakeFiles/skymr.dir/core/grid.cc.o.d"
  "/root/repo/src/core/hybrid.cc" "src/CMakeFiles/skymr.dir/core/hybrid.cc.o" "gcc" "src/CMakeFiles/skymr.dir/core/hybrid.cc.o.d"
  "/root/repo/src/core/independent_groups.cc" "src/CMakeFiles/skymr.dir/core/independent_groups.cc.o" "gcc" "src/CMakeFiles/skymr.dir/core/independent_groups.cc.o.d"
  "/root/repo/src/core/messages.cc" "src/CMakeFiles/skymr.dir/core/messages.cc.o" "gcc" "src/CMakeFiles/skymr.dir/core/messages.cc.o.d"
  "/root/repo/src/core/partition_bitstring.cc" "src/CMakeFiles/skymr.dir/core/partition_bitstring.cc.o" "gcc" "src/CMakeFiles/skymr.dir/core/partition_bitstring.cc.o.d"
  "/root/repo/src/core/ppd.cc" "src/CMakeFiles/skymr.dir/core/ppd.cc.o" "gcc" "src/CMakeFiles/skymr.dir/core/ppd.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/CMakeFiles/skymr.dir/core/runner.cc.o" "gcc" "src/CMakeFiles/skymr.dir/core/runner.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/skymr.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/skymr.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/CMakeFiles/skymr.dir/data/dataset_io.cc.o" "gcc" "src/CMakeFiles/skymr.dir/data/dataset_io.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/CMakeFiles/skymr.dir/data/generator.cc.o" "gcc" "src/CMakeFiles/skymr.dir/data/generator.cc.o.d"
  "/root/repo/src/local/bnl.cc" "src/CMakeFiles/skymr.dir/local/bnl.cc.o" "gcc" "src/CMakeFiles/skymr.dir/local/bnl.cc.o.d"
  "/root/repo/src/local/naive.cc" "src/CMakeFiles/skymr.dir/local/naive.cc.o" "gcc" "src/CMakeFiles/skymr.dir/local/naive.cc.o.d"
  "/root/repo/src/local/sfs.cc" "src/CMakeFiles/skymr.dir/local/sfs.cc.o" "gcc" "src/CMakeFiles/skymr.dir/local/sfs.cc.o.d"
  "/root/repo/src/local/skyline_window.cc" "src/CMakeFiles/skymr.dir/local/skyline_window.cc.o" "gcc" "src/CMakeFiles/skymr.dir/local/skyline_window.cc.o.d"
  "/root/repo/src/mapreduce/cluster_model.cc" "src/CMakeFiles/skymr.dir/mapreduce/cluster_model.cc.o" "gcc" "src/CMakeFiles/skymr.dir/mapreduce/cluster_model.cc.o.d"
  "/root/repo/src/mapreduce/counters.cc" "src/CMakeFiles/skymr.dir/mapreduce/counters.cc.o" "gcc" "src/CMakeFiles/skymr.dir/mapreduce/counters.cc.o.d"
  "/root/repo/src/mapreduce/distributed_cache.cc" "src/CMakeFiles/skymr.dir/mapreduce/distributed_cache.cc.o" "gcc" "src/CMakeFiles/skymr.dir/mapreduce/distributed_cache.cc.o.d"
  "/root/repo/src/relation/dataset.cc" "src/CMakeFiles/skymr.dir/relation/dataset.cc.o" "gcc" "src/CMakeFiles/skymr.dir/relation/dataset.cc.o.d"
  "/root/repo/src/relation/dominance.cc" "src/CMakeFiles/skymr.dir/relation/dominance.cc.o" "gcc" "src/CMakeFiles/skymr.dir/relation/dominance.cc.o.d"
  "/root/repo/src/relation/preferences.cc" "src/CMakeFiles/skymr.dir/relation/preferences.cc.o" "gcc" "src/CMakeFiles/skymr.dir/relation/preferences.cc.o.d"
  "/root/repo/src/relation/skyline_verify.cc" "src/CMakeFiles/skymr.dir/relation/skyline_verify.cc.o" "gcc" "src/CMakeFiles/skymr.dir/relation/skyline_verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
