// skymr_cli: command-line front end for the library.
//
//   skymr_cli generate --dist=anti-correlated --card=100000 --dim=4
//             --seed=7 --out=data.csv
//   skymr_cli skyline  --in=data.csv [--header] [--algorithm=mr-gpmrs]
//             [--mappers=13] [--reducers=13] [--ppd=0] [--data-bounds]
//             [--constraint=lo:hi,lo:hi,...] [--out=skyline.csv] [--verify]
//             [--trace-out=trace.json] [--report-out=report.json]
//             [--chaos-profile=NAME] [--chaos-seed=S] [--attempts=N]
//             [--speculate] [--checkpoint=FILE] [--bench-out=FILE]
//   skymr_cli stats    --in=data.csv [same flags as skyline]
//             [--critical-path] [--metrics-out=metrics.json]
//   skymr_cli compare  --in=data.csv [--header] [--mappers] [--reducers]
//             [--chaos-profile=NAME] [--chaos-seed=S] [--attempts=N]
//   skymr_cli serve    --in=data.csv [--qps=40] [--queries=48] [--slots=3]
//             [--small-reserved=1] [--warmup] [--out=load.json]
//   skymr_cli doctor   [--report=report.json] [--metrics=metrics.json]
//                      [--load=load.json]
//             [--fail-on=warning|critical]
//
// `generate` writes a synthetic dataset as CSV; `skyline` computes a
// (possibly constrained) skyline of a CSV dataset and prints metrics;
// `stats` runs the same pipeline with tracing on and prints per-task skew,
// retries, histograms, and the cost-model comparison — `--critical-path`
// appends the obs/critical_path.h phase-attribution table (which paper
// phase bounds the makespan, with what-if slack per phase) and
// `--metrics-out` runs a live metrics registry + sampler thread during
// the pipeline and writes the skymr-metrics-v1 snapshot; `compare` runs all
// algorithms on the same input and prints a table; `serve` keeps the
// dataset resident behind a serve/session.h Session and drives it with
// the open-loop loadgen mix (cross-query bitstring cache + two-lane
// admission), writing the skymr-load-v1 artifact; `doctor` analyzes a
// previously written skymr-report-v1 document and prints severity-ranked
// findings (task skew, PPD-selection quality, cost-model deviation,
// pruning effectiveness, reducer imbalance, retry storms, worker
// blacklists, degradation). `--trace-out` writes Chrome trace-event JSON
// (open in Perfetto / chrome://tracing); `--report-out` writes the
// skymr-report-v1 JSON document.
//
// Fault-tolerance flags: `--chaos-profile` picks a named deterministic
// fault-injection schedule (`--chaos-seed` reseeds it; same seed = same
// faults = bit-identical skyline), `--attempts` bounds per-task attempts,
// `--speculate` enables speculative execution, `--checkpoint=FILE` loads
// a bitstring-phase checkpoint before the run and saves it after, and
// `--bench-out=FILE` writes a skymr-bench-v1 artifact whose deterministic
// counters include the fault-injection signal when chaos is enabled (two
// same-seed runs must produce identical artifacts; tools/bench_diff.py
// gates on this in CI).

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/loadgen/loadgen.h"
#include "src/obs/bench_artifact.h"
#include "src/skymr.h"

namespace {

/// Parsed --name=value flags plus positional arguments.
struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& name) const {
    return flags.find(name) != flags.end();
  }
  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  long GetInt(const std::string& name, long fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : std::strtol(it->second.c_str(),
                                                      nullptr, 10);
  }
  double GetDouble(const std::string& name, double fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : std::strtod(it->second.c_str(),
                                                      nullptr);
  }
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2) {
    args.command = argv[1];
  }
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n",
                   token.c_str());
      std::exit(2);
    }
    token.erase(0, 2);
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      args.flags.insert_or_assign(token, std::string("1"));
    } else {
      args.flags.insert_or_assign(token.substr(0, eq), token.substr(eq + 1));
    }
  }
  return args;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  skymr_cli generate --dist=<independent|correlated|"
      "anti-correlated|clustered>\n"
      "            --card=N --dim=D [--seed=S] --out=FILE\n"
      "  skymr_cli skyline --in=FILE [--header] [--algorithm=NAME]\n"
      "            [--local-algorithm=bnl|sfs|bbs|auto]\n"
      "            [--mappers=M] [--reducers=R] [--ppd=N] [--data-bounds]\n"
      "            [--constraint=lo:hi,lo:hi,...] [--out=FILE] [--verify]\n"
      "            [--trace-out=FILE] [--report-out=FILE]\n"
      "            [--chaos-profile=NAME] [--chaos-seed=S] [--attempts=N]\n"
      "            [--speculate] [--checkpoint=FILE] [--bench-out=FILE]\n"
      "  skymr_cli stats   --in=FILE [same flags as skyline]\n"
      "            [--critical-path] [--metrics-out=FILE]\n"
      "  skymr_cli compare --in=FILE [--header] [--mappers=M] "
      "[--reducers=R]\n"
      "            [--chaos-profile=NAME] [--chaos-seed=S] [--attempts=N]\n"
      "  skymr_cli serve   --in=FILE [--header] [--seed=S] [--qps=Q]\n"
      "            [--queries=N] [--slots=K] [--small-reserved=K]\n"
      "            [--threads=T] [--deadline-ms=D] [--warmup]\n"
      "            [--mappers=M] [--reducers=R] [--out=load.json]\n"
      "            [--chaos-profile=NAME] [--chaos-seed=S] [--attempts=N]\n"
      "            [--trace-out=FILE] [--metrics-out=FILE]\n"
      "  skymr_cli doctor  [--report=FILE] [--metrics=FILE] [--load=FILE]\n"
      "            [--fail-on=warning|critical]\n"
      "algorithms: mr-gpsrs mr-gpmrs mr-bnl mr-angle hybrid sky-mr\n"
      "local algorithms (mapper kernel): bnl sfs bbs auto\n"
      "chaos profiles: %s\n",
      [] {
        std::string names;
        for (const std::string& name : skymr::mr::ChaosProfileNames()) {
          if (!names.empty()) {
            names += ' ';
          }
          names += name;
        }
        return names;
      }()
          .c_str());
  return 2;
}

bool ParseConstraint(const std::string& text, size_t dim, skymr::Box* box) {
  box->lo.clear();
  box->hi.clear();
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string part =
        text.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    const size_t colon = part.find(':');
    if (colon == std::string::npos) {
      return false;
    }
    box->lo.push_back(std::strtod(part.substr(0, colon).c_str(), nullptr));
    box->hi.push_back(std::strtod(part.substr(colon + 1).c_str(), nullptr));
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return box->lo.size() == dim;
}

int RunGenerate(const Args& args) {
  auto dist = skymr::data::ParseDistribution(
      args.GetString("dist", "independent"));
  if (!dist.ok()) {
    std::fprintf(stderr, "%s\n", dist.status().ToString().c_str());
    return 1;
  }
  skymr::data::GeneratorConfig config;
  config.distribution = dist.value();
  config.cardinality = static_cast<size_t>(args.GetInt("card", 10000));
  config.dim = static_cast<size_t>(args.GetInt("dim", 3));
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string out = args.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate requires --out=FILE\n");
    return 2;
  }
  auto data = skymr::data::Generate(config);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  if (auto s = skymr::data::SaveCsv(*data, out); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu x %zu %s tuples to %s\n", data->size(),
              data->dim(), skymr::data::DistributionName(config.distribution),
              out.c_str());
  return 0;
}

skymr::StatusOr<skymr::Dataset> LoadInput(const Args& args) {
  const std::string in = args.GetString("in", "");
  if (in.empty()) {
    return skymr::Status::InvalidArgument("missing --in=FILE");
  }
  return skymr::data::LoadCsv(in, args.Has("header"));
}

void PrintResultSummary(const skymr::Dataset& data,
                        const skymr::SkylineResult& result) {
  std::printf("algorithm: %s\n",
              skymr::AlgorithmName(result.algorithm_used));
  std::printf("skyline:   %zu of %zu tuples\n", result.skyline.size(),
              data.size());
  if (result.ppd > 0) {
    std::printf("grid:      PPD %u, %llu non-empty partitions, %llu "
                "pruned\n",
                result.ppd,
                static_cast<unsigned long long>(result.nonempty_partitions),
                static_cast<unsigned long long>(result.pruned_partitions));
  }
  uint64_t shuffle = 0;
  for (const auto& job : result.jobs) {
    shuffle += job.shuffle_bytes;
  }
  std::printf("jobs:      %zu, shuffle %.1f KB\n", result.jobs.size(),
              static_cast<double>(shuffle) / 1024.0);
  std::printf("runtime:   %.3f s wall, %.1f s modeled (13-node cluster)\n",
              result.wall_seconds, result.modeled_seconds);
}

/// Applies the engine fault-tolerance flags (--chaos-profile, --chaos-seed,
/// --attempts, --speculate) shared by `skyline`, `stats`, and `compare`.
/// Returns 0, or the exit code on a flag error.
int ApplyEngineFlags(const Args& args, skymr::mr::EngineOptions* engine) {
  if (args.Has("chaos-profile")) {
    auto schedule =
        skymr::mr::ChaosProfile(args.GetString("chaos-profile", "none"));
    if (!schedule.ok()) {
      std::fprintf(stderr, "%s\n", schedule.status().ToString().c_str());
      return 2;
    }
    engine->chaos = schedule.value();
  }
  if (args.Has("chaos-seed")) {
    engine->chaos.seed = static_cast<uint64_t>(args.GetInt("chaos-seed", 0));
  }
  if (args.Has("attempts")) {
    engine->max_task_attempts = static_cast<int>(args.GetInt("attempts", 4));
  } else if (engine->chaos.enabled() && engine->max_task_attempts <= 1) {
    // A chaos schedule with a single-attempt budget fails the job on the
    // first injected crash; default to the Hadoop attempt budget.
    engine->max_task_attempts = 4;
  }
  if (args.Has("speculate")) {
    engine->speculative_execution = true;
  }
  return 0;
}

/// Builds the RunnerConfig shared by `skyline` and `stats` from flags.
/// Returns 0, or the exit code on a flag error.
int BuildRunnerConfig(const Args& args, const skymr::Dataset& data,
                      skymr::RunnerConfig* config) {
  auto algorithm =
      skymr::ParseAlgorithm(args.GetString("algorithm", "mr-gpmrs"));
  if (!algorithm.ok()) {
    std::fprintf(stderr, "%s\n", algorithm.status().ToString().c_str());
    return 1;
  }
  config->algorithm = algorithm.value();
  auto local = skymr::core::ParseLocalAlgorithm(
      args.GetString("local-algorithm", "bnl"));
  if (!local.ok()) {
    std::fprintf(stderr, "%s\n", local.status().ToString().c_str());
    return 1;
  }
  config->local_algorithm = local.value();
  config->engine.num_map_tasks =
      static_cast<int>(args.GetInt("mappers", 13));
  config->engine.num_reducers =
      static_cast<int>(args.GetInt("reducers", 13));
  config->ppd.explicit_ppd = static_cast<uint32_t>(args.GetInt("ppd", 0));
  config->unit_bounds = !args.Has("data-bounds");
  if (const int code = ApplyEngineFlags(args, &config->engine); code != 0) {
    return code;
  }
  if (args.Has("constraint")) {
    skymr::Box box;
    if (!ParseConstraint(args.GetString("constraint", ""), data.dim(),
                         &box)) {
      std::fprintf(stderr,
                   "bad --constraint (need %zu lo:hi pairs, e.g. "
                   "0:0.5,0.2:1)\n",
                   data.dim());
      return 2;
    }
    // lint:allow(deprecated-constraint) --constraint maps onto the legacy field
    config->constraint = box;
  }
  return 0;
}

/// The shared output-sink plumbing. Every pipeline subcommand
/// (`skyline`, `stats`, `compare`, `serve`) honors the same artifact
/// flags through this one helper instead of carrying its own copy of
/// the file-writing blocks:
///
///   --trace-out=FILE    Chrome trace-event JSON of the run
///   --report-out=FILE   skymr-report-v1 job report (needs a result)
///   --metrics-out=FILE  live metrics registry + sampler snapshot
///   --bench-out=FILE    one-row skymr-bench-v1 artifact (needs a result)
///
/// Construct before the pipeline runs (arms tracing and the sampler),
/// call StopCollecting() right after it, then one of the Write methods.
class OutputSinks {
 public:
  /// `always_trace` is the stats contract: collect spans even without
  /// --trace-out, because the rendered tables read them.
  OutputSinks(const Args& args, bool always_trace)
      : trace_out_(args.GetString("trace-out", "")),
        report_out_(args.GetString("report-out", "")),
        metrics_out_(args.GetString("metrics-out", "")),
        bench_out_(args.GetString("bench-out", "")) {
    if (always_trace || !trace_out_.empty()) {
      skymr::obs::StartTracing();
    }
    if (!metrics_out_.empty()) {
      sampler_ = std::make_unique<skymr::obs::MetricsSampler>(&metrics_);
    }
  }

  /// The live registry to hook into the engine; null without
  /// --metrics-out so runs that don't ask pay nothing.
  skymr::obs::MetricsRegistry* metrics() {
    return metrics_out_.empty() ? nullptr : &metrics_;
  }

  /// Stops tracing and the sampler thread; call once the pipeline is
  /// done and before any Write method.
  void StopCollecting() {
    skymr::obs::StopTracing();
    if (sampler_ != nullptr) {
      sampler_->Stop();
    }
  }

  /// Writes the sinks that need no single result (--trace-out,
  /// --metrics-out) — all `compare` and `serve` can honor. Returns 0,
  /// or the exit code on an I/O error.
  int WriteRunSinks() {
    if (!trace_out_.empty()) {
      if (auto s = skymr::obs::WriteChromeTraceFile(trace_out_); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("wrote %zu trace events to %s\n",
                  skymr::obs::CollectedEventCount(), trace_out_.c_str());
    }
    if (!metrics_out_.empty()) {
      if (auto s = metrics_.WriteJsonFile(metrics_out_, sampler_->Samples());
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("wrote metrics snapshot to %s\n", metrics_out_.c_str());
    }
    return 0;
  }

  /// Writes the per-result sinks (--report-out, --bench-out) and then
  /// the run sinks. `bench_name` names the bench artifact document.
  int WriteResultSinks(const skymr::Dataset& data,
                       const skymr::SkylineResult& result,
                       bool include_fault_injection,
                       const char* bench_name) {
    if (!report_out_.empty()) {
      if (auto s = skymr::obs::WriteJobReportFile(result, report_out_);
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("wrote job report to %s\n", report_out_.c_str());
    }
    if (!bench_out_.empty()) {
      skymr::obs::BenchArtifact artifact(bench_name);
      skymr::obs::BenchRow row;
      row.name = skymr::AlgorithmName(result.algorithm_used);
      row.wall = skymr::obs::WallStats::FromSamples({result.wall_seconds});
      row.deterministic = skymr::obs::DeterministicCounters(
          result, data.size(), include_fault_injection);
      artifact.AddRow(std::move(row));
      if (auto s = artifact.WriteFile(bench_out_); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("wrote bench artifact to %s\n", bench_out_.c_str());
    }
    return WriteRunSinks();
  }

 private:
  const std::string trace_out_;
  const std::string report_out_;
  const std::string metrics_out_;
  const std::string bench_out_;
  skymr::obs::MetricsRegistry metrics_;
  std::unique_ptr<skymr::obs::MetricsSampler> sampler_;
};

int RunSkyline(const Args& args) {
  auto data = LoadInput(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  skymr::RunnerConfig config;
  if (const int code = BuildRunnerConfig(args, *data, &config); code != 0) {
    return code;
  }

  // Phase checkpointing: load previously saved bitstring-phase results
  // before the run (a fingerprint match skips the bitstring job), persist
  // them after so the next invocation can resume.
  skymr::core::PipelineCheckpoint checkpoint;
  const std::string checkpoint_path = args.GetString("checkpoint", "");
  if (!checkpoint_path.empty()) {
    if (auto s = checkpoint.LoadFile(checkpoint_path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    config.checkpoint = &checkpoint;
  }

  OutputSinks sinks(args, /*always_trace=*/false);
  config.engine.metrics = sinks.metrics();
  auto result = skymr::ComputeSkyline(*data, config);
  sinks.StopCollecting();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  PrintResultSummary(*data, *result);
  if (result->resumed_from_checkpoint) {
    std::printf("resumed:   bitstring phase loaded from %s\n",
                checkpoint_path.c_str());
  }
  if (result->degraded) {
    std::printf("degraded:  MR-GPMRS failed; fell back to single-reducer "
                "MR-GPSRS merge\n");
  }
  if (!checkpoint_path.empty()) {
    if (auto s = checkpoint.SaveFile(checkpoint_path); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (const int code = sinks.WriteResultSinks(
          *data, *result,
          /*include_fault_injection=*/config.engine.chaos.enabled(),
          "skymr_cli_skyline");
      code != 0) {
    return code;
  }

  // lint:allow(deprecated-constraint) reads the legacy field set above
  if (args.Has("verify") && !config.constraint.has_value()) {
    const std::string mismatch =
        skymr::ExplainSkylineMismatch(*data, result->SkylineIds());
    std::printf("verify:    %s\n",
                mismatch.empty() ? "EXACT" : mismatch.c_str());
    if (!mismatch.empty()) {
      return 1;
    }
  }

  const std::string out = args.GetString("out", "");
  if (!out.empty()) {
    skymr::Dataset skyline_data(data->dim());
    for (size_t i = 0; i < result->skyline.size(); ++i) {
      skyline_data.Append(std::span<const double>(
          result->skyline.RowAt(i), data->dim()));
    }
    if (auto s = skymr::data::SaveCsv(skyline_data, out); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote skyline to %s\n", out.c_str());
  }
  return 0;
}

int RunStats(const Args& args) {
  auto data = LoadInput(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  skymr::RunnerConfig config;
  if (const int code = BuildRunnerConfig(args, *data, &config); code != 0) {
    return code;
  }

  // stats always collects spans: the trace doubles as the data source
  // for --trace-out and costs little at CLI scales. --metrics-out hooks
  // the sinks' live registry + sampler into the engine.
  OutputSinks sinks(args, /*always_trace=*/true);
  config.engine.metrics = sinks.metrics();
  auto result = skymr::ComputeSkyline(*data, config);
  sinks.StopCollecting();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::fputs(skymr::obs::RenderStatsText(*result).c_str(), stdout);
  if (args.Has("critical-path")) {
    std::fputs(skymr::obs::RenderCriticalPathText(
                   skymr::obs::AnalyzeCriticalPath(result->jobs))
                   .c_str(),
               stdout);
  }
  return sinks.WriteResultSinks(
      *data, *result,
      /*include_fault_injection=*/config.engine.chaos.enabled(),
      "skymr_cli_stats");
}

int RunCompare(const Args& args) {
  auto data = LoadInput(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  OutputSinks sinks(args, /*always_trace=*/false);
  std::printf("%-10s %10s %12s %12s %10s\n", "algorithm", "skyline",
              "modeled[s]", "shuffle[KB]", "wall[s]");
  // One pool for all six pipelines: threads spawn once, not per algorithm.
  skymr::ThreadPool pool(skymr::ThreadPool::DefaultThreads());
  for (const skymr::Algorithm algorithm :
       {skymr::Algorithm::kMrGpsrs, skymr::Algorithm::kMrGpmrs,
        skymr::Algorithm::kMrBnl, skymr::Algorithm::kMrAngle,
        skymr::Algorithm::kHybrid, skymr::Algorithm::kSkyMr}) {
    skymr::RunnerConfig config;
    config.algorithm = algorithm;
    config.pool = &pool;
    config.engine.metrics = sinks.metrics();
    config.engine.num_map_tasks =
        static_cast<int>(args.GetInt("mappers", 13));
    config.engine.num_reducers =
        static_cast<int>(args.GetInt("reducers", 13));
    if (const int code = ApplyEngineFlags(args, &config.engine); code != 0) {
      return code;
    }
    auto result = skymr::ComputeSkyline(*data, config);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", skymr::AlgorithmName(algorithm),
                   result.status().ToString().c_str());
      return 1;
    }
    uint64_t shuffle = 0;
    for (const auto& job : result->jobs) {
      shuffle += job.shuffle_bytes;
    }
    std::printf("%-10s %10zu %12.1f %12.1f %10.3f\n",
                skymr::AlgorithmName(algorithm), result->skyline.size(),
                result->modeled_seconds,
                static_cast<double>(shuffle) / 1024.0,
                result->wall_seconds);
  }
  sinks.StopCollecting();
  return sinks.WriteRunSinks();
}

/// `serve`: load a dataset, keep it resident behind a serve::Session,
/// and drive it with the open-loop loadgen traffic mix
/// (ResidentServeMix: the same tuples asked GPSRS/GPMRS/constrained
/// questions, so the cross-query bitstring cache carries most of the
/// load). Writes the skymr-load-v1 artifact to --out for
/// tools/bench_diff.py and `doctor --load`. Exit 0 even when individual
/// queries fail (errors are part of the workload under chaos); nonzero
/// only for bad flags or harness-level failures.
int RunServe(const Args& args) {
  auto data = LoadInput(args);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  skymr::loadgen::LoadConfig config;
  config.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  config.target_qps = args.GetDouble("qps", 40.0);
  config.queries = static_cast<int>(args.GetInt("queries", 48));
  config.admission_slots = static_cast<int>(args.GetInt("slots", 3));
  config.small_reserved_slots =
      static_cast<int>(args.GetInt("small-reserved", 1));
  config.threads = static_cast<int>(args.GetInt("threads", 0));
  config.deadline_ms = args.GetDouble("deadline-ms", 0.0);
  config.num_map_tasks = static_cast<int>(args.GetInt("mappers", 4));
  config.num_reducers = static_cast<int>(args.GetInt("reducers", 2));
  config.warmup = args.Has("warmup");
  config.resident = &*data;
  config.mix = skymr::loadgen::ResidentServeMix();
  {
    skymr::mr::EngineOptions engine;
    engine.max_task_attempts = config.max_task_attempts;
    if (const int code = ApplyEngineFlags(args, &engine); code != 0) {
      return code;
    }
    config.chaos = engine.chaos;
    config.max_task_attempts = engine.max_task_attempts;
  }

  OutputSinks sinks(args, /*always_trace=*/false);
  auto report_or =
      skymr::loadgen::RunServeLoad(config, sinks.metrics(), nullptr);
  sinks.StopCollecting();
  if (!report_or.ok()) {
    std::fprintf(stderr, "%s\n", report_or.status().ToString().c_str());
    return 1;
  }
  const skymr::loadgen::LoadReport& report = report_or.value();

  std::printf("serve: %zu x %zu resident tuples, %d queries (%lld ok, "
              "%lld errors) in %.2f s\n",
              data->size(), data->dim(), config.queries,
              static_cast<long long>(report.completed),
              static_cast<long long>(report.errors), report.wall_seconds);
  std::printf("latency from scheduled arrival: p50 %.0f us, p95 %.0f us, "
              "p99 %.0f us, max %.0f us\n",
              report.latency_us.Quantile(0.50),
              report.latency_us.Quantile(0.95),
              report.latency_us.Quantile(0.99), report.latency_us.max());
  std::printf("admission: wait p99 %.0f us, depth max %lld, inflight max "
              "%lld\n",
              report.queue_wait_us.Quantile(0.99),
              static_cast<long long>(report.max_queue_depth),
              static_cast<long long>(report.max_inflight));
  std::printf("session cache: %lld hits, %lld misses, %lld bitstring "
              "jobs\n",
              static_cast<long long>(report.session_cache_hits),
              static_cast<long long>(report.session_cache_misses),
              static_cast<long long>(report.bitstring_jobs));

  const std::string out = args.GetString("out", "");
  if (!out.empty()) {
    if (auto s = skymr::loadgen::WriteLoadArtifactFile(config, report, out);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("artifact: %s (schedule hash %016llx)\n", out.c_str(),
                static_cast<unsigned long long>(report.schedule_hash));
  }
  return sinks.WriteRunSinks();
}

int RunDoctor(const Args& args) {
  const std::string report = args.GetString("report", "");
  const std::string metrics = args.GetString("metrics", "");
  const std::string load = args.GetString("load", "");
  if (report.empty() && metrics.empty() && load.empty()) {
    std::fprintf(stderr,
                 "doctor requires --report=FILE, --metrics=FILE, and/or "
                 "--load=FILE\n");
    return 2;
  }
  const std::string fail_on = args.GetString("fail-on", "");
  if (!fail_on.empty() && fail_on != "warning" && fail_on != "critical") {
    std::fprintf(stderr, "--fail-on must be 'warning' or 'critical'\n");
    return 2;
  }
  std::vector<skymr::obs::Finding> all;
  if (!report.empty()) {
    auto report_findings = skymr::obs::AnalyzeReportFile(report);
    if (!report_findings.ok()) {
      std::fprintf(stderr, "%s\n",
                   report_findings.status().ToString().c_str());
      return 1;
    }
    all.insert(all.end(), report_findings->begin(), report_findings->end());
  }
  if (!metrics.empty()) {
    auto metrics_findings = skymr::obs::AnalyzeMetricsFile(metrics);
    if (!metrics_findings.ok()) {
      std::fprintf(stderr, "%s\n",
                   metrics_findings.status().ToString().c_str());
      return 1;
    }
    all.insert(all.end(), metrics_findings->begin(), metrics_findings->end());
  }
  if (!load.empty()) {
    auto load_findings = skymr::obs::AnalyzeLoadFile(load);
    if (!load_findings.ok()) {
      std::fprintf(stderr, "%s\n", load_findings.status().ToString().c_str());
      return 1;
    }
    all.insert(all.end(), load_findings->begin(), load_findings->end());
  }
  std::fputs(skymr::obs::RenderFindings(all).c_str(), stdout);
  if (fail_on.empty()) {
    return 0;
  }
  const skymr::obs::Severity gate = fail_on == "critical"
                                        ? skymr::obs::Severity::kCritical
                                        : skymr::obs::Severity::kWarning;
  for (const skymr::obs::Finding& finding : all) {
    if (finding.severity >= gate) {
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = ParseArgs(argc, argv);
  if (args.command == "generate") {
    return RunGenerate(args);
  }
  if (args.command == "skyline") {
    return RunSkyline(args);
  }
  if (args.command == "stats") {
    return RunStats(args);
  }
  if (args.command == "compare") {
    return RunCompare(args);
  }
  if (args.command == "serve") {
    return RunServe(args);
  }
  if (args.command == "doctor") {
    return RunDoctor(args);
  }
  return Usage();
}
