#!/usr/bin/env python3
"""Repo-specific static checks that clang-tidy cannot express.

Usage:
    lint_skymr.py [--root /path/to/repo] [--rule NAME ...] [--list-rules]

Walks the C++ tree (src/, fuzz/, tools/, tests/, bench/, examples/) and
enforces the house rules below. Any finding prints one
`path:line: rule: message` diagnostic and the script exits 1; a clean
tree exits 0. CI runs this on every push (the lint job), and the
`tools_lint_skymr` ctest runs it locally.

Rules:

  facade-hygiene    Nothing under src/ may include the public facade
                    src/skymr.h. The facade is the curated surface for
                    tests/tools/examples; library code including it
                    would create a cycle and hide missing direct
                    includes.
  include-guard     Every header uses a path-derived include guard:
                    src/core/grid.h -> SKYMR_CORE_GRID_H_ (the #ifndef
                    and #define must both match).
  throw-discipline  Library code under src/ may only throw the three
                    engine-internal control-flow exceptions (TaskFailure,
                    TaskCancelled, SerdeUnderflow) or rethrow (`throw;`).
                    Everything else must return a Status: exceptions
                    escaping the public API are a bug (runner.h contract).
  counter-registry  Every "mr.*"/"skymr.*" string literal must appear in
                    the counter inventory in DESIGN.md (section 13,
                    between the `counter-registry:begin/end` markers).
                    Entries with kind `prefix` match any literal starting
                    with the entry's name. Also cross-checks that every
                    kCounter* constant in src/mapreduce/counters.h is
                    registered with kind `slot`, and that the slot count
                    in the registry matches kNumSlots usage. The check is
                    bidirectional for `histogram` and `metric` kinds:
                    each such registry row must be used by at least one
                    C++ string literal, so deleted metrics cannot leave
                    stale documentation behind.
  dcheck-message    Every SKYMR_CHECK / SKYMR_DCHECK must stream a
                    message (`<< ...`) describing the violated invariant;
                    a bare check's failure report is just an expression.
  deprecated-constraint
                    RunnerConfig::constraint is deprecated: the
                    constraint box is a per-query parameter and belongs
                    on QuerySpec::constraint (src/serve/query_spec.h).
                    The rule tracks RunnerConfig-typed variables per
                    file and flags `.constraint` / `->constraint`
                    accesses on them. Existing legacy-surface sites
                    (the ComputeSkyline shim, tests that pin the shim's
                    behavior) carry explicit suppressions; new code
                    should open a Session instead.

Suppressions: append `// lint:allow(<rule>) <reason>` to the offending
line, or put it on the line directly above. The reason is mandatory —
a suppression without one is itself a finding (rule `lint-allow`).
"""

import argparse
import os
import re
import sys

CPP_DIRS = ["src", "fuzz", "tools", "tests", "bench", "examples"]
CPP_EXTS = (".h", ".cc")

# Exceptions library code is allowed to throw (throw-discipline).
ALLOWED_THROWS = ("TaskFailure", "TaskCancelled", "SerdeUnderflow")

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)\s*(.*)")
# Metric/counter namespaces the registry governs: mr. (engine), skymr.
# (algorithm), query. (per-query serving metrics from the loadgen /
# admission layer). Widening this regex is how a new namespace opts into
# the bidirectional inventory check — log/loadgen sources are walked via
# CPP_DIRS already.
COUNTER_LITERAL_RE = re.compile(r'"((?:mr|skymr|query)\.[A-Za-z0-9_.]+)"')
REGISTRY_ROW_RE = re.compile(r"^\|\s*`([^`]+)`\s*\|\s*(\w+)\s*\|")
KCOUNTER_RE = re.compile(
    r"kCounter\w+\s*=\s*\n?\s*\"([^\"]+)\"", re.MULTILINE)


class Findings:
    def __init__(self):
        self.items = []

    def add(self, path, line, rule, message):
        self.items.append((path, line, rule, message))


def iter_cpp_files(root, dirs=CPP_DIRS):
    for d in dirs:
        base = os.path.join(root, d)
        for dirpath, _, names in sorted(os.walk(base)):
            for name in sorted(names):
                if name.endswith(CPP_EXTS):
                    yield os.path.join(dirpath, name)


def read_lines(path):
    with open(path, encoding="utf-8", errors="replace") as f:
        return f.read().splitlines()


def suppressions(lines, findings, relpath):
    """Maps line number (1-based) -> set of suppressed rules.

    A `// lint:allow(rule) reason` comment covers its own line and the
    line below it (for the comment-on-its-own-line form).
    """
    allowed = {}
    for i, line in enumerate(lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        rule, reason = m.group(1), m.group(2).strip()
        if not reason:
            findings.add(relpath, i, "lint-allow",
                         "suppression is missing its reason: "
                         f"`// lint:allow({rule}) <why>`")
        allowed.setdefault(i, set()).add(rule)
        allowed.setdefault(i + 1, set()).add(rule)
    return allowed


def is_suppressed(allowed, line_no, rule):
    return rule in allowed.get(line_no, set())


# --------------------------------------------------------------- rules


def check_facade_hygiene(relpath, lines, allowed, findings):
    if not relpath.startswith("src/"):
        return
    for i, line in enumerate(lines, start=1):
        if re.match(r'\s*#\s*include\s*"src/skymr\.h"', line):
            if is_suppressed(allowed, i, "facade-hygiene"):
                continue
            findings.add(relpath, i, "facade-hygiene",
                         "library code must not include the public facade "
                         "src/skymr.h; include the specific headers")


def check_include_guard(relpath, lines, allowed, findings):
    if not relpath.endswith(".h"):
        return
    expected = "SKYMR_" + re.sub(r"[/.]", "_", relpath).upper() + "_"
    if relpath.startswith("src/"):
        # src/ is the include root the guards were named from.
        expected = "SKYMR_" + re.sub(
            r"[/.]", "_", relpath[len("src/"):]).upper() + "_"
    ifndef = None
    for i, line in enumerate(lines, start=1):
        m = re.match(r"\s*#\s*ifndef\s+(\w+)", line)
        if m:
            ifndef = (i, m.group(1))
            break
    if ifndef is None:
        findings.add(relpath, 1, "include-guard",
                     f"header has no include guard (expected {expected})")
        return
    i, guard = ifndef
    if guard != expected:
        if not is_suppressed(allowed, i, "include-guard"):
            findings.add(relpath, i, "include-guard",
                         f"guard {guard} does not match path-derived "
                         f"{expected}")
        return
    if i >= len(lines) or not re.match(
            r"\s*#\s*define\s+" + re.escape(expected) + r"\b", lines[i]):
        findings.add(relpath, i + 1, "include-guard",
                     f"#ifndef {expected} is not followed by its #define")


def strip_comments_and_strings(line):
    """Removes // comments and the contents of string/char literals."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def check_throw_discipline(relpath, lines, allowed, findings):
    if not relpath.startswith("src/"):
        return
    for i, line in enumerate(lines, start=1):
        code = strip_comments_and_strings(line)
        m = re.search(r"\bthrow\b\s*([A-Za-z_:~]*)", code)
        if not m:
            continue
        if is_suppressed(allowed, i, "throw-discipline"):
            continue
        what = m.group(1).split("::")[-1] if m.group(1) else ""
        if what == "" and re.search(r"\bthrow\s*;", code):
            continue  # Bare rethrow inside a catch block.
        if what in ALLOWED_THROWS:
            continue
        findings.add(relpath, i, "throw-discipline",
                     f"throw of {what or '<expression>'!s}: library code "
                     "may only throw "
                     f"{', '.join(ALLOWED_THROWS)} or rethrow; return a "
                     "Status instead")


def load_counter_registry(root, findings):
    """Parses the DESIGN.md inventory between the registry markers."""
    design = os.path.join(root, "DESIGN.md")
    try:
        text = open(design, encoding="utf-8").read()
    except OSError as e:
        findings.add("DESIGN.md", 1, "counter-registry",
                     f"cannot read DESIGN.md: {e}")
        return {}, {}
    m = re.search(
        r"<!--\s*counter-registry:begin\s*-->(.*?)"
        r"<!--\s*counter-registry:end\s*-->", text, re.DOTALL)
    if not m:
        findings.add("DESIGN.md", 1, "counter-registry",
                     "no counter-registry:begin/end markers; the counter "
                     "inventory section is missing")
        return {}, {}
    start_line = text[:m.start()].count("\n") + 1
    exact, prefixes = {}, {}
    for off, line in enumerate(m.group(1).splitlines()):
        row = REGISTRY_ROW_RE.match(line.strip())
        if not row:
            continue
        name, kind = row.group(1), row.group(2)
        target = prefixes if kind == "prefix" else exact
        if name in target:
            findings.add("DESIGN.md", start_line + off, "counter-registry",
                         f"duplicate registry entry {name!r}")
        target[name] = kind
    return exact, prefixes


def check_counter_literals(relpath, lines, allowed, findings, registry,
                           used_literals):
    exact, prefixes = registry
    for i, line in enumerate(lines, start=1):
        for m in COUNTER_LITERAL_RE.finditer(line):
            name = m.group(1)
            used_literals.add(name)
            if is_suppressed(allowed, i, "counter-registry"):
                continue
            if name in exact or name in prefixes:
                continue
            if any(name.startswith(p) for p in prefixes):
                continue
            findings.add(relpath, i, "counter-registry",
                         f"{name!r} is not in the DESIGN.md counter "
                         "inventory (section 13); register it or fix the "
                         "typo")


def check_registry_coverage(findings, registry, used_literals):
    """Reverse direction: histogram/metric rows must be used in C++.

    `slot` rows are covered by check_slot_constants and `counter`/`prefix`
    rows may name counters that only materialize at runtime, but histogram
    and metric names are always recorded through a string literal — a
    registered name no literal mentions is stale documentation.
    """
    exact, _ = registry
    for name, kind in sorted(exact.items()):
        if kind not in ("histogram", "metric"):
            continue
        if name not in used_literals:
            findings.add("DESIGN.md", 1, "counter-registry",
                         f"{name!r} has kind `{kind}` but no C++ string "
                         "literal records it; delete the row or restore "
                         "the instrumentation")


def check_slot_constants(root, findings, registry):
    """Every kCounter* constant must be registered with kind `slot`."""
    exact, _ = registry
    header = os.path.join(root, "src/mapreduce/counters.h")
    try:
        text = open(header, encoding="utf-8").read()
    except OSError:
        return  # Already reported via the walk if truly missing.
    slot_names = KCOUNTER_RE.findall(text)
    for name in slot_names:
        if exact.get(name) != "slot":
            findings.add("src/mapreduce/counters.h", 1, "counter-registry",
                         f"pre-interned counter {name!r} must be in the "
                         "DESIGN.md inventory with kind `slot`")
    registered_slots = [n for n, k in exact.items() if k == "slot"]
    for name in registered_slots:
        if name not in slot_names:
            findings.add("DESIGN.md", 1, "counter-registry",
                         f"{name!r} has kind `slot` but is not a "
                         "kCounter* constant in counters.h")


# Declarations binding a RunnerConfig to a name: values, pointers,
# references, and function parameters. \b keeps SplitRunnerConfig (and
# any other *RunnerConfig identifier) from matching.
RUNNER_CONFIG_DECL_RE = re.compile(
    r"\bRunnerConfig\s*(?:[&*]\s*)?\b(\w+)")


def check_deprecated_constraint(relpath, lines, allowed, findings):
    if relpath == "src/core/runner.h":
        return  # The deprecated field's own declaration.
    # Pass 1: RunnerConfig-typed names in this file. Pass 2: .constraint
    # accesses on them. Non-RunnerConfig `.constraint` members (the
    # bitstring job config, QuerySpec itself) never match because their
    # variables aren't collected.
    config_names = set()
    stripped = [strip_comments_and_strings(l) for l in lines]
    for code in stripped:
        for m in RUNNER_CONFIG_DECL_RE.finditer(code):
            name = m.group(1)
            if name not in ("RunnerConfig",):
                config_names.add(name)
    if not config_names:
        return
    access = re.compile(
        r"\b(" + "|".join(re.escape(n) for n in sorted(config_names)) +
        r")\s*(?:\.|->)\s*constraint\b")
    for i, code in enumerate(stripped, start=1):
        if not access.search(code):
            continue
        if is_suppressed(allowed, i, "deprecated-constraint"):
            continue
        findings.add(relpath, i, "deprecated-constraint",
                     "RunnerConfig::constraint is deprecated; the "
                     "constraint is per-query state — use "
                     "QuerySpec::constraint with a serve/session.h "
                     "Session (the ComputeSkyline shim still honors the "
                     "old field for existing callers)")


def check_dcheck_message(relpath, lines, allowed, findings):
    if not relpath.startswith("src/"):
        return
    if relpath == "src/common/logging.h":
        return  # The macro definitions themselves.
    text = "\n".join(strip_comments_and_strings(l) for l in lines)
    for m in re.finditer(r"\bSKYMR_D?CHECK\s*\(", text):
        line_no = text[:m.start()].count("\n") + 1
        if is_suppressed(allowed, line_no, "dcheck-message"):
            continue
        # Walk to the matching close paren, then require `<<` before `;`.
        depth, j = 0, m.end() - 1
        while j < len(text):
            if text[j] == "(":
                depth += 1
            elif text[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        rest = text[j + 1:j + 200]
        stmt_end = rest.find(";")
        if stmt_end < 0 or "<<" not in rest[:stmt_end]:
            findings.add(relpath, line_no, "dcheck-message",
                         "check streams no message; add "
                         '`<< "what invariant broke"`')


RULES = ["facade-hygiene", "include-guard", "throw-discipline",
         "counter-registry", "dcheck-message", "deprecated-constraint"]


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's ../..)")
    parser.add_argument("--rule", action="append", choices=RULES,
                        help="run only this rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        print("\n".join(RULES))
        return

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    active = set(args.rule or RULES)
    findings = Findings()

    registry = ({}, {})
    if "counter-registry" in active:
        registry = load_counter_registry(root, findings)
        check_slot_constants(root, findings, registry)

    used_literals = set()
    for path in iter_cpp_files(root):
        relpath = os.path.relpath(path, root).replace(os.sep, "/")
        lines = read_lines(path)
        allowed = suppressions(lines, findings, relpath)
        if "facade-hygiene" in active:
            check_facade_hygiene(relpath, lines, allowed, findings)
        if "include-guard" in active:
            check_include_guard(relpath, lines, allowed, findings)
        if "throw-discipline" in active:
            check_throw_discipline(relpath, lines, allowed, findings)
        if "counter-registry" in active:
            check_counter_literals(relpath, lines, allowed, findings,
                                   registry, used_literals)
        if "dcheck-message" in active:
            check_dcheck_message(relpath, lines, allowed, findings)
        if "deprecated-constraint" in active:
            check_deprecated_constraint(relpath, lines, allowed, findings)

    if "counter-registry" in active:
        check_registry_coverage(findings, registry, used_literals)

    for path, line, rule, message in findings.items:
        print(f"{path}:{line}: {rule}: {message}")
    if findings.items:
        print(f"lint_skymr: {len(findings.items)} finding(s)",
              file=sys.stderr)
        sys.exit(1)
    print("lint_skymr: clean")


if __name__ == "__main__":
    main()
