#!/usr/bin/env python3
"""Validates skymr observability artifacts: a Chrome trace (skymr-trace-v1),
a job report (skymr-report-v1), a bench artifact (skymr-bench-v1), a
metrics snapshot (skymr-metrics-v1), a load artifact (skymr-load-v1), and/or
a flight-recorder crash dump (skymr-flight-v1).

Usage:
    check_obs_json.py [--trace trace.json] [--report report.json]
                      [--bench bench.json] [--metrics metrics.json]
                      [--load load.json] [--flight flight.jsonl]

Exits non-zero with a diagnostic on the first violation. Used by the CI
obs-smoke and bench-regression jobs; handy locally after `skymr_cli stats
--trace-out ... --report-out ... --metrics-out ...` or any bench binary
run.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_obs_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "skymr-trace-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    if doc.get("displayTimeUnit") != "ms":
        fail(f"{path}: displayTimeUnit is {doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    names = set()
    for i, e in enumerate(events):
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event {i} lacks {key!r}: {e}")
        if e["ph"] not in ("X", "i"):
            fail(f"{path}: event {i} has phase {e['ph']!r}")
        if e["ph"] == "X" and "dur" not in e:
            fail(f"{path}: complete event {i} lacks dur")
        if e["ph"] == "i" and e.get("s") != "t":
            fail(f"{path}: instant event {i} lacks scope 's':'t'")
        if e["ts"] < 0 or e.get("dur", 0) < 0:
            fail(f"{path}: event {i} has a negative timestamp/duration")
        names.add(e["name"])
    # An engine run must at least show the pipeline and one job with both
    # waves; anything less means the hooks regressed.
    for required in ("skyline.pipeline", "map.wave", "reduce.wave"):
        if required not in names:
            fail(f"{path}: no {required!r} span (got {sorted(names)})")
    print(f"check_obs_json: {path}: {len(events)} events OK")


def check_histogram(where, h):
    for key in ("count", "sum", "min", "max", "mean", "p50", "p95", "p99"):
        if key not in h:
            fail(f"{where}: histogram lacks {key!r}")
    if h["count"] > 0:
        if not h["min"] <= h["p50"] <= h["p95"] <= h["p99"] or \
           not h["p99"] <= h["max"]:
            fail(f"{where}: percentiles out of order: {h}")
        if not h["min"] <= h["mean"] <= h["max"]:
            fail(f"{where}: mean outside [min, max]: {h}")


def check_critical_path(where, cp):
    for key in ("makespan_seconds", "phases", "path", "deterministic"):
        if key not in cp:
            fail(f"{where}: missing {key!r}")
    if cp["makespan_seconds"] < 0:
        fail(f"{where}: negative makespan")
    percent_sum = 0.0
    for p in cp["phases"]:
        for key in ("phase", "seconds", "percent", "what_if_free_percent"):
            if key not in p:
                fail(f"{where}: phase lacks {key!r}: {p}")
        if p["seconds"] < 0 or p["percent"] < 0:
            fail(f"{where}: negative phase attribution: {p}")
        percent_sum += p["percent"]
    # The phases partition the critical path, so the percents must sum to
    # 100 (of a nonzero makespan) up to rendering round-off.
    if cp["makespan_seconds"] > 0 and abs(percent_sum - 100.0) > 1.0:
        fail(f"{where}: phase percents sum to {percent_sum}, not 100")
    if cp["phases"] and not cp["path"]:
        fail(f"{where}: phases present but path empty")
    for step in cp["path"]:
        for key in ("job", "kind", "phase", "task", "attempts", "seconds",
                    "wave_median_seconds"):
            if key not in step:
                fail(f"{where}: path step lacks {key!r}: {step}")
        if step["kind"] not in ("map", "shuffle", "reduce"):
            fail(f"{where}: path step kind {step['kind']!r}")
        if step["attempts"] < 1:
            fail(f"{where}: path step with attempts < 1: {step}")
    det = cp["deterministic"]
    if not str(det.get("dag_signature", "")).startswith("jobs="):
        fail(f"{where}: deterministic.dag_signature malformed: "
             f"{det.get('dag_signature')!r}")
    det_sum = sum(p.get("percent", 0.0) for p in det.get("phases", []))
    det_records = sum(p.get("records", 0) for p in det.get("phases", []))
    if det_records > 0 and abs(det_sum - 100.0) > 1.0:
        fail(f"{where}: deterministic percents sum to {det_sum}, not 100")


def check_report(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "skymr-report-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    for key in ("algorithm", "wall_seconds", "skyline_size", "dim",
                "input_tuples", "jobs"):
        if key not in doc:
            fail(f"{path}: missing {key!r}")
    if not doc["jobs"]:
        fail(f"{path}: jobs is empty")
    for job in doc["jobs"]:
        where = f"{path}: job {job.get('name')!r}"
        for key in ("name", "wall_seconds", "shuffle_bytes", "task_retries",
                    "cache_hits", "cache_misses", "counters", "histograms",
                    "skew", "map_tasks", "reduce_tasks"):
            if key not in job:
                fail(f"{where}: missing {key!r}")
        for name, h in job["histograms"].items():
            check_histogram(f"{where}: {name}", h)
        for task in job["map_tasks"] + job["reduce_tasks"]:
            if task["attempts"] < 1:
                fail(f"{where}: task with attempts < 1: {task}")
        for task in job["reduce_tasks"]:
            if task.get("shuffle_seconds", 0) < 0:
                fail(f"{where}: reduce task with negative shuffle_seconds")
    # The critical_path block is emitted whenever any job ran tasks; its
    # phase table must partition the makespan.
    ran_tasks = any(job["map_tasks"] or job["reduce_tasks"]
                    for job in doc["jobs"])
    if ran_tasks and "critical_path" not in doc:
        fail(f"{path}: jobs ran tasks but critical_path block is missing")
    if "critical_path" in doc:
        check_critical_path(f"{path}: critical_path", doc["critical_path"])
    if doc.get("ppd", 0) > 0:
        cm = doc.get("cost_model")
        if cm is None:
            fail(f"{path}: grid run (ppd > 0) without cost_model")
        for key in ("predicted_mapper_comparisons",
                    "observed_max_mapper_comparisons",
                    "predicted_reducer_comparisons",
                    "observed_max_reducer_comparisons"):
            if key not in cm:
                fail(f"{path}: cost_model lacks {key!r}")
    print(f"check_obs_json: {path}: {len(doc['jobs'])} jobs OK")


def check_environment(path, doc):
    env = doc.get("environment")
    if not isinstance(env, dict):
        fail(f"{path}: missing 'environment'")
    for key in ("git_sha", "compiler", "build_type", "cxx_flags", "cpu",
                "kernel_backend", "tracing_compiled", "threads",
                "scale_env", "full_env", "reps"):
        if key not in env:
            fail(f"{path}: environment lacks {key!r}")


def check_rows(path, doc, allow_zero_reps=False):
    """Validates the bench-v1-shaped rows array shared by skymr-bench-v1
    and skymr-load-v1; returns the rows keyed by name."""
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: rows missing or empty")
    by_name = {}
    for i, row in enumerate(rows):
        where = f"{path}: row {i} ({row.get('name')!r})"
        if not row.get("name"):
            fail(f"{where}: missing 'name'")
        if row["name"] in by_name:
            fail(f"{where}: duplicate row name")
        by_name[row["name"]] = row
        wall = row.get("wall")
        if not isinstance(wall, dict):
            fail(f"{where}: missing 'wall'")
        for key in ("reps", "median_seconds", "mad_seconds", "cv",
                    "min_seconds", "max_seconds", "mean_seconds"):
            if key not in wall:
                fail(f"{where}: wall lacks {key!r}")
        # Load rows report the per-row query count as reps; a size class
        # may legitimately draw zero queries in a short schedule.
        if wall["reps"] < (0 if allow_zero_reps else 1):
            fail(f"{where}: wall.reps < 1")
        if wall["reps"] > 0 and not wall["min_seconds"] \
                <= wall["median_seconds"] <= wall["max_seconds"]:
            fail(f"{where}: wall median outside [min, max]: {wall}")
        det = row.get("deterministic")
        if not isinstance(det, dict) or not det:
            fail(f"{where}: deterministic section missing or empty")
        for name, value in det.items():
            if not isinstance(value, int):
                fail(f"{where}: deterministic[{name!r}] is not an int: "
                     f"{value!r}")
        if not isinstance(row.get("metrics"), dict):
            fail(f"{where}: missing 'metrics'")
    return by_name


def check_bench(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "skymr-bench-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    if not doc.get("bench"):
        fail(f"{path}: missing 'bench'")
    check_environment(path, doc)
    rows = check_rows(path, doc)
    print(f"check_obs_json: {path}: {len(rows)} bench rows OK")


def check_sketch_summary(where, s):
    for key in ("count", "p50_us", "p95_us", "p99_us", "max_us", "mean_us"):
        if key not in s:
            fail(f"{where}: lacks {key!r}")
    if s["count"] > 0:
        if not s["p50_us"] <= s["p95_us"] <= s["p99_us"]:
            fail(f"{where}: percentiles out of order: {s}")
        if s["p99_us"] > s["max_us"] * 1.01 + 1e-9:
            # The sketch's p99 is a bucket upper bound (1% relative
            # error), so it may sit a hair above the exact max.
            fail(f"{where}: p99 above max: {s}")


def check_load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "skymr-load-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    if doc.get("bench") != "loadgen":
        fail(f"{path}: bench is {doc.get('bench')!r}")
    check_environment(path, doc)
    config = doc.get("config")
    if not isinstance(config, dict):
        fail(f"{path}: missing 'config'")
    for key in ("seed", "target_qps", "queries", "admission_slots",
                "threads", "deadline_ms", "chaos_enabled",
                "slow_query_index", "slow_query_ms"):
        if key not in config:
            fail(f"{path}: config lacks {key!r}")
    load = doc.get("load")
    if not isinstance(load, dict):
        fail(f"{path}: missing 'load'")
    for key in ("latency", "queue_wait", "throughput_qps", "wall_seconds",
                "counters"):
        if key not in load:
            fail(f"{path}: load lacks {key!r}")
    check_sketch_summary(f"{path}: load.latency", load["latency"])
    check_sketch_summary(f"{path}: load.queue_wait", load["queue_wait"])
    counters = load["counters"]
    for key in ("completed", "errors", "deadline_missed", "max_queue_depth",
                "max_inflight", "log_dropped"):
        if key not in counters:
            fail(f"{path}: load.counters lacks {key!r}")
        if counters[key] < 0:
            fail(f"{path}: load.counters[{key!r}] is negative")
    if counters["completed"] + counters["errors"] != config["queries"]:
        fail(f"{path}: completed + errors != queries: {counters}")
    if load["latency"]["count"] != config["queries"]:
        fail(f"{path}: latency count {load['latency']['count']} != "
             f"queries {config['queries']}")
    rows = check_rows(path, doc, allow_zero_reps=True)
    agg = rows.get("loadgen")
    if agg is None:
        fail(f"{path}: no aggregate 'loadgen' row")
    det = agg["deterministic"]
    for key in ("queries", "schedule_hash_hi", "schedule_hash_lo",
                "completed", "errors", "comparisons"):
        if key not in det:
            fail(f"{path}: loadgen row deterministic lacks {key!r}")
    if det["queries"] != config["queries"]:
        fail(f"{path}: loadgen row queries != config.queries")
    size_rows = [r for name, r in rows.items() if name.startswith("size:")]
    if not size_rows:
        fail(f"{path}: no per-size rows")
    size_total = sum(r["deterministic"].get("queries", 0)
                     for r in size_rows)
    if size_total != config["queries"]:
        fail(f"{path}: per-size query counts sum to {size_total}, "
             f"not {config['queries']}")
    print(f"check_obs_json: {path}: load artifact with {len(size_rows)} "
          f"size classes OK")


def check_flight(path):
    """Validates a skymr-flight-v1 crash dump: a header object followed by
    one structured log record per line."""
    with open(path) as f:
        lines = [line for line in f.read().splitlines() if line.strip()]
    if not lines:
        fail(f"{path}: empty flight dump")
    header = json.loads(lines[0])
    if header.get("schema") != "skymr-flight-v1":
        fail(f"{path}: header schema is {header.get('schema')!r}")
    for key in ("reason", "records", "ring_capacity", "dropped"):
        if key not in header:
            fail(f"{path}: header lacks {key!r}")
    records = lines[1:]
    if len(records) != header["records"]:
        fail(f"{path}: header says {header['records']} records, "
             f"found {len(records)}")
    if len(records) > header["ring_capacity"]:
        fail(f"{path}: more records than ring_capacity")
    last_ts = float("-inf")
    for i, line in enumerate(records):
        rec = json.loads(line)
        for key in ("ts_us", "sev", "event"):
            if key not in rec:
                fail(f"{path}: record {i} lacks {key!r}: {rec}")
        if rec["sev"] not in ("debug", "info", "warn", "error", "fatal"):
            fail(f"{path}: record {i} severity {rec['sev']!r}")
        if rec["ts_us"] < last_ts:
            fail(f"{path}: record {i} goes back in time")
        last_ts = rec["ts_us"]
    print(f"check_obs_json: {path}: flight dump with {len(records)} "
          f"records OK")


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "skymr-metrics-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    for key in ("uptime_seconds", "gauges", "counters", "sketches",
                "samples"):
        if key not in doc:
            fail(f"{path}: missing {key!r}")
    if doc["uptime_seconds"] < 0:
        fail(f"{path}: negative uptime")
    for name, gauge in doc["gauges"].items():
        if not isinstance(gauge, int):
            fail(f"{path}: gauge {name!r} is not an int: {gauge!r}")
    for name, counter in doc["counters"].items():
        for key in ("value", "rate_per_s"):
            if key not in counter:
                fail(f"{path}: counter {name!r} lacks {key!r}")
        if counter["value"] < 0 or counter["rate_per_s"] < 0:
            fail(f"{path}: counter {name!r} is negative: {counter}")
    for name, sk in doc["sketches"].items():
        where = f"{path}: sketch {name!r}"
        for key in ("count", "sum", "min", "max", "p50", "p95", "p99",
                    "relative_error"):
            if key not in sk:
                fail(f"{where}: lacks {key!r}")
        if sk["count"] > 0:
            if not sk["p50"] <= sk["p95"] <= sk["p99"]:
                fail(f"{where}: quantiles out of order: {sk}")
            if not sk["min"] <= sk["max"]:
                fail(f"{where}: min > max: {sk}")
        if not 0 < sk["relative_error"] < 1:
            fail(f"{where}: relative_error out of (0, 1): {sk}")
    samples = doc["samples"]
    if not isinstance(samples, list):
        fail(f"{path}: samples is not a list")
    last_uptime = -1.0
    for i, sample in enumerate(samples):
        for key in ("uptime_seconds", "sample_cost_us", "gauges",
                    "counters"):
            if key not in sample:
                fail(f"{path}: sample {i} lacks {key!r}")
        if sample["uptime_seconds"] < last_uptime:
            fail(f"{path}: sample {i} goes back in time")
        last_uptime = sample["uptime_seconds"]
    print(f"check_obs_json: {path}: {len(doc['sketches'])} sketches, "
          f"{len(samples)} samples OK")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace")
    parser.add_argument("--report")
    parser.add_argument("--bench")
    parser.add_argument("--metrics")
    parser.add_argument("--load")
    parser.add_argument("--flight")
    args = parser.parse_args()
    if not args.trace and not args.report and not args.bench \
            and not args.metrics and not args.load and not args.flight:
        parser.error("pass --trace, --report, --bench, --metrics, --load, "
                     "and/or --flight")
    if args.trace:
        check_trace(args.trace)
    if args.report:
        check_report(args.report)
    if args.bench:
        check_bench(args.bench)
    if args.metrics:
        check_metrics(args.metrics)
    if args.load:
        check_load(args.load)
    if args.flight:
        check_flight(args.flight)


if __name__ == "__main__":
    main()
