#!/usr/bin/env python3
"""Validates skymr observability artifacts: a Chrome trace (skymr-trace-v1)
and/or a job report (skymr-report-v1).

Usage:
    check_obs_json.py [--trace trace.json] [--report report.json]

Exits non-zero with a diagnostic on the first violation. Used by the CI
obs-smoke job; handy locally after `skymr_cli stats --trace-out ...
--report-out ...`.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_obs_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "skymr-trace-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    if doc.get("displayTimeUnit") != "ms":
        fail(f"{path}: displayTimeUnit is {doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")
    names = set()
    for i, e in enumerate(events):
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in e:
                fail(f"{path}: event {i} lacks {key!r}: {e}")
        if e["ph"] not in ("X", "i"):
            fail(f"{path}: event {i} has phase {e['ph']!r}")
        if e["ph"] == "X" and "dur" not in e:
            fail(f"{path}: complete event {i} lacks dur")
        if e["ph"] == "i" and e.get("s") != "t":
            fail(f"{path}: instant event {i} lacks scope 's':'t'")
        if e["ts"] < 0 or e.get("dur", 0) < 0:
            fail(f"{path}: event {i} has a negative timestamp/duration")
        names.add(e["name"])
    # An engine run must at least show the pipeline and one job with both
    # waves; anything less means the hooks regressed.
    for required in ("skyline.pipeline", "map.wave", "reduce.wave"):
        if required not in names:
            fail(f"{path}: no {required!r} span (got {sorted(names)})")
    print(f"check_obs_json: {path}: {len(events)} events OK")


def check_histogram(where, h):
    for key in ("count", "sum", "min", "max", "mean", "p50", "p95", "p99"):
        if key not in h:
            fail(f"{where}: histogram lacks {key!r}")
    if h["count"] > 0:
        if not h["min"] <= h["p50"] <= h["p95"] <= h["p99"] or \
           not h["p99"] <= h["max"]:
            fail(f"{where}: percentiles out of order: {h}")
        if not h["min"] <= h["mean"] <= h["max"]:
            fail(f"{where}: mean outside [min, max]: {h}")


def check_report(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "skymr-report-v1":
        fail(f"{path}: schema is {doc.get('schema')!r}")
    for key in ("algorithm", "wall_seconds", "skyline_size", "jobs"):
        if key not in doc:
            fail(f"{path}: missing {key!r}")
    if not doc["jobs"]:
        fail(f"{path}: jobs is empty")
    for job in doc["jobs"]:
        where = f"{path}: job {job.get('name')!r}"
        for key in ("name", "wall_seconds", "shuffle_bytes", "task_retries",
                    "cache_hits", "cache_misses", "counters", "histograms",
                    "skew", "map_tasks", "reduce_tasks"):
            if key not in job:
                fail(f"{where}: missing {key!r}")
        for name, h in job["histograms"].items():
            check_histogram(f"{where}: {name}", h)
        for task in job["map_tasks"] + job["reduce_tasks"]:
            if task["attempts"] < 1:
                fail(f"{where}: task with attempts < 1: {task}")
    if doc.get("ppd", 0) > 0:
        cm = doc.get("cost_model")
        if cm is None:
            fail(f"{path}: grid run (ppd > 0) without cost_model")
        for key in ("predicted_mapper_comparisons",
                    "observed_max_mapper_comparisons",
                    "predicted_reducer_comparisons",
                    "observed_max_reducer_comparisons"):
            if key not in cm:
                fail(f"{path}: cost_model lacks {key!r}")
    print(f"check_obs_json: {path}: {len(doc['jobs'])} jobs OK")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace")
    parser.add_argument("--report")
    args = parser.parse_args()
    if not args.trace and not args.report:
        parser.error("pass --trace and/or --report")
    if args.trace:
        check_trace(args.trace)
    if args.report:
        check_report(args.report)


if __name__ == "__main__":
    main()
