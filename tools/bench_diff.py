#!/usr/bin/env python3
"""Diffs a skymr-bench-v1 artifact against a committed baseline.

Usage:
    bench_diff.py --baseline bench/baselines/BENCH_fig7.json \\
                  --current BENCH_fig7.json [--wall-threshold 0.25] \\
                  [--wall-floor 0.05]

Two kinds of signal, two kinds of outcome:

  deterministic   the per-row integer counters are bit-identical for a
                  fixed workload, so ANY difference (a changed counter, a
                  missing row) is a real behavior change -> exit 1. CI
                  hard-gates on this.
  wall time       machine-dependent and noisy; a current median more than
                  --wall-threshold (default 25%) above the baseline's --
                  and above the --wall-floor (default 0.05 s, below which
                  medians are dominated by fixed overhead) -- prints a
                  "wall-regression" warning but still exits 0.

Rows present only in the current artifact are reported as informational
(they become part of the baseline at the next refresh). Rows present only
in the BASELINE are reported as an explicit "orphaned-row" warning naming
the row -- a renamed or deleted bench silently skipping its counters is
exactly the regression-gate hole this catches -- but exit 0 by default so
a bench rename plus baseline refresh can land in one change; pass
--strict-rows to make orphaned rows fail. To refresh a baseline after an
intended behavior change, rerun the bench at the baseline's scale and
copy the artifact over the old file (see EXPERIMENTS.md).
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: FAIL: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)
    # skymr-load-v1 embeds the same rows[] shape (name/wall/metrics/
    # deterministic) as the bench schema, so load artifacts diff with the
    # identical row machinery.
    if doc.get("schema") not in ("skymr-bench-v1", "skymr-load-v1"):
        print(f"bench_diff: FAIL: {path}: schema is {doc.get('schema')!r},"
              " expected 'skymr-bench-v1' or 'skymr-load-v1'",
              file=sys.stderr)
        sys.exit(1)
    return doc


def rows_by_name(doc, path):
    out = {}
    for row in doc.get("rows", []):
        name = row.get("name")
        if not name:
            print(f"bench_diff: FAIL: {path}: row without a name",
                  file=sys.stderr)
            sys.exit(1)
        if name in out:
            print(f"bench_diff: FAIL: {path}: duplicate row {name!r}",
                  file=sys.stderr)
            sys.exit(1)
        out[name] = row
    return out


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--wall-threshold", type=float, default=0.25,
                        help="fractional wall-median regression that "
                             "triggers a warning (default 0.25)")
    parser.add_argument("--wall-floor", type=float, default=0.05,
                        help="ignore wall regressions when the baseline "
                             "median is below this many seconds "
                             "(default 0.05)")
    parser.add_argument("--strict-rows", action="store_true",
                        help="fail (exit 1) when a baseline row has no "
                             "matching current row, instead of warning")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline.get("schema") != current.get("schema"):
        print(f"bench_diff: FAIL: schema mismatch: baseline is "
              f"{baseline.get('schema')!r}, current is "
              f"{current.get('schema')!r}", file=sys.stderr)
        sys.exit(1)
    if baseline.get("bench") != current.get("bench"):
        print(f"bench_diff: FAIL: bench name mismatch: baseline is "
              f"{baseline.get('bench')!r}, current is "
              f"{current.get('bench')!r}", file=sys.stderr)
        sys.exit(1)

    base_rows = rows_by_name(baseline, args.baseline)
    cur_rows = rows_by_name(current, args.current)

    failures = []
    warnings = 0
    for name, base_row in base_rows.items():
        cur_row = cur_rows.get(name)
        if cur_row is None:
            message = (f"orphaned-row: baseline row {name!r} has no "
                       f"matching row in {args.current} -- its "
                       "deterministic counters were NOT checked; rename "
                       "the bench back or refresh the baseline")
            if args.strict_rows:
                failures.append(message)
            else:
                print(f"bench_diff: {message}")
                warnings += 1
            continue
        base_det = base_row.get("deterministic", {})
        cur_det = cur_row.get("deterministic", {})
        for counter in sorted(set(base_det) | set(cur_det)):
            b = base_det.get(counter)
            c = cur_det.get(counter)
            if b != c:
                failures.append(f"row {name!r}: deterministic counter "
                                f"{counter!r} changed: {b} -> {c}")
        base_median = base_row.get("wall", {}).get("median_seconds", 0.0)
        cur_median = cur_row.get("wall", {}).get("median_seconds", 0.0)
        if base_median >= args.wall_floor and \
                cur_median > base_median * (1.0 + args.wall_threshold):
            print(f"bench_diff: wall-regression: row {name!r}: median "
                  f"{base_median:.4f}s -> {cur_median:.4f}s "
                  f"(+{100.0 * (cur_median / base_median - 1.0):.0f}%)")
            warnings += 1

    for name in sorted(set(cur_rows) - set(base_rows)):
        print(f"bench_diff: note: row {name!r} is new (not in baseline)")

    if failures:
        for failure in failures:
            print(f"bench_diff: FAIL: {failure}", file=sys.stderr)
        print(f"bench_diff: {len(failures)} deterministic difference(s) vs "
              f"{args.baseline}", file=sys.stderr)
        sys.exit(1)
    print(f"bench_diff: OK: {len(base_rows)} rows match {args.baseline}"
          + (f" ({warnings} wall warning(s))" if warnings else ""))


if __name__ == "__main__":
    main()
