// Harness: src/obs/json_parse.h on raw bytes.
//
// Properties enforced:
//   1. ParseJson never crashes, loops forever, or exhausts the stack —
//      in particular deep "[[[[..." nesting must come back as a clean
//      "nesting too deep" error (kMaxJsonNestingDepth);
//   2. the parser accepts what the src/obs/json.h writer emits: for any
//      parsed document, write -> parse -> write is a fixpoint (the first
//      write canonicalizes number formatting and non-finite doubles, the
//      second round trip must reproduce it byte for byte).

#include <sstream>
#include <string_view>

#include "fuzz/fuzz_common.h"
#include "src/obs/json.h"
#include "src/obs/json_parse.h"

namespace {

using skymr::obs::JsonValue;
using skymr::obs::JsonWriter;

/// Re-emits a parsed value through the production writer. Recursion depth
/// is bounded by the parser's own kMaxJsonNestingDepth.
void WriteValue(JsonWriter& writer, const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      writer.Null();
      break;
    case JsonValue::Kind::kBool:
      writer.Bool(value.AsBool());
      break;
    case JsonValue::Kind::kNumber:
      writer.Double(value.AsDouble());
      break;
    case JsonValue::Kind::kString:
      writer.String(value.AsString());
      break;
    case JsonValue::Kind::kArray:
      writer.BeginArray();
      for (const JsonValue& item : value.AsArray()) {
        WriteValue(writer, item);
      }
      writer.EndArray();
      break;
    case JsonValue::Kind::kObject:
      writer.BeginObject();
      for (const auto& [key, member] : value.AsObject()) {
        writer.Key(key);
        WriteValue(writer, member);
      }
      writer.EndObject();
      break;
  }
}

std::string Render(const JsonValue& value) {
  std::ostringstream out;
  JsonWriter writer(out);
  WriteValue(writer, value);
  return out.str();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) {
    return 0;  // Giant inputs only slow exploration down.
  }
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = skymr::obs::ParseJson(text);
  if (!parsed.ok()) {
    return 0;  // Clean rejection is a correct outcome.
  }
  const std::string once = Render(parsed.value());
  auto reparsed = skymr::obs::ParseJson(once);
  SKYMR_FUZZ_ASSERT(reparsed.ok());
  const std::string twice = Render(reparsed.value());
  SKYMR_FUZZ_ASSERT(once == twice);
  return 0;
}
