// Replay driver for the fuzz harnesses: feeds files (or whole corpus
// directories) through LLVMFuzzerTestOneInput, one at a time, exactly as
// libFuzzer would. This is what turns every committed corpus input into a
// plain ctest regression: the replay binaries build with any compiler and
// inherit whatever sanitizer preset the tree was configured with, so the
// ASan/UBSan and TSan CI legs re-check every historical crash input on
// every run. A harness failure aborts the process (sanitizer report or
// SKYMR_FUZZ_ASSERT), which fails the test.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReplayFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "replay: cannot open %s\n", path.c_str());
    return false;
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <corpus-file-or-directory>...\n"
                 "Replays each input through the fuzz harness; any crash "
                 "or fuzz assertion aborts.\n",
                 argv[0]);
    return 2;
  }
  size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      // Sorted for a stable replay order across filesystems.
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) {
          files.push_back(entry.path());
        }
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        if (!ReplayFile(file)) {
          return 1;
        }
        ++replayed;
      }
    } else if (std::filesystem::is_regular_file(arg, ec)) {
      if (!ReplayFile(arg)) {
        return 1;
      }
      ++replayed;
    } else {
      std::fprintf(stderr, "replay: no such file or directory: %s\n",
                   argv[i]);
      return 1;
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "replay: no corpus inputs found\n");
    return 1;
  }
  std::printf("replay: %zu input(s) OK\n", replayed);
  return 0;
}
