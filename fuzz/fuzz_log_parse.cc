// Harness: src/obs/log.h ParseLogLine on raw bytes — the flight-recorder
// dump reader and any external log shipper consume these lines, so the
// parser is an untrusted-input boundary.
//
// Properties enforced:
//   1. ParseLogLine never crashes on any byte sequence — malformed JSON,
//      wrong types, unknown severities, and oversized strings all come
//      back as a clean Status or a truncated record;
//   2. for any line it accepts, FormatLogLine(ParseLogLine(line)) is a
//      fixpoint: formatting the parsed record and parsing it again
//      reproduces the same line byte for byte (canonical number
//      formatting, identical truncation, identical field omission);
//   3. a synthesized record built from the fuzz bytes (mode byte 1)
//      survives Format -> Parse with every field intact, including
//      strings at exactly the capacity boundaries.

#include <cmath>
#include <cstring>
#include <string>
#include <string_view>

#include "fuzz/fuzz_common.h"
#include "src/obs/log.h"

namespace {

using skymr::fuzz::FuzzInput;
using skymr::obs::LogRecord;
using skymr::obs::LogSeverity;

void FillString(FuzzInput& in, char* out, size_t capacity) {
  // Up to capacity bytes (deliberately allowed to hit the boundary);
  // printable-ish remap keeps the record valid without hiding escapes.
  const size_t n = in.ConsumeIntegralInRange(0, capacity - 1);
  const std::string raw = in.ConsumeBytes(n);
  for (size_t i = 0; i < raw.size(); ++i) {
    out[i] = raw[i] == '\0' ? '.' : raw[i];
  }
  out[raw.size()] = '\0';
}

void RoundTripSynthesized(FuzzInput& in) {
  LogRecord record;
  // Integer-valued timestamp: 10 digits survive the writer's %.12g
  // exactly (fractional ts_us with more significant digits would not).
  record.ts_us = static_cast<double>(in.ConsumeRaw<uint32_t>());
  record.severity = static_cast<LogSeverity>(
      in.ConsumeIntegralInRange(0, 4));
  // query ids live below 2^53 so JSON doubles hold them exactly.
  record.query_id = in.ConsumeRaw<uint64_t>() & ((uint64_t{1} << 53) - 1);
  record.task = static_cast<int32_t>(in.ConsumeIntegralInRange(0, 1u << 20)) -
                1;  // -1 = absent is reachable
  record.attempt = static_cast<int32_t>(in.ConsumeIntegralInRange(0, 16));
  FillString(in, record.event, LogRecord::kEventCapacity);
  FillString(in, record.job, LogRecord::kTagCapacity);
  FillString(in, record.tag, LogRecord::kTagCapacity);
  FillString(in, record.message, LogRecord::kMessageCapacity);

  const std::string line = skymr::obs::FormatLogLine(record);
  auto parsed = skymr::obs::ParseLogLine(line);
  SKYMR_FUZZ_ASSERT(parsed.ok());
  SKYMR_FUZZ_ASSERT(parsed->ts_us == record.ts_us);
  SKYMR_FUZZ_ASSERT(parsed->severity == record.severity);
  SKYMR_FUZZ_ASSERT(parsed->query_id == record.query_id);
  SKYMR_FUZZ_ASSERT(parsed->task == record.task);
  SKYMR_FUZZ_ASSERT(parsed->attempt == record.attempt);
  SKYMR_FUZZ_ASSERT(std::strcmp(parsed->event, record.event) == 0);
  SKYMR_FUZZ_ASSERT(std::strcmp(parsed->job, record.job) == 0);
  SKYMR_FUZZ_ASSERT(std::strcmp(parsed->tag, record.tag) == 0);
  SKYMR_FUZZ_ASSERT(std::strcmp(parsed->message, record.message) == 0);
  SKYMR_FUZZ_ASSERT(skymr::obs::FormatLogLine(*parsed) == line);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 18)) {
    return 0;  // Real log lines are short; giant inputs slow exploration.
  }
  FuzzInput in(data, size);
  if (in.ConsumeBool()) {
    RoundTripSynthesized(in);
    return 0;
  }
  const std::string_view line = in.RemainingView();
  auto parsed = skymr::obs::ParseLogLine(line);
  if (!parsed.ok()) {
    return 0;  // Clean rejection is a correct outcome.
  }
  const std::string once = skymr::obs::FormatLogLine(parsed.value());
  auto reparsed = skymr::obs::ParseLogLine(once);
  SKYMR_FUZZ_ASSERT(reparsed.ok());
  SKYMR_FUZZ_ASSERT(skymr::obs::FormatLogLine(reparsed.value()) == once);
  return 0;
}
