// Harness: configuration validation (ValidateChaosSchedule and
// RunnerConfig::Validate) plus a bounded end-to-end ComputeSkyline run.
//
// Properties enforced:
//   1. validation is total: arbitrary field values — including NaN,
//      infinities, negative zero, and out-of-range enums — come back as
//      a Status, never a throw, crash, or hang. Raw double bit patterns
//      are used deliberately: NaN passing a range check here once meant
//      an unterminating retry loop downstream;
//   2. ComputeSkyline honors its never-throws contract: with a bounded
//      (small, terminating) configuration and a tiny dataset, any
//      outcome is acceptable as long as it is a Status.
//
// Field consumption order is load-bearing: fuzz/gen_seed_corpus.cc
// writes seed inputs by appending fields in exactly the order consumed
// here. Keep the two in sync.

#include <cstdint>

#include "fuzz/fuzz_common.h"
#include "src/core/checkpoint.h"
#include "src/core/runner.h"
#include "src/mapreduce/chaos.h"

namespace {

using skymr::fuzz::FuzzInput;

skymr::mr::ChaosSchedule ConsumeChaosSchedule(FuzzInput* input) {
  skymr::mr::ChaosSchedule chaos;
  chaos.seed = input->ConsumeRaw<uint64_t>();
  chaos.crash_rate = input->ConsumeDouble();
  chaos.crash_until_attempt = input->ConsumeRaw<int32_t>();
  chaos.slow_rate = input->ConsumeDouble();
  chaos.slow_ms = input->ConsumeDouble();
  chaos.slow_task = input->ConsumeRaw<int32_t>();
  chaos.slow_until_attempt = input->ConsumeRaw<int32_t>();
  chaos.corrupt_rate = input->ConsumeDouble();
  chaos.cache_fail_rate = input->ConsumeDouble();
  chaos.bad_worker = input->ConsumeRaw<int32_t>();
  chaos.fail_job = input->ConsumeBytes(8);
  return chaos;
}

/// Arbitrary-bits config: every numeric field straight from the fuzz
/// input. Only Validate() may run on this — the property is that it
/// rejects garbage with a Status instead of letting it near the engine.
skymr::RunnerConfig ConsumeRawConfig(FuzzInput* input) {
  skymr::RunnerConfig config;
  config.algorithm =
      static_cast<skymr::Algorithm>(input->ConsumeRaw<uint8_t>());
  config.engine.num_map_tasks = input->ConsumeRaw<int32_t>();
  config.engine.num_reducers = input->ConsumeRaw<int32_t>();
  config.engine.num_threads = input->ConsumeRaw<int16_t>();
  config.engine.max_task_attempts = input->ConsumeRaw<int32_t>();
  config.engine.retry_backoff_base_ms = input->ConsumeDouble();
  config.engine.retry_backoff_max_ms = input->ConsumeDouble();
  config.engine.num_workers = input->ConsumeRaw<int16_t>();
  config.engine.worker_blacklist_threshold = input->ConsumeRaw<int32_t>();
  config.engine.speculative_execution = input->ConsumeBool();
  config.engine.speculation_wave_fraction = input->ConsumeDouble();
  config.engine.speculation_slowdown = input->ConsumeDouble();
  config.engine.speculation_poll_ms = input->ConsumeDouble();
  config.engine.chaos = ConsumeChaosSchedule(input);
  config.ppd.explicit_ppd = input->ConsumeRaw<uint32_t>();
  config.ppd.strategy =
      static_cast<skymr::core::PpdStrategy>(input->ConsumeRaw<uint8_t>());
  config.ppd.target_tpp = input->ConsumeDouble();
  config.ppd.max_candidate = input->ConsumeRaw<uint32_t>();
  config.ppd.max_cells = input->ConsumeRaw<uint64_t>();
  config.prune_mode =
      static_cast<skymr::core::PruneMode>(input->ConsumeRaw<uint8_t>());
  config.merge = static_cast<skymr::core::GroupMergeStrategy>(
      input->ConsumeRaw<uint8_t>());
  config.local_algorithm =
      static_cast<skymr::core::LocalAlgorithm>(input->ConsumeRaw<uint8_t>());
  return config;
}

/// Bounded config: small task counts, one thread, few attempts, mild
/// chaos — everything a run needs to terminate quickly, while still
/// exploring the validation boundary and the failure/degradation paths.
skymr::RunnerConfig ConsumeBoundedConfig(FuzzInput* input) {
  skymr::RunnerConfig config;
  config.algorithm = static_cast<skymr::Algorithm>(
      input->ConsumeIntegralInRange(0, 5));
  config.engine.num_map_tasks =
      static_cast<int>(input->ConsumeIntegralInRange(1, 4));
  config.engine.num_reducers =
      static_cast<int>(input->ConsumeIntegralInRange(1, 4));
  config.engine.num_threads = 1;
  config.engine.max_task_attempts =
      static_cast<int>(input->ConsumeIntegralInRange(1, 4));
  config.engine.retry_backoff_base_ms = 0.0;  // No sleeping in fuzz runs.
  config.engine.chaos.seed = input->ConsumeRaw<uint64_t>();
  config.engine.chaos.crash_rate = 0.5 * input->ConsumeUnitDouble();
  config.engine.chaos.corrupt_rate = 0.5 * input->ConsumeUnitDouble();
  config.engine.chaos.cache_fail_rate = 0.5 * input->ConsumeUnitDouble();
  config.ppd.max_candidate =
      static_cast<uint32_t>(input->ConsumeIntegralInRange(2, 6));
  if (input->ConsumeBool()) {
    config.ppd.explicit_ppd =
        static_cast<uint32_t>(input->ConsumeIntegralInRange(2, 4));
  }
  config.merge = static_cast<skymr::core::GroupMergeStrategy>(
      input->ConsumeIntegralInRange(0, 3));
  config.unit_bounds = input->ConsumeBool();
  config.degrade_to_single_reducer = input->ConsumeBool();
  return config;
}

/// Fixed tiny dataset: 8 tuples, 2-d, with ties and duplicates. The
/// interesting state space is the configuration, not the data.
skymr::Dataset TinyDataset() {
  skymr::Dataset data(2);
  data.Append({0.10, 0.90});
  data.Append({0.50, 0.50});
  data.Append({0.90, 0.10});
  data.Append({0.50, 0.50});  // Exact duplicate.
  data.Append({0.25, 0.25});
  data.Append({0.75, 0.75});  // Dominated.
  data.Append({0.25, 0.75});
  data.Append({0.00, 1.00});  // Domain corner.
  return data;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0 || size > 4096) {
    return 0;  // Configs are small; long inputs add nothing.
  }
  FuzzInput input(data, size);
  const bool run_pipeline = input.ConsumeBool();
  try {
    if (!run_pipeline) {
      const skymr::mr::ChaosSchedule chaos = ConsumeChaosSchedule(&input);
      const int max_attempts =
          static_cast<int>(input.ConsumeRaw<int32_t>());
      (void)skymr::mr::ValidateChaosSchedule(chaos, max_attempts);
      const skymr::RunnerConfig config = ConsumeRawConfig(&input);
      (void)config.Validate();
      return 0;
    }
    const skymr::RunnerConfig config = ConsumeBoundedConfig(&input);
    const skymr::Dataset data = TinyDataset();
    skymr::core::PipelineCheckpoint checkpoint;
    skymr::RunnerConfig with_checkpoint = config;
    with_checkpoint.checkpoint = &checkpoint;
    // Any Status is fine (chaos may exhaust the attempt budget); the
    // contract is no throw, no crash, no hang.
    (void)skymr::ComputeSkyline(data, with_checkpoint);
  } catch (...) {
    SKYMR_FUZZ_ASSERT(!"validation or ComputeSkyline threw");
  }
  return 0;
}
