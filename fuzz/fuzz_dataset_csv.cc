// Harness: the CSV line parser/formatter (src/common/csv.h) and the
// dataset import boundary (src/data/dataset_io.h) on raw bytes — the
// path every external data file takes into the library.
//
// Properties enforced:
//   1. ParseCsvText / LoadCsvFromString never crash: arbitrary bytes
//      yield rows / a Dataset or an error Status;
//   2. per row, format -> parse is the identity:
//      ParseCsvLine(FormatCsvLine(fields)) == fields (RFC-4180 quoting
//      of commas, quotes, and CR/LF survives the round trip);
//   3. an accepted dataset round-trips: SaveCsvToString (%.17g fields)
//      -> LoadCsvFromString reproduces dim, size, and every value
//      (bitwise for finite doubles; NaN maps to NaN).

#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz/fuzz_common.h"
#include "src/common/csv.h"
#include "src/data/dataset_io.h"

namespace {

bool SameValue(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::isnan(a) && std::isnan(b);
  }
  return a == b;  // %.17g round-trips finite doubles exactly.
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0 || size > (1u << 20)) {
    return 0;
  }
  skymr::fuzz::FuzzInput input(data, size);
  const bool has_header = input.ConsumeBool();
  const std::string_view text = input.RemainingView();

  auto rows_or = skymr::ParseCsvText(text);
  if (rows_or.ok()) {
    for (const auto& fields : rows_or.value()) {
      // ParseCsvLine always yields at least one field, so the empty
      // row (never produced by ParseCsvText) is out of scope.
      SKYMR_FUZZ_ASSERT(!fields.empty());
      const std::string line = skymr::FormatCsvLine(fields);
      SKYMR_FUZZ_ASSERT(skymr::ParseCsvLine(line) == fields);
    }
  }

  auto dataset_or = skymr::data::LoadCsvFromString(text, has_header);
  if (!dataset_or.ok()) {
    return 0;  // Clean rejection is a correct outcome.
  }
  const skymr::Dataset& dataset = dataset_or.value();
  auto csv_or = skymr::data::SaveCsvToString(dataset);
  SKYMR_FUZZ_ASSERT(csv_or.ok());
  auto round_or = skymr::data::LoadCsvFromString(csv_or.value(), false);
  SKYMR_FUZZ_ASSERT(round_or.ok());
  const skymr::Dataset& round = round_or.value();
  SKYMR_FUZZ_ASSERT(round.dim() == dataset.dim());
  SKYMR_FUZZ_ASSERT(round.size() == dataset.size());
  for (size_t i = 0; i < dataset.values().size(); ++i) {
    SKYMR_FUZZ_ASSERT(SameValue(round.values()[i], dataset.values()[i]));
  }
  return 0;
}
