// Harness: differential testing of the BBS R-tree kernel against BNL.
//
// The fuzz input is byte-sliced into a small dataset (dimension, row
// count, optional coarse value lattice forcing exact ties, explicit
// duplicate rows), adversarial R-tree packing parameters, and an
// optional constraint box. BBS — tree build, mindist heap, tree-descent
// dominance oracle — must return exactly the id set the windowed BNL
// scan returns on the same rows. Any divergence (missed skyline point,
// dominated survivor, duplicate mishandling, constraint leak) aborts.
//
// Field consumption order is load-bearing: fuzz/gen_seed_corpus.cc
// writes seed inputs by appending fields in exactly the order consumed
// here. Keep the two in sync.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fuzz/fuzz_common.h"
#include "src/local/bbs.h"
#include "src/local/bnl.h"
#include "src/relation/box.h"
#include "src/relation/dataset.h"

namespace {

using skymr::fuzz::FuzzInput;

std::vector<skymr::TupleId> SortedIds(const skymr::SkylineWindow& window) {
  std::vector<skymr::TupleId> ids = window.ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > 4096) {
    return 0;  // Small datasets already cover the structural state space.
  }
  FuzzInput input(data, size);

  const size_t dim = static_cast<size_t>(input.ConsumeIntegralInRange(1, 6));
  const size_t n = static_cast<size_t>(input.ConsumeIntegralInRange(0, 64));
  // lattice > 0 snaps coordinates to lattice levels: exact ties and
  // duplicated MBR corners, the hard cases for tree pruning.
  const uint64_t lattice = input.ConsumeIntegralInRange(0, 6);
  // Degenerate packing parameters (1-row leaves, 2-way fanout) make the
  // tree as deep and as oddly filled as it can get.
  skymr::RtreeOptions options;
  options.leaf_capacity =
      static_cast<uint32_t>(input.ConsumeIntegralInRange(1, 16));
  options.fanout = static_cast<uint32_t>(input.ConsumeIntegralInRange(2, 8));
  const bool use_box = input.ConsumeBool();
  skymr::Box box;
  if (use_box) {
    for (size_t k = 0; k < dim; ++k) {
      const double a = input.ConsumeUnitDouble();
      const double b = input.ConsumeUnitDouble();
      box.lo.push_back(std::min(a, b));
      box.hi.push_back(std::max(a, b));
    }
  }

  skymr::Dataset dataset(dim);
  std::vector<double> row(dim);
  for (size_t i = 0; i < n; ++i) {
    if (input.ConsumeBool() && i > 0) {
      const auto src = static_cast<skymr::TupleId>(
          input.ConsumeIntegralInRange(0, i - 1));
      dataset.Append(dataset.Row(src));
      continue;
    }
    for (double& v : row) {
      if (lattice > 0) {
        v = static_cast<double>(input.ConsumeRaw<uint8_t>() % lattice) /
            static_cast<double>(lattice);
      } else {
        v = input.ConsumeUnitDouble();
      }
    }
    dataset.Append(row);
  }

  const skymr::Box* constraint = use_box ? &box : nullptr;
  skymr::BbsStats stats;
  const skymr::SkylineWindow bbs =
      skymr::BbsSkyline(dataset, nullptr, &stats, constraint, nullptr,
                        options);

  // Reference: filter by the box by hand, then run the windowed scan.
  std::vector<skymr::TupleId> inside;
  for (skymr::TupleId id = 0; id < dataset.size(); ++id) {
    if (constraint == nullptr ||
        constraint->Contains(dataset.Row(id).data(), dim)) {
      inside.push_back(id);
    }
  }
  const skymr::SkylineWindow bnl = skymr::BnlSkyline({dataset, inside});

  SKYMR_FUZZ_ASSERT(bbs.size() == bnl.size());
  SKYMR_FUZZ_ASSERT(SortedIds(bbs) == SortedIds(bnl));
  // Instrumentation sanity: a non-empty result means the traversal
  // popped at least the root.
  SKYMR_FUZZ_ASSERT(bbs.empty() || stats.heap_peak > 0);
  return 0;
}
