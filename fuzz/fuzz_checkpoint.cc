// Harness: PipelineCheckpoint::LoadBytes — the checkpoint file format is
// read back in a later process, so the bytes are untrusted (partial
// writes, disk corruption, a different build's file).
//
// Properties enforced:
//   1. LoadBytes never crashes or throws: any byte sequence yields OK or
//      an IoError Status;
//   2. a failed load leaves the store unchanged (a corrupt checkpoint
//      must fall back to a fresh run, not poison the store);
//   3. an accepted load save -> load -> save round-trips: SaveBytes of
//      the loaded store reloads cleanly into an equal-sized store and
//      re-saves to identical bytes (the format is canonical).

#include <cstdint>
#include <vector>

#include "fuzz/fuzz_common.h"
#include "src/core/checkpoint.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (1u << 20)) {
    return 0;
  }
  skymr::core::PipelineCheckpoint store;
  skymr::Status status;
  try {
    status = store.LoadBytes(data, size, "fuzz input");
  } catch (...) {
    SKYMR_FUZZ_ASSERT(!"LoadBytes threw instead of returning Status");
  }
  if (!status.ok()) {
    SKYMR_FUZZ_ASSERT(store.size() == 0);
    return 0;
  }
  const std::vector<uint8_t> saved = store.SaveBytes();
  skymr::core::PipelineCheckpoint reloaded;
  const skymr::Status again =
      reloaded.LoadBytes(saved.data(), saved.size(), "re-saved bytes");
  SKYMR_FUZZ_ASSERT(again.ok());
  SKYMR_FUZZ_ASSERT(reloaded.size() == store.size());
  SKYMR_FUZZ_ASSERT(reloaded.SaveBytes() == saved);
  return 0;
}
