// Harness: serde decoding of every shuffle wire type in
// src/core/messages.h plus the common serde containers they compose.
//
// The shuffle deliberately feeds these decoders corrupt bytes (the chaos
// harness truncates serialized values), so the contract is strict: for
// arbitrary input the decoder either throws SerdeUnderflow — caught here,
// the engine turns it into a task failure — or produces a value whose
// every row/field is readable (shape invariants hold) and that survives
// an encode -> decode fixpoint.

#include <cstdint>
#include <vector>

#include "fuzz/fuzz_common.h"
#include "src/common/dynamic_bitset.h"
#include "src/common/serde.h"
#include "src/core/messages.h"
#include "src/local/skyline_window.h"

namespace {

using skymr::ByteSource;
using skymr::Serde;
using skymr::SerdeUnderflow;
using skymr::SerializeToBytes;
using skymr::SkylineWindow;

/// Touches every row of a decoded window; under ASan this proves the
/// shape invariant (values.size() == ids.size() * dim) actually holds.
double TouchWindow(const SkylineWindow& window) {
  double sink = 0.0;
  for (size_t i = 0; i < window.size(); ++i) {
    const double* row = window.RowAt(i);
    for (size_t k = 0; k < window.dim(); ++k) {
      sink += row[k];
    }
    sink += static_cast<double>(window.IdAt(i));
  }
  return sink;
}

/// decode -> touch -> encode -> decode fixpoint for one wire type.
template <typename T, typename TouchFn>
void RoundTrip(const uint8_t* data, size_t size, TouchFn&& touch) {
  T decoded;
  try {
    ByteSource source(data, size);
    decoded = Serde<T>::Read(&source);
  } catch (const SerdeUnderflow&) {
    return;  // Clean rejection of corrupt bytes.
  }
  touch(decoded);
  const std::vector<uint8_t> encoded = SerializeToBytes(decoded);
  ByteSource source(encoded.data(), encoded.size());
  T again;
  try {
    again = Serde<T>::Read(&source);
  } catch (const SerdeUnderflow&) {
    SKYMR_FUZZ_ASSERT(!"re-decoding our own encoding underflowed");
  }
  SKYMR_FUZZ_ASSERT(source.AtEnd());
  SKYMR_FUZZ_ASSERT(again == decoded);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0 || size > (1u << 20)) {
    return 0;
  }
  // First byte selects the wire type; the rest is the payload.
  const uint8_t selector = data[0] % 6;
  const uint8_t* payload = data + 1;
  const size_t payload_size = size - 1;
  switch (selector) {
    case 0:
      RoundTrip<SkylineWindow>(payload, payload_size,
                               [](const SkylineWindow& w) { TouchWindow(w); });
      break;
    case 1:
      RoundTrip<skymr::core::PartitionSkyline>(
          payload, payload_size,
          [](const skymr::core::PartitionSkyline& p) {
            TouchWindow(p.window);
          });
      break;
    case 2:
      RoundTrip<skymr::core::LocalSkylineSet>(
          payload, payload_size,
          [](const skymr::core::LocalSkylineSet& s) {
            for (const auto& part : s.parts) {
              TouchWindow(part.window);
            }
          });
      break;
    case 3:
      RoundTrip<skymr::core::GroupPayload>(
          payload, payload_size, [](const skymr::core::GroupPayload& g) {
            for (const auto& part : g.parts) {
              TouchWindow(part.window);
            }
          });
      break;
    case 4:
      RoundTrip<skymr::DynamicBitset>(
          payload, payload_size, [](const skymr::DynamicBitset& bits) {
            volatile size_t sink = bits.Count();
            (void)sink;
          });
      break;
    case 5:
      // The shuffle's generic key/value containers.
      RoundTrip<std::vector<std::pair<uint64_t, std::string>>>(
          payload, payload_size,
          [](const std::vector<std::pair<uint64_t, std::string>>& kvs) {
            size_t total = 0;
            for (const auto& [key, value] : kvs) {
              total += static_cast<size_t>(key) + value.size();
            }
            volatile size_t sink = total;
            (void)sink;
          });
      break;
  }
  return 0;
}
