// Writes the deterministic seed corpora under fuzz/corpus/<harness>/.
//
// Seeds give the fuzzers a running start (valid wire messages, real JSON,
// real CSV) and double as regression inputs: the committed corpus is
// replayed by the fuzz_<name>_replay ctest targets in every sanitizer
// preset. The generator is deterministic — re-running it reproduces the
// same bytes — so regenerated corpora do not churn in git.
//
// Usage: gen_seed_corpus <corpus-root>
//
// The dataset seeds reproduce the adversarial shapes of
// tests/integration/fuzz_test.cc (coarse value lattices forcing exact
// ties, duplicated rows, constant dimensions); the config seeds append
// fields in exactly the order fuzz_config.cc consumes them.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/core/checkpoint.h"
#include "src/core/messages.h"
#include "src/data/dataset_io.h"
#include "src/local/skyline_window.h"
#include "src/obs/log.h"
#include "src/relation/dataset.h"

namespace skymr::fuzz {
namespace {

namespace fs = std::filesystem;

/// Little-endian byte assembler mirroring FuzzInput::ConsumeRaw.
class SeedBuilder {
 public:
  template <typename T>
  SeedBuilder& Raw(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const size_t old = bytes_.size();
    bytes_.resize(old + sizeof(T));
    std::memcpy(bytes_.data() + old, &value, sizeof(T));
    return *this;
  }

  SeedBuilder& Text(std::string_view text) {
    bytes_.insert(bytes_.end(), text.begin(), text.end());
    return *this;
  }

  /// Double encoded as its bit pattern (what ConsumeDouble reads).
  SeedBuilder& DoubleBits(uint64_t bits) { return Raw<uint64_t>(bits); }
  SeedBuilder& Double(double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return DoubleBits(bits);
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

int g_written = 0;

void WriteSeed(const fs::path& root, const std::string& harness,
               const std::string& name, const std::vector<uint8_t>& bytes) {
  const fs::path dir = root / harness;
  fs::create_directories(dir);
  const fs::path path = dir / name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "gen_seed_corpus: write failed: %s\n",
                 path.c_str());
    std::exit(1);
  }
  ++g_written;
}

void WriteSeed(const fs::path& root, const std::string& harness,
               const std::string& name, const std::string& text) {
  WriteSeed(root, harness, name,
            std::vector<uint8_t>(text.begin(), text.end()));
}

// ---------------------------------------------------------------- json

void JsonSeeds(const fs::path& root) {
  WriteSeed(root, "json_parse", "object",
            R"({"name":"skymr","jobs":[{"id":1,"maps":4},{"id":2,"maps":8}],)"
            R"("ok":true,"err":null,"ratio":0.125})");
  WriteSeed(root, "json_parse", "numbers",
            R"([0,-0,1e308,-1e-308,2.2250738585072014e-308,)"
            R"(9007199254740993,0.1,3.141592653589793])");
  WriteSeed(root, "json_parse", "strings",
            R"(["\u0041\u00e9\ud83d\ude00","\"\\\/\b\f\n\r\t","plain"])");
  // 300 levels of '[' — past kMaxJsonNestingDepth; must be rejected
  // cleanly, not by stack exhaustion.
  std::string deep(300, '[');
  WriteSeed(root, "json_parse", "deep_nesting", deep);
  // Exactly at the limit, and balanced: must parse.
  std::string at_limit;
  at_limit.append(255, '[');
  at_limit.append("1");
  at_limit.append(255, ']');
  WriteSeed(root, "json_parse", "at_depth_limit", at_limit);
  WriteSeed(root, "json_parse", "truncated", R"({"a":[1,2,{"b":)");
}

// ----------------------------------------------------------- log_parse

/// Seeds for fuzz_log_parse.cc. First byte picks the mode: even = parse
/// the remaining bytes as a log line, odd = synthesize a record from the
/// remaining bytes and round-trip it.
void LogParseSeeds(const fs::path& root) {
  const auto raw = [](const std::string& line) {
    std::string bytes(1, '\0');  // mode 0: raw parse
    bytes += line;
    return bytes;
  };

  // Real FormatLogLine output: a fully-populated record and a minimal one.
  obs::LogRecord full;
  full.ts_us = 123456.0;
  full.severity = obs::LogSeverity::kWarn;
  full.query_id = 42;
  full.task = 3;
  full.attempt = 2;
  std::strncpy(full.event, "task.retry", sizeof(full.event) - 1);
  std::strncpy(full.job, "skyline", sizeof(full.job) - 1);
  std::strncpy(full.tag, "size=large", sizeof(full.tag) - 1);
  std::strncpy(full.message, "attempt 2 of task 3 after crash",
               sizeof(full.message) - 1);
  WriteSeed(root, "log_parse", "full_record", raw(obs::FormatLogLine(full)));

  obs::LogRecord minimal;
  minimal.ts_us = 1.0;
  std::strncpy(minimal.event, "job.start", sizeof(minimal.event) - 1);
  WriteSeed(root, "log_parse", "minimal_record",
            raw(obs::FormatLogLine(minimal)));

  // Adversarial lines the parser must reject or truncate cleanly.
  WriteSeed(root, "log_parse", "truncated",
            raw(R"({"ts_us":12.5,"sev":"info","event":"job)"));
  WriteSeed(root, "log_parse", "bad_severity",
            raw(R"({"ts_us":1,"sev":"loud","event":"x"})"));
  WriteSeed(root, "log_parse", "wrong_types",
            raw(R"({"ts_us":"soon","sev":4,"event":[1],"query":"q"})"));
  WriteSeed(root, "log_parse", "oversized_strings",
            raw(R"({"ts_us":1,"sev":"info","event":")" +
                std::string(200, 'e') + R"(","msg":")" +
                std::string(500, 'm') + R"("})"));
  WriteSeed(root, "log_parse", "huge_query",
            raw(R"({"ts_us":1,"sev":"info","event":"x","query":1e300})"));
  WriteSeed(root, "log_parse", "not_an_object", raw(R"(["ts_us",1])"));

  // Synthesized-mode seeds: mode byte 1 + structured draws (short inputs
  // zero-fill, so even the empty tail is a valid record).
  SeedBuilder synth;
  synth.Raw<uint8_t>(1);
  synth.Raw<uint32_t>(987654);        // ts_us
  synth.Raw<uint64_t>(3);             // severity draw
  synth.Raw<uint64_t>(0x1234567890ULL);  // query_id bits
  synth.Raw<uint64_t>(17);            // task draw
  synth.Raw<uint64_t>(4);             // attempt draw
  synth.Raw<uint64_t>(31);            // event length: capacity boundary
  synth.Text(std::string(31, 'E'));
  synth.Raw<uint64_t>(0);             // empty job
  synth.Raw<uint64_t>(5);
  synth.Text("tag\\\"");              // tag needing JSON escapes
  synth.Raw<uint64_t>(103);           // message at capacity boundary
  synth.Text(std::string(103, 'M'));
  WriteSeed(root, "log_parse", "synth_boundaries", synth.bytes());

  SeedBuilder tiny;
  tiny.Raw<uint8_t>(1);
  WriteSeed(root, "log_parse", "synth_empty", tiny.bytes());
}

// ------------------------------------------------------------ messages

SkylineWindow MakeWindow(size_t dim, size_t rows, Rng* rng) {
  SkylineWindow window(dim);
  std::vector<double> row(dim);
  for (size_t i = 0; i < rows; ++i) {
    for (double& v : row) {
      v = rng->NextDouble();
    }
    window.AppendUnchecked(row.data(),
                           static_cast<TupleId>(rng->NextBounded(1u << 20)));
  }
  return window;
}

template <typename T>
std::vector<uint8_t> MessageSeed(uint8_t selector, const T& value) {
  std::vector<uint8_t> bytes{selector};
  const std::vector<uint8_t> payload = SerializeToBytes(value);
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

void MessageSeeds(const fs::path& root) {
  Rng rng(0x5eedc0de);
  const SkylineWindow window = MakeWindow(3, 12, &rng);
  WriteSeed(root, "messages", "window", MessageSeed(0, window));

  core::PartitionSkyline part;
  part.cell = 42;
  part.window = MakeWindow(2, 6, &rng);
  WriteSeed(root, "messages", "partition_skyline", MessageSeed(1, part));

  core::LocalSkylineSet set;
  for (uint64_t cell = 0; cell < 4; ++cell) {
    core::PartitionSkyline p;
    p.cell = cell * 7;
    p.window = MakeWindow(2, 3, &rng);
    set.parts.push_back(std::move(p));
  }
  WriteSeed(root, "messages", "local_skyline_set", MessageSeed(2, set));

  core::GroupPayload payload;
  payload.reducer_group = 3;
  payload.responsible = {1, 5, 9, 13};
  payload.parts = set.parts;
  WriteSeed(root, "messages", "group_payload", MessageSeed(3, payload));

  DynamicBitset bits(129);  // Straddles a word boundary.
  for (size_t i = 0; i < bits.size(); i += 3) {
    bits.Set(i);
  }
  WriteSeed(root, "messages", "bitset", MessageSeed(4, bits));

  const std::vector<std::pair<uint64_t, std::string>> kvs = {
      {0, ""}, {1, "tuple"}, {UINT64_MAX, std::string(100, 'x')}};
  WriteSeed(root, "messages", "kv_pairs", MessageSeed(5, kvs));

  // Truncation regressions: a valid message cut mid-payload must be a
  // clean SerdeUnderflow.
  std::vector<uint8_t> truncated = MessageSeed(3, payload);
  truncated.resize(truncated.size() / 2);
  WriteSeed(root, "messages", "group_payload_truncated", truncated);

  // Length-prefix bomb: a window header claiming 2^61 rows. The decoder
  // must reject it against remaining() instead of allocating.
  SeedBuilder bomb;
  bomb.Raw<uint8_t>(0).Raw<uint64_t>(3);  // selector window, dim 3.
  bomb.Raw<uint64_t>(uint64_t{1} << 61);  // claimed value count.
  WriteSeed(root, "messages", "length_bomb", bomb.bytes());
}

// ----------------------------------------------------------- checkpoint

core::BitstringBuildResult MakeBitstringResult(uint32_t ppd, Rng* rng) {
  core::BitstringBuildResult result;
  result.ppd = ppd;
  result.bits = DynamicBitset(static_cast<size_t>(ppd) * ppd);
  for (size_t i = 0; i < result.bits.size(); ++i) {
    if (rng->NextBounded(3) != 0) {
      result.bits.Set(i);
    }
  }
  result.nonempty = result.bits.Count();
  result.pruned = rng->NextBounded(result.bits.size() + 1);
  for (uint32_t candidate = 2; candidate <= ppd; ++candidate) {
    result.occupancies.emplace_back(candidate,
                                    rng->NextBounded(1000) + 1);
  }
  return result;
}

void CheckpointSeeds(const fs::path& root) {
  Rng rng(0xc4ec7);
  core::PipelineCheckpoint store;
  store.StoreBitstring(0x1111222233334444ULL, MakeBitstringResult(4, &rng));
  store.StoreBitstring(0xaaaabbbbccccddddULL, MakeBitstringResult(8, &rng));
  const std::vector<uint8_t> bytes = store.SaveBytes();
  WriteSeed(root, "checkpoint", "two_entries", bytes);

  std::vector<uint8_t> truncated = bytes;
  truncated.resize(truncated.size() * 2 / 3);
  WriteSeed(root, "checkpoint", "truncated", truncated);

  std::vector<uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  WriteSeed(root, "checkpoint", "bad_magic", bad_magic);

  std::vector<uint8_t> bit_flip = bytes;
  bit_flip[bytes.size() / 2] ^= 0x10;  // Corrupt an entry body.
  WriteSeed(root, "checkpoint", "bit_flip", bit_flip);

  WriteSeed(root, "checkpoint", "empty_store",
            core::PipelineCheckpoint().SaveBytes());
}

// ---------------------------------------------------------- dataset_csv

/// The adversarial dataset recipe of tests/integration/fuzz_test.cc:
/// coarse lattices (exact ties), duplicated rows, constant dimensions.
Dataset AdversarialDataset(uint64_t seed) {
  Rng rng(seed);
  const size_t dim = 1 + rng.NextBounded(5);
  const size_t n = 1 + rng.NextBounded(40);
  const bool coarse = rng.NextBounded(2) == 0;
  const uint64_t lattice = 2 + rng.NextBounded(5);
  const bool constant_dim = dim > 1 && rng.NextBounded(4) == 0;
  Dataset data(dim);
  std::vector<double> row(dim);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && rng.NextBounded(8) == 0) {
      data.Append(data.Row(static_cast<TupleId>(rng.NextBounded(i))));
      continue;
    }
    for (size_t k = 0; k < dim; ++k) {
      if (constant_dim && k == 0) {
        row[k] = 0.5;
      } else if (coarse) {
        row[k] = static_cast<double>(rng.NextBounded(lattice)) /
                 static_cast<double>(lattice);
      } else {
        row[k] = rng.NextDouble();
      }
    }
    data.Append(row);
  }
  return data;
}

std::vector<uint8_t> CsvSeed(bool has_header, const std::string& text) {
  std::vector<uint8_t> bytes;
  bytes.reserve(1 + text.size());
  bytes.push_back(has_header ? 1 : 0);
  bytes.insert(bytes.end(), text.begin(), text.end());
  return bytes;
}

void DatasetCsvSeeds(const fs::path& root) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const Dataset data = AdversarialDataset(seed);
    std::vector<std::string> header;
    for (size_t k = 0; k < data.dim(); ++k) {
      std::string name = "d";
      name += std::to_string(k);
      header.push_back(std::move(name));
    }
    auto with_header = data::SaveCsvToString(data, header);
    auto bare = data::SaveCsvToString(data);
    WriteSeed(root, "dataset_csv", "adversarial" + std::to_string(seed),
              CsvSeed(seed % 2 == 0, seed % 2 == 0 ? with_header.value()
                                                   : bare.value()));
  }
  WriteSeed(root, "dataset_csv", "quoted",
            CsvSeed(true, "\"x,1\",\"y\"\"q\"\n0.5,0.25\n1,0\n"));
  WriteSeed(root, "dataset_csv", "crlf",
            CsvSeed(false, "0.1,0.2\r\n0.3,0.4\r\n\r\n0.5,0.6\r\n"));
  WriteSeed(root, "dataset_csv", "ragged",
            CsvSeed(false, "1,2,3\n4,5\n6,7,8\n"));
  WriteSeed(root, "dataset_csv", "not_numbers",
            CsvSeed(false, "a,b\n1,two\n"));
  WriteSeed(root, "dataset_csv", "specials",
            CsvSeed(false, "nan,-nan\ninf,-inf\n0,-0\n1e308,-1e-308\n"));
  WriteSeed(root, "dataset_csv", "header_only", CsvSeed(true, "x,y\n"));
}

// --------------------------------------------------------------- config

/// Chaos fields in fuzz_config.cc's ConsumeChaosSchedule order.
void AppendChaos(SeedBuilder* b, uint64_t crash_rate_bits) {
  b->Raw<uint64_t>(7);                // seed
  b->DoubleBits(crash_rate_bits);     // crash_rate
  b->Raw<int32_t>(1);                 // crash_until_attempt
  b->Double(0.25);                    // slow_rate
  b->Double(2.0);                     // slow_ms
  b->Raw<int32_t>(-1);                // slow_task
  b->Raw<int32_t>(1);                 // slow_until_attempt
  b->Double(0.25);                    // corrupt_rate
  b->Double(0.0);                     // cache_fail_rate
  b->Raw<int32_t>(-1);                // bad_worker
  b->Text("chaosjob");                // fail_job (8 bytes)
}

/// Remaining RunnerConfig fields in ConsumeRawConfig order.
void AppendRawConfig(SeedBuilder* b, uint64_t wave_fraction_bits) {
  b->Raw<uint8_t>(1);                 // algorithm
  b->Raw<int32_t>(4);                 // num_map_tasks
  b->Raw<int32_t>(2);                 // num_reducers
  b->Raw<int16_t>(1);                 // num_threads
  b->Raw<int32_t>(4);                 // max_task_attempts
  b->Double(1.0);                     // retry_backoff_base_ms
  b->Double(32.0);                    // retry_backoff_max_ms
  b->Raw<int16_t>(4);                 // num_workers
  b->Raw<int32_t>(3);                 // worker_blacklist_threshold
  b->Raw<uint8_t>(1);                 // speculative_execution
  b->DoubleBits(wave_fraction_bits);  // speculation_wave_fraction
  b->Double(2.0);                     // speculation_slowdown
  b->Double(2.0);                     // speculation_poll_ms
  AppendChaos(b, 0);                  // engine.chaos (crash_rate 0)
  b->Raw<uint32_t>(4);                // ppd.explicit_ppd
  b->Raw<uint8_t>(1);                 // ppd.strategy
  b->Double(512.0);                   // ppd.target_tpp
  b->Raw<uint32_t>(8);                // ppd.max_candidate
  b->Raw<uint64_t>(1 << 20);          // ppd.max_cells
  b->Raw<uint8_t>(0);                 // prune_mode
  b->Raw<uint8_t>(1);                 // merge
  b->Raw<uint8_t>(0);                 // local_algorithm
}

void ConfigSeeds(const fs::path& root) {
  constexpr uint64_t kQuietNaN = 0x7ff8000000000000ULL;
  constexpr uint64_t kHalfBits = 0x3fe0000000000000ULL;  // 0.5
  constexpr uint64_t kOneBits = 0x3ff0000000000000ULL;   // 1.0

  {
    // Validation mode, everything in range.
    SeedBuilder b;
    b.Raw<uint8_t>(0);  // run_pipeline = false
    AppendChaos(&b, kHalfBits);
    b.Raw<int32_t>(4);  // max_attempts
    AppendRawConfig(&b, kHalfBits);
    WriteSeed(root, "config", "validate_sane", b.bytes());
  }
  {
    // NaN crash_rate and wave fraction 1.0: the historical holes in the
    // reject-form range checks.
    SeedBuilder b;
    b.Raw<uint8_t>(0);
    AppendChaos(&b, kQuietNaN);
    b.Raw<int32_t>(4);
    AppendRawConfig(&b, kOneBits);
    WriteSeed(root, "config", "validate_nan_rate", b.bytes());
  }
  {
    // Pipeline mode: full ComputeSkyline on the tiny dataset, no chaos.
    SeedBuilder b;
    b.Raw<uint8_t>(1);      // run_pipeline = true
    b.Raw<uint64_t>(1);     // algorithm range draw
    b.Raw<uint64_t>(2);     // num_map_tasks draw
    b.Raw<uint64_t>(0);     // num_reducers draw
    b.Raw<uint64_t>(0);     // max_task_attempts draw
    b.Raw<uint64_t>(99);    // chaos.seed
    b.Raw<uint32_t>(0);     // crash_rate unit draw
    b.Raw<uint32_t>(0);     // corrupt_rate unit draw
    b.Raw<uint32_t>(0);     // cache_fail_rate unit draw
    b.Raw<uint64_t>(2);     // max_candidate draw
    b.Raw<uint8_t>(1);      // explicit_ppd present
    b.Raw<uint64_t>(1);     // explicit_ppd draw
    b.Raw<uint64_t>(0);     // merge draw
    b.Raw<uint8_t>(1);      // unit_bounds
    b.Raw<uint8_t>(1);      // degrade_to_single_reducer
    WriteSeed(root, "config", "pipeline_clean", b.bytes());
  }
  {
    // Pipeline mode with chaos high enough to exhaust small attempt
    // budgets: exercises retry, degradation, and the error path.
    SeedBuilder b;
    b.Raw<uint8_t>(1);
    b.Raw<uint64_t>(1);          // kMrGpmrs
    b.Raw<uint64_t>(3);
    b.Raw<uint64_t>(3);
    b.Raw<uint64_t>(1);          // 2 attempts
    b.Raw<uint64_t>(0xc4a05);    // chaos.seed
    b.Raw<uint32_t>(0xcccccccc); // crash_rate ~0.4
    b.Raw<uint32_t>(0x40000000); // corrupt_rate ~0.125
    b.Raw<uint32_t>(0x20000000); // cache_fail_rate ~0.06
    b.Raw<uint64_t>(3);
    b.Raw<uint8_t>(0);           // no explicit ppd
    b.Raw<uint64_t>(2);
    b.Raw<uint8_t>(0);
    b.Raw<uint8_t>(1);
    WriteSeed(root, "config", "pipeline_chaos", b.bytes());
  }
}

// ----------------------------------------------------------- bbs_parity

/// Fields in fuzz_bbs_parity.cc's consumption order. Range draws read a
/// uint64 and map it as lo + raw % span, so a raw of (value - lo) lands
/// exactly on `value`.
void BbsParitySeeds(const fs::path& root) {
  {
    // Coarse 3-level lattice in 3-d: exact ties, duplicated MBR corners,
    // small leaves forcing a multi-level tree.
    SeedBuilder b;
    b.Raw<uint64_t>(2);   // dim = 3
    b.Raw<uint64_t>(24);  // n = 24
    b.Raw<uint64_t>(3);   // lattice = 3
    b.Raw<uint64_t>(3);   // leaf_capacity = 4
    b.Raw<uint64_t>(0);   // fanout = 2
    b.Raw<uint8_t>(0);    // no constraint box
    for (uint32_t i = 0; i < 24; ++i) {
      b.Raw<uint8_t>(0);  // fresh row, not a duplicate
      for (uint32_t k = 0; k < 3; ++k) {
        b.Raw<uint8_t>(static_cast<uint8_t>(i * 7 + k * 3));
      }
    }
    WriteSeed(root, "bbs_parity", "lattice_ties", b.bytes());
  }
  {
    // Continuous 2-d rows with duplicates and a constraint box that
    // excludes a dominating corner point.
    SeedBuilder b;
    b.Raw<uint64_t>(1);   // dim = 2
    b.Raw<uint64_t>(16);  // n = 16
    b.Raw<uint64_t>(0);   // continuous values
    b.Raw<uint64_t>(15);  // leaf_capacity = 16
    b.Raw<uint64_t>(6);   // fanout = 8
    b.Raw<uint8_t>(1);    // constraint box present
    for (uint32_t k = 0; k < 2; ++k) {
      b.Raw<uint32_t>(0x33333333);  // ~0.2
      b.Raw<uint32_t>(0xcccccccc);  // ~0.8
    }
    for (uint32_t i = 0; i < 16; ++i) {
      if (i % 5 == 4) {
        b.Raw<uint8_t>(1);             // duplicate ...
        b.Raw<uint64_t>(i % 3);        // ... of an early row
        continue;
      }
      b.Raw<uint8_t>(0);
      b.Raw<uint32_t>(0x11111111u * (i + 1));
      b.Raw<uint32_t>(0x11111111u * (15 - i));
    }
    WriteSeed(root, "bbs_parity", "constrained_dups", b.bytes());
  }
  {
    // Empty dataset with degenerate packing parameters.
    SeedBuilder b;
    b.Raw<uint64_t>(3);  // dim = 4
    b.Raw<uint64_t>(0);  // n = 0
    b.Raw<uint64_t>(0);  // continuous
    b.Raw<uint64_t>(0);  // leaf_capacity = 1
    b.Raw<uint64_t>(0);  // fanout = 2
    b.Raw<uint8_t>(0);
    WriteSeed(root, "bbs_parity", "empty", b.bytes());
  }
  {
    // Deepest possible tree: 64 rows, 1-row leaves, 2-way fanout, binary
    // value lattice (half the rows tie exactly).
    SeedBuilder b;
    b.Raw<uint64_t>(1);   // dim = 2
    b.Raw<uint64_t>(64);  // n = 64
    b.Raw<uint64_t>(2);   // lattice = 2
    b.Raw<uint64_t>(0);   // leaf_capacity = 1
    b.Raw<uint64_t>(0);   // fanout = 2
    b.Raw<uint8_t>(0);
    for (uint32_t i = 0; i < 64; ++i) {
      b.Raw<uint8_t>(static_cast<uint8_t>(i % 11 == 10 ? 1 : 0));
      if (i % 11 == 10) {
        b.Raw<uint64_t>(i / 2);  // duplicate index draw
        continue;
      }
      b.Raw<uint8_t>(static_cast<uint8_t>(i));
      b.Raw<uint8_t>(static_cast<uint8_t>(i * 5 + 1));
    }
    WriteSeed(root, "bbs_parity", "deep_tree", b.bytes());
  }
}

}  // namespace
}  // namespace skymr::fuzz

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  skymr::fuzz::JsonSeeds(root);
  skymr::fuzz::LogParseSeeds(root);
  skymr::fuzz::MessageSeeds(root);
  skymr::fuzz::CheckpointSeeds(root);
  skymr::fuzz::DatasetCsvSeeds(root);
  skymr::fuzz::ConfigSeeds(root);
  skymr::fuzz::BbsParitySeeds(root);
  std::printf("gen_seed_corpus: wrote %d seed(s) under %s\n",
              skymr::fuzz::g_written, root.c_str());
  return 0;
}
