// Shared support for the libFuzzer harnesses under fuzz/.
//
// Every harness implements the libFuzzer entry point
//
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
//
// and is built two ways (fuzz/CMakeLists.txt):
//
//   * fuzz_<name>          -fsanitize=fuzzer coverage-guided binary,
//                          only under SKYMR_FUZZERS=ON (requires Clang);
//   * fuzz_<name>_replay   always built: standalone_main.cc feeds the
//                          committed corpus files through the same entry
//                          point, so every corpus input runs as a plain
//                          ctest regression in every compiler/sanitizer
//                          preset.
//
// FuzzInput is a FuzzedDataProvider-style byte slicer: it deterministically
// decodes structured values (ints, doubles, bounded ranges, strings) from
// the raw fuzz bytes, with no RNG anywhere — the same input bytes always
// produce the same decoded values, so crashes minimize and replay cleanly.
// Exhausted input zero-fills instead of failing, which keeps every byte
// string a valid program for the harness.
//
// Harness discipline: a harness must either return 0 (input handled:
// rejected with a clean Status/SerdeUnderflow, or accepted and
// round-tripped) or die loudly (sanitizer report, SKYMR_FUZZ_ASSERT).
// Never exit nonzero for "boring" inputs — libFuzzer treats that as a
// crash and floods the corpus with junk reproducers.

#ifndef SKYMR_FUZZ_FUZZ_COMMON_H_
#define SKYMR_FUZZ_FUZZ_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

namespace skymr::fuzz {

/// Deterministic byte slicer over one fuzz input.
class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ == size_; }

  /// Consumes min(n, remaining) raw bytes.
  std::string ConsumeBytes(size_t n) {
    const size_t take = std::min(n, remaining());
    std::string out(reinterpret_cast<const char*>(data_ + pos_), take);
    pos_ += take;
    return out;
  }

  /// Consumes everything left as a string (may be empty).
  std::string ConsumeRemaining() { return ConsumeBytes(remaining()); }

  /// View of everything left, without consuming it.
  std::string_view RemainingView() const {
    return {reinterpret_cast<const char*>(data_ + pos_), remaining()};
  }

  /// Consumes sizeof(T) bytes as a little-endian value; missing bytes
  /// read as zero, so short inputs still decode.
  template <typename T>
  T ConsumeRaw() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    const size_t take = std::min(sizeof(T), remaining());
    if (take != 0) {  // data_ may be null for an empty input.
      std::memcpy(&value, data_ + pos_, take);
      pos_ += take;
    }
    return value;
  }

  bool ConsumeBool() { return (ConsumeRaw<uint8_t>() & 1) != 0; }

  /// Uniform-ish value in [lo, hi] (inclusive). Requires lo <= hi.
  uint64_t ConsumeIntegralInRange(uint64_t lo, uint64_t hi) {
    const uint64_t span = hi - lo + 1;  // hi = UINT64_MAX && lo = 0 -> 0.
    const uint64_t raw = ConsumeRaw<uint64_t>();
    return span == 0 ? raw : lo + raw % span;
  }

  /// Raw double bit pattern: NaN, infinities, and denormals are all
  /// reachable — exactly the values config validation must reject.
  double ConsumeDouble() {
    const uint64_t bits = ConsumeRaw<uint64_t>();
    double out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
  }

  /// Double in [0, 1].
  double ConsumeUnitDouble() {
    return static_cast<double>(ConsumeRaw<uint32_t>()) / 4294967295.0;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace skymr::fuzz

/// Harness-side invariant: prints the failing expression and aborts, so
/// both libFuzzer and the replay driver report the input as a crash.
#define SKYMR_FUZZ_ASSERT(cond)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "fuzz assertion failed: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                                  \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#endif  // SKYMR_FUZZ_FUZZ_COMMON_H_
