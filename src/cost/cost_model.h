// Cost estimation for the grid-partitioning skyline algorithms
// (Section 6 of the paper).
//
// The model upper-bounds the number of partition-wise comparisons — the
// executions of ComparePartitions' critical operation (Algorithm 5, line
// 3) — under two worst-case assumptions: every partition a mapper
// generates is non-empty, and comparing partitions never empties one.
//
//   Equation 5: rho_rem(n, d) = n^d - (n-1)^d
//     remaining partitions after bitstring pruning (the d "low" boundary
//     surfaces of the grid survive; the interior is dominated).
//   Equation 6: rho_dom(p) = prod_k coord_k - 1   (1-based coordinates)
//     partition-wise comparisons for one partition = |p.ADR|.
//   Equation 7: kappa(n, d) = sum over cells of (prod coords - 1)
//   Equation 8: kappa_mapper(n, d) = sum_j kappa_j(n, d)
//     comparisons on one mapper: sum over the d surviving surfaces with
//     pairwise overlaps removed (surface j's first j-1 running indexes
//     start at 2 instead of 1).
//   Equation 9: kappa_reducer(n, d) = kappa_1(n, d)
//     the most loaded MR-GPMRS reducer handles the biggest surface, for
//     which no overlap is discounted.
//
// Closed forms (with B = n(n+1)/2, A = B - 1):
//   kappa_j(n, d)       = A^(j-1) * B^(d-j) - (n-1)^(j-1) * n^(d-j)
//   kappa_reducer(n, d) = B^(d-1) - n^(d-1)
// Both the closed forms and the literal nested sums are implemented; tests
// assert they agree.
//
// Results are returned as double: at the paper's scales (n up to ~64,
// d up to 10) the counts exceed 64-bit integers.

#ifndef SKYMR_COST_COST_MODEL_H_
#define SKYMR_COST_COST_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace skymr::cost {

/// Equation 5: partitions remaining after bitstring-based pruning.
double RemainingPartitions(uint32_t ppd, size_t dim);

/// Equation 6: partition-wise comparisons for the partition with the given
/// 1-based coordinates.
double PartitionComparisons(const uint32_t* coords_1based, size_t dim);

/// Equation 7: kappa(n, d) summed over the full grid, closed form.
double KappaFullGrid(uint32_t ppd, size_t dim);

/// kappa_j(n, d): comparisons of the j-th surviving surface (1-based j),
/// overlap with surfaces 1..j-1 removed. Closed form.
double KappaSurface(uint32_t ppd, size_t dim, size_t surface);

/// kappa_j(n, d) evaluated by the literal nested sum (test oracle; cost
/// O(n^(d-1)), so keep n^d small in tests).
double KappaSurfaceLiteral(uint32_t ppd, size_t dim, size_t surface);

/// Equation 8: estimated partition-wise comparisons on one mapper.
double MapperCost(uint32_t ppd, size_t dim);

/// Equation 9: estimated partition-wise comparisons on the most loaded
/// MR-GPMRS reducer.
double ReducerCost(uint32_t ppd, size_t dim);

}  // namespace skymr::cost

#endif  // SKYMR_COST_COST_MODEL_H_
