#include "src/cost/cost_model.h"

#include <cassert>
#include <cmath>
#include <vector>

namespace skymr::cost {
namespace {

double PowD(double base, size_t exp) {
  double result = 1.0;
  for (size_t i = 0; i < exp; ++i) {
    result *= base;
  }
  return result;
}

}  // namespace

double RemainingPartitions(uint32_t ppd, size_t dim) {
  const auto n = static_cast<double>(ppd);
  return PowD(n, dim) - PowD(n - 1.0, dim);
}

double PartitionComparisons(const uint32_t* coords_1based, size_t dim) {
  double product = 1.0;
  for (size_t k = 0; k < dim; ++k) {
    assert(coords_1based[k] >= 1);
    product *= static_cast<double>(coords_1based[k]);
  }
  return product - 1.0;
}

double KappaFullGrid(uint32_t ppd, size_t dim) {
  // sum over all cells of (prod coords - 1) = B^d - n^d, B = n(n+1)/2.
  const auto n = static_cast<double>(ppd);
  const double b = n * (n + 1.0) / 2.0;
  return PowD(b, dim) - PowD(n, dim);
}

double KappaSurface(uint32_t ppd, size_t dim, size_t surface) {
  assert(surface >= 1 && surface <= dim);
  if (dim == 1) {
    // A 1-d grid has a single "surface" cell at coordinate 1, which has no
    // anti-dominating region.
    return 0.0;
  }
  const auto n = static_cast<double>(ppd);
  const double b = n * (n + 1.0) / 2.0;  // sum_{i=1..n} i
  const double a = b - 1.0;              // sum_{i=2..n} i
  // Surface `surface` fixes one coordinate at 1 (factor 1 in the product);
  // the remaining d-1 running indexes contribute, with the first
  // surface-1 of them starting at 2 to discount overlap with earlier
  // surfaces. The subtracted term is the matching sum of the constant 1.
  return PowD(a, surface - 1) * PowD(b, dim - surface) -
         PowD(n - 1.0, surface - 1) * PowD(n, dim - surface);
}

double KappaSurfaceLiteral(uint32_t ppd, size_t dim, size_t surface) {
  assert(surface >= 1 && surface <= dim);
  if (dim == 1) {
    return 0.0;
  }
  // d-1 running indexes i_1..i_{d-1}; the first (surface-1) run over
  // [2, n], the rest over [1, n]. Summand: prod(i_k) - 1 (the fixed
  // surface coordinate contributes a factor of 1).
  const size_t free_dims = dim - 1;
  std::vector<uint32_t> idx(free_dims);
  for (size_t k = 0; k < free_dims; ++k) {
    idx[k] = k < surface - 1 ? 2 : 1;
  }
  for (size_t k = 0; k < free_dims; ++k) {
    if (idx[k] > ppd) {
      return 0.0;  // Empty range (ppd < 2 with a shifted index).
    }
  }
  double total = 0.0;
  while (true) {
    double product = 1.0;
    for (size_t k = 0; k < free_dims; ++k) {
      product *= static_cast<double>(idx[k]);
    }
    total += product - 1.0;
    // Odometer increment.
    size_t k = 0;
    while (k < free_dims) {
      if (idx[k] < ppd) {
        ++idx[k];
        break;
      }
      idx[k] = k < surface - 1 ? 2 : 1;
      ++k;
    }
    if (k == free_dims) {
      break;
    }
  }
  return total;
}

double MapperCost(uint32_t ppd, size_t dim) {
  double total = 0.0;
  for (size_t j = 1; j <= dim; ++j) {
    total += KappaSurface(ppd, dim, j);
  }
  return total;
}

double ReducerCost(uint32_t ppd, size_t dim) {
  return KappaSurface(ppd, dim, 1);
}

}  // namespace skymr::cost
