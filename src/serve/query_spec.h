// The per-query half of the session API split (DESIGN.md §17).
//
// RunnerConfig conflates two scopes: state that is fixed for the
// lifetime of a resident dataset (grid policy, bounds choice, engine
// sizing, the worker pool, caches — SessionOptions in serve/session.h)
// and parameters that change per request. QuerySpec is the per-request
// half: which skyline job to run, the mapper-side kernel, the
// constraint box, and the query's identity/deadline/tag. A Session
// answers many QuerySpecs over one dataset; ComputeSkyline survives as
// a one-shot shim that splits a RunnerConfig into the two halves
// (SplitRunnerConfig in serve/session.h).

#ifndef SKYMR_SERVE_QUERY_SPEC_H_
#define SKYMR_SERVE_QUERY_SPEC_H_

#include <cstdint>
#include <optional>

#include "src/core/runner.h"
#include "src/obs/log.h"

namespace skymr {

/// Which admission lane a query rides. The session's two-lane admission
/// reserves a few slots that large queries may not occupy, so a burst
/// of heavy queries cannot starve cheap ones (serve/session.h).
enum class AdmissionClass {
  kAuto,   // classify by the session dataset's cardinality
  kSmall,  // may use any slot, including the reserved ones
  kLarge,  // may not occupy the reserved slots
};

/// Everything one query brings to a resident session. Defaults mirror
/// RunnerConfig, so a default QuerySpec asks the same question a default
/// RunnerConfig always did.
struct QuerySpec {
  Algorithm algorithm = Algorithm::kMrGpmrs;
  /// Mapper-side local skyline algorithm (see RunnerConfig).
  core::LocalAlgorithm local_algorithm = core::LocalAlgorithm::kBnl;
  /// MR-GPMRS group merging policy (Section 5.4.1).
  core::GroupMergeStrategy merge =
      core::GroupMergeStrategy::kComputationCost;
  /// Hybrid switch tunables (Algorithm::kHybrid only).
  core::HybridPolicy hybrid;
  /// MR-Angle: approximate number of angular partitions.
  uint32_t angle_partitions = 64;
  /// SKY-MR: sample size, leaf capacity, and depth of the sky-quadtree.
  baselines::SkyQuadtree::Options skymr;
  /// Constrained skyline query: when set, the skyline is computed over
  /// only the tuples inside this box. Changes the bitstring fingerprint,
  /// so constrained and unconstrained queries never share a cache entry.
  std::optional<Box> constraint;
  /// Graceful degradation to the GPSRS single-reducer merge when a
  /// GPMRS merge fails permanently (see RunnerConfig).
  bool degrade_to_single_reducer = true;
  /// Query identity: stable id, latency budget, free-form tag. Threaded
  /// through the engine so logs/traces/metrics correlate per query.
  obs::QueryContext query;
  /// Admission lane (two-lane slot layer; kAuto classifies by the
  /// session dataset's size against SessionOptions).
  AdmissionClass admission = AdmissionClass::kAuto;

  /// Rejects per-query contradictions (angle partition count, local
  /// kernel enum out of range). Called by Session::Submit.
  Status Validate() const;
};

}  // namespace skymr

#endif  // SKYMR_SERVE_QUERY_SPEC_H_
