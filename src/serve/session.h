// Skyline-as-a-service: a dataset-resident session (DESIGN.md §17).
//
// A Session holds everything that depends only on the dataset — the
// loaded tuples, the grid domain bounds, the worker pool, and a
// fingerprint-keyed cache of bitstring/PPD-selection phases — and
// answers many concurrent Submit(QuerySpec) calls over it. This is the
// resident query server the paper's machinery wants to be: PPD
// selection and the Equation-2 pruned bitstrings depend on the dataset,
// bounds, grid policy, and constraint box, never on which skyline job
// answers the query, so one bitstring phase serves every algorithm and
// every later query with the same fingerprint skips that job entirely.
//
// Three layers:
//
//  * Admission — a two-lane slot layer (AdmissionController). At most
//    `slots` queries run at once; `small_reserved` of those slots are
//    off-limits to large queries, so a burst of heavy queries cannot
//    starve cheap ones. Sessions sharing one ThreadPool can also share
//    one controller (the loadgen serve harness does).
//
//  * Cross-query cache — single-flight per fingerprint: the first query
//    to need a bitstring phase computes it while later arrivals with
//    the same fingerprint block on the entry and reuse the result, so
//    concurrent identical queries cost one bitstring job, not N, and
//    hit/miss counts are deterministic (exactly one miss per distinct
//    fingerprint regardless of timing). Counted in SessionStats and,
//    when a MetricsRegistry is attached, mr.session_* (§13.5).
//
//  * The pipeline — the same job sequence ComputeSkyline always ran;
//    ComputeSkyline itself is now a thin shim over a single-query
//    session (SplitRunnerConfig), so results are bit-identical.
//
// Thread-safety: Submit may be called from any number of threads. The
// dataset must outlive the session; borrowed pointers in SessionOptions
// (pool, checkpoint, admission, engine.metrics/log) must too.

#ifndef SKYMR_SERVE_SESSION_H_
#define SKYMR_SERVE_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "src/common/thread_pool.h"
#include "src/core/bitstring_job.h"
#include "src/core/runner.h"
#include "src/serve/query_spec.h"

namespace skymr {

namespace core {
class PipelineCheckpoint;  // checkpoint.h
}  // namespace core

/// The two-lane admission slot layer. Sessions create a private one
/// from SessionOptions, or several sessions share one instance so the
/// slot budget spans a whole server.
class AdmissionController {
 public:
  struct Options {
    /// Queries running at once across every user of this controller;
    /// 0 = unbounded (no queueing, still counts inflight).
    int slots = 0;
    /// Slots large queries may not occupy. Must leave at least one
    /// slot for large queries when slots > 0.
    int small_reserved = 0;
  };

  explicit AdmissionController(const Options& options);

  /// Blocks until a slot is free for the lane; returns seconds waited.
  double Acquire(bool small);
  void Release(bool small);

  int64_t inflight() const;
  int64_t peak_inflight() const;

 private:
  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int inflight_ = 0;
  int inflight_large_ = 0;
  int64_t peak_inflight_ = 0;
};

/// The dataset-scoped half of the session API split: everything that
/// stays fixed while a dataset is resident, shared by every query the
/// session answers.
struct SessionOptions {
  /// Engine defaults for every query (task counts, chaos, metrics/log
  /// hooks). engine.query is ignored — each Submit installs its own
  /// QuerySpec::query.
  mr::EngineOptions engine;
  /// Grid resolution policy (Section 3.3).
  core::PpdOptions ppd;
  /// How Equation 2 pruning is computed.
  core::PruneMode prune_mode = core::PruneMode::kPrefix;
  /// Modeled cluster for makespan accounting.
  mr::ClusterModel cluster;
  /// Unit hypercube vs tight data bounds as the grid domain.
  bool unit_bounds = true;
  /// Worker pool shared by every query. When null the session owns a
  /// pool of engine.num_threads (0 = hardware concurrency). Setting an
  /// explicit nonzero engine.num_threads that contradicts an external
  /// pool's size is an InvalidArgument (Validate).
  ThreadPool* pool = nullptr;
  /// External persistent checkpoint store (checkpoint.h), consulted
  /// before running a bitstring phase and updated after. Survives the
  /// session via SaveFile/LoadFile. Null disables it.
  core::PipelineCheckpoint* checkpoint = nullptr;
  /// In-session cross-query bitstring cache (single-flight). Distinct
  /// from `checkpoint`: the cache lives and dies with the session and
  /// serves concurrent queries; the checkpoint persists across
  /// processes.
  bool cache = true;
  /// Shared admission controller; when null the session owns one built
  /// from admission_slots/small_reserved_slots below.
  AdmissionController* admission = nullptr;
  /// Private-controller sizing (admission == nullptr): concurrent
  /// queries (0 = unbounded) and the small-lane reservation.
  int admission_slots = 0;
  int small_reserved_slots = 0;
  /// AdmissionClass::kAuto lane split: sessions whose dataset has at
  /// most this many tuples ride the small lane.
  size_t small_query_max_tuples = 1000;

  /// Rejects contradictory options before the session opens: engine
  /// validation, PPD policy out of range, a num_threads/pool
  /// contradiction, and a small-lane reservation that leaves no slot
  /// for large queries. Called by Session::Open.
  Status Validate() const;
};

/// Monotone counters of one session's lifetime.
struct SessionStats {
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t errors = 0;
  /// Bitstring phases served from the in-session cache / computed.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// High-water mark of concurrently admitted queries (the session's
  /// controller; shared controllers count every session's queries).
  int64_t peak_inflight = 0;
};

/// Per-Submit serving diagnostics (optional out-param).
struct SubmitInfo {
  /// The bitstring phase came from the in-session cache; the result
  /// holds only the skyline job.
  bool cache_hit = false;
  /// The query rode the small admission lane.
  bool small_lane = false;
  /// Seconds spent waiting for an admission slot.
  double queue_wait_seconds = 0.0;
};

class Session {
 public:
  /// Opens a session over `data` (which must outlive it): validates
  /// options, computes the grid domain bounds once, and spins up the
  /// owned pool/admission controller when none are borrowed.
  static StatusOr<std::unique_ptr<Session>> Open(
      const Dataset& data, const SessionOptions& options);

  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Answers one query. Thread-safe; blocks on admission when the slot
  /// layer is saturated. Never throws: invalid specs come back as
  /// InvalidArgument, permanent task failures as Internal.
  StatusOr<SkylineResult> Submit(const QuerySpec& spec,
                                 SubmitInfo* info = nullptr);

  /// Precomputes the bitstring phase for `spec`'s fingerprint so the
  /// first real query is already a cache hit. No-op for baseline
  /// algorithms (they have no bitstring phase) or when caching and
  /// checkpointing are both off.
  Status Warmup(const QuerySpec& spec = QuerySpec{});

  SessionStats stats() const;
  const Dataset& data() const { return *data_; }
  const SessionOptions& options() const { return options_; }

 private:
  struct CacheEntry;

  Session(const Dataset& data, const SessionOptions& options);

  StatusOr<SkylineResult> RunPipeline(const QuerySpec& spec,
                                      const mr::EngineOptions& engine,
                                      SubmitInfo* info);
  /// Produces the bitstring phase for `spec`: in-session cache first
  /// (single-flight), then the external checkpoint, then the job. On a
  /// job run, appends its metrics to `result`.
  Status EnsureBitstring(const QuerySpec& spec,
                         const mr::EngineOptions& engine,
                         SkylineResult* result,
                         core::BitstringBuildResult* phase,
                         SubmitInfo* info);
  uint64_t FingerprintFor(const QuerySpec& spec) const;
  bool IsSmall(const QuerySpec& spec) const;

  const Dataset* data_;
  const SessionOptions options_;
  Bounds bounds_;
  /// BitstringFingerprint chain prefix: dataset + session-scoped fields,
  /// extended per query with the constraint box (FingerprintFor).
  uint64_t fingerprint_prefix_ = 0;

  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<AdmissionController> owned_admission_;
  AdmissionController* admission_ = nullptr;

  mutable std::mutex cache_mu_;
  std::condition_variable cache_cv_;
  std::map<uint64_t, CacheEntry> cache_;

  mutable std::mutex stats_mu_;
  SessionStats stats_;
};

/// A RunnerConfig split into its two halves. The shim disables the
/// in-session cache and admission queueing (a one-query session has
/// nothing to share), so ComputeSkyline behaves exactly as it always
/// did — including the external-checkpoint resume path.
struct SplitConfig {
  SessionOptions session;
  QuerySpec query;
};
SplitConfig SplitRunnerConfig(const RunnerConfig& config);

}  // namespace skymr

#endif  // SKYMR_SERVE_SESSION_H_
