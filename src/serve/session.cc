#include "src/serve/session.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "src/baselines/mr_angle.h"
#include "src/baselines/mr_bnl.h"
#include "src/baselines/mr_skymr.h"
#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/core/checkpoint.h"
#include "src/core/gpmrs.h"
#include "src/core/gpsrs.h"
#include "src/mapreduce/chaos.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace skymr {

Status QuerySpec::Validate() const {
  if (algorithm == Algorithm::kMrAngle && angle_partitions < 1) {
    return Status::InvalidArgument("mr-angle: angle_partitions must be >= 1");
  }
  switch (local_algorithm) {
    case core::LocalAlgorithm::kBnl:
    case core::LocalAlgorithm::kSfs:
    case core::LocalAlgorithm::kBbs:
    case core::LocalAlgorithm::kAuto:
      break;
    default:
      // Configs can arrive from untrusted bytes (fuzz_config); reject
      // enum values outside the declared range before any job runs.
      return Status::InvalidArgument("local_algorithm out of range");
  }
  return Status::OK();
}

Status SessionOptions::Validate() const {
  SKYMR_RETURN_IF_ERROR(mr::ValidateEngineOptions(engine));
  if (ppd.explicit_ppd == 1) {
    return Status::InvalidArgument(
        "ppd: explicit_ppd must be 0 (auto-select) or >= 2");
  }
  if (ppd.max_candidate < 2) {
    return Status::InvalidArgument(
        "ppd: max_candidate must be >= 2 (the smallest grid)");
  }
  if (!(ppd.target_tpp > 0.0 && std::isfinite(ppd.target_tpp))) {
    return Status::InvalidArgument("ppd: target_tpp must be finite and > 0");
  }
  if (ppd.max_cells < 4) {
    return Status::InvalidArgument(
        "ppd: max_cells must admit at least the 2^d grid of a 2-d space");
  }
  if (pool != nullptr && engine.num_threads > 0 &&
      static_cast<int>(pool->num_threads()) != engine.num_threads) {
    // An external pool fixes the thread count; a different explicit
    // num_threads is a contradiction, not a silent no-op.
    return Status::InvalidArgument(
        "engine.num_threads (" + std::to_string(engine.num_threads) +
        ") contradicts the external pool's " +
        std::to_string(pool->num_threads()) +
        " threads; leave num_threads 0 or match the pool");
  }
  if (admission_slots < 0 || small_reserved_slots < 0) {
    return Status::InvalidArgument(
        "admission slot counts must be >= 0");
  }
  if (admission_slots > 0 && small_reserved_slots >= admission_slots) {
    return Status::InvalidArgument(
        "small_reserved_slots must leave at least one admission slot "
        "for large queries");
  }
  return Status::OK();
}

AdmissionController::AdmissionController(const Options& options)
    : options_(options) {}

double AdmissionController::Acquire(bool small) {
  Stopwatch wait_clock;
  std::unique_lock<std::mutex> lock(mu_);
  const int large_limit = options_.slots - options_.small_reserved;
  cv_.wait(lock, [&] {
    if (options_.slots <= 0) {
      return true;
    }
    if (inflight_ >= options_.slots) {
      return false;
    }
    return small || inflight_large_ < large_limit;
  });
  ++inflight_;
  if (!small) {
    ++inflight_large_;
  }
  peak_inflight_ = std::max<int64_t>(peak_inflight_, inflight_);
  return wait_clock.ElapsedSeconds();
}

void AdmissionController::Release(bool small) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    if (!small) {
      --inflight_large_;
    }
  }
  cv_.notify_all();
}

int64_t AdmissionController::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

int64_t AdmissionController::peak_inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_inflight_;
}

namespace {

/// Wraps a caller-owned dataset in a non-owning shared_ptr for the
/// distributed cache. The Session contract requires the dataset to
/// outlive the session.
std::shared_ptr<const Dataset> Unowned(const Dataset& data) {
  return {&data, [](const Dataset*) {}};
}

/// Fills both makespan flavours from the per-job metrics.
void FillModeledTimes(const mr::ClusterModel& cluster,
                      SkylineResult* result) {
  result->modeled_seconds = cluster.PipelineMakespan(result->jobs);
  mr::ClusterModel no_overhead = cluster;
  no_overhead.job_startup_seconds = 0.0;
  no_overhead.task_startup_seconds = 0.0;
  result->modeled_compute_seconds =
      no_overhead.PipelineMakespan(result->jobs);
}

/// The session-scoped prefix of the bitstring fingerprint: dataset shape
/// plus a content probe (first/middle/last tuples), PPD policy, prune
/// mode, and bounds choice. FingerprintFor extends it per query with the
/// constraint box. The mixing chain must stay byte-compatible with the
/// pre-split BitstringFingerprint(data, config) so checkpoint files
/// written by earlier versions still hit.
uint64_t FingerprintPrefix(const Dataset& data,
                           const SessionOptions& options) {
  uint64_t h = mr::ChaosMix64(0x736b796d72636b70ULL);
  const auto mix = [&h](uint64_t v) { h = mr::ChaosMix64(h ^ v); };
  const auto mix_double = [&mix](double v) {
    mix(std::bit_cast<uint64_t>(v));
  };
  mix(data.size());
  mix(data.dim());
  if (data.size() > 0) {
    for (const size_t probe :
         {size_t{0}, data.size() / 2, data.size() - 1}) {
      for (size_t d = 0; d < data.dim(); ++d) {
        mix_double(data.RowPtr(static_cast<TupleId>(probe))[d]);
      }
    }
  }
  mix(options.ppd.explicit_ppd);
  mix(static_cast<uint64_t>(options.ppd.strategy));
  mix_double(options.ppd.target_tpp);
  mix(options.ppd.max_candidate);
  mix(options.ppd.max_cells);
  mix(static_cast<uint64_t>(options.prune_mode));
  mix(options.unit_bounds ? 1 : 0);
  return h;
}

}  // namespace

/// One single-flight cache slot: kComputing while the leading query
/// runs the bitstring job (waiters block on cache_cv_), kReady once the
/// phase is stored, kFailed when the leader errored (the next query
/// takes over leadership and retries).
struct Session::CacheEntry {
  enum class State { kComputing, kReady, kFailed };
  State state = State::kComputing;
  core::BitstringBuildResult result;
};

Session::Session(const Dataset& data, const SessionOptions& options)
    : data_(&data), options_(options) {}

Session::~Session() = default;

StatusOr<std::unique_ptr<Session>> Session::Open(
    const Dataset& data, const SessionOptions& options) {
  if (const Status valid = options.Validate(); !valid.ok()) {
    return valid;
  }
  std::unique_ptr<Session> session(new Session(data, options));
  // Same no-throw contract as Submit: pool construction and bounds
  // computation failures surface as Status, never as exceptions.
  try {
    session->bounds_ = options.unit_bounds ? Bounds::UnitCube(data.dim())
                                           : data.ComputeBounds();
    session->fingerprint_prefix_ = FingerprintPrefix(data, options);
    if (options.pool != nullptr) {
      session->pool_ = options.pool;
    } else {
      const int threads = options.engine.num_threads > 0
                              ? options.engine.num_threads
                              : ThreadPool::DefaultThreads();
      session->owned_pool_ = std::make_unique<ThreadPool>(threads);
      session->pool_ = session->owned_pool_.get();
    }
    if (options.admission != nullptr) {
      session->admission_ = options.admission;
    } else {
      AdmissionController::Options admission;
      admission.slots = options.admission_slots;
      admission.small_reserved = options.small_reserved_slots;
      session->owned_admission_ =
          std::make_unique<AdmissionController>(admission);
      session->admission_ = session->owned_admission_.get();
    }
  } catch (const std::exception& e) {
    return Status::Internal(
        std::string("session open: unexpected exception: ") + e.what());
  }
  return session;
}

uint64_t Session::FingerprintFor(const QuerySpec& spec) const {
  uint64_t h = fingerprint_prefix_;
  const auto mix = [&h](uint64_t v) { h = mr::ChaosMix64(h ^ v); };
  const auto mix_double = [&mix](double v) {
    mix(std::bit_cast<uint64_t>(v));
  };
  if (spec.constraint.has_value()) {
    for (size_t d = 0; d < spec.constraint->lo.size(); ++d) {
      mix_double(spec.constraint->lo[d]);
      mix_double(spec.constraint->hi[d]);
    }
  }
  return h;
}

bool Session::IsSmall(const QuerySpec& spec) const {
  switch (spec.admission) {
    case AdmissionClass::kSmall:
      return true;
    case AdmissionClass::kLarge:
      return false;
    case AdmissionClass::kAuto:
      break;
  }
  return data_->size() <= options_.small_query_max_tuples;
}

Status Session::EnsureBitstring(const QuerySpec& spec,
                                const mr::EngineOptions& engine,
                                SkylineResult* result,
                                core::BitstringBuildResult* phase,
                                SubmitInfo* info) {
  core::BitstringJobConfig bitstring_config;
  bitstring_config.bounds = bounds_;
  bitstring_config.candidates =
      core::CandidatePpds(data_->size(), data_->dim(), options_.ppd);
  if (bitstring_config.candidates.empty()) {
    return Status::InvalidArgument(
        "no feasible PPD candidate: 2^d exceeds the cell budget");
  }
  bitstring_config.ppd = options_.ppd;
  bitstring_config.cardinality = data_->size();
  bitstring_config.prune_mode = options_.prune_mode;
  bitstring_config.constraint = spec.constraint;

  const bool keyed = options_.cache || options_.checkpoint != nullptr;
  const uint64_t fingerprint = keyed ? FingerprintFor(spec) : 0;
  obs::MetricsRegistry* metrics = engine.metrics;

  if (options_.cache) {
    std::unique_lock<std::mutex> lock(cache_mu_);
    for (;;) {
      auto it = cache_.find(fingerprint);
      if (it == cache_.end()) {
        // This query leads: insert the kComputing entry and run below.
        cache_[fingerprint];
        break;
      }
      if (it->second.state == CacheEntry::State::kComputing) {
        // Single-flight: another query is already computing this
        // fingerprint; wait instead of duplicating the job.
        cache_cv_.wait(lock);
        continue;
      }
      if (it->second.state == CacheEntry::State::kReady) {
        *phase = it->second.result;
        lock.unlock();
        info->cache_hit = true;
        result->session_cache_hit = true;
        {
          std::lock_guard<std::mutex> stats_lock(stats_mu_);
          ++stats_.cache_hits;
        }
        if (metrics != nullptr) {
          metrics->counter("mr.session_cache_hits")->Add(1);
        }
        SKYMR_TRACE_INSTANT("session.cache_hit", "ppd",
                            static_cast<int64_t>(phase->ppd));
        SKYMR_LOG(DEBUG) << "bitstring phase served from session cache "
                         << "(ppd " << phase->ppd << ")";
        return Status::OK();
      }
      // kFailed: the previous leader errored. Take over leadership so
      // a transient failure (chaos) does not poison the entry forever.
      it->second.state = CacheEntry::State::kComputing;
      break;
    }
  }

  // Leader path (or caching disabled): the external checkpoint store
  // first, then the bitstring job.
  Status status = Status::OK();
  if (options_.checkpoint != nullptr &&
      options_.checkpoint->LoadBitstring(fingerprint, phase)) {
    // Resume: the whole first job is skipped; result->jobs holds only
    // the skyline job.
    result->resumed_from_checkpoint = true;
    SKYMR_TRACE_INSTANT("checkpoint.resume", "ppd",
                        static_cast<int64_t>(phase->ppd));
    SKYMR_LOG(DEBUG) << "bitstring phase resumed from checkpoint (ppd "
                     << phase->ppd << ")";
  } else {
    auto bitstring_or = core::RunBitstringJob(Unowned(*data_),
                                              bitstring_config, engine,
                                              pool_);
    if (bitstring_or.ok()) {
      result->jobs.push_back(std::move(bitstring_or->metrics));
      *phase = std::move(bitstring_or->result);
      if (options_.checkpoint != nullptr) {
        options_.checkpoint->StoreBitstring(fingerprint, *phase);
      }
    } else {
      status = bitstring_or.status();
    }
  }

  if (options_.cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    CacheEntry& entry = cache_[fingerprint];
    if (status.ok()) {
      entry.state = CacheEntry::State::kReady;
      entry.result = *phase;
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.cache_misses;
      }
      if (metrics != nullptr) {
        metrics->counter("mr.session_cache_misses")->Add(1);
      }
    } else {
      entry.state = CacheEntry::State::kFailed;
    }
    cache_cv_.notify_all();
  }
  return status;
}

StatusOr<SkylineResult> Session::RunPipeline(const QuerySpec& spec,
                                             const mr::EngineOptions& engine_in,
                                             SubmitInfo* info) {
  Stopwatch total_clock;
  const Dataset& data = *data_;
  SKYMR_TRACE_SPAN("skyline.pipeline", "tuples",
                   static_cast<int64_t>(data.size()), "dim",
                   static_cast<int64_t>(data.dim()));
  SkylineResult result;
  if (spec.constraint.has_value()) {
    SKYMR_RETURN_IF_ERROR(spec.constraint->Validate(data.dim()));
  }
  const Bounds& bounds = bounds_;
  const std::shared_ptr<const Dataset> shared = Unowned(data);
  ThreadPool& pool = *pool_;

  // ---- Baselines: one job, no bitstring phase ----
  if (spec.algorithm == Algorithm::kMrBnl ||
      spec.algorithm == Algorithm::kMrAngle ||
      spec.algorithm == Algorithm::kSkyMr) {
    auto run_or =
        spec.algorithm == Algorithm::kMrBnl
            ? baselines::RunMrBnlJob(shared, bounds, engine_in, &pool,
                                     spec.constraint)
        : spec.algorithm == Algorithm::kMrAngle
            ? baselines::RunMrAngleJob(shared, bounds,
                                       spec.angle_partitions,
                                       engine_in, &pool,
                                       spec.constraint)
            : baselines::RunSkyMrJob(shared, bounds, spec.skymr,
                                     engine_in, &pool,
                                     spec.constraint);
    if (!run_or.ok()) {
      return run_or.status();
    }
    result.skyline = std::move(run_or->skyline);
    result.jobs.push_back(std::move(run_or->metrics));
    result.algorithm_used = spec.algorithm;
    result.wall_seconds = total_clock.ElapsedSeconds();
    FillModeledTimes(options_.cluster, &result);
    return result;
  }

  // ---- Grid algorithms: bitstring phase first (cache / checkpoint /
  // job, in that order) ----
  core::BitstringBuildResult phase;
  SKYMR_RETURN_IF_ERROR(
      EnsureBitstring(spec, engine_in, &result, &phase, info));
  result.ppd = phase.ppd;
  result.nonempty_partitions = phase.nonempty;
  result.pruned_partitions = phase.pruned;
  SKYMR_LOG(DEBUG) << "bitstring job: selected PPD " << result.ppd << ", "
                   << result.nonempty_partitions << " non-empty cells, "
                   << result.pruned_partitions << " pruned";

  auto grid_or = core::Grid::Create(data.dim(), phase.ppd,
                                    bounds, options_.ppd.max_cells);
  if (!grid_or.ok()) {
    return grid_or.status();
  }
  const core::Grid& grid = grid_or.value();

  // ---- Decide the skyline job ----
  Algorithm algorithm = spec.algorithm;
  mr::EngineOptions engine = engine_in;
  if (algorithm == Algorithm::kHybrid) {
    result.hybrid_decision = core::DecideHybrid(
        spec.hybrid, data, grid, phase, spec.constraint);
    algorithm = result.hybrid_decision.use_multiple_reducers
                    ? Algorithm::kMrGpmrs
                    : Algorithm::kMrGpsrs;
    engine.num_reducers = result.hybrid_decision.num_reducers;
  }
  result.algorithm_used = algorithm;

  auto run_or =
      algorithm == Algorithm::kMrGpmrs
          ? core::RunGpmrsJob(shared, grid, phase.bits,
                              spec.merge, engine, &pool,
                              spec.constraint, spec.local_algorithm)
          : core::RunGpsrsJob(shared, grid, phase.bits, engine,
                              &pool, spec.constraint,
                              spec.local_algorithm);
  if (!run_or.ok() && algorithm == Algorithm::kMrGpmrs &&
      spec.degrade_to_single_reducer &&
      run_or.status().code() == StatusCode::kInternal) {
    // Degradation ladder: GPMRS's reducer-group merge keeps failing
    // (every retry exhausted), so fall back to the GPSRS single-reducer
    // merge over the same grid and bitstring — slower, but the skyline is
    // identical by Section 4/5 equivalence.
    SKYMR_LOG(DEBUG) << "mr-gpmrs failed permanently ("
                     << run_or.status().message()
                     << "); degrading to mr-gpsrs";
    SKYMR_TRACE_INSTANT("degrade.gpsrs");
    result.degraded = true;
    result.algorithm_used = Algorithm::kMrGpsrs;
    run_or = core::RunGpsrsJob(shared, grid, phase.bits, engine, &pool,
                               spec.constraint, spec.local_algorithm);
  }
  if (!run_or.ok()) {
    return run_or.status();
  }
  result.skyline = std::move(run_or->skyline);
  result.jobs.push_back(std::move(run_or->metrics));
  if (result.degraded) {
    result.jobs.back().counters.Add("mr.degraded_to_gpsrs", 1);
  }
  result.wall_seconds = total_clock.ElapsedSeconds();
  FillModeledTimes(options_.cluster, &result);
  SKYMR_LOG(DEBUG) << AlgorithmName(result.algorithm_used) << ": skyline "
                   << result.skyline.size() << " of " << data.size()
                   << " tuples in " << result.wall_seconds << "s wall, "
                   << result.modeled_seconds << "s modeled";
  return result;
}

StatusOr<SkylineResult> Session::Submit(const QuerySpec& spec,
                                        SubmitInfo* info) {
  SubmitInfo local_info;
  if (info == nullptr) {
    info = &local_info;
  }
  *info = SubmitInfo{};
  if (const Status valid = spec.Validate(); !valid.ok()) {
    return valid;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
  }

  mr::EngineOptions engine = options_.engine;
  engine.query = spec.query;
  obs::Logger* log = engine.log;
  if (log != nullptr) {
    log->LogQuery(obs::LogSeverity::kInfo, engine.query,
                  "query.start",
                  std::string(AlgorithmName(spec.algorithm)) + ", " +
                      std::to_string(data_->size()) + " tuples, dim " +
                      std::to_string(data_->dim()));
  }

  const bool small = IsSmall(spec);
  info->small_lane = small;
  info->queue_wait_seconds = admission_->Acquire(small);
  obs::MetricsRegistry* metrics = engine.metrics;
  obs::ScopedGaugeDelta inflight_gauge(
      metrics != nullptr ? metrics->gauge("mr.session_inflight") : nullptr,
      1);
  if (metrics != nullptr) {
    metrics->sketch("mr.session_queue_wait_us")
        ->Record(info->queue_wait_seconds * 1e6);
  }

  // API hardening: nothing escapes this boundary as an exception. Task
  // failures inside the engine already surface as Status; this catch is
  // the backstop for anything unexpected (user functors, OOM, bugs).
  StatusOr<SkylineResult> result = [&]() -> StatusOr<SkylineResult> {
    try {
      return RunPipeline(spec, engine, info);
    } catch (const std::exception& e) {
      return Status::Internal(
          std::string("skyline pipeline: unexpected exception: ") + e.what());
    }
  }();
  admission_->Release(small);

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (result.ok()) {
      ++stats_.completed;
    } else {
      ++stats_.errors;
    }
  }
  if (log != nullptr) {
    if (result.ok()) {
      log->LogQuery(
          obs::LogSeverity::kInfo, engine.query, "query.finish",
          "skyline " + std::to_string(result->skyline.size()) + " of " +
              std::to_string(data_->size()) + " tuples, " +
              std::to_string(
                  static_cast<int64_t>(result->wall_seconds * 1e6)) +
              " us" + (result->degraded ? ", degraded" : ""));
    } else {
      // Permanent task failures already NotifyFatal'ed inside the
      // scheduler; this records the query-level outcome with the same id
      // so the post-mortem dump names the query that died.
      log->LogQuery(obs::LogSeverity::kError, engine.query,
                    "query.error", result.status().message());
    }
  }
  return result;
}

Status Session::Warmup(const QuerySpec& spec) {
  if (const Status valid = spec.Validate(); !valid.ok()) {
    return valid;
  }
  if (spec.algorithm == Algorithm::kMrBnl ||
      spec.algorithm == Algorithm::kMrAngle ||
      spec.algorithm == Algorithm::kSkyMr) {
    return Status::OK();  // baselines have no bitstring phase
  }
  if (!options_.cache && options_.checkpoint == nullptr) {
    return Status::OK();  // nowhere to keep the warmed phase
  }
  if (spec.constraint.has_value()) {
    SKYMR_RETURN_IF_ERROR(spec.constraint->Validate(data_->dim()));
  }
  mr::EngineOptions engine = options_.engine;
  engine.query = spec.query;
  SkylineResult scratch;
  core::BitstringBuildResult phase;
  SubmitInfo info;
  try {
    return EnsureBitstring(spec, engine, &scratch, &phase, &info);
  } catch (const std::exception& e) {
    return Status::Internal(
        std::string("session warmup: unexpected exception: ") + e.what());
  }
}

SessionStats Session::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  SessionStats snapshot = stats_;
  snapshot.peak_inflight = admission_->peak_inflight();
  return snapshot;
}

SplitConfig SplitRunnerConfig(const RunnerConfig& config) {
  SplitConfig split;
  split.session.engine = config.engine;
  split.session.ppd = config.ppd;
  split.session.prune_mode = config.prune_mode;
  split.session.cluster = config.cluster;
  split.session.unit_bounds = config.unit_bounds;
  split.session.pool = config.pool;
  split.session.checkpoint = config.checkpoint;
  // One-shot shim semantics: a single-query session has nothing to
  // share, so the in-session cache and admission queueing are off and
  // only the external checkpoint participates.
  split.session.cache = false;
  split.session.admission_slots = 0;
  split.session.small_reserved_slots = 0;

  split.query.algorithm = config.algorithm;
  split.query.local_algorithm = config.local_algorithm;
  split.query.merge = config.merge;
  split.query.hybrid = config.hybrid;
  split.query.angle_partitions = config.angle_partitions;
  split.query.skymr = config.skymr;
  // lint:allow(deprecated-constraint) the shim maps the old field
  split.query.constraint = config.constraint;
  split.query.degrade_to_single_reducer = config.degrade_to_single_reducer;
  split.query.query = config.engine.query;
  return split;
}

}  // namespace skymr
