// Public facade for the skymr library: efficient skyline computation in
// (simulated) MapReduce, reproducing Mullesgaard, Pedersen, Lu & Zhou,
// "Efficient Skyline Computation in MapReduce", EDBT 2014.
//
// Typical usage:
//
//   #include "src/skymr.h"
//
//   skymr::Dataset data = skymr::data::GenerateAntiCorrelated(100000, 6, 1);
//   skymr::RunnerConfig config;
//   config.algorithm = skymr::Algorithm::kMrGpmrs;
//   config.engine.num_map_tasks = 13;
//   config.engine.num_reducers = 13;
//   auto result = skymr::ComputeSkyline(data, config);
//   if (result.ok()) {
//     // result->skyline holds the tuples; result->modeled_seconds the
//     // modeled 13-node cluster runtime.
//   }
//
// This header exposes the supported public surface only:
//
//   * Dataset / generators / CSV IO       (relation/, data/)
//   * RunnerConfig, Algorithm, ComputeSkyline, PipelineCheckpoint
//   * Session / SessionOptions / QuerySpec (serve/: the resident
//     query-server API; ComputeSkyline is a one-query shim over it)
//   * ChaosSchedule / ChaosProfile        (deterministic fault injection)
//   * skyline verification                (relation/skyline_verify.h)
//   * report / trace / doctor writers     (obs/)
//
// Everything else — individual job runners (core/gpsrs.h, core/gpmrs.h,
// baselines/*), the raw engine (mapreduce/job.h), grid and bitstring
// internals, the cost model — is an implementation detail. Those headers
// are stable enough to include directly when you need them (the tests and
// benches do), but they are not re-exported here and may change shape
// between revisions without notice.

#ifndef SKYMR_SKYMR_H_
#define SKYMR_SKYMR_H_

// Data model: datasets, generators, CSV round-trip, dominance.
#include "src/common/status.h"
#include "src/data/dataset_io.h"
#include "src/data/generator.h"
#include "src/relation/dataset.h"
#include "src/relation/dominance.h"
#include "src/relation/skyline_verify.h"

// The pipeline: configuration, the one entry point, phase checkpointing,
// and deterministic fault injection (RunnerConfig::engine.chaos).
#include "src/core/checkpoint.h"
#include "src/core/runner.h"
#include "src/mapreduce/chaos.h"

// The serving layer: a dataset-resident Session answering concurrent
// QuerySpecs with admission control and cross-query bitstring caching.
#include "src/serve/query_spec.h"
#include "src/serve/session.h"

// Observability: job reports, trace export, report analysis,
// critical-path attribution, and the live metrics registry.
#include "src/obs/critical_path.h"
#include "src/obs/doctor.h"
#include "src/obs/job_report.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

#endif  // SKYMR_SKYMR_H_
