// Umbrella header for the skymr library: efficient skyline computation in
// (simulated) MapReduce, reproducing Mullesgaard, Pedersen, Lu & Zhou,
// "Efficient Skyline Computation in MapReduce", EDBT 2014.
//
// Typical usage:
//
//   #include "src/skymr.h"
//
//   skymr::Dataset data = skymr::data::GenerateAntiCorrelated(100000, 6, 1);
//   skymr::RunnerConfig config;
//   config.algorithm = skymr::Algorithm::kMrGpmrs;
//   config.engine.num_map_tasks = 13;
//   config.engine.num_reducers = 13;
//   auto result = skymr::ComputeSkyline(data, config);
//   if (result.ok()) {
//     // result->skyline holds the tuples; result->modeled_seconds the
//     // modeled 13-node cluster runtime.
//   }

#ifndef SKYMR_SKYMR_H_
#define SKYMR_SKYMR_H_

#include "src/baselines/centralized.h"
#include "src/baselines/mr_angle.h"
#include "src/baselines/mr_bnl.h"
#include "src/baselines/mr_skymr.h"
#include "src/common/csv.h"
#include "src/common/dynamic_bitset.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/core/bitstring_job.h"
#include "src/core/gpmrs.h"
#include "src/core/gpsrs.h"
#include "src/core/grid.h"
#include "src/core/hybrid.h"
#include "src/core/independent_groups.h"
#include "src/core/partition_bitstring.h"
#include "src/core/ppd.h"
#include "src/core/runner.h"
#include "src/cost/cost_model.h"
#include "src/data/dataset_io.h"
#include "src/data/generator.h"
#include "src/local/bnl.h"
#include "src/local/naive.h"
#include "src/local/sfs.h"
#include "src/mapreduce/cluster_model.h"
#include "src/mapreduce/job.h"
#include "src/obs/bench_artifact.h"
#include "src/obs/doctor.h"
#include "src/obs/histogram.h"
#include "src/obs/job_report.h"
#include "src/obs/json_parse.h"
#include "src/obs/trace.h"
#include "src/relation/dataset.h"
#include "src/relation/dominance.h"
#include "src/relation/preferences.h"
#include "src/relation/skyline_verify.h"

#endif  // SKYMR_SKYMR_H_
