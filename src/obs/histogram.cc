#include "src/obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace skymr::obs {

size_t Histogram::BucketIndex(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  return index == 0 ? 0 : uint64_t{1} << (index - 1);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index == 0) {
    return 0;
  }
  if (index >= kNumBuckets - 1) {
    return UINT64_MAX;
  }
  return (uint64_t{1} << index) - 1;
}

void Histogram::Add(uint64_t value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested percentile among the sorted samples (1-based,
  // nearest-rank with interpolation inside the containing bucket).
  const double target = p / 100.0 * static_cast<double>(count_);
  double cumulative = 0.0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const double in_bucket = static_cast<double>(buckets_[i]);
    if (in_bucket == 0.0) {
      continue;
    }
    if (cumulative + in_bucket >= target) {
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = static_cast<double>(BucketUpperBound(i));
      const double fraction =
          in_bucket == 0.0 ? 0.0 : (target - cumulative) / in_bucket;
      const double value = lo + (hi - lo) * std::clamp(fraction, 0.0, 1.0);
      return std::clamp(value, static_cast<double>(min()),
                        static_cast<double>(max_));
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu sum=%llu min=%llu p50=%.4g p95=%.4g max=%llu",
                static_cast<unsigned long long>(count_),
                static_cast<unsigned long long>(sum_),
                static_cast<unsigned long long>(min()), Percentile(50.0),
                Percentile(95.0), static_cast<unsigned long long>(max_));
  return buf;
}

void HistogramSet::Add(const std::string& name, uint64_t value) {
  histograms_[name].Add(value);
}

Histogram& HistogramSet::Get(const std::string& name) {
  return histograms_[name];
}

const Histogram* HistogramSet::Find(const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void HistogramSet::Merge(const HistogramSet& other) {
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].Merge(histogram);
  }
}

}  // namespace skymr::obs
