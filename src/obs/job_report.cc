#include "src/obs/job_report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/cost/cost_model.h"
#include "src/obs/critical_path.h"
#include "src/obs/histogram.h"
#include "src/obs/json.h"

namespace skymr::obs {
namespace {

double MaxBusySeconds(const std::vector<mr::TaskMetrics>& tasks) {
  double best = 0.0;
  for (const mr::TaskMetrics& t : tasks) {
    best = std::max(best, t.busy_seconds);
  }
  return best;
}

double MedianBusySeconds(const std::vector<mr::TaskMetrics>& tasks) {
  if (tasks.empty()) {
    return 0.0;
  }
  std::vector<double> busy;
  busy.reserve(tasks.size());
  for (const mr::TaskMetrics& t : tasks) {
    busy.push_back(t.busy_seconds);
  }
  std::sort(busy.begin(), busy.end());
  const size_t n = busy.size();
  return n % 2 == 1 ? busy[n / 2] : 0.5 * (busy[n / 2 - 1] + busy[n / 2]);
}

void WriteHistogramJson(const Histogram& histogram, JsonWriter* w) {
  w->BeginObject();
  w->Key("count");
  w->Uint(histogram.count());
  w->Key("sum");
  w->Uint(histogram.sum());
  w->Key("min");
  w->Uint(histogram.min());
  w->Key("max");
  w->Uint(histogram.max());
  w->Key("mean");
  w->Double(histogram.Mean());
  w->Key("p50");
  w->Double(histogram.Percentile(50.0));
  w->Key("p95");
  w->Double(histogram.Percentile(95.0));
  w->Key("p99");
  w->Double(histogram.Percentile(99.0));
  w->EndObject();
}

void WriteTaskJson(const mr::TaskMetrics& task, bool is_reduce,
                   JsonWriter* w) {
  w->BeginObject();
  w->Key("busy_seconds");
  w->Double(task.busy_seconds);
  w->Key("attempts");
  w->Int(task.attempts);
  w->Key("input_records");
  w->Uint(task.input_records);
  w->Key("output_records");
  w->Uint(task.output_records);
  w->Key("output_bytes");
  w->Uint(task.output_bytes);
  if (is_reduce) {
    w->Key("input_bytes");
    w->Uint(task.input_bytes);
    w->Key("shuffle_seconds");
    w->Double(task.shuffle_seconds);
  }
  w->EndObject();
}

void WriteCriticalPathJson(const CriticalPathReport& cp, JsonWriter* w) {
  w->BeginObject();
  w->Key("makespan_seconds");
  w->Double(cp.makespan_seconds);
  w->Key("phases");
  w->BeginArray();
  for (const CpPhase& p : cp.phases) {
    w->BeginObject();
    w->Key("phase");
    w->String(p.phase);
    w->Key("seconds");
    w->Double(p.seconds);
    w->Key("percent");
    w->Double(p.percent);
    w->Key("what_if_free_percent");
    w->Double(p.what_if_free_percent);
    w->EndObject();
  }
  w->EndArray();
  w->Key("path");
  w->BeginArray();
  for (const CpStep& s : cp.steps) {
    w->BeginObject();
    w->Key("job");
    w->String(s.job);
    w->Key("kind");
    w->String(s.kind);
    w->Key("phase");
    w->String(s.phase);
    w->Key("task");
    w->Int(s.task);
    w->Key("attempts");
    w->Int(s.attempts);
    w->Key("seconds");
    w->Double(s.seconds);
    w->Key("wave_median_seconds");
    w->Double(s.wave_median_seconds);
    w->EndObject();
  }
  w->EndArray();
  // Seed-stable sub-block: CI's determinism gate compares exactly this
  // object across two same-seed runs.
  w->Key("deterministic");
  w->BeginObject();
  w->Key("dag_signature");
  w->String(cp.dag_signature);
  w->Key("phases");
  w->BeginArray();
  for (const CpDeterministicPhase& p : cp.deterministic_phases) {
    w->BeginObject();
    w->Key("phase");
    w->String(p.phase);
    w->Key("records");
    w->Uint(p.records);
    w->Key("percent");
    w->Double(p.percent);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
  w->EndObject();
}

void WriteJobMetricsJson(const mr::JobMetrics& job, JsonWriter* w) {
  w->BeginObject();
  w->Key("name");
  w->String(job.name);
  w->Key("wall_seconds");
  w->Double(job.wall_seconds);
  w->Key("shuffle_bytes");
  w->Uint(job.shuffle_bytes);
  w->Key("task_retries");
  w->Int(job.counters.Get("mr.task_retries"));
  w->Key("cache_hits");
  w->Int(job.counters.Get("mr.cache_hits"));
  w->Key("cache_misses");
  w->Int(job.counters.Get("mr.cache_misses"));
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, value] : job.counters.values()) {
    w->Key(name);
    w->Int(value);
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, histogram] : job.histograms.entries()) {
    w->Key(name);
    WriteHistogramJson(histogram, w);
  }
  w->EndObject();
  w->Key("skew");
  w->BeginObject();
  w->Key("max_map_busy_seconds");
  w->Double(MaxBusySeconds(job.map_tasks));
  w->Key("median_map_busy_seconds");
  w->Double(MedianBusySeconds(job.map_tasks));
  w->Key("max_reduce_busy_seconds");
  w->Double(MaxBusySeconds(job.reduce_tasks));
  w->Key("median_reduce_busy_seconds");
  w->Double(MedianBusySeconds(job.reduce_tasks));
  w->EndObject();
  w->Key("map_tasks");
  w->BeginArray();
  for (const mr::TaskMetrics& task : job.map_tasks) {
    WriteTaskJson(task, /*is_reduce=*/false, w);
  }
  w->EndArray();
  w->Key("reduce_tasks");
  w->BeginArray();
  for (const mr::TaskMetrics& task : job.reduce_tasks) {
    WriteTaskJson(task, /*is_reduce=*/true, w);
  }
  w->EndArray();
  w->EndObject();
}

/// The grid pipeline's skyline job is the last one (the bitstring job runs
/// first); baselines run a single job. Null when there are no jobs.
const mr::JobMetrics* SkylineJobOf(const SkylineResult& result) {
  return result.jobs.empty() ? nullptr : &result.jobs.back();
}

/// Input cardinality of the pipeline: the largest per-job map input
/// (jobs after the first may read a reduced dataset, the first job reads
/// the full input).
uint64_t InputTuplesOf(const SkylineResult& result) {
  uint64_t best = 0;
  for (const mr::JobMetrics& job : result.jobs) {
    uint64_t records = 0;
    for (const mr::TaskMetrics& t : job.map_tasks) {
      records += t.input_records;
    }
    best = std::max(best, records);
  }
  return best;
}

std::string HumanBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024ull * 1024ull) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024ull) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace

void WriteJobReport(const SkylineResult& result, std::ostream& os) {
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema");
  w.String(kReportSchemaVersion);
  w.Key("algorithm");
  w.String(AlgorithmName(result.algorithm_used));
  w.Key("wall_seconds");
  w.Double(result.wall_seconds);
  w.Key("modeled_seconds");
  w.Double(result.modeled_seconds);
  w.Key("modeled_compute_seconds");
  w.Double(result.modeled_compute_seconds);
  w.Key("skyline_size");
  w.Uint(result.skyline.size());
  w.Key("dim");
  w.Uint(result.skyline.dim());
  w.Key("input_tuples");
  w.Uint(InputTuplesOf(result));
  w.Key("ppd");
  w.Uint(result.ppd);
  w.Key("nonempty_partitions");
  w.Uint(result.nonempty_partitions);
  w.Key("pruned_partitions");
  w.Uint(result.pruned_partitions);
  w.Key("degraded");
  w.Bool(result.degraded);
  w.Key("resumed_from_checkpoint");
  w.Bool(result.resumed_from_checkpoint);
  w.Key("jobs");
  w.BeginArray();
  for (const mr::JobMetrics& job : result.jobs) {
    WriteJobMetricsJson(job, &w);
  }
  w.EndArray();
  const mr::JobMetrics* skyline_job = SkylineJobOf(result);
  if (result.ppd > 0 && skyline_job != nullptr) {
    const size_t dim = result.skyline.dim();
    w.Key("cost_model");
    w.BeginObject();
    w.Key("ppd");
    w.Uint(result.ppd);
    w.Key("dim");
    w.Uint(dim);
    w.Key("predicted_mapper_comparisons");
    w.Double(cost::MapperCost(result.ppd, dim));
    w.Key("observed_max_mapper_comparisons");
    w.Int(skyline_job->MaxMapCounter(mr::kCounterPartitionComparisons));
    w.Key("predicted_reducer_comparisons");
    w.Double(cost::ReducerCost(result.ppd, dim));
    w.Key("observed_max_reducer_comparisons");
    w.Int(skyline_job->MaxReduceCounter(mr::kCounterPartitionComparisons));
    w.EndObject();
  }
  if (const CriticalPathReport cp = AnalyzeCriticalPath(result.jobs);
      cp.valid) {
    w.Key("critical_path");
    WriteCriticalPathJson(cp, &w);
  }
  w.EndObject();
  os << '\n';
}

Status WriteJobReportFile(const SkylineResult& result,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open report output: " + path);
  }
  WriteJobReport(result, out);
  out.flush();
  if (!out) {
    return Status::IoError("failed writing report: " + path);
  }
  return Status::OK();
}

std::string RenderJobMetricsJson(const mr::JobMetrics& metrics) {
  std::ostringstream os;
  JsonWriter w(os);
  WriteJobMetricsJson(metrics, &w);
  return os.str();
}

std::string RenderStatsText(const SkylineResult& result) {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "algorithm %s: skyline %zu tuples, %.3fs wall, %.3fs "
                "modeled\n",
                AlgorithmName(result.algorithm_used), result.skyline.size(),
                result.wall_seconds, result.modeled_seconds);
  os << buf;
  if (result.ppd > 0) {
    std::snprintf(buf, sizeof(buf),
                  "grid: ppd=%u, %llu non-empty partitions, %llu pruned\n",
                  result.ppd,
                  static_cast<unsigned long long>(result.nonempty_partitions),
                  static_cast<unsigned long long>(result.pruned_partitions));
    os << buf;
  }
  if (result.resumed_from_checkpoint) {
    os << "fault tolerance: bitstring phase resumed from checkpoint\n";
  }
  if (result.degraded) {
    os << "fault tolerance: GPMRS failed, degraded to single-reducer GPSRS "
          "merge\n";
  }
  for (const mr::JobMetrics& job : result.jobs) {
    std::snprintf(buf, sizeof(buf),
                  "job %s: %zu map / %zu reduce tasks, %.3fs wall, shuffle "
                  "%s\n",
                  job.name.c_str(), job.map_tasks.size(),
                  job.reduce_tasks.size(), job.wall_seconds,
                  HumanBytes(job.shuffle_bytes).c_str());
    os << buf;
    std::snprintf(buf, sizeof(buf),
                  "  map busy max/median: %.4fs / %.4fs    reduce busy "
                  "max/median: %.4fs / %.4fs\n",
                  MaxBusySeconds(job.map_tasks),
                  MedianBusySeconds(job.map_tasks),
                  MaxBusySeconds(job.reduce_tasks),
                  MedianBusySeconds(job.reduce_tasks));
    os << buf;
    std::snprintf(
        buf, sizeof(buf),
        "  retries: %lld    cache hits/misses: %lld/%lld\n",
        static_cast<long long>(job.counters.Get("mr.task_retries")),
        static_cast<long long>(job.counters.Get("mr.cache_hits")),
        static_cast<long long>(job.counters.Get("mr.cache_misses")));
    os << buf;
    const int64_t backoff_waits = job.counters.Get("mr.backoff_waits");
    const int64_t spec_launched = job.counters.Get("mr.speculative_launched");
    const int64_t spec_wins = job.counters.Get("mr.speculative_wins");
    const int64_t blacklisted = job.counters.Get("mr.blacklisted_workers");
    if (backoff_waits > 0 || spec_launched > 0 || blacklisted > 0) {
      std::snprintf(buf, sizeof(buf),
                    "  backoff waits: %lld    speculative launched/wins: "
                    "%lld/%lld    blacklisted workers: %lld\n",
                    static_cast<long long>(backoff_waits),
                    static_cast<long long>(spec_launched),
                    static_cast<long long>(spec_wins),
                    static_cast<long long>(blacklisted));
      os << buf;
    }
    const int64_t chaos_injected =
        job.counters.Get("mr.chaos_crashes_injected") +
        job.counters.Get("mr.chaos_slow_injected") +
        job.counters.Get("mr.chaos_corruptions_injected") +
        job.counters.Get("mr.chaos_cache_faults_injected");
    if (chaos_injected > 0) {
      std::snprintf(
          buf, sizeof(buf),
          "  chaos injected: %lld crashes, %lld slowdowns, %lld "
          "corruptions, %lld cache faults\n",
          static_cast<long long>(
              job.counters.Get("mr.chaos_crashes_injected")),
          static_cast<long long>(job.counters.Get("mr.chaos_slow_injected")),
          static_cast<long long>(
              job.counters.Get("mr.chaos_corruptions_injected")),
          static_cast<long long>(
              job.counters.Get("mr.chaos_cache_faults_injected")));
      os << buf;
    }
    for (const auto& [name, histogram] : job.histograms.entries()) {
      os << "  " << name << ": " << histogram.ToString() << "\n";
    }
  }
  const mr::JobMetrics* skyline_job = SkylineJobOf(result);
  if (result.ppd > 0 && skyline_job != nullptr) {
    const size_t dim = result.skyline.dim();
    std::snprintf(
        buf, sizeof(buf),
        "cost model (partition comparisons, observed vs predicted):\n"
        "  mapper:  observed max %lld, predicted %.6g\n"
        "  reducer: observed max %lld, predicted %.6g\n",
        static_cast<long long>(
            skyline_job->MaxMapCounter(mr::kCounterPartitionComparisons)),
        cost::MapperCost(result.ppd, dim),
        static_cast<long long>(
            skyline_job->MaxReduceCounter(mr::kCounterPartitionComparisons)),
        cost::ReducerCost(result.ppd, dim));
    os << buf;
  }
  return os.str();
}

}  // namespace skymr::obs
