#include "src/obs/json_parse.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace skymr::obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::GetDouble(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : fallback;
}

int64_t JsonValue::GetInt(std::string_view key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : fallback;
}

std::string JsonValue::GetString(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(v);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Run() {
    SkipWs();
    auto value = Value();
    if (!value.ok()) {
      return value;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing data");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }

  void SkipWs() {
    while (!AtEnd() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                        text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (Peek() != c) {
      return false;
    }
    ++pos_;
    return true;
  }

  StatusOr<JsonValue> Value() {
    if (depth_ > kMaxJsonNestingDepth) {
      return Fail("nesting too deep");
    }
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"': {
        auto s = String();
        if (!s.ok()) {
          return s.status();
        }
        return JsonValue::MakeString(std::move(s).value());
      }
      case 't':
        return Literal("true", JsonValue::MakeBool(true));
      case 'f':
        return Literal("false", JsonValue::MakeBool(false));
      case 'n':
        return Literal("null", JsonValue());
      default:
        return Number();
    }
  }

  StatusOr<JsonValue> Object() {
    ++depth_;
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWs();
    if (Consume('}')) {
      --depth_;
      return JsonValue::MakeObject(std::move(members));
    }
    while (true) {
      SkipWs();
      auto key = String();
      if (!key.ok()) {
        return key.status();
      }
      SkipWs();
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      SkipWs();
      auto value = Value();
      if (!value.ok()) {
        return value;
      }
      members.insert_or_assign(std::move(key).value(),
                               std::move(value).value());
      SkipWs();
      if (Consume('}')) {
        --depth_;
        return JsonValue::MakeObject(std::move(members));
      }
      if (!Consume(',')) {
        return Fail("expected ',' or '}'");
      }
    }
  }

  StatusOr<JsonValue> Array() {
    ++depth_;
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWs();
    if (Consume(']')) {
      --depth_;
      return JsonValue::MakeArray(std::move(items));
    }
    while (true) {
      SkipWs();
      auto value = Value();
      if (!value.ok()) {
        return value;
      }
      items.push_back(std::move(value).value());
      SkipWs();
      if (Consume(']')) {
        --depth_;
        return JsonValue::MakeArray(std::move(items));
      }
      if (!Consume(',')) {
        return Fail("expected ',' or ']'");
      }
    }
  }

  StatusOr<std::string> String() {
    if (!Consume('"')) {
      return Fail("expected '\"'");
    }
    std::string out;
    while (true) {
      if (AtEnd()) {
        return Fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (AtEnd()) {
        return Fail("dangling escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            if (AtEnd() || std::isxdigit(static_cast<unsigned char>(
                               text_[pos_])) == 0) {
              return Fail("bad \\u escape");
            }
            const char h = text_[pos_++];
            code = code * 16 +
                   static_cast<uint32_t>(
                       h <= '9' ? h - '0'
                                : (h | 0x20) - 'a' + 10);
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by the writers in src/obs).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
  }

  StatusOr<JsonValue> Number() {
    const size_t begin = pos_;
    Consume('-');
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
    if (Consume('.')) {
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') {
        ++pos_;
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    const std::string token(text_.substr(begin, pos_ - begin));
    if (token.empty() || token == "-") {
      return Fail("expected a value");
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Fail("malformed number '" + token + "'");
    }
    return JsonValue::MakeNumber(value);
  }

  StatusOr<JsonValue> Literal(std::string_view word, JsonValue value) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("bad literal");
    }
    pos_ += word.size();
    return value;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Run();
}

StatusOr<JsonValue> ParseJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("failed reading " + path);
  }
  return ParseJson(buffer.str());
}

}  // namespace skymr::obs
