// `skymr doctor`: a diagnostics pass over a finished run's
// skymr-report-v1 document. It interprets the telemetry PR 3 started
// collecting and answers "why was this run slow?" with severity-ranked
// findings instead of raw numbers:
//
//   task-skew          one map/reduce task busy far longer than the
//                      median of its wave (straggler; bad split or
//                      skewed partition);
//   ppd-skew           observed tuples-per-partition far above the
//                      Section 3.3 uniform-occupancy prediction for the
//                      selected grid (clustered/skewed data breaks the
//                      paper's uniformity assumption);
//   ppd-coarse         the grid is much coarser than the Section 3.3
//                      candidate series allows and partitions are
//                      overfull (PPD forced or capped too low);
//   cost-model         observed comparison maxima exceed the Section 6
//                      predictions (Eq. 5-9) by a large factor;
//   pruning            Equation 2 bitstring pruning removed almost no
//                      partitions despite a large grid;
//   local-kernel       the observed dominance-comparison volume says the
//                      wrong local kernel ran: a window kernel (BNL/SFS)
//                      burning far more comparisons per input tuple than
//                      the R-tree BBS crossover predicts at that
//                      dimensionality (warning; rerun with
//                      --local-algorithm=bbs or auto), or BBS paying its
//                      tree-build overhead on a run whose comparison
//                      volume SFS would handle cheaply (info);
//   reduce-imbalance   reducer input lopsided across tasks (for
//                      MR-GPMRS: Definition-5 group assignment produced
//                      unbalanced reducer groups);
//   retry-storm        task retries per task far above normal (flaky
//                      workers, aggressive chaos schedule, or a
//                      systematic task failure burning the retry
//                      budget);
//   worker-blacklist   the scheduler blacklisted one or more simulated
//                      workers during the run;
//   speculation        speculative execution launched duplicates and/or
//                      a duplicate beat its primary (informational);
//   degraded           MR-GPMRS failed and the pipeline fell back to
//                      the single-reducer MR-GPSRS merge;
//   critical-path-phase
//                      one paper phase owns nearly the whole critical
//                      path (from the report's critical_path block) —
//                      the run is bound by that phase, so tune it
//                      (reducer count for merge, partitioner for
//                      shuffle, PPD for local-skyline);
//   straggler-on-critical-path
//                      a critical-path step ran far past its wave
//                      median, or needed retries to commit — that one
//                      task, not aggregate skew, set the makespan;
//   sampler-overhead   the metrics sampler's own per-sample cost (the
//                      mr.sampler_sample_us sketch in a skymr-metrics-v1
//                      export) consumed a non-trivial fraction of the
//                      run — lengthen the sampling period;
//   queueing-delay     (load artifacts) the tail of per-query latency is
//                      dominated by the arrival->dispatch queue wait —
//                      queries spend their p99 waiting for an admission
//                      slot, not computing; add slots/threads or shed
//                      load;
//   tail-amplification (load artifacts) latency p99 is a large multiple
//                      of p50 — a few queries (a straggler holding an
//                      admission slot, a chaos storm) inflated everyone
//                      scheduled behind them, the open-loop harness's
//                      coordinated-omission signature;
//   log-drop           structured log records were dropped (flight-ring
//                      lap contention or snapshot races) — the crash
//                      dump would have holes; grow ring_capacity or log
//                      less on the hot path.
//
// Every heuristic has a floor below which it stays silent, so a healthy
// run — including a tiny smoke-scale one — produces zero findings.
// The first two critical-path checks read skymr-report-v1 documents
// (AnalyzeReport); sampler-overhead and log-drop read skymr-metrics-v1
// documents (AnalyzeMetrics); the load heuristics read skymr-load-v1
// documents (AnalyzeLoad).

#ifndef SKYMR_OBS_DOCTOR_H_
#define SKYMR_OBS_DOCTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/json_parse.h"

namespace skymr::obs {

enum class Severity {
  kInfo,
  kWarning,
  kCritical,
};

const char* SeverityName(Severity severity);

/// One diagnostic the doctor emits.
struct Finding {
  Severity severity = Severity::kInfo;
  /// Stable machine-readable identifier (e.g. "ppd-coarse").
  std::string code;
  /// Human sentence with the measured numbers baked in.
  std::string message;
};

/// Thresholds for the heuristics. The defaults are deliberately loose:
/// the doctor should only speak when something is clearly wrong.
struct DoctorOptions {
  /// task-skew: flag when max busy > ratio * median busy ...
  double skew_ratio = 4.0;
  /// ... escalating to critical beyond this ratio ...
  double skew_critical_ratio = 16.0;
  /// ... and only when the slowest task is slow enough to matter.
  double min_busy_seconds = 0.05;

  /// ppd-skew: observed tuples-per-partition vs the uniform prediction.
  double ppd_skew_ratio = 4.0;
  /// ppd-coarse: absolute tuples-per-partition beyond which a grid that
  /// could have been finer is flagged.
  double coarse_tpp = 32.0;
  /// Minimum input size for either grid heuristic to speak.
  int64_t min_tuples_for_ppd = 1000;

  /// cost-model: observed max comparisons > ratio * predicted ...
  double cost_model_ratio = 4.0;
  /// ... and only when the observed count is non-trivial.
  int64_t min_observed_comparisons = 10000;

  /// pruning: flag when pruned/nonempty falls below this fraction ...
  double prune_min_fraction = 0.02;
  /// ... on a grid with at least this many non-empty partitions.
  int64_t min_partitions_for_prune = 256;

  /// reduce-imbalance: max reducer input records > ratio * median ...
  double reduce_imbalance_ratio = 4.0;
  /// ... and the largest reducer saw at least this many records.
  int64_t min_reducer_records = 1000;

  /// local-kernel: a window kernel (no skymr.bbs.* counters) spending
  /// more than this many comparisons per input tuple at BBS-friendly
  /// dimensionality is flagged ...
  double wrong_kernel_cmp_per_tuple = 128.0;
  /// ... where "BBS-friendly" means at least this many dimensions
  /// (matches the core::ResolveAutoKernel crossover) ...
  int64_t min_dim_for_bbs = 5;
  /// ... while a run that did pay the BBS tree build but measured fewer
  /// comparisons per tuple than this gets an informational note ...
  double bbs_overkill_cmp_per_tuple = 8.0;
  /// ... and either direction stays silent below this input size.
  int64_t min_tuples_for_kernel = 4096;

  /// retry-storm: flag when a job's retries exceed ratio * task count ...
  double retry_storm_ratio = 0.5;
  /// ... escalating to critical beyond this ratio ...
  double retry_storm_critical_ratio = 2.0;
  /// ... and only when the job retried at least this many times.
  int64_t min_retries = 3;

  /// critical-path-phase: flag when one phase owns more than this
  /// fraction of the critical path ...
  double critical_phase_fraction = 0.85;
  /// ... and only when the makespan is long enough to matter.
  double min_makespan_seconds = 0.05;

  /// straggler-on-critical-path: flag a path step slower than this
  /// multiple of its wave median ...
  double critical_straggler_ratio = 4.0;
  /// ... when the step itself is slow enough to matter ...
  double critical_min_step_seconds = 0.02;
  /// ... or (independently of timing) when the step's task needed at
  /// least this many attempts to commit.
  int64_t critical_retry_attempts = 2;

  /// sampler-overhead: flag when the sampler's summed per-sample cost
  /// exceeds this fraction of the registry uptime ...
  double sampler_overhead_fraction = 0.02;
  /// ... measured over at least this much uptime.
  double min_sampler_uptime_seconds = 0.5;

  /// queueing-delay (load artifacts): flag when the arrival->dispatch
  /// queue wait p99 exceeds this fraction of the end-to-end latency p99
  /// (the tail is spent waiting for an admission slot, not computing) ...
  double queueing_delay_fraction = 0.5;
  /// ... escalating to critical beyond this fraction ...
  double queueing_delay_critical_fraction = 0.9;
  /// ... and only when the queue-wait p99 itself is non-trivial.
  double min_queue_wait_p99_us = 5000.0;

  /// tail-amplification (load artifacts): flag when latency p99 exceeds
  /// this multiple of p50 (one slow query inflated everyone behind it) ...
  double tail_amplification_ratio = 25.0;
  /// ... and only when the p99 is slow enough to matter.
  double min_tail_p99_us = 10000.0;

  /// Both load heuristics stay silent below this many measured queries
  /// (percentiles of a handful of queries are noise).
  int64_t min_queries_for_load = 20;

  /// log-drop (load artifacts and metrics snapshots): any dropped
  /// structured log record is flagged once at least this many dropped.
  int64_t min_log_dropped = 1;

  /// session-cache-cold (serve-mode load artifacts): flag when fewer
  /// than this fraction of the session's bitstring lookups hit the
  /// cross-query cache — the resident session is rebuilding the phase
  /// it exists to share (fingerprint churn, or a mix with no repeats).
  double min_session_cache_hit_fraction = 0.5;
};

/// Analyzes a parsed skymr-report-v1 document. Returns findings sorted
/// most severe first; an empty vector means a clean bill of health.
/// Returns InvalidArgument when `report` is not a skymr-report-v1
/// object.
StatusOr<std::vector<Finding>> AnalyzeReport(
    const JsonValue& report, const DoctorOptions& options = {});

/// AnalyzeReport over a JSON document text / file.
StatusOr<std::vector<Finding>> AnalyzeReportJson(
    std::string_view json, const DoctorOptions& options = {});
StatusOr<std::vector<Finding>> AnalyzeReportFile(
    const std::string& path, const DoctorOptions& options = {});

/// Analyzes a parsed skymr-metrics-v1 document (the metrics.h exporter's
/// output): currently the sampler-overhead heuristic. Returns
/// InvalidArgument when `metrics` is not a skymr-metrics-v1 object.
StatusOr<std::vector<Finding>> AnalyzeMetrics(
    const JsonValue& metrics, const DoctorOptions& options = {});

/// AnalyzeMetrics over a JSON document text / file.
StatusOr<std::vector<Finding>> AnalyzeMetricsJson(
    std::string_view json, const DoctorOptions& options = {});
StatusOr<std::vector<Finding>> AnalyzeMetricsFile(
    const std::string& path, const DoctorOptions& options = {});

/// Analyzes a parsed skymr-load-v1 document (the loadgen's artifact):
/// queueing-delay, tail-amplification, and log-drop. Returns
/// InvalidArgument when `load` is not a skymr-load-v1 object.
StatusOr<std::vector<Finding>> AnalyzeLoad(
    const JsonValue& load, const DoctorOptions& options = {});

/// AnalyzeLoad over a JSON document text / file.
StatusOr<std::vector<Finding>> AnalyzeLoadJson(
    std::string_view json, const DoctorOptions& options = {});
StatusOr<std::vector<Finding>> AnalyzeLoadFile(
    const std::string& path, const DoctorOptions& options = {});

/// Renders findings as the text `skymr_cli doctor` prints (one line per
/// finding, severity-tagged; "doctor: no findings" when empty).
std::string RenderFindings(const std::vector<Finding>& findings);

}  // namespace skymr::obs

#endif  // SKYMR_OBS_DOCTOR_H_
