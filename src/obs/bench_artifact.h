// Machine-readable bench artifacts, schema skymr-bench-v1: the document
// every bench binary (the nine figure/ablation benches and
// bench_hotpath) writes so CI can diff runs over time.
//
// The schema splits every row into three sections with different trust
// levels:
//
//   "wall"          wall-time statistics over the run's repetitions
//                   (median/MAD/CV/min/max/mean) — machine-dependent and
//                   noisy, so regressions only soft-warn;
//   "metrics"       derived floating-point metrics (modeled seconds,
//                   speedups) — same trust level as wall time;
//   "deterministic" integer counters harvested from the engine's
//                   JobReport telemetry (tuple/partition comparisons,
//                   partitions pruned, shuffle bytes, tasks and waves
//                   run) — bit-identical across runs and machines for a
//                   fixed workload, so any drift is a real behavior
//                   change CI hard-gates on (tools/bench_diff.py).
//
// Document layout:
//
//   { "schema": "skymr-bench-v1",
//     "bench": "bench_fig7_dim_independent",
//     "environment": { "git_sha": ..., "compiler": ..., "build_type": ...,
//                      "cxx_flags": ..., "cpu": ..., "kernel_backend": ...,
//                      "tracing_compiled": ..., "threads": ...,
//                      "scale_env": ..., "full_env": ..., "reps": ... },
//     "rows": [ { "name": ...,
//                 "wall": { "reps", "median_seconds", "mad_seconds", "cv",
//                           "min_seconds", "max_seconds", "mean_seconds" },
//                 "metrics": { name: double, ... },
//                 "deterministic": { name: int64, ... } } ] }
//
// "environment" and "wall"/"metrics" are informational; only "rows[].name"
// and "rows[].deterministic" participate in the regression gate.

#ifndef SKYMR_OBS_BENCH_ARTIFACT_H_
#define SKYMR_OBS_BENCH_ARTIFACT_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/runner.h"

namespace skymr::obs {

/// Schema identifier stamped into every bench artifact.
inline constexpr const char* kBenchSchemaVersion = "skymr-bench-v1";

/// Robust summary statistics of the wall-time samples of one row.
struct WallStats {
  int reps = 0;
  double median_seconds = 0.0;
  /// Median absolute deviation from the median: a robust spread measure
  /// that one straggler repetition cannot inflate.
  double mad_seconds = 0.0;
  /// Coefficient of variation (population stddev / mean); 0 for a single
  /// repetition.
  double cv = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double mean_seconds = 0.0;

  /// Computes the statistics of `samples` (empty input -> all zeros).
  static WallStats FromSamples(std::vector<double> samples);
};

/// One bench-artifact row: a single benchmark configuration.
struct BenchRow {
  std::string name;
  WallStats wall;
  /// Machine-dependent derived metrics (modeled seconds, speedups, ...).
  std::map<std::string, double> metrics;
  /// The noise-free regression signal; see the header comment.
  std::map<std::string, int64_t> deterministic;
};

/// Build/host facts stamped into the artifact so a reader can tell two
/// artifacts apart without external context. Never part of the diff gate.
struct BenchEnvironment {
  std::string git_sha;
  std::string compiler;
  std::string build_type;
  std::string cxx_flags;
  std::string cpu;
  std::string kernel_backend;
  bool tracing_compiled = false;
  int threads = 0;
  /// Raw SKYMR_SCALE / SKYMR_FULL environment values ("" when unset).
  std::string scale_env;
  std::string full_env;
  int reps = 1;
};

/// Captures the compiled-in build facts plus the host CPU and the
/// SKYMR_SCALE / SKYMR_FULL / SKYMR_BENCH_REPS environment.
BenchEnvironment CaptureBenchEnvironment();

/// Repetitions per bench row: SKYMR_BENCH_REPS clamped to [1, 100],
/// default 1.
int BenchRepsFromEnv();

/// Harvests the deterministic counter section from a finished pipeline:
/// structural outcomes (skyline size, ppd, partition counts, jobs) plus
/// the skymr.* and mr.* integer counters summed across jobs, and the
/// total shuffle bytes. Everything returned is reproducible bit-for-bit
/// for a fixed dataset and RunnerConfig.
///
/// `include_fault_injection` adds the seeded-chaos signal — mr.task_retries,
/// the mr.chaos_*_injected totals, and mr.backoff_waits — which is
/// bit-identical for a fixed ChaosSchedule seed; the CI chaos-smoke gate
/// diffs two same-seed runs with this on. Timing-dependent counters
/// (speculation, blacklists, cache hits/misses, backoff milliseconds)
/// are always excluded.
std::map<std::string, int64_t> DeterministicCounters(
    const SkylineResult& result, uint64_t input_tuples,
    bool include_fault_injection = false);

/// One artifact document under construction.
class BenchArtifact {
 public:
  /// `bench_name` is the binary's identity (e.g. "bench_fig7"); the
  /// environment is captured at construction.
  explicit BenchArtifact(std::string bench_name);

  void AddRow(BenchRow row) { rows_.push_back(std::move(row)); }
  size_t row_count() const { return rows_.size(); }
  BenchEnvironment& environment() { return environment_; }

  /// Writes the skymr-bench-v1 JSON document.
  void Write(std::ostream& os) const;
  Status WriteFile(const std::string& path) const;

 private:
  std::string bench_name_;
  BenchEnvironment environment_;
  std::vector<BenchRow> rows_;
};

}  // namespace skymr::obs

#endif  // SKYMR_OBS_BENCH_ARTIFACT_H_
