#include "src/obs/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "src/common/logging.h"

namespace skymr::obs {
namespace {

/// The engine job name whose waves realize PPD selection + bitstring
/// pruning (core/bitstring_job.cc); every other job is a skyline job.
constexpr const char* kBitstringJobName = "bitstring-generation";

std::string Format(const char* fmt, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, value);
  return std::string(buf);
}

double Median(std::vector<double> values) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  if (n % 2 == 1) {
    return values[n / 2];
  }
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

StatusOr<DagPath> LongestPathImpl(const std::vector<DagNode>& nodes,
                                  std::string_view free_phase,
                                  bool has_free_phase) {
  const size_t n = nodes.size();
  std::map<uint64_t, size_t> index;
  for (size_t i = 0; i < n; ++i) {
    if (nodes[i].id == 0) {
      return Status::InvalidArgument("DAG node id must be nonzero: " +
                                     nodes[i].name);
    }
    if (!index.emplace(nodes[i].id, i).second) {
      return Status::InvalidArgument("duplicate DAG node id in: " +
                                     nodes[i].name);
    }
  }
  std::vector<std::vector<size_t>> children(n);
  std::vector<size_t> indegree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    SKYMR_DCHECK(nodes[i].weight >= 0.0)
        << "DAG node weights must be non-negative";
    for (uint64_t dep : nodes[i].deps) {
      auto it = index.find(dep);
      if (it == index.end()) {
        return Status::InvalidArgument("unknown DAG dependency id from: " +
                                       nodes[i].name);
      }
      children[it->second].push_back(i);
      ++indegree[i];
    }
  }

  const auto weight_of = [&](size_t i) {
    return (has_free_phase && nodes[i].phase == free_phase)
               ? 0.0
               : nodes[i].weight;
  };

  // Kahn's algorithm. Processing order does not affect the result: a
  // node's distance is fixed by its dependencies' distances, and both
  // tie-breaks below look only at deterministic orders (dependency-list
  // order for predecessors, input order for the path end).
  std::vector<double> dist(n, 0.0);
  std::vector<size_t> pred(n, n);  // n = no predecessor.
  std::vector<size_t> ready;
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      ready.push_back(i);
    }
  }
  size_t processed = 0;
  while (!ready.empty()) {
    const size_t u = ready.back();
    ready.pop_back();
    ++processed;
    double best = 0.0;
    size_t best_pred = n;
    for (uint64_t dep : nodes[u].deps) {
      const size_t d = index.find(dep)->second;
      if (best_pred == n || dist[d] > best) {
        best = dist[d];
        best_pred = d;
      }
    }
    dist[u] = best + weight_of(u);
    pred[u] = best_pred;
    for (size_t child : children[u]) {
      if (--indegree[child] == 0) {
        ready.push_back(child);
      }
    }
  }
  if (processed != n) {
    return Status::InvalidArgument("DAG contains a cycle");
  }

  DagPath path;
  if (n == 0) {
    return path;
  }
  size_t end = 0;
  for (size_t i = 1; i < n; ++i) {
    if (dist[i] > dist[end]) {
      end = i;
    }
  }
  path.length = dist[end];
  for (size_t at = end; at != n; at = pred[at]) {
    path.nodes.push_back(nodes[at].id);
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

/// The analyzer's internal view of one DAG node: both weightings plus
/// everything a CpStep needs, so the wall and deterministic DAGs share
/// one structure.
struct Entry {
  uint64_t id = 0;
  std::string name;
  std::string phase;
  std::string job;
  std::string kind;
  int task = 0;
  int attempts = 1;
  double wall = 0.0;
  uint64_t records = 0;
  double wave_median = 0.0;
  std::vector<uint64_t> deps;
};

std::vector<DagNode> ToDag(const std::vector<Entry>& entries, bool wall) {
  std::vector<DagNode> nodes;
  nodes.reserve(entries.size());
  for (const Entry& e : entries) {
    DagNode node;
    node.id = e.id;
    node.name = e.name;
    node.phase = e.phase;
    node.weight = wall ? e.wall : static_cast<double>(e.records);
    node.deps = e.deps;
    nodes.push_back(std::move(node));
  }
  return nodes;
}

}  // namespace

StatusOr<DagPath> LongestPath(const std::vector<DagNode>& nodes) {
  return LongestPathImpl(nodes, {}, /*has_free_phase=*/false);
}

StatusOr<DagPath> LongestPathWithPhaseFree(const std::vector<DagNode>& nodes,
                                           std::string_view free_phase) {
  return LongestPathImpl(nodes, free_phase, /*has_free_phase=*/true);
}

CriticalPathReport AnalyzeCriticalPath(
    const std::vector<mr::JobMetrics>& jobs) {
  CriticalPathReport report;
  std::vector<Entry> entries;
  uint64_t next_id = 1;
  // Ids of the previous job's terminal wave: the next job's map tasks
  // depend on all of them (a job cannot start before its input exists).
  std::vector<uint64_t> prev_terminal;

  for (size_t j = 0; j < jobs.size(); ++j) {
    const mr::JobMetrics& job = jobs[j];
    if (job.map_tasks.empty() && job.reduce_tasks.empty()) {
      continue;
    }
    const bool bitstring = job.name == kBitstringJobName;
    const std::string map_phase = bitstring ? "ppd.select" : "local-skyline";
    const std::string reduce_phase = bitstring ? "bitstring.prune" : "merge";
    const std::string jtag = "j" + std::to_string(j);

    std::vector<double> map_busy;
    map_busy.reserve(job.map_tasks.size());
    for (const mr::TaskMetrics& t : job.map_tasks) {
      map_busy.push_back(t.busy_seconds);
    }
    std::vector<double> shuffle_cost;
    std::vector<double> reduce_busy;
    shuffle_cost.reserve(job.reduce_tasks.size());
    reduce_busy.reserve(job.reduce_tasks.size());
    for (const mr::TaskMetrics& t : job.reduce_tasks) {
      shuffle_cost.push_back(t.shuffle_seconds);
      reduce_busy.push_back(t.busy_seconds);
    }
    const double map_median = Median(map_busy);
    const double shuffle_median = Median(shuffle_cost);
    const double reduce_median = Median(reduce_busy);

    std::vector<uint64_t> map_ids;
    map_ids.reserve(job.map_tasks.size());
    for (size_t t = 0; t < job.map_tasks.size(); ++t) {
      const mr::TaskMetrics& task = job.map_tasks[t];
      Entry e;
      e.id = next_id++;
      e.name = jtag + ".map" + std::to_string(t);
      e.phase = map_phase;
      e.job = job.name;
      e.kind = "map";
      e.task = static_cast<int>(t);
      e.attempts = task.attempts;
      e.wall = task.busy_seconds;
      e.records = task.input_records + task.output_records;
      e.wave_median = map_median;
      e.deps = prev_terminal;
      map_ids.push_back(e.id);
      entries.push_back(std::move(e));
    }

    std::vector<uint64_t> reduce_ids;
    reduce_ids.reserve(job.reduce_tasks.size());
    for (size_t r = 0; r < job.reduce_tasks.size(); ++r) {
      const mr::TaskMetrics& task = job.reduce_tasks[r];
      // The shuffle edge feeding reducer r: starts after every map task
      // (the all-to-all barrier), costs the time to build this reducer's
      // input. Deterministic weight = the records it carries.
      Entry shuffle;
      shuffle.id = next_id++;
      shuffle.name = jtag + ".shf" + std::to_string(r);
      shuffle.phase = "shuffle";
      shuffle.job = job.name;
      shuffle.kind = "shuffle";
      shuffle.task = static_cast<int>(r);
      shuffle.wall = task.shuffle_seconds;
      shuffle.records = task.input_records;
      shuffle.wave_median = shuffle_median;
      shuffle.deps = map_ids.empty() ? prev_terminal : map_ids;
      const uint64_t shuffle_id = shuffle.id;
      entries.push_back(std::move(shuffle));

      Entry reduce;
      reduce.id = next_id++;
      reduce.name = jtag + ".red" + std::to_string(r);
      reduce.phase = reduce_phase;
      reduce.job = job.name;
      reduce.kind = "reduce";
      reduce.task = static_cast<int>(r);
      reduce.attempts = task.attempts;
      reduce.wall = task.busy_seconds;
      reduce.records = task.input_records + task.output_records;
      reduce.wave_median = reduce_median;
      reduce.deps = {shuffle_id};
      reduce_ids.push_back(reduce.id);
      entries.push_back(std::move(reduce));
    }

    prev_terminal = reduce_ids.empty() ? map_ids : reduce_ids;
  }

  if (entries.empty()) {
    return report;
  }

  std::map<uint64_t, const Entry*> by_id;
  for (const Entry& e : entries) {
    by_id.emplace(e.id, &e);
  }

  const std::vector<DagNode> wall_dag = ToDag(entries, /*wall=*/true);
  StatusOr<DagPath> wall_path = LongestPath(wall_dag);
  SKYMR_DCHECK(wall_path.ok()) << "analyzer-built DAG must be acyclic";
  if (!wall_path.ok()) {
    return report;
  }
  report.makespan_seconds = wall_path->length;

  // Walk the path: steps, plus phase attribution in first-appearance
  // order. The path's nodes partition the makespan, so phase seconds sum
  // to exactly the path length.
  std::vector<std::string> phase_order;
  std::map<std::string, double> phase_seconds;
  for (uint64_t id : wall_path->nodes) {
    const Entry& e = *by_id.find(id)->second;
    CpStep step;
    step.job = e.job;
    step.kind = e.kind;
    step.phase = e.phase;
    step.task = e.task;
    step.attempts = e.attempts;
    step.seconds = e.wall;
    step.wave_median_seconds = e.wave_median;
    report.steps.push_back(std::move(step));
    if (phase_seconds.emplace(e.phase, 0.0).second) {
      phase_order.push_back(e.phase);
    }
    phase_seconds[e.phase] += e.wall;
  }
  for (const std::string& phase : phase_order) {
    CpPhase p;
    p.phase = phase;
    p.seconds = phase_seconds[phase];
    if (report.makespan_seconds > 0.0) {
      p.percent = 100.0 * p.seconds / report.makespan_seconds;
      StatusOr<DagPath> freed = LongestPathWithPhaseFree(wall_dag, phase);
      SKYMR_DCHECK(freed.ok()) << "phase-free pass reuses the acyclic DAG";
      if (freed.ok()) {
        p.what_if_free_percent =
            100.0 * (report.makespan_seconds - freed->length) /
            report.makespan_seconds;
      }
    }
    report.phases.push_back(std::move(p));
  }

  // Deterministic pass: record-count weights, seed-stable by design.
  const std::vector<DagNode> det_dag = ToDag(entries, /*wall=*/false);
  StatusOr<DagPath> det_path = LongestPath(det_dag);
  SKYMR_DCHECK(det_path.ok()) << "deterministic DAG shares the wall structure";
  std::ostringstream sig;
  sig << "jobs=" << jobs.size();
  for (size_t j = 0; j < jobs.size(); ++j) {
    sig << ";j" << j << "=" << jobs[j].name << ":m"
        << jobs[j].map_tasks.size() << ":r" << jobs[j].reduce_tasks.size();
  }
  if (det_path.ok()) {
    std::vector<std::string> det_order;
    std::map<std::string, uint64_t> det_records;
    uint64_t det_total = 0;
    sig << ";det=";
    bool first = true;
    for (uint64_t id : det_path->nodes) {
      const Entry& e = *by_id.find(id)->second;
      if (!first) {
        sig << ">";
      }
      first = false;
      sig << e.name;
      if (det_records.emplace(e.phase, 0).second) {
        det_order.push_back(e.phase);
      }
      det_records[e.phase] += e.records;
      det_total += e.records;
    }
    for (const std::string& phase : det_order) {
      CpDeterministicPhase p;
      p.phase = phase;
      p.records = det_records[phase];
      if (det_total > 0) {
        p.percent = 100.0 * static_cast<double>(p.records) /
                    static_cast<double>(det_total);
      }
      report.deterministic_phases.push_back(std::move(p));
    }
  }
  report.dag_signature = sig.str();
  report.valid = true;
  return report;
}

std::string RenderCriticalPathText(const CriticalPathReport& report) {
  std::ostringstream os;
  os << "critical path (wave model)\n";
  if (!report.valid) {
    os << "  no jobs to analyze\n";
    return os.str();
  }
  os << "  makespan " << Format("%.4f", report.makespan_seconds) << " s over "
     << report.steps.size() << " steps\n";
  os << "  phase attribution (sums to 100% of makespan):\n";
  for (const CpPhase& p : report.phases) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "    %-16s %10.4f s  %6.1f%%   if free: makespan -%.1f%%\n",
                  p.phase.c_str(), p.seconds, p.percent,
                  p.what_if_free_percent);
    os << line;
  }
  os << "  path:\n";
  for (const CpStep& s : report.steps) {
    char line[200];
    std::snprintf(line, sizeof(line),
                  "    %-22s %-7s[%d] %10.4f s  (wave median %.4f s, "
                  "attempts %d)\n",
                  s.job.c_str(), s.kind.c_str(), s.task, s.seconds,
                  s.wave_median_seconds, s.attempts);
    os << line;
  }
  if (!report.deterministic_phases.empty()) {
    os << "  deterministic attribution (records):";
    for (const CpDeterministicPhase& p : report.deterministic_phases) {
      os << " " << p.phase << " " << Format("%.1f", p.percent) << "%";
    }
    os << "\n";
  }
  os << "  dag signature: " << report.dag_signature << "\n";
  return os.str();
}

SpanDag BuildSpanDag(const std::vector<TraceEventView>& events) {
  SpanDag dag;
  // Winning attempts: the scheduler emits exactly one task.commit
  // instant per task, under the committed attempt's span id.
  std::set<uint64_t> committed;
  for (const TraceEventView& e : events) {
    if (e.phase == 'i' && e.name == "task.commit" && e.parent_id != 0) {
      committed.insert(e.parent_id);
    }
  }
  const auto is_task_span = [](const std::string& name) {
    return name == "map.task" || name == "reduce.task";
  };
  std::map<uint64_t, const TraceEventView*> spans;
  for (const TraceEventView& e : events) {
    if (e.phase == 'X' && e.id != 0) {
      spans.emplace(e.id, &e);
    }
  }
  // A span is excluded when it, or any ancestor on its parent chain, is
  // a task span with no commit instant (a losing attempt).
  const auto excluded = [&](const TraceEventView* span) {
    size_t hops = 0;
    for (const TraceEventView* at = span;
         at != nullptr && hops <= spans.size(); ++hops) {
      if (is_task_span(at->name) && committed.count(at->id) == 0) {
        return true;
      }
      auto it = spans.find(at->parent_id);
      at = it == spans.end() ? nullptr : it->second;
    }
    return false;
  };
  for (const auto& [id, span] : spans) {
    if (excluded(span)) {
      if (is_task_span(span->name) && committed.count(id) == 0) {
        ++dag.dropped_attempts;
      }
      continue;
    }
    SpanDagNode node;
    node.id = id;
    node.name = span->name;
    node.parent_id = span->parent_id;
    node.link_id = span->link_id;
    node.ts_us = span->ts_us;
    node.dur_us = span->dur_us;
    dag.nodes.push_back(std::move(node));
  }
  return dag;
}

}  // namespace skymr::obs
