// Structured, leveled, query-scoped logging with a crash flight recorder.
//
// Three pieces, designed for a resident query server rather than a batch
// run:
//
//  * LogRecord / Logger  — structured JSON-lines logging. Every record is
//    a fixed-size POD (timestamp, severity, event name, query id, job,
//    task, attempt, message) so the hot path never allocates; sinks render
//    records as one compact JSON object per line (FormatLogLine) that
//    round-trips through obs::ParseJson (ParseLogLine — fuzzed as a
//    fixpoint in fuzz/fuzz_log_parse.cc).
//
//  * Flight recorder — a lock-free bounded ring inside every Logger that
//    always retains the most recent `ring_capacity` records regardless of
//    severity sinks. On a crash (SKYMR_CHECK failure via the
//    common/logging.h fatal hook) or a fatal chaos fault (a task failing
//    permanently inside the engine), the last-N records are dumped as a
//    skymr-flight-v1 JSON-lines document for post-mortem analysis: the
//    dump is the answer to "what was the engine doing in the seconds
//    before it died", with the failing query's id on every line.
//
//  * QueryContext — the correlation spine. A stable query id + deadline +
//    free-form tag threaded through EngineOptions; every log record,
//    trace instant, and engine event emitted on behalf of that query
//    carries the id, so one query's task retries can be picked out of a
//    thousand-query flight recorder dump.
//
// Concurrency contract (exercised by the TSan test configuration):
//  * Log()/enabled() are safe from any thread, lock-free on the ring
//    path. Sinks are invoked under a per-logger mutex (sinks are for
//    humans and files; the ring is for crashes).
//  * Records arriving while a Snapshot()/dump drains the ring, or racing
//    a laggard writer a full ring-lap behind, are dropped and counted:
//    dropped() and, when a MetricsRegistry is attached, the
//    "mr.log_dropped" counter. A nonzero count is surfaced by the doctor
//    as the log-drop finding.

#ifndef SKYMR_OBS_LOG_H_
#define SKYMR_OBS_LOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace skymr::obs {

class MetricsRegistry;  // metrics.h

/// The correlation spine of one query: a stable id every span, metric,
/// and log record of the query's tasks carries. Threaded through
/// mr::EngineOptions into Job::Run and the TaskScheduler.
struct QueryContext {
  /// Stable nonzero query id; 0 means "no query context" (batch runs).
  uint64_t id = 0;
  /// Latency budget in milliseconds from scheduled arrival; 0 = none.
  /// The engine does not enforce it — the admission layer (loadgen, the
  /// future server) uses it to count deadline misses.
  double deadline_ms = 0.0;
  /// Free-form tag rendered into log records ("size=small", user id...).
  std::string tag;
};

/// Severity of one structured record. Distinct from skymr::LogLevel
/// (common/logging.h): that is the process-wide human text log; this is
/// the per-logger structured stream.
enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kFatal = 4,
};

/// Stable lowercase name ("debug", "info", "warn", "error", "fatal").
const char* LogSeverityName(LogSeverity severity);

/// Parses a LogSeverityName back; InvalidArgument on unknown names.
StatusOr<LogSeverity> ParseLogSeverity(std::string_view name);

/// One structured record. Fixed-size POD so the flight-recorder ring can
/// copy it without allocating; oversized event/tag/message strings are
/// truncated, never dropped.
struct LogRecord {
  static constexpr size_t kEventCapacity = 32;
  static constexpr size_t kTagCapacity = 32;
  static constexpr size_t kMessageCapacity = 104;

  /// Microseconds since the owning logger's construction.
  double ts_us = 0.0;
  LogSeverity severity = LogSeverity::kInfo;
  /// QueryContext::id of the originating query; 0 when not query-scoped.
  uint64_t query_id = 0;
  /// Task id / attempt within the originating job; -1 / 0 when absent.
  int32_t task = -1;
  int32_t attempt = 0;
  /// Dotted event name, e.g. "task.retry" (NUL-terminated).
  char event[kEventCapacity] = {};
  /// Job name the record belongs to ("" when not job-scoped).
  char job[kTagCapacity] = {};
  /// QueryContext::tag of the originating query ("" when absent).
  char tag[kTagCapacity] = {};
  /// Human sentence with the numbers baked in (NUL-terminated).
  char message[kMessageCapacity] = {};
};

/// Renders one record as a compact single-line JSON object (no trailing
/// newline): {"ts_us":..,"sev":"warn","event":"task.retry","query":7,...}.
/// Zero/absent fields (query 0, task -1, empty job/tag/message) are
/// omitted so quiet records stay short.
std::string FormatLogLine(const LogRecord& record);

/// Parses a FormatLogLine line back into a record. Untrusted-input
/// boundary (fuzzed): any byte sequence yields a record or an error
/// Status, never a crash; unknown keys are ignored, oversized strings
/// truncate exactly like the Logger does, so
/// FormatLogLine(ParseLogLine(FormatLogLine(r))) is a fixpoint.
StatusOr<LogRecord> ParseLogLine(std::string_view line);

/// A log destination. Sinks observe every record at or above the
/// logger's sink severity; they are invoked under the logger's sink
/// mutex, so a sink itself needs no locking against sibling calls.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// JSON-lines sink: one FormatLogLine object per record, one ostream
/// insert per line (lines from concurrent loggers cannot interleave).
class StreamLogSink : public LogSink {
 public:
  /// The stream must outlive the sink.
  explicit StreamLogSink(std::ostream& os) : os_(os) {}
  void Write(const LogRecord& record) override;

 private:
  std::ostream& os_;
};

/// Schema identifier of the flight-recorder dump's header line.
inline constexpr const char* kFlightSchemaVersion = "skymr-flight-v1";

/// A structured logger plus its flight recorder. Create one per process
/// (CLI) or per harness (loadgen, tests); the engine takes it as a
/// borrowed pointer via EngineOptions::log and never owns it.
class Logger {
 public:
  struct Options {
    /// Records below this severity are not offered to sinks. The flight
    /// recorder retains everything at or above `ring_min_severity`.
    LogSeverity min_severity = LogSeverity::kInfo;
    /// Flight-recorder floor: debug-level records are ring-recorded by
    /// default even when sinks only want info+.
    LogSeverity ring_min_severity = LogSeverity::kDebug;
    /// Ring slots retained for the crash dump (rounded up to a power of
    /// two, minimum 8).
    size_t ring_capacity = 256;
    /// When set, drops are counted into this registry's "mr.log_dropped"
    /// counter as well as dropped(). Must outlive the logger.
    MetricsRegistry* metrics = nullptr;
    /// When non-empty, NotifyFatal writes the flight-recorder dump to
    /// this path (once per logger).
    std::string crash_dump_path;
  };

  Logger();
  explicit Logger(const Options& options);
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  /// Optional per-record context beyond severity/event/message.
  struct Fields {
    uint64_t query_id = 0;
    std::string_view tag = {};
    std::string_view job = {};
    int32_t task = -1;
    int32_t attempt = 0;
  };

  /// True when a record at `severity` would be retained anywhere; callers
  /// guard expensive message formatting with it.
  bool enabled(LogSeverity severity) const {
    return severity >= options_.ring_min_severity ||
           severity >= options_.min_severity;
  }

  /// Records one event: into the flight recorder (lock-free) and to every
  /// sink at or above min_severity.
  void Log(LogSeverity severity, std::string_view event,
           std::string_view message, const Fields& fields);
  void Log(LogSeverity severity, std::string_view event,
           std::string_view message) {
    Log(severity, event, message, Fields{});
  }

  /// Convenience: Log with the query context's id/tag pre-filled.
  void LogQuery(LogSeverity severity, const QueryContext& query,
                std::string_view event, std::string_view message,
                std::string_view job = {}, int32_t task = -1,
                int32_t attempt = 0);

  /// Registers a borrowed sink (must outlive the logger or be removed by
  /// destroying the logger first; sinks cannot be unregistered).
  void AddSink(LogSink* sink);

  /// The retained flight-recorder records, oldest first. Quiesces the
  /// ring while draining: concurrent Log() calls during the snapshot are
  /// dropped (and counted) rather than torn.
  std::vector<LogRecord> Snapshot() const;

  /// Records dropped so far: arrivals during a snapshot/dump plus ring
  /// writers overtaken by a full ring lap. Mirrored into the
  /// "mr.log_dropped" metrics counter when Options::metrics is set.
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  size_t ring_capacity() const { return mask_ + 1; }

  /// Crash hook: logs a fatal record, then — when Options::crash_dump_path
  /// is set and no dump has fired yet — writes the flight-recorder dump
  /// there. Called by the engine on a permanent (chaos-) task failure and
  /// by the SKYMR_CHECK fatal hook after InstallAsFatalDumper().
  void NotifyFatal(std::string_view reason);

  /// Writes the skymr-flight-v1 dump: a header object (schema, reason,
  /// dropped count, record count) then one FormatLogLine line per
  /// retained record, oldest first.
  Status DumpFlightRecorder(std::ostream& os, std::string_view reason) const;
  Status DumpFlightRecorderFile(const std::string& path,
                                std::string_view reason) const;

  /// True once NotifyFatal has written (or attempted) the crash dump.
  bool crash_dumped() const {
    return crash_dumped_.load(std::memory_order_acquire);
  }

  /// Registers this logger as the process-wide fatal dumper: a
  /// SKYMR_CHECK failure calls NotifyFatal("check-failure") before
  /// aborting, so the flight recorder survives even invariant crashes.
  /// The registration is cleared by the destructor.
  void InstallAsFatalDumper();

 private:
  struct Slot;

  /// Claims one ring slot and copies `record` in; returns false (and
  /// counts a drop) when the ring is quiesced or the slot is contended.
  bool Append(const LogRecord& record);
  void CountDrop();

  Options options_;
  /// steady_clock origin for ts_us.
  const std::chrono::steady_clock::time_point epoch_;

  // Flight recorder: power-of-two ring of seqlock-guarded slots.
  size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> head_{0};
  /// False while a snapshot drains the ring; appends drop instead of
  /// tearing the reader.
  std::atomic<bool> recording_{true};
  mutable std::atomic<int> writers_in_flight_{0};
  std::atomic<int64_t> dropped_{0};

  std::mutex sink_mutex_;
  std::vector<LogSink*> sinks_;

  std::atomic<bool> crash_dumped_{false};
  bool installed_as_fatal_dumper_ = false;
};

}  // namespace skymr::obs

#endif  // SKYMR_OBS_LOG_H_
