// Fixed log-bucket histograms for engine metrics (per-task busy time,
// shuffle bucket sizes, window scan lengths, reducer group load).
//
// Like Counters, a Histogram is owned privately by one task and merged by
// the engine into job-level totals, so recording needs no synchronization.
// Buckets are powers of two: bucket 0 holds the value 0 and bucket i
// (i >= 1) holds values in [2^(i-1), 2^i - 1], so Merge is exact and a
// percentile estimate is off by at most the width of one bucket (the
// estimate is clamped into [min, max], which makes single-value and
// extreme percentiles exact).

#ifndef SKYMR_OBS_HISTOGRAM_H_
#define SKYMR_OBS_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

namespace skymr::obs {

/// A mergeable histogram of uint64 values with power-of-two buckets.
class Histogram {
 public:
  /// Bucket 0 holds zero; buckets 1..64 hold [2^(i-1), 2^i - 1].
  static constexpr size_t kNumBuckets = 65;

  /// Records one value.
  void Add(uint64_t value);

  /// Adds every recorded value of `other` into this.
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  /// Smallest / largest recorded value; 0 when empty.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  bool empty() const { return count_ == 0; }
  double Mean() const;

  /// Value at percentile `p` in [0, 100], linearly interpolated within the
  /// containing bucket and clamped to [min(), max()]. 0 when empty.
  double Percentile(double p) const;

  const std::array<uint64_t, kNumBuckets>& buckets() const {
    return buckets_;
  }

  /// Index of the bucket holding `value`.
  static size_t BucketIndex(uint64_t value);
  /// Smallest value bucket `index` holds.
  static uint64_t BucketLowerBound(size_t index);
  /// Largest value bucket `index` holds.
  static uint64_t BucketUpperBound(size_t index);

  /// Renders "count=N sum=S min=m p50=... p95=... max=M".
  std::string ToString() const;

  bool operator==(const Histogram& other) const {
    return buckets_ == other.buckets_ && count_ == other.count_ &&
           sum_ == other.sum_ && min() == other.min() && max_ == other.max_;
  }

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// A mergeable bag of named histograms with deterministic iteration order,
/// the histogram analogue of Counters.
class HistogramSet {
 public:
  /// Records `value` into the histogram named `name` (creating it).
  void Add(const std::string& name, uint64_t value);

  /// Returns the histogram under `name`, creating it empty.
  Histogram& Get(const std::string& name);

  /// Returns the histogram under `name`, or nullptr when absent.
  const Histogram* Find(const std::string& name) const;

  /// Merges every histogram of `other` into this.
  void Merge(const HistogramSet& other);

  bool empty() const { return histograms_.empty(); }
  size_t size() const { return histograms_.size(); }

  const std::map<std::string, Histogram>& entries() const {
    return histograms_;
  }

 private:
  std::map<std::string, Histogram> histograms_;
};

}  // namespace skymr::obs

#endif  // SKYMR_OBS_HISTOGRAM_H_
