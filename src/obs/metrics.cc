#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>

#include "src/common/logging.h"
#include "src/obs/json.h"

namespace skymr::obs {
namespace {

// gamma = (1 + a) / (1 - a): the log-bucket base that makes every bucket
// midpoint a relative-error-a estimate for the whole bucket.
const double kGamma = (1.0 + QuantileSketch::kRelativeError) /
                      (1.0 - QuantileSketch::kRelativeError);
const double kLogGamma = std::log(kGamma);
// Midpoint factor: the estimate for bucket (gamma^(i-1), gamma^i] is
// 2 * gamma^i / (gamma + 1).
const double kMidpointFactor = 2.0 / (kGamma + 1.0);

void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// QuantileSketch

QuantileSketch::QuantileSketch()
    : buckets_(kNumBuckets, 0),
      min_pos_(std::numeric_limits<double>::infinity()),
      max_pos_(0.0) {}

size_t QuantileSketch::BucketSlot(double value) {
  if (!(value > 0.0)) {  // Also catches NaN.
    return 0;
  }
  double index = std::ceil(std::log(value) / kLogGamma);
  index = std::max(index, static_cast<double>(kMinIndex));
  index = std::min(index, static_cast<double>(kMaxIndex));
  return static_cast<size_t>(static_cast<int>(index) - kMinIndex + 1);
}

double QuantileSketch::SlotValue(size_t slot) {
  if (slot == 0) {
    return 0.0;
  }
  const int index = static_cast<int>(slot) - 1 + kMinIndex;
  return kMidpointFactor * std::exp(static_cast<double>(index) * kLogGamma);
}

void QuantileSketch::Add(double value) {
  const size_t slot = BucketSlot(value);
  ++buckets_[slot];
  ++count_;
  if (slot != 0) {
    sum_ += value;
    min_pos_ = std::min(min_pos_, value);
    max_pos_ = std::max(max_pos_, value);
  }
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_pos_ = std::min(min_pos_, other.min_pos_);
  max_pos_ = std::max(max_pos_, other.max_pos_);
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::min(std::max(q, 0.0), 1.0);
  // 0-based target rank in the sorted population.
  const double rank = q * static_cast<double>(count_ - 1);
  uint64_t cumulative = 0;
  for (size_t slot = 0; slot < kNumBuckets; ++slot) {
    cumulative += buckets_[slot];
    if (static_cast<double>(cumulative) > rank) {
      if (slot == 0) {
        return 0.0;
      }
      const double estimate = SlotValue(slot);
      return std::min(std::max(estimate, min()), max());
    }
  }
  return max();
}

double QuantileSketch::min() const {
  return std::isfinite(min_pos_) ? min_pos_ : 0.0;
}

double QuantileSketch::max() const { return max_pos_; }

bool QuantileSketch::operator==(const QuantileSketch& other) const {
  return count_ == other.count_ && min() == other.min() &&
         max() == other.max() && buckets_ == other.buckets_;
}

QuantileSketch QuantileSketch::FromParts(std::vector<uint64_t> buckets,
                                         uint64_t count, double sum,
                                         double min_pos, double max_pos) {
  QuantileSketch sketch;
  SKYMR_DCHECK(buckets.size() == kNumBuckets)
      << "sketch parts have " << buckets.size() << " buckets, expected "
      << kNumBuckets;
  sketch.buckets_ = std::move(buckets);
  sketch.count_ = count;
  sketch.sum_ = sum;
  sketch.min_pos_ = min_pos;
  sketch.max_pos_ = max_pos;
  return sketch;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::Sketch::Sketch() : buckets_(QuantileSketch::kNumBuckets) {
  min_pos_.store(std::numeric_limits<double>::infinity(),
                 std::memory_order_relaxed);
}

void MetricsRegistry::Sketch::Record(double value) {
  const size_t slot = QuantileSketch::BucketSlot(value);
  buckets_[slot].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (slot != 0) {
    AtomicAddDouble(&sum_, value);
    AtomicMinDouble(&min_pos_, value);
    AtomicMaxDouble(&max_pos_, value);
  }
}

QuantileSketch MetricsRegistry::Sketch::Snapshot() const {
  std::vector<uint64_t> buckets(QuantileSketch::kNumBuckets);
  for (size_t i = 0; i < buckets.size(); ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return QuantileSketch::FromParts(
      std::move(buckets), count_.load(std::memory_order_relaxed),
      sum_.load(std::memory_order_relaxed),
      min_pos_.load(std::memory_order_relaxed),
      max_pos_.load(std::memory_order_relaxed));
}

MetricsRegistry::MetricsRegistry()
    : epoch_(std::chrono::steady_clock::now()) {}

MetricsRegistry::Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  SKYMR_DCHECK(counters_.find(name) == counters_.end() &&
               sketches_.find(name) == sketches_.end())
      << "metric '" << std::string(name)
      << "' already registered with a different kind";
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

MetricsRegistry::Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  SKYMR_DCHECK(gauges_.find(name) == gauges_.end() &&
               sketches_.find(name) == sketches_.end())
      << "metric '" << std::string(name)
      << "' already registered with a different kind";
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

MetricsRegistry::Sketch* MetricsRegistry::sketch(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  SKYMR_DCHECK(gauges_.find(name) == gauges_.end() &&
               counters_.find(name) == counters_.end())
      << "metric '" << std::string(name)
      << "' already registered with a different kind";
  auto it = sketches_.find(name);
  if (it == sketches_.end()) {
    it = sketches_.emplace(std::string(name), std::make_unique<Sketch>())
             .first;
  }
  return it->second.get();
}

double MetricsRegistry::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.uptime_seconds = UptimeSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, sketch] : sketches_) {
    snap.sketches.emplace(name, sketch->Snapshot());
  }
  return snap;
}

namespace {

void WriteSketchJson(const QuantileSketch& sketch, JsonWriter* w) {
  w->BeginObject();
  w->Key("count");
  w->Uint(sketch.count());
  w->Key("sum");
  w->Double(sketch.sum());
  w->Key("min");
  w->Double(sketch.min());
  w->Key("max");
  w->Double(sketch.max());
  w->Key("p50");
  w->Double(sketch.Quantile(0.50));
  w->Key("p95");
  w->Double(sketch.Quantile(0.95));
  w->Key("p99");
  w->Double(sketch.Quantile(0.99));
  w->Key("relative_error");
  w->Double(QuantileSketch::kRelativeError);
  w->EndObject();
}

void WriteIntMapJson(const std::map<std::string, int64_t>& values,
                     JsonWriter* w) {
  w->BeginObject();
  for (const auto& [name, value] : values) {
    w->Key(name);
    w->Int(value);
  }
  w->EndObject();
}

}  // namespace

void MetricsRegistry::WriteJson(
    std::ostream& os, const std::vector<MetricsSample>& samples) const {
  const MetricsSnapshot snap = Snapshot();
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema");
  w.String(kMetricsSchemaVersion);
  w.Key("uptime_seconds");
  w.Double(snap.uptime_seconds);
  w.Key("gauges");
  WriteIntMapJson(snap.gauges, &w);
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : snap.counters) {
    w.Key(name);
    w.BeginObject();
    w.Key("value");
    w.Int(value);
    w.Key("rate_per_s");
    w.Double(snap.uptime_seconds > 0.0
                 ? static_cast<double>(value) / snap.uptime_seconds
                 : 0.0);
    w.EndObject();
  }
  w.EndObject();
  w.Key("sketches");
  w.BeginObject();
  for (const auto& [name, sketch] : snap.sketches) {
    w.Key(name);
    WriteSketchJson(sketch, &w);
  }
  w.EndObject();
  w.Key("samples");
  w.BeginArray();
  for (const MetricsSample& sample : samples) {
    w.BeginObject();
    w.Key("uptime_seconds");
    w.Double(sample.uptime_seconds);
    w.Key("sample_cost_us");
    w.Double(sample.sample_cost_us);
    w.Key("gauges");
    WriteIntMapJson(sample.gauges, &w);
    w.Key("counters");
    WriteIntMapJson(sample.counters, &w);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
}

Status MetricsRegistry::WriteJsonFile(
    const std::string& path,
    const std::vector<MetricsSample>& samples) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open metrics output: " + path);
  }
  WriteJson(out, samples);
  out.flush();
  if (!out) {
    return Status::IoError("failed writing metrics: " + path);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MetricsSampler

MetricsSampler::MetricsSampler(MetricsRegistry* registry, int period_ms,
                               size_t max_samples)
    : registry_(registry),
      period_ms_(period_ms > 0 ? period_ms : 1),
      max_samples_(max_samples > 0 ? max_samples : 1) {
  // Register the self-cost sketch up front so the hot sampling loop never
  // touches the registration mutex for it.
  cost_sketch_ = registry_->sketch("mr.sampler_sample_us");
  thread_ = std::thread([this] { Loop(); });
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Stop() {
  std::call_once(stop_once_, [this] {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    if (thread_.joinable()) {
      thread_.join();
    }
    // One final sample so even a run shorter than the period exports a
    // non-empty time series.
    TakeSample();
  });
}

std::vector<MetricsSample> MetricsSampler::Samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<MetricsSample>(samples_.begin(), samples_.end());
}

void MetricsSampler::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    wake_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                   [this] { return stop_; });
    if (stop_) {
      break;
    }
    lock.unlock();
    TakeSample();
    lock.lock();
  }
}

void MetricsSampler::TakeSample() {
  const auto start = std::chrono::steady_clock::now();
  const MetricsSnapshot snap = registry_->Snapshot();
  MetricsSample sample;
  sample.uptime_seconds = snap.uptime_seconds;
  sample.gauges = snap.gauges;
  sample.counters = snap.counters;
  sample.sample_cost_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  cost_sketch_->Record(sample.sample_cost_us);
  samples_taken_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  samples_.push_back(std::move(sample));
  while (samples_.size() > max_samples_) {
    samples_.pop_front();
  }
}

}  // namespace skymr::obs
