// Critical-path analysis: which phase actually bounds the makespan?
//
// The paper's Figure-11 cost model predicts a makespan; this analyzer
// explains an observed one. It models a finished pipeline as a
// node-weighted DAG — map tasks, one shuffle edge per reducer, reduce
// tasks, with job k's map wave depending on job k-1's reduce wave — and
// computes the longest (critical) path through it. Every second of the
// makespan lies on that path, so attributing path nodes to the paper's
// phases (ppd.select, bitstring.prune, local-skyline, shuffle, merge)
// yields a table that sums to 100% of the makespan. A what-if pass
// re-runs the longest path with one phase's weights zeroed ("shuffle
// free ⇒ makespan −X%"), which is the slack argument arXiv 2411.14968
// uses to drive partitioner and reducer-count choices.
//
// Two weightings over the same DAG:
//  * wall: task busy seconds and shuffle build seconds — what a human
//    reads, but timing-noisy.
//  * deterministic: record counts (map/reduce: input+output records,
//    shuffle: reducer input records) — bit-identical across same-seed
//    runs, so CI can assert two runs agree on DAG shape and attribution.
//
// Span-DAG reconstruction (trace side): spans carry stable ids, parent
// ids, and shuffle-edge links (trace.h). A map/reduce task attempt is on
// the DAG only if a "task.commit" instant points at its span id — the
// scheduler emits that instant exactly once per task, for the winning
// attempt — so retried tasks' losing attempts (and their child spans)
// never appear on the critical path.

#ifndef SKYMR_OBS_CRITICAL_PATH_H_
#define SKYMR_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/mapreduce/task_metrics.h"
#include "src/obs/trace.h"

namespace skymr::obs {

/// One node of a node-weighted dependency DAG. Generic on purpose: the
/// golden tests hand-build DAGs, the analyzer builds them from metrics.
struct DagNode {
  /// Unique nonzero node id.
  uint64_t id = 0;
  /// Display name ("j1.map3").
  std::string name;
  /// Phase label nodes are aggregated under ("shuffle", "merge", ...).
  std::string phase;
  /// Node cost. The path length is the sum of node weights (no edge
  /// weights); weights must be non-negative.
  double weight = 0.0;
  /// Ids of nodes that must finish before this one starts.
  std::vector<uint64_t> deps;
};

/// A longest path through a DAG: total weight plus the node ids in
/// dependency order (first node has no deps on the path).
struct DagPath {
  double length = 0.0;
  std::vector<uint64_t> nodes;
};

/// Longest path through `nodes`. Deterministic: ties are broken toward
/// the earliest candidate (first strict maximum in input order for the
/// path end, in dependency-list order for predecessors), so equal-weight
/// DAGs built in the same order yield byte-identical paths. Errors on an
/// unknown dependency id, a duplicate/zero id, or a cycle. An empty DAG
/// yields an empty path of length 0.
StatusOr<DagPath> LongestPath(const std::vector<DagNode>& nodes);

/// Longest path with every node of `free_phase` given weight 0 — the
/// what-if analysis ("how short would the makespan be if this phase were
/// free?"). The freed nodes still exist, so dependencies are preserved.
StatusOr<DagPath> LongestPathWithPhaseFree(const std::vector<DagNode>& nodes,
                                           std::string_view free_phase);

/// One phase's share of the critical path (wall weighting).
struct CpPhase {
  std::string phase;
  /// Critical-path seconds attributed to this phase.
  double seconds = 0.0;
  /// seconds / makespan, in percent. Phases partition the path, so the
  /// percents sum to 100 (when the makespan is nonzero).
  double percent = 0.0;
  /// Makespan reduction, in percent, if this phase cost nothing.
  double what_if_free_percent = 0.0;
};

/// One node on the critical path (wall weighting).
struct CpStep {
  /// Job name ("bitstring-generation", "mr-gpmrs").
  std::string job;
  /// "map", "shuffle", or "reduce".
  std::string kind;
  std::string phase;
  /// Task index within its wave (reducer index for shuffle steps).
  int task = 0;
  /// Attempts the winning task needed (1 = no retry); 1 for shuffle.
  int attempts = 1;
  double seconds = 0.0;
  /// Median cost of this step's wave — the straggler yardstick the
  /// doctor's straggler-on-critical-path check compares against.
  double wave_median_seconds = 0.0;
};

/// One phase's share of the deterministic critical path.
struct CpDeterministicPhase {
  std::string phase;
  /// Record-count weight attributed to this phase.
  uint64_t records = 0;
  double percent = 0.0;
};

/// The full analysis, rendered into the report's "critical_path" block.
struct CriticalPathReport {
  /// False when there was nothing to analyze (no jobs / no tasks).
  bool valid = false;
  /// Critical-path length under the wall weighting. This is the wave
  /// model's makespan — max map straggler plus the worst shuffle+reduce
  /// chain per job — not result.wall_seconds, which also contains
  /// scheduling overhead off the modeled path.
  double makespan_seconds = 0.0;
  /// Phase attribution, ordered by first appearance on the path.
  std::vector<CpPhase> phases;
  /// The path itself, in dependency order.
  std::vector<CpStep> steps;
  /// Seed-stable attribution from deterministic record counts.
  std::vector<CpDeterministicPhase> deterministic_phases;
  /// Seed-stable fingerprint of the DAG shape plus the deterministic
  /// path: two same-seed runs must produce identical signatures.
  std::string dag_signature;
};

/// Analyzes a finished pipeline's per-job metrics (SkylineResult::jobs).
/// Phase mapping follows the paper: the bitstring-generation job's map
/// wave is ppd.select and its reduce wave bitstring.prune; every other
/// job's map wave is local-skyline and its reduce wave merge; shuffle is
/// always shuffle.
CriticalPathReport AnalyzeCriticalPath(
    const std::vector<mr::JobMetrics>& jobs);

/// Renders the human-readable attribution table `skymr_cli stats
/// --critical-path` prints.
std::string RenderCriticalPathText(const CriticalPathReport& report);

/// One span in a reconstructed trace DAG.
struct SpanDagNode {
  uint64_t id = 0;
  std::string name;
  /// Containment edge (0 = root) and causal shuffle link (0 = none).
  uint64_t parent_id = 0;
  uint64_t link_id = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

/// The span DAG of one traced run: committed work only.
struct SpanDag {
  /// Nodes sorted by id.
  std::vector<SpanDagNode> nodes;
  /// map.task / reduce.task spans dropped because no "task.commit"
  /// instant pointed at them — losing attempts of retried tasks.
  size_t dropped_attempts = 0;
};

/// Reconstructs the span DAG from a trace snapshot. A map.task or
/// reduce.task span is kept only when a "task.commit" instant names it as
/// parent; spans nested under a dropped attempt are dropped with it.
SpanDag BuildSpanDag(const std::vector<TraceEventView>& events);

}  // namespace skymr::obs

#endif  // SKYMR_OBS_CRITICAL_PATH_H_
