// Unified run report: counters, histograms, and task timelines of every
// job in a finished pipeline, plus the Section 6 cost-model predictions
// next to the observed comparison counts (the Figure 11 comparison).
//
// Two renderings share one data walk: a machine-readable JSON document
// (schema skymr-report-v1) and the human-readable text `skymr_cli stats`
// prints. The JSON layout:
//
//   { "schema": "skymr-report-v1",
//     "algorithm": "mr-gpmrs", "wall_seconds": ..., "modeled_seconds": ...,
//     "modeled_compute_seconds": ..., "skyline_size": ...,
//     "ppd": ..., "nonempty_partitions": ..., "pruned_partitions": ...,
//     "degraded": ..., "resumed_from_checkpoint": ...,
//     "jobs": [ { "name": ..., "wall_seconds": ..., "shuffle_bytes": ...,
//                 "task_retries": ..., "cache_hits": ..., "cache_misses": ...,
//                 "counters": {...},
//                 "histograms": { name: {count,sum,min,max,mean,p50,p95,p99} },
//                 "skew": { "max_map_busy_seconds": ...,
//                           "median_map_busy_seconds": ...,
//                           "max_reduce_busy_seconds": ...,
//                           "median_reduce_busy_seconds": ... },
//                 "map_tasks": [ {busy_seconds, attempts, input_records,
//                                 output_records, output_bytes} ],
//                 "reduce_tasks": [ ... + input_bytes, shuffle_seconds ] } ],
//     "cost_model": { "ppd": ..., "dim": ...,
//                     "predicted_mapper_comparisons": ...,
//                     "observed_max_mapper_comparisons": ...,
//                     "predicted_reducer_comparisons": ...,
//                     "observed_max_reducer_comparisons": ... },
//     "critical_path": {
//       "makespan_seconds": ...,
//       "phases": [ {phase, seconds, percent, what_if_free_percent} ],
//       "path": [ {job, kind, phase, task, attempts, seconds,
//                  wave_median_seconds} ],
//       "deterministic": { "dag_signature": ...,
//                          "phases": [ {phase, records, percent} ] } } }
//
// "cost_model" is present only for the grid algorithms (ppd > 0). The
// predictions are the paper's estimates under its uniformity assumptions,
// not hard bounds: on skewed data, or when ppd selection is capped, the
// observed counts can exceed them. The point of the block is exactly that
// comparison (paper Figure 11).
//
// "critical_path" (present whenever the run had jobs) is the
// obs/critical_path.h analysis: phase percents partition the wave-model
// makespan (they sum to 100), and the "deterministic" sub-block is built
// from record counts only, so two same-seed runs emit it byte-identically
// — CI's determinism gate diffs exactly that object.

#ifndef SKYMR_OBS_JOB_REPORT_H_
#define SKYMR_OBS_JOB_REPORT_H_

#include <ostream>
#include <string>

#include "src/common/status.h"
#include "src/core/runner.h"
#include "src/mapreduce/task_metrics.h"

namespace skymr::obs {

/// Schema identifier stamped into every report document.
inline constexpr const char* kReportSchemaVersion = "skymr-report-v1";

/// Writes the full pipeline report for `result` as JSON.
void WriteJobReport(const SkylineResult& result, std::ostream& os);

/// WriteJobReport to a file.
Status WriteJobReportFile(const SkylineResult& result,
                          const std::string& path);

/// Renders one job's metrics block as a standalone JSON object — the same
/// object that appears in the report's "jobs" array.
std::string RenderJobMetricsJson(const mr::JobMetrics& metrics);

/// Renders the human-readable summary `skymr_cli stats` prints: per-job
/// task skew (max/median busy seconds), retries, cache traffic, histogram
/// summaries, and the cost-model comparison. The critical-path table is
/// separate (obs::RenderCriticalPathText), printed under --critical-path.
std::string RenderStatsText(const SkylineResult& result);

}  // namespace skymr::obs

#endif  // SKYMR_OBS_JOB_REPORT_H_
