// Low-overhead span tracer for the MapReduce engine and the skyline
// algorithms, exported as Chrome trace-event JSON (schema skymr-trace-v1,
// loadable in chrome://tracing or Perfetto).
//
// Design:
//  * Collection is off by default. StartTracing() flips one process-wide
//    atomic; a disabled SKYMR_TRACE_SPAN costs a single relaxed load.
//  * Each thread appends completed spans to its own buffer — no locks or
//    atomics on the recording path. Buffers are registered once per
//    thread under a mutex and owned by a global registry, so events
//    survive thread exit (worker pools wind down before export anyway).
//  * Spans are RAII: SKYMR_TRACE_SPAN("name") records a complete ("X")
//    event from construction to scope exit, with up to two static-named
//    int64 args and the span's nesting depth on its thread.
//  * Every span carries a stable id, its parent span's id, and an
//    optional causal link to another span (see critical_path.h). The
//    parent defaults to the innermost span open on the same thread;
//    cross-thread edges (a pool task under a wave span, a reducer
//    depending on a shuffle bucket) are set explicitly via
//    SKYMR_TRACE_SPAN_ID + SetParent()/SetLink(). Ids restart from 1 at
//    every StartTracing(), so a fixed workload yields a reproducible id
//    assignment per (thread, order) schedule.
//  * When the build is configured with -DSKYMR_TRACING=OFF the macros
//    compile to nothing (argument expressions are type-checked but never
//    evaluated), so hot paths carry zero cost.
//
// Start/Stop/Clear/Write/Snapshot must be called while no spans are
// executing (between jobs): the registry cannot atomically freeze buffers
// that other threads are appending to. The engine only opens spans inside
// Job::Run, so any point outside a running job is safe.

#ifndef SKYMR_OBS_TRACE_H_
#define SKYMR_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

// Compile-time master switch, normally set by CMake (SKYMR_TRACING).
#ifndef SKYMR_TRACING_ENABLED
#define SKYMR_TRACING_ENABLED 1
#endif

namespace skymr::obs {

/// Schema identifier stamped into every exported trace.
inline constexpr const char* kTraceSchemaVersion = "skymr-trace-v1";

/// True when the tracer was compiled in (SKYMR_TRACING=ON).
constexpr bool TracingCompiledIn() { return SKYMR_TRACING_ENABLED != 0; }

namespace internal {
extern std::atomic<bool> g_tracing_active;
}  // namespace internal

/// True when spans are currently being collected.
inline bool TracingActive() {
  return internal::g_tracing_active.load(std::memory_order_relaxed);
}

/// Discards previously collected events and starts collecting. A no-op
/// (collection stays off) when tracing was compiled out.
void StartTracing();

/// Stops collecting. Collected events stay available for export.
void StopTracing();

/// Discards all collected events.
void ClearTrace();

/// Number of events collected so far.
size_t CollectedEventCount();

/// One collected event, decoded for programmatic inspection (tests, the
/// stats surface). ts/dur are microseconds since StartTracing.
struct TraceEventView {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  uint32_t tid = 0;
  uint32_t depth = 0;
  char phase = 'X';  // 'X' complete span, 'i' instant.
  /// Stable span id (0 for plain instants), the enclosing/explicit
  /// parent span's id (0 = root), and the causal-link target span id
  /// (0 = none). See critical_path.h for how these become a DAG.
  uint64_t id = 0;
  uint64_t parent_id = 0;
  uint64_t link_id = 0;
  std::vector<std::pair<std::string, int64_t>> args;
};

/// Decodes every collected event (any thread order; per-thread order is
/// span completion order, so children precede parents).
std::vector<TraceEventView> SnapshotTrace();

/// Writes the collected events as Chrome trace-event JSON.
void WriteChromeTrace(std::ostream& os);

/// WriteChromeTrace to a file.
Status WriteChromeTraceFile(const std::string& path);

namespace internal {

/// Maximum span name length stored inline (longer names are truncated).
inline constexpr size_t kMaxNameLength = 47;

struct TraceEvent {
  double ts_us;
  double dur_us;
  uint32_t depth;
  char phase;
  char name[kMaxNameLength + 1];
  uint64_t id;
  uint64_t parent_id;
  uint64_t link_id;
  // Arg names must be string literals (stored by pointer).
  const char* arg1_name;
  const char* arg2_name;
  int64_t arg1_value;
  int64_t arg2_value;
};

/// Microseconds since the trace epoch (set by StartTracing).
double NowMicros();

/// Appends one completed event to the calling thread's buffer.
void RecordEvent(const TraceEvent& event);

/// Allocates the next span id (process-wide; reset by StartTracing).
uint64_t NextSpanId();

/// Id of the innermost span open on this thread (0 when none).
uint64_t CurrentSpanId();

/// Pushes `id` onto this thread's open-span stack; returns the span's
/// nesting depth. LeaveSpan pops.
uint32_t EnterSpan(uint64_t id);
void LeaveSpan();

/// Swallows macro arguments in compiled-out builds without evaluating
/// them (the call sits in an `if (false)` branch).
template <typename... Args>
inline void IgnoreTraceArgs(Args&&...) {}

}  // namespace internal

/// RAII complete-span recorder. Copies the name (so temporaries are fine);
/// arg names must be string literals.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name, const char* arg1_name = nullptr,
                     int64_t arg1_value = 0, const char* arg2_name = nullptr,
                     int64_t arg2_value = 0) {
    if (!TracingActive()) {
      return;
    }
    active_ = true;
    const size_t n =
        name.size() < internal::kMaxNameLength ? name.size()
                                               : internal::kMaxNameLength;
    std::memcpy(event_.name, name.data(), n);
    event_.name[n] = '\0';
    event_.phase = 'X';
    event_.arg1_name = arg1_name;
    event_.arg1_value = arg1_value;
    event_.arg2_name = arg2_name;
    event_.arg2_value = arg2_value;
    event_.id = internal::NextSpanId();
    event_.parent_id = internal::CurrentSpanId();
    event_.link_id = 0;
    event_.depth = internal::EnterSpan(event_.id);
    event_.ts_us = internal::NowMicros();
  }

  ~TraceSpan() {
    if (!active_) {
      return;
    }
    event_.dur_us = internal::NowMicros() - event_.ts_us;
    internal::LeaveSpan();
    internal::RecordEvent(event_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// This span's stable id (0 when tracing is inactive).
  uint64_t id() const { return active_ ? event_.id : 0; }

  /// Overrides the auto (same-thread) parent — for spans whose causal
  /// parent opened on another thread (pool tasks under a wave span).
  void SetParent(uint64_t parent_id) {
    if (active_) {
      event_.parent_id = parent_id;
    }
  }

  /// Records a causal dependency on another span (shuffle edges): this
  /// span could not start before the linked span finished.
  void SetLink(uint64_t link_id) {
    if (active_) {
      event_.link_id = link_id;
    }
  }

 private:
  bool active_ = false;
  internal::TraceEvent event_;
};

/// No-op stand-in SKYMR_TRACE_SPAN_ID declares in compiled-out builds:
/// id() folds to 0 and the Set* calls vanish, so call sites need no
/// #ifdefs yet carry zero cost under -DSKYMR_TRACING=OFF.
struct NullTraceSpan {
  static constexpr uint64_t id() { return 0; }
  static constexpr void SetParent(uint64_t) {}
  static constexpr void SetLink(uint64_t) {}
};

/// Records a zero-duration instant event (e.g. a task retry).
inline void TraceInstant(std::string_view name,
                         const char* arg1_name = nullptr,
                         int64_t arg1_value = 0,
                         const char* arg2_name = nullptr,
                         int64_t arg2_value = 0) {
  if (!TracingActive()) {
    return;
  }
  internal::TraceEvent event;
  const size_t n = name.size() < internal::kMaxNameLength
                       ? name.size()
                       : internal::kMaxNameLength;
  std::memcpy(event.name, name.data(), n);
  event.name[n] = '\0';
  event.phase = 'i';
  event.arg1_name = arg1_name;
  event.arg1_value = arg1_value;
  event.arg2_name = arg2_name;
  event.arg2_value = arg2_value;
  event.id = 0;
  event.parent_id = internal::CurrentSpanId();
  event.link_id = 0;
  event.depth = 0;
  event.ts_us = internal::NowMicros();
  event.dur_us = 0.0;
  internal::RecordEvent(event);
}

/// Records an instant attached to an explicit parent span — for marks
/// that belong to a span owned by other code (the engine's task.commit
/// marks, recorded under the winning attempt's task span).
inline void TraceInstantUnder(uint64_t parent_id, std::string_view name,
                              const char* arg1_name = nullptr,
                              int64_t arg1_value = 0,
                              const char* arg2_name = nullptr,
                              int64_t arg2_value = 0) {
  if (!TracingActive()) {
    return;
  }
  internal::TraceEvent event;
  const size_t n = name.size() < internal::kMaxNameLength
                       ? name.size()
                       : internal::kMaxNameLength;
  std::memcpy(event.name, name.data(), n);
  event.name[n] = '\0';
  event.phase = 'i';
  event.arg1_name = arg1_name;
  event.arg1_value = arg1_value;
  event.arg2_name = arg2_name;
  event.arg2_value = arg2_value;
  event.id = 0;
  event.parent_id = parent_id;
  event.link_id = 0;
  event.depth = 0;
  event.ts_us = internal::NowMicros();
  event.dur_us = 0.0;
  internal::RecordEvent(event);
}

}  // namespace skymr::obs

#define SKYMR_TRACE_CONCAT_INNER(a, b) a##b
#define SKYMR_TRACE_CONCAT(a, b) SKYMR_TRACE_CONCAT_INNER(a, b)

#if SKYMR_TRACING_ENABLED
/// Opens a complete-event span for the rest of the enclosing scope:
///   SKYMR_TRACE_SPAN("map.task", "task", task_id, "attempt", attempt);
#define SKYMR_TRACE_SPAN(...)                                       \
  ::skymr::obs::TraceSpan SKYMR_TRACE_CONCAT(skymr_trace_span_,     \
                                             __LINE__)(__VA_ARGS__)
/// Records an instant event: SKYMR_TRACE_INSTANT("task.retry", "task", i);
#define SKYMR_TRACE_INSTANT(...) ::skymr::obs::TraceInstant(__VA_ARGS__)
/// Opens a span bound to a named local so the caller can read its id and
/// set cross-thread parent / causal-link edges:
///   SKYMR_TRACE_SPAN_ID(span, "map.task", "task", id);
///   span.SetParent(wave_id);
#define SKYMR_TRACE_SPAN_ID(var, ...) \
  ::skymr::obs::TraceSpan var(__VA_ARGS__)
/// Instant under an explicit parent span id:
///   SKYMR_TRACE_INSTANT_UNDER(span.id(), "task.commit");
#define SKYMR_TRACE_INSTANT_UNDER(...) \
  ::skymr::obs::TraceInstantUnder(__VA_ARGS__)
#else
// Compiled out: arguments are type-checked inside a dead branch (keeping
// names "used" for -Werror) but never evaluated, and the branch folds away.
#define SKYMR_TRACE_SPAN(...)                                  \
  do {                                                         \
    if (false) {                                               \
      ::skymr::obs::internal::IgnoreTraceArgs(__VA_ARGS__);    \
    }                                                          \
  } while (0)
#define SKYMR_TRACE_INSTANT(...)                               \
  do {                                                         \
    if (false) {                                               \
      ::skymr::obs::internal::IgnoreTraceArgs(__VA_ARGS__);    \
    }                                                          \
  } while (0)
// Declares `var` as a NullTraceSpan: id() folds to the constant 0, the
// Set* methods are empty inlines, and the span arguments fold away in a
// dead branch — the id bookkeeping fully compiles out.
#define SKYMR_TRACE_SPAN_ID(var, ...)                          \
  [[maybe_unused]] ::skymr::obs::NullTraceSpan var;            \
  do {                                                         \
    if (false) {                                               \
      ::skymr::obs::internal::IgnoreTraceArgs(__VA_ARGS__);    \
    }                                                          \
  } while (0)
#define SKYMR_TRACE_INSTANT_UNDER(...)                         \
  do {                                                         \
    if (false) {                                               \
      ::skymr::obs::internal::IgnoreTraceArgs(__VA_ARGS__);    \
    }                                                          \
  } while (0)
#endif

#endif  // SKYMR_OBS_TRACE_H_
