// Minimal streaming JSON writer used by the trace exporter and the job
// report. Emits valid JSON only — strings are escaped, non-finite doubles
// degrade to null — with commas managed by a small nesting stack. Not a
// general serializer: no pretty-printing options beyond two-space
// indentation, and the caller must pair Begin*/End* calls correctly
// (checked by SKYMR_DCHECK).

#ifndef SKYMR_OBS_JSON_H_
#define SKYMR_OBS_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/logging.h"

namespace skymr::obs {

/// Writes one JSON document to an ostream. Usage:
///
///   JsonWriter w(os);
///   w.BeginObject();
///   w.Key("schema"); w.String("skymr-report-v1");
///   w.Key("jobs"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
class JsonWriter {
 public:
  /// `compact` suppresses all whitespace (used for large event arrays).
  explicit JsonWriter(std::ostream& os, bool compact = false)
      : os_(os), compact_(compact) {}

  void BeginObject() {
    Prefix();
    os_ << '{';
    stack_.push_back(State::kFirstInObject);
  }

  void EndObject() {
    SKYMR_DCHECK(!stack_.empty()) << "EndObject with no open scope";
    const bool empty = stack_.back() == State::kFirstInObject;
    stack_.pop_back();
    if (!empty) {
      Newline();
    }
    os_ << '}';
  }

  void BeginArray() {
    Prefix();
    os_ << '[';
    stack_.push_back(State::kFirstInArray);
  }

  void EndArray() {
    SKYMR_DCHECK(!stack_.empty()) << "EndArray with no open scope";
    const bool empty = stack_.back() == State::kFirstInArray;
    stack_.pop_back();
    if (!empty) {
      Newline();
    }
    os_ << ']';
  }

  /// Emits the key of the next object member.
  void Key(std::string_view name) {
    SKYMR_DCHECK(!stack_.empty()) << "Key outside an object";
    Prefix();
    WriteEscaped(name);
    os_ << (compact_ ? ":" : ": ");
    pending_value_ = true;
  }

  void String(std::string_view value) {
    Prefix();
    WriteEscaped(value);
  }

  void Int(int64_t value) {
    Prefix();
    os_ << value;
  }

  void Uint(uint64_t value) {
    Prefix();
    os_ << value;
  }

  void Double(double value) {
    Prefix();
    if (!std::isfinite(value)) {
      os_ << "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    os_ << buf;
  }

  void Bool(bool value) {
    Prefix();
    os_ << (value ? "true" : "false");
  }

  void Null() {
    Prefix();
    os_ << "null";
  }

 private:
  enum class State { kFirstInObject, kInObject, kFirstInArray, kInArray };

  /// Emits the separator/indentation owed before the next token.
  void Prefix() {
    if (pending_value_) {
      // The key already emitted ": "; the value follows inline.
      pending_value_ = false;
      return;
    }
    if (stack_.empty()) {
      return;
    }
    State& state = stack_.back();
    if (state == State::kFirstInObject) {
      state = State::kInObject;
    } else if (state == State::kFirstInArray) {
      state = State::kInArray;
    } else {
      os_ << ',';
    }
    Newline();
  }

  void Newline() {
    if (compact_) {
      return;
    }
    os_ << '\n';
    for (size_t i = 0; i < stack_.size(); ++i) {
      os_ << "  ";
    }
  }

  void WriteEscaped(std::string_view text) {
    os_ << '"';
    for (const char c : text) {
      switch (c) {
        case '"':
          os_ << "\\\"";
          break;
        case '\\':
          os_ << "\\\\";
          break;
        case '\n':
          os_ << "\\n";
          break;
        case '\r':
          os_ << "\\r";
          break;
        case '\t':
          os_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  bool compact_;
  bool pending_value_ = false;
  std::vector<State> stack_;
};

}  // namespace skymr::obs

#endif  // SKYMR_OBS_JSON_H_
