// Live runtime metrics: a lock-free registry of gauges, rate counters,
// and streaming quantile sketches, plus a periodic sampler thread and a
// JSON snapshot exporter (schema skymr-metrics-v1).
//
// This is the per-query observability substrate the resident query
// server (ROADMAP item 1) plugs into: unlike the post-hoc JobReport,
// handles here are updated while work is running, and the sketch keeps
// p50/p95/p99 over an unbounded stream in constant memory.
//
// Concurrency model:
//  * Handle registration (gauge()/counter()/sketch()) takes a mutex —
//    the cold path, once per metric name. Handles are stable pointers
//    that live as long as the registry.
//  * Recording through a handle (Set/Add/Record) is lock-free: plain
//    relaxed atomics for gauges and counters, one relaxed atomic
//    fetch_add per sketch bucket. Any thread may record concurrently
//    with any other and with Snapshot().
//  * Snapshot()/WriteJson() take the registration mutex only to walk the
//    name -> handle maps; the values they read are racy-by-design
//    point-in-time reads, exactly what a sampler wants.
//
// The quantile sketch is a DDSketch-style log-bucket sketch: a value v
// lands in bucket ceil(log_gamma(v)) with gamma = (1+a)/(1-a), so every
// quantile estimate is within relative error a (kRelativeError) of the
// true value for values inside the representable range. Merging is
// bucket-wise addition — exactly associative and commutative, so sketches
// merged across tasks/jobs in any order agree bit-for-bit (see the
// merge-associativity tests).

#ifndef SKYMR_OBS_METRICS_H_
#define SKYMR_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/status.h"

namespace skymr::obs {

/// Schema identifier stamped into every exported metrics snapshot.
inline constexpr const char* kMetricsSchemaVersion = "skymr-metrics-v1";

/// Streaming quantile sketch over non-negative values (durations, byte
/// counts). Constant memory, mergeable, deterministic: estimates depend
/// only on the multiset of bucket counts, never on insertion order.
class QuantileSketch {
 public:
  /// Relative accuracy a: Quantile(q) is within a * true_value of the
  /// true q-quantile for values in [BucketValue(kMinIndex),
  /// BucketValue(kMaxIndex)]. Values below the range floor land in the
  /// zero bucket (estimated 0); values above are clamped to the top
  /// bucket, losing the relative-error bound there.
  static constexpr double kRelativeError = 0.01;
  /// Fixed log-bucket index range. With a = 1% the bucket base is
  /// gamma = 1.0202..., so the range covers ~3.6e-5 .. ~2.8e9 — enough
  /// for microsecond latencies up to ~45 minutes and byte counts to 2 GiB.
  static constexpr int kMinIndex = -512;
  static constexpr int kMaxIndex = 1087;
  /// Bucket array size: one zero bucket (slot 0) plus the index range.
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kMaxIndex - kMinIndex + 2);

  QuantileSketch();

  /// Adds one value. Non-positive (and NaN) values count in the zero
  /// bucket and do not affect min/max/sum.
  void Add(double value);

  /// Adds `other`'s population bucket-wise. Exactly associative: any
  /// merge tree over the same sketches yields identical buckets, counts,
  /// min/max, and therefore identical quantile estimates.
  void Merge(const QuantileSketch& other);

  /// Estimated q-quantile (q in [0, 1]) of everything added, clamped to
  /// the observed [min, max]. Returns 0 when empty.
  double Quantile(double q) const;

  uint64_t count() const { return count_; }
  uint64_t zero_count() const { return buckets_[0]; }
  double sum() const { return sum_; }
  /// Smallest / largest positive value added (0 when none).
  double min() const;
  double max() const;
  /// Raw bucket counts (slot 0 = zero bucket) — exposed for the
  /// associativity tests and the registry's atomic mirror.
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  /// Structural equality: buckets, count, min, max. `sum` is excluded —
  /// floating-point addition is not associative, so sums from different
  /// merge orders may differ in the last ulp.
  bool operator==(const QuantileSketch& other) const;
  bool operator!=(const QuantileSketch& other) const {
    return !(*this == other);
  }

  /// Bucket slot for a value (0 = zero bucket; otherwise
  /// index - kMinIndex + 1 with the index clamped to the range).
  static size_t BucketSlot(double value);
  /// Midpoint estimate of bucket slot `slot` (> 0); slot 0 estimates 0.
  static double SlotValue(size_t slot);
  /// Rebuilds a sketch from raw parts (registry snapshot plumbing).
  /// `buckets` must have kNumBuckets entries.
  static QuantileSketch FromParts(std::vector<uint64_t> buckets,
                                  uint64_t count, double sum, double min_pos,
                                  double max_pos);

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_pos_;  // +inf when no positive value yet.
  double max_pos_;  // 0 when no positive value yet.
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  double uptime_seconds = 0.0;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, int64_t> counters;
  std::map<std::string, QuantileSketch> sketches;
};

/// One periodic sampler observation (gauge/counter values only; sketches
/// are cumulative and exported once, in the final snapshot).
struct MetricsSample {
  double uptime_seconds = 0.0;
  /// Wall time this sample itself took — the sampler's own overhead,
  /// also accumulated into the mr.sampler_sample_us sketch so the
  /// doctor's sampler-overhead check can read it from the export.
  double sample_cost_us = 0.0;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, int64_t> counters;
};

/// The registry. See the file comment for the concurrency model.
class MetricsRegistry {
 public:
  /// A settable instantaneous value (queue depth, in-flight jobs).
  class Gauge {
   public:
    void Set(int64_t value) {
      value_.store(value, std::memory_order_relaxed);
    }
    void Add(int64_t delta) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
    int64_t Value() const { return value_.load(std::memory_order_relaxed); }

   private:
    std::atomic<int64_t> value_{0};
  };

  /// A monotone event count; the exporter derives rate_per_s from it.
  class Counter {
   public:
    void Add(int64_t delta) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
    int64_t Value() const { return value_.load(std::memory_order_relaxed); }

   private:
    std::atomic<int64_t> value_{0};
  };

  /// Concurrent mirror of QuantileSketch: one atomic per bucket, so
  /// Record() is lock-free and Snapshot() is a racy-but-consistent-enough
  /// point-in-time read.
  class Sketch {
   public:
    Sketch();
    void Record(double value);
    QuantileSketch Snapshot() const;

   private:
    std::vector<std::atomic<uint64_t>> buckets_;
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_pos_;
    std::atomic<double> max_pos_{0.0};
  };

  MetricsRegistry();

  /// Returns the handle registered under `name`, creating it on first
  /// use. The pointer stays valid for the registry's lifetime. A name
  /// holds exactly one metric kind; reusing it with a different kind is
  /// a programming error (checked).
  Gauge* gauge(std::string_view name);
  Counter* counter(std::string_view name);
  Sketch* sketch(std::string_view name);

  /// Seconds since the registry was constructed.
  double UptimeSeconds() const;

  /// Point-in-time copy of everything registered.
  MetricsSnapshot Snapshot() const;

  /// Writes the skymr-metrics-v1 JSON document: the final snapshot plus
  /// the sampler's time series (pass {} when no sampler ran).
  void WriteJson(std::ostream& os,
                 const std::vector<MetricsSample>& samples) const;
  Status WriteJsonFile(const std::string& path,
                       const std::vector<MetricsSample>& samples) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Sketch>, std::less<>> sketches_;
  std::chrono::steady_clock::time_point epoch_;
};

/// Background thread that samples a registry's gauges and counters every
/// `period_ms` into a bounded ring (oldest samples dropped past
/// `max_samples`). Records its own per-sample cost into the registry's
/// mr.sampler_sample_us sketch so the overhead is visible in the export.
/// The registry must outlive the sampler.
class MetricsSampler {
 public:
  explicit MetricsSampler(MetricsRegistry* registry, int period_ms = 10,
                          size_t max_samples = 512);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Stops the thread after taking one final sample. Idempotent.
  void Stop();

  /// The collected time series, oldest first. Call after Stop() for a
  /// stable result (sampling continues until then).
  std::vector<MetricsSample> Samples() const;

  /// Total samples taken (may exceed Samples().size() once the ring
  /// wrapped).
  uint64_t samples_taken() const {
    return samples_taken_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void TakeSample();

  MetricsRegistry* registry_;
  const int period_ms_;
  const size_t max_samples_;
  MetricsRegistry::Sketch* cost_sketch_ = nullptr;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::once_flag stop_once_;
  bool stop_ = false;
  std::deque<MetricsSample> samples_;
  std::atomic<uint64_t> samples_taken_{0};
  std::thread thread_;
};

/// RAII +delta/-delta around a scope for a gauge; tolerates a null gauge
/// (metrics disabled) so call sites need no branching.
class ScopedGaugeDelta {
 public:
  ScopedGaugeDelta(MetricsRegistry::Gauge* gauge, int64_t delta)
      : gauge_(gauge), delta_(delta) {
    if (gauge_ != nullptr) {
      gauge_->Add(delta_);
    }
  }
  ~ScopedGaugeDelta() {
    if (gauge_ != nullptr) {
      gauge_->Add(-delta_);
    }
  }
  ScopedGaugeDelta(const ScopedGaugeDelta&) = delete;
  ScopedGaugeDelta& operator=(const ScopedGaugeDelta&) = delete;

 private:
  MetricsRegistry::Gauge* gauge_;
  int64_t delta_;
};

}  // namespace skymr::obs

#endif  // SKYMR_OBS_METRICS_H_
