#include "src/obs/doctor.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <sstream>
#include <vector>

#include "src/obs/job_report.h"
#include "src/obs/metrics.h"

namespace skymr::obs {
namespace {

std::string Format(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

/// Expected number of non-empty partitions when `tuples` uniform tuples
/// fall into `cells` equi-sized grid cells (the Section 3.3 occupancy
/// model): cells * (1 - (1 - 1/cells)^tuples).
double UniformExpectedNonempty(double cells, double tuples) {
  if (cells <= 1.0) {
    return 1.0;
  }
  // log1p keeps the power stable for the huge cell counts a fine
  // high-dimensional grid produces.
  const double log_empty = tuples * std::log1p(-1.0 / cells);
  const double expected = cells * (1.0 - std::exp(log_empty));
  return expected < 1.0 ? 1.0 : expected;
}

void CheckTaskSkew(const JsonValue& job, const std::string& job_name,
                   const DoctorOptions& options,
                   std::vector<Finding>* findings) {
  const JsonValue* skew = job.Find("skew");
  if (skew == nullptr || !skew->is_object()) {
    return;
  }
  struct Wave {
    const char* label;
    const char* max_key;
    const char* median_key;
  };
  const Wave waves[] = {
      {"map", "max_map_busy_seconds", "median_map_busy_seconds"},
      {"reduce", "max_reduce_busy_seconds", "median_reduce_busy_seconds"},
  };
  for (const Wave& wave : waves) {
    const double max = skew->GetDouble(wave.max_key, 0.0);
    const double median = skew->GetDouble(wave.median_key, 0.0);
    if (max < options.min_busy_seconds || median <= 0.0) {
      continue;
    }
    const double ratio = max / median;
    if (ratio <= options.skew_ratio) {
      continue;
    }
    findings->push_back(Finding{
        ratio > options.skew_critical_ratio ? Severity::kCritical
                                            : Severity::kWarning,
        "task-skew",
        Format("job %s: slowest %s task busy %.3fs vs %.3fs median "
               "(%.1fx) — straggler; check split sizes and partition "
               "balance",
               job_name.c_str(), wave.label, max, median, ratio)});
  }
}

void CheckReduceImbalance(const JsonValue& job, const std::string& job_name,
                          const DoctorOptions& options,
                          std::vector<Finding>* findings) {
  const JsonValue* tasks = job.Find("reduce_tasks");
  if (tasks == nullptr || !tasks->is_array() || tasks->AsArray().size() < 2) {
    return;
  }
  std::vector<double> records;
  records.reserve(tasks->AsArray().size());
  for (const JsonValue& task : tasks->AsArray()) {
    records.push_back(task.GetDouble("input_records", 0.0));
  }
  std::sort(records.begin(), records.end());
  const size_t n = records.size();
  const double median = n % 2 == 1
                            ? records[n / 2]
                            : 0.5 * (records[n / 2 - 1] + records[n / 2]);
  const double max = records.back();
  if (max < static_cast<double>(options.min_reducer_records) ||
      median <= 0.0) {
    return;
  }
  const double ratio = max / median;
  if (ratio <= options.reduce_imbalance_ratio) {
    return;
  }
  findings->push_back(Finding{
      Severity::kWarning, "reduce-imbalance",
      Format("job %s: largest reducer consumed %.0f records vs %.0f "
             "median (%.1fx) — lopsided reducer load%s",
             job_name.c_str(), max, median, ratio,
             job_name == "mr-gpmrs"
                 ? "; Definition-5 group assignment produced unbalanced "
                   "reducer groups"
                 : "")});
}

void CheckFaultTolerance(const JsonValue& job, const std::string& job_name,
                         const DoctorOptions& options,
                         std::vector<Finding>* findings) {
  const JsonValue* counters = job.Find("counters");
  const auto counter = [counters](std::string_view name) -> int64_t {
    return counters != nullptr && counters->is_object()
               ? counters->GetInt(name, 0)
               : 0;
  };
  // retry-storm: retries measured against the job's task count. A couple
  // of retries on a big job is routine fault tolerance; retries rivaling
  // the task count means the schedule is fighting systematic failure.
  const int64_t retries = counter("mr.task_retries");
  const int64_t tasks =
      (job.Find("map_tasks") != nullptr && job.Find("map_tasks")->is_array()
           ? static_cast<int64_t>(job.Find("map_tasks")->AsArray().size())
           : 0) +
      (job.Find("reduce_tasks") != nullptr &&
               job.Find("reduce_tasks")->is_array()
           ? static_cast<int64_t>(job.Find("reduce_tasks")->AsArray().size())
           : 0);
  if (retries >= options.min_retries && tasks > 0) {
    const double ratio =
        static_cast<double>(retries) / static_cast<double>(tasks);
    if (ratio > options.retry_storm_ratio) {
      findings->push_back(Finding{
          ratio > options.retry_storm_critical_ratio ? Severity::kCritical
                                                     : Severity::kWarning,
          "retry-storm",
          Format("job %s: %lld task retries across %lld tasks (%.1f "
                 "retries/task) — flaky workers, an aggressive chaos "
                 "schedule, or a systematic failure burning the retry "
                 "budget",
                 job_name.c_str(), static_cast<long long>(retries),
                 static_cast<long long>(tasks), ratio)});
    }
  }
  const int64_t blacklisted = counter("mr.blacklisted_workers");
  if (blacklisted > 0) {
    findings->push_back(Finding{
        Severity::kWarning, "worker-blacklist",
        Format("job %s: %lld simulated worker(s) blacklisted after "
               "repeated task failures — attempts route around them",
               job_name.c_str(), static_cast<long long>(blacklisted))});
  }
  const int64_t spec_launched = counter("mr.speculative_launched");
  const int64_t spec_wins = counter("mr.speculative_wins");
  if (spec_launched > 0 || spec_wins > 0) {
    findings->push_back(Finding{
        Severity::kInfo, "speculation",
        Format("job %s: speculative execution launched %lld duplicate "
               "attempt(s), %lld beat the primary",
               job_name.c_str(), static_cast<long long>(spec_launched),
               static_cast<long long>(spec_wins))});
  }
}

void CheckDegraded(const JsonValue& report, std::vector<Finding>* findings) {
  const JsonValue* degraded = report.Find("degraded");
  if (degraded == nullptr || !degraded->is_bool() || !degraded->AsBool()) {
    return;
  }
  findings->push_back(Finding{
      Severity::kWarning, "degraded",
      "MR-GPMRS failed and the pipeline fell back to the single-reducer "
      "MR-GPSRS merge — the result is correct but the final job ran "
      "without reducer parallelism"});
}

void CheckPpd(const JsonValue& report, const DoctorOptions& options,
              std::vector<Finding>* findings) {
  const int64_t ppd = report.GetInt("ppd", 0);
  const int64_t nonempty = report.GetInt("nonempty_partitions", 0);
  const int64_t tuples = report.GetInt("input_tuples", 0);
  const int64_t dim = report.GetInt("dim", 0);
  if (ppd <= 0 || nonempty <= 0 || dim <= 0 ||
      tuples < options.min_tuples_for_ppd) {
    return;
  }
  const double n = static_cast<double>(tuples);
  const double observed_tpp = n / static_cast<double>(nonempty);
  const double cells = std::pow(static_cast<double>(ppd),
                                static_cast<double>(dim));
  const double predicted_tpp = n / UniformExpectedNonempty(cells, n);
  if (observed_tpp > options.ppd_skew_ratio * predicted_tpp) {
    findings->push_back(Finding{
        Severity::kWarning, "ppd-skew",
        Format("grid ppd=%lld holds %.1f tuples per non-empty partition "
               "vs %.1f predicted for uniform data (%.1fx) — skewed or "
               "clustered input breaks the Section 3.3 uniformity "
               "assumption",
               static_cast<long long>(ppd), observed_tpp, predicted_tpp,
               observed_tpp / predicted_tpp)});
  }
  // The Section 3.3 candidate series runs up to n_m = floor(n^(1/d)): a
  // selected PPD far below that with overfull partitions means the grid
  // was forced or capped too coarse.
  const double candidate_max = std::floor(std::pow(n, 1.0 / static_cast<double>(dim)));
  if (static_cast<double>(ppd) < candidate_max &&
      observed_tpp > options.coarse_tpp) {
    findings->push_back(Finding{
        Severity::kWarning, "ppd-coarse",
        Format("grid ppd=%lld is far below the Section 3.3 candidate "
               "maximum %.0f and partitions hold %.1f tuples on average "
               "— PPD forced or capped too low; mappers do excess local "
               "work and pruning is coarse",
               static_cast<long long>(ppd), candidate_max, observed_tpp)});
  }
}

void CheckCostModel(const JsonValue& report, const DoctorOptions& options,
                    std::vector<Finding>* findings) {
  const JsonValue* cm = report.Find("cost_model");
  if (cm == nullptr || !cm->is_object()) {
    return;
  }
  struct Side {
    const char* label;
    const char* predicted_key;
    const char* observed_key;
  };
  const Side sides[] = {
      {"mapper", "predicted_mapper_comparisons",
       "observed_max_mapper_comparisons"},
      {"reducer", "predicted_reducer_comparisons",
       "observed_max_reducer_comparisons"},
  };
  for (const Side& side : sides) {
    const double predicted = cm->GetDouble(side.predicted_key, 0.0);
    const int64_t observed = cm->GetInt(side.observed_key, 0);
    if (predicted <= 0.0 || observed < options.min_observed_comparisons) {
      continue;
    }
    const double ratio = static_cast<double>(observed) / predicted;
    if (ratio <= options.cost_model_ratio) {
      continue;
    }
    findings->push_back(Finding{
        Severity::kWarning, "cost-model",
        Format("%s comparisons: observed max %lld vs %.0f predicted by "
               "the Section 6 model (%.1fx) — the Eq. 5-9 uniformity "
               "assumptions do not hold for this run",
               side.label, static_cast<long long>(observed), predicted,
               ratio)});
  }
}

void CheckPruning(const JsonValue& report, const DoctorOptions& options,
                  std::vector<Finding>* findings) {
  const int64_t ppd = report.GetInt("ppd", 0);
  const int64_t nonempty = report.GetInt("nonempty_partitions", 0);
  const int64_t pruned = report.GetInt("pruned_partitions", 0);
  if (ppd <= 0 || nonempty < options.min_partitions_for_prune) {
    return;
  }
  const double fraction =
      static_cast<double>(pruned) / static_cast<double>(nonempty);
  if (fraction >= options.prune_min_fraction) {
    return;
  }
  findings->push_back(Finding{
      Severity::kInfo, "pruning",
      Format("Equation 2 pruned only %lld of %lld non-empty partitions "
             "(%.1f%%) — bitstring pruning is ineffective on this "
             "data/grid combination",
             static_cast<long long>(pruned),
             static_cast<long long>(nonempty), 100.0 * fraction)});
}

void CheckLocalKernel(const JsonValue& report, const DoctorOptions& options,
                      std::vector<Finding>* findings) {
  const int64_t dim = report.GetInt("dim", 0);
  const int64_t tuples = report.GetInt("input_tuples", 0);
  if (dim <= 0 || tuples < options.min_tuples_for_kernel) {
    return;
  }
  // Dominance work and the BBS fingerprint, summed across the pipeline's
  // jobs. skymr.bbs.* counters exist exactly when the BBS kernel ran.
  int64_t comparisons = 0;
  int64_t bbs_nodes = 0;
  const JsonValue* jobs = report.Find("jobs");
  if (jobs == nullptr || !jobs->is_array()) {
    return;
  }
  for (const JsonValue& job : jobs->AsArray()) {
    const JsonValue* counters = job.Find("counters");
    if (counters == nullptr || !counters->is_object()) {
      continue;
    }
    comparisons += counters->GetInt("skymr.tuple_comparisons", 0);
    bbs_nodes += counters->GetInt("skymr.bbs.nodes_visited", 0);
  }
  if (comparisons <= 0) {
    return;
  }
  const double cmp_per_tuple =
      static_cast<double>(comparisons) / static_cast<double>(tuples);
  if (bbs_nodes == 0) {
    // Window kernel ran. At high dimensionality the skyline is large and
    // window scans go quadratic; past the measured crossover the
    // output-sensitive BBS does strictly less dominance work.
    if (dim >= options.min_dim_for_bbs &&
        cmp_per_tuple > options.wrong_kernel_cmp_per_tuple) {
      findings->push_back(Finding{
          Severity::kWarning, "local-kernel",
          Format("local window kernel spent %.1f dominance comparisons "
                 "per input tuple at dim=%lld — past the BBS crossover; "
                 "rerun with --local-algorithm=bbs (or auto)",
                 cmp_per_tuple, static_cast<long long>(dim))});
    }
  } else if (cmp_per_tuple < options.bbs_overkill_cmp_per_tuple) {
    findings->push_back(Finding{
        Severity::kInfo, "local-kernel",
        Format("BBS kernel ran but the workload needed only %.1f "
               "dominance comparisons per input tuple — the R-tree "
               "build is pure overhead here; --local-algorithm=sfs (or "
               "auto) is cheaper",
               cmp_per_tuple)});
  }
}

void CheckCriticalPath(const JsonValue& report, const DoctorOptions& options,
                       std::vector<Finding>* findings) {
  const JsonValue* cp = report.Find("critical_path");
  if (cp == nullptr || !cp->is_object()) {
    return;
  }
  const double makespan = cp->GetDouble("makespan_seconds", 0.0);

  // critical-path-phase: one phase owning (nearly) the whole path means
  // the run is bound by that phase — everything else is free to tune.
  const JsonValue* phases = cp->Find("phases");
  if (makespan >= options.min_makespan_seconds && phases != nullptr &&
      phases->is_array() && phases->AsArray().size() > 1) {
    for (const JsonValue& phase : phases->AsArray()) {
      const double fraction = phase.GetDouble("percent", 0.0) / 100.0;
      if (fraction <= options.critical_phase_fraction) {
        continue;
      }
      const std::string name = phase.GetString("phase", "?");
      findings->push_back(Finding{
          Severity::kWarning, "critical-path-phase",
          Format("phase %s owns %.0f%% of the %.3fs critical path "
                 "(what-if free: makespan -%.0f%%) — the run is "
                 "%s-bound; tune that phase before anything else",
                 name.c_str(), 100.0 * fraction, makespan,
                 phase.GetDouble("what_if_free_percent", 0.0),
                 name.c_str())});
    }
  }

  // straggler-on-critical-path: unlike task-skew (aggregate wave
  // statistics), this names the specific step that set the makespan —
  // either by running far past its wave median or by burning attempts
  // before committing (crash-retry chains keep winning-attempt busy
  // times normal, so the attempt count is the only visible scar).
  const JsonValue* path = cp->Find("path");
  if (path != nullptr && path->is_array()) {
    for (const JsonValue& step : path->AsArray()) {
      const double seconds = step.GetDouble("seconds", 0.0);
      const double median = step.GetDouble("wave_median_seconds", 0.0);
      const int64_t attempts = step.GetInt("attempts", 1);
      const bool slow = seconds >= options.critical_min_step_seconds &&
                        median > 0.0 &&
                        seconds > options.critical_straggler_ratio * median;
      const bool retried = attempts >= options.critical_retry_attempts;
      if (!slow && !retried) {
        continue;
      }
      const std::string job = step.GetString("job", "?");
      const std::string kind = step.GetString("kind", "?");
      const long long task = step.GetInt("task", 0);
      if (slow) {
        findings->push_back(Finding{
            Severity::kWarning, "straggler-on-critical-path",
            Format("job %s: %s task %lld sits on the critical path at "
                   "%.3fs vs %.3fs wave median (%.1fx) — this one "
                   "straggler set the makespan",
                   job.c_str(), kind.c_str(), task, seconds, median,
                   seconds / median)});
      } else {
        findings->push_back(Finding{
            Severity::kWarning, "straggler-on-critical-path",
            Format("job %s: %s task %lld sits on the critical path and "
                   "needed %lld attempts to commit — its retries "
                   "stretched the makespan",
                   job.c_str(), kind.c_str(), task,
                   static_cast<long long>(attempts))});
      }
    }
  }
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "INFO";
    case Severity::kWarning:
      return "WARNING";
    case Severity::kCritical:
      return "CRITICAL";
  }
  return "UNKNOWN";
}

StatusOr<std::vector<Finding>> AnalyzeReport(const JsonValue& report,
                                             const DoctorOptions& options) {
  if (!report.is_object()) {
    return Status::InvalidArgument("doctor: report is not a JSON object");
  }
  const std::string schema = report.GetString("schema", "");
  if (schema != kReportSchemaVersion) {
    return Status::InvalidArgument("doctor: expected schema '" +
                                   std::string(kReportSchemaVersion) +
                                   "', got '" + schema + "'");
  }
  std::vector<Finding> findings;
  const JsonValue* jobs = report.Find("jobs");
  if (jobs != nullptr && jobs->is_array()) {
    for (const JsonValue& job : jobs->AsArray()) {
      const std::string job_name = job.GetString("name", "?");
      CheckTaskSkew(job, job_name, options, &findings);
      CheckReduceImbalance(job, job_name, options, &findings);
      CheckFaultTolerance(job, job_name, options, &findings);
    }
  }
  CheckDegraded(report, &findings);
  CheckPpd(report, options, &findings);
  CheckCostModel(report, options, &findings);
  CheckPruning(report, options, &findings);
  CheckLocalKernel(report, options, &findings);
  CheckCriticalPath(report, options, &findings);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
  return findings;
}

StatusOr<std::vector<Finding>> AnalyzeReportJson(
    std::string_view json, const DoctorOptions& options) {
  auto doc = ParseJson(json);
  if (!doc.ok()) {
    return doc.status();
  }
  return AnalyzeReport(doc.value(), options);
}

StatusOr<std::vector<Finding>> AnalyzeReportFile(
    const std::string& path, const DoctorOptions& options) {
  auto doc = ParseJsonFile(path);
  if (!doc.ok()) {
    return doc.status();
  }
  return AnalyzeReport(doc.value(), options);
}

StatusOr<std::vector<Finding>> AnalyzeMetrics(const JsonValue& metrics,
                                              const DoctorOptions& options) {
  if (!metrics.is_object()) {
    return Status::InvalidArgument("doctor: metrics is not a JSON object");
  }
  const std::string schema = metrics.GetString("schema", "");
  if (schema != kMetricsSchemaVersion) {
    return Status::InvalidArgument("doctor: expected schema '" +
                                   std::string(kMetricsSchemaVersion) +
                                   "', got '" + schema + "'");
  }
  std::vector<Finding> findings;
  // sampler-overhead: the sampler records its own per-sample wall cost
  // into mr.sampler_sample_us, so its total footprint is that sketch's
  // sum compared against the registry uptime.
  const double uptime = metrics.GetDouble("uptime_seconds", 0.0);
  const JsonValue* sketches = metrics.Find("sketches");
  const JsonValue* cost = sketches != nullptr && sketches->is_object()
                              ? sketches->Find("mr.sampler_sample_us")
                              : nullptr;
  if (cost != nullptr && cost->is_object() &&
      uptime >= options.min_sampler_uptime_seconds) {
    const double spent_seconds = cost->GetDouble("sum", 0.0) / 1e6;
    const double fraction = spent_seconds / uptime;
    if (fraction > options.sampler_overhead_fraction) {
      findings.push_back(Finding{
          Severity::kWarning, "sampler-overhead",
          Format("metrics sampler spent %.3fs of %.3fs uptime (%.1f%%) "
                 "taking %lld samples — lengthen the sampling period",
                 spent_seconds, uptime, 100.0 * fraction,
                 static_cast<long long>(cost->GetInt("count", 0)))});
    }
  }
  // log-drop: the mr.log_dropped counter mirrors Logger::dropped().
  const JsonValue* counters = metrics.Find("counters");
  const JsonValue* dropped = counters != nullptr && counters->is_object()
                                 ? counters->Find("mr.log_dropped")
                                 : nullptr;
  if (dropped != nullptr && dropped->is_object()) {
    const int64_t count = static_cast<int64_t>(dropped->GetInt("value", 0));
    if (count >= options.min_log_dropped) {
      findings.push_back(Finding{
          Severity::kWarning, "log-drop",
          Format("%lld structured log records were dropped — the flight "
                 "recorder would have holes exactly where a post-mortem "
                 "looks; grow Logger ring_capacity or log less on the "
                 "hot path",
                 static_cast<long long>(count))});
    }
  }
  return findings;
}

StatusOr<std::vector<Finding>> AnalyzeMetricsJson(
    std::string_view json, const DoctorOptions& options) {
  auto doc = ParseJson(json);
  if (!doc.ok()) {
    return doc.status();
  }
  return AnalyzeMetrics(doc.value(), options);
}

StatusOr<std::vector<Finding>> AnalyzeLoad(const JsonValue& load,
                                           const DoctorOptions& options) {
  if (!load.is_object()) {
    return Status::InvalidArgument("doctor: load is not a JSON object");
  }
  const std::string schema = load.GetString("schema", "");
  if (schema != "skymr-load-v1") {
    return Status::InvalidArgument(
        "doctor: expected schema 'skymr-load-v1', got '" + schema + "'");
  }
  std::vector<Finding> findings;
  const JsonValue* summary = load.Find("load");
  if (summary == nullptr || !summary->is_object()) {
    return findings;
  }
  const JsonValue* latency = summary->Find("latency");
  const JsonValue* queue_wait = summary->Find("queue_wait");
  const int64_t queries =
      latency != nullptr && latency->is_object()
          ? static_cast<int64_t>(latency->GetInt("count", 0))
          : 0;

  if (latency != nullptr && latency->is_object() &&
      queue_wait != nullptr && queue_wait->is_object() &&
      queries >= options.min_queries_for_load) {
    const double latency_p50 = latency->GetDouble("p50_us", 0.0);
    const double latency_p99 = latency->GetDouble("p99_us", 0.0);
    const double wait_p99 = queue_wait->GetDouble("p99_us", 0.0);

    // queueing-delay: the tail is waiting for admission, not computing.
    if (wait_p99 >= options.min_queue_wait_p99_us && latency_p99 > 0.0) {
      const double fraction = wait_p99 / latency_p99;
      if (fraction > options.queueing_delay_fraction) {
        const bool critical =
            fraction > options.queueing_delay_critical_fraction;
        findings.push_back(Finding{
            critical ? Severity::kCritical : Severity::kWarning,
            "queueing-delay",
            Format("queue wait p99 %.0fus is %.0f%% of end-to-end latency "
                   "p99 %.0fus over %lld queries — the tail is spent "
                   "waiting for an admission slot, not computing; add "
                   "admission slots or threads, or shed offered load",
                   wait_p99, 100.0 * fraction, latency_p99,
                   static_cast<long long>(queries))});
      }
    }

    // tail-amplification: the open-loop coordinated-omission signature —
    // a stalled query inflates every arrival scheduled behind it.
    if (latency_p99 >= options.min_tail_p99_us && latency_p50 > 0.0) {
      const double ratio = latency_p99 / latency_p50;
      if (ratio > options.tail_amplification_ratio) {
        findings.push_back(Finding{
            Severity::kWarning, "tail-amplification",
            Format("latency p99 %.0fus is %.0fx the p50 %.0fus over %lld "
                   "queries — a few stalled queries amplified the tail "
                   "for everyone scheduled behind them; find the "
                   "straggler (flight recorder / query.* events) or "
                   "raise admission slots",
                   latency_p99, ratio, latency_p50,
                   static_cast<long long>(queries))});
      }
    }
  }

  // log-drop: a hole in the very stream that post-mortems depend on.
  const JsonValue* counters = summary->Find("counters");
  if (counters != nullptr && counters->is_object()) {
    const int64_t dropped =
        static_cast<int64_t>(counters->GetInt("log_dropped", 0));
    if (dropped >= options.min_log_dropped) {
      findings.push_back(Finding{
          Severity::kWarning, "log-drop",
          Format("%lld structured log records were dropped during the run "
                 "— the flight recorder would have holes exactly where a "
                 "post-mortem looks; grow Logger ring_capacity or log "
                 "less on the hot path",
                 static_cast<long long>(dropped))});
    }

    // session-cache-cold: only serve-mode artifacts carry the session
    // counters; a batch artifact misses both keys and stays silent.
    const int64_t cache_hits =
        static_cast<int64_t>(counters->GetInt("session_cache_hits", -1));
    const int64_t cache_misses =
        static_cast<int64_t>(counters->GetInt("session_cache_misses", -1));
    const int64_t lookups = cache_hits + cache_misses;
    if (cache_hits >= 0 && cache_misses >= 0 &&
        lookups >= options.min_queries_for_load) {
      const double hit_fraction =
          static_cast<double>(cache_hits) / static_cast<double>(lookups);
      if (hit_fraction < options.min_session_cache_hit_fraction) {
        findings.push_back(Finding{
            Severity::kWarning, "session-cache-cold",
            Format("the resident session's bitstring cache hit only %lld "
                   "of %lld lookups (%.0f%%) — the phase the session "
                   "exists to share is being rebuilt per query; check "
                   "for fingerprint churn (constraint boxes that never "
                   "repeat) or warm the mix's classes before taking "
                   "traffic",
                   static_cast<long long>(cache_hits),
                   static_cast<long long>(lookups),
                   100.0 * hit_fraction)});
      }
    }
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
  return findings;
}

StatusOr<std::vector<Finding>> AnalyzeLoadJson(
    std::string_view json, const DoctorOptions& options) {
  auto doc = ParseJson(json);
  if (!doc.ok()) {
    return doc.status();
  }
  return AnalyzeLoad(doc.value(), options);
}

StatusOr<std::vector<Finding>> AnalyzeLoadFile(
    const std::string& path, const DoctorOptions& options) {
  auto doc = ParseJsonFile(path);
  if (!doc.ok()) {
    return doc.status();
  }
  return AnalyzeLoad(doc.value(), options);
}

StatusOr<std::vector<Finding>> AnalyzeMetricsFile(
    const std::string& path, const DoctorOptions& options) {
  auto doc = ParseJsonFile(path);
  if (!doc.ok()) {
    return doc.status();
  }
  return AnalyzeMetrics(doc.value(), options);
}

std::string RenderFindings(const std::vector<Finding>& findings) {
  if (findings.empty()) {
    return "doctor: no findings\n";
  }
  std::ostringstream os;
  for (const Finding& finding : findings) {
    os << SeverityName(finding.severity) << " [" << finding.code << "] "
       << finding.message << "\n";
  }
  return os.str();
}

}  // namespace skymr::obs
