// Minimal JSON reader for the observability tooling: `skymr doctor`
// parses skymr-report-v1 documents and the tests parse artifacts this
// repo itself produced. It is a strict recursive-descent parser over a
// dynamically-typed JsonValue — not a general-purpose library: numbers
// are doubles (int64 exposed as a checked view), no streaming, inputs
// are whole documents held in memory, and \u escapes decode only the
// BMP. That is exactly the subset the writers in src/obs emit.

#ifndef SKYMR_OBS_JSON_PARSE_H_
#define SKYMR_OBS_JSON_PARSE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace skymr::obs {

/// Maximum container nesting the parser accepts. Parsing is recursive
/// descent, so without this bound a short adversarial input like
/// "[[[[..." would exhaust the stack; at the limit the parser returns an
/// InvalidArgument ("nesting too deep") instead. The writers in src/obs
/// emit documents a couple of levels deep, so 256 is far above any
/// legitimate input.
inline constexpr int kMaxJsonNestingDepth = 256;

/// One parsed JSON value. Objects preserve no duplicate keys (last one
/// wins, as in every mainstream parser).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; the caller must have checked the kind.
  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::map<std::string, JsonValue>& AsObject() const {
    return object_;
  }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Convenience lookups with fallbacks for optional members.
  double GetDouble(std::string_view key, double fallback) const;
  int64_t GetInt(std::string_view key, int64_t fallback) const;
  std::string GetString(std::string_view key,
                        const std::string& fallback) const;

  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> v);
  static JsonValue MakeObject(std::map<std::string, JsonValue> v);

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing data
/// not). Returns InvalidArgument with an offset diagnostic on malformed
/// input.
StatusOr<JsonValue> ParseJson(std::string_view text);

/// ParseJson over the contents of `path`.
StatusOr<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace skymr::obs

#endif  // SKYMR_OBS_JSON_PARSE_H_
