#include "src/obs/bench_artifact.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/obs/json.h"
#include "src/obs/trace.h"
#include "src/relation/dominance_kernel.h"

// Build facts are injected by CMake onto this translation unit only (see
// src/CMakeLists.txt); fall back to "unknown" for out-of-tree builds.
#ifndef SKYMR_GIT_SHA
#define SKYMR_GIT_SHA "unknown"
#endif
#ifndef SKYMR_BUILD_TYPE
#define SKYMR_BUILD_TYPE "unknown"
#endif
#ifndef SKYMR_CXX_FLAGS
#define SKYMR_CXX_FLAGS ""
#endif

namespace skymr::obs {
namespace {

double MedianOfSorted(const std::vector<double>& sorted) {
  const size_t n = sorted.size();
  if (n == 0) {
    return 0.0;
  }
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

std::string EnvOrEmpty(const char* name) {
  const char* value = std::getenv(name);
  return value == nullptr ? std::string() : std::string(value);
}

std::string HostCpuName() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const size_t colon = line.find(':');
      if (colon != std::string::npos) {
        size_t begin = colon + 1;
        while (begin < line.size() && line[begin] == ' ') {
          ++begin;
        }
        return line.substr(begin);
      }
    }
  }
  return "unknown";
}

void WriteWallStats(const WallStats& wall, JsonWriter* w) {
  w->BeginObject();
  w->Key("reps");
  w->Int(wall.reps);
  w->Key("median_seconds");
  w->Double(wall.median_seconds);
  w->Key("mad_seconds");
  w->Double(wall.mad_seconds);
  w->Key("cv");
  w->Double(wall.cv);
  w->Key("min_seconds");
  w->Double(wall.min_seconds);
  w->Key("max_seconds");
  w->Double(wall.max_seconds);
  w->Key("mean_seconds");
  w->Double(wall.mean_seconds);
  w->EndObject();
}

}  // namespace

WallStats WallStats::FromSamples(std::vector<double> samples) {
  WallStats out;
  out.reps = static_cast<int>(samples.size());
  if (samples.empty()) {
    return out;
  }
  std::sort(samples.begin(), samples.end());
  out.min_seconds = samples.front();
  out.max_seconds = samples.back();
  out.median_seconds = MedianOfSorted(samples);
  double sum = 0.0;
  for (const double s : samples) {
    sum += s;
  }
  out.mean_seconds = sum / static_cast<double>(samples.size());
  std::vector<double> deviations;
  deviations.reserve(samples.size());
  double variance = 0.0;
  for (const double s : samples) {
    deviations.push_back(std::fabs(s - out.median_seconds));
    variance += (s - out.mean_seconds) * (s - out.mean_seconds);
  }
  variance /= static_cast<double>(samples.size());
  std::sort(deviations.begin(), deviations.end());
  out.mad_seconds = MedianOfSorted(deviations);
  out.cv = out.mean_seconds > 0.0 ? std::sqrt(variance) / out.mean_seconds
                                  : 0.0;
  return out;
}

BenchEnvironment CaptureBenchEnvironment() {
  BenchEnvironment env;
  env.git_sha = SKYMR_GIT_SHA;
  env.compiler = __VERSION__;
  env.build_type = SKYMR_BUILD_TYPE;
  env.cxx_flags = SKYMR_CXX_FLAGS;
  env.cpu = HostCpuName();
  env.kernel_backend = DominanceKernelBackend();
  env.tracing_compiled = TracingCompiledIn();
  env.threads = ThreadPool::DefaultThreads();
  env.scale_env = EnvOrEmpty("SKYMR_SCALE");
  env.full_env = EnvOrEmpty("SKYMR_FULL");
  env.reps = BenchRepsFromEnv();
  return env;
}

int BenchRepsFromEnv() {
  const char* env = std::getenv("SKYMR_BENCH_REPS");
  if (env == nullptr) {
    return 1;
  }
  const long reps = std::strtol(env, nullptr, 10);
  return static_cast<int>(std::clamp(reps, 1L, 100L));
}

namespace {

// Counters that are never bit-identical across runs: cache hit/miss split,
// speculation, and blacklisting depend on thread scheduling, and backoff
// milliseconds on wall time. Excluded from the gate unconditionally.
bool SchedulingDependentCounter(const std::string& name) {
  return name == "mr.cache_hits" || name == "mr.cache_misses" ||
         name == "mr.speculative_launched" ||
         name == "mr.speculative_wins" ||
         name == "mr.blacklisted_workers" ||
         name == "mr.backoff_total_ms";
}

// Counters that are deterministic ONLY for a fixed ChaosSchedule seed:
// retry counts, injected-fault totals, and backoff waits. Included when the
// caller opts in (the chaos-smoke gate diffs two same-seed runs), excluded
// otherwise so a chaos-free baseline never grows fault-injection keys.
bool FaultInjectionCounter(const std::string& name) {
  return name == "mr.task_retries" || name == "mr.backoff_waits" ||
         name == "mr.degraded_to_gpsrs" ||
         name.rfind("mr.chaos_", 0) == 0;
}

}  // namespace

std::map<std::string, int64_t> DeterministicCounters(
    const SkylineResult& result, uint64_t input_tuples,
    bool include_fault_injection) {
  std::map<std::string, int64_t> det;
  det["input_tuples"] = static_cast<int64_t>(input_tuples);
  det["skyline_size"] = static_cast<int64_t>(result.skyline.size());
  det["ppd"] = static_cast<int64_t>(result.ppd);
  det["nonempty_partitions"] =
      static_cast<int64_t>(result.nonempty_partitions);
  det["pruned_partitions"] = static_cast<int64_t>(result.pruned_partitions);
  det["jobs"] = static_cast<int64_t>(result.jobs.size());
  uint64_t shuffle = 0;
  for (const mr::JobMetrics& job : result.jobs) {
    shuffle += job.shuffle_bytes;
    for (const auto& [name, value] : job.counters.values()) {
      if (SchedulingDependentCounter(name)) {
        continue;
      }
      if (!include_fault_injection && FaultInjectionCounter(name)) {
        continue;
      }
      det[name] += value;
    }
  }
  det["shuffle_bytes"] = static_cast<int64_t>(shuffle);
  return det;
}

BenchArtifact::BenchArtifact(std::string bench_name)
    : bench_name_(std::move(bench_name)),
      environment_(CaptureBenchEnvironment()) {}

void BenchArtifact::Write(std::ostream& os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.Key("schema");
  w.String(kBenchSchemaVersion);
  w.Key("bench");
  w.String(bench_name_);
  w.Key("environment");
  w.BeginObject();
  w.Key("git_sha");
  w.String(environment_.git_sha);
  w.Key("compiler");
  w.String(environment_.compiler);
  w.Key("build_type");
  w.String(environment_.build_type);
  w.Key("cxx_flags");
  w.String(environment_.cxx_flags);
  w.Key("cpu");
  w.String(environment_.cpu);
  w.Key("kernel_backend");
  w.String(environment_.kernel_backend);
  w.Key("tracing_compiled");
  w.Bool(environment_.tracing_compiled);
  w.Key("threads");
  w.Int(environment_.threads);
  w.Key("scale_env");
  w.String(environment_.scale_env);
  w.Key("full_env");
  w.String(environment_.full_env);
  w.Key("reps");
  w.Int(environment_.reps);
  w.EndObject();
  w.Key("rows");
  w.BeginArray();
  for (const BenchRow& row : rows_) {
    w.BeginObject();
    w.Key("name");
    w.String(row.name);
    w.Key("wall");
    WriteWallStats(row.wall, &w);
    w.Key("metrics");
    w.BeginObject();
    for (const auto& [name, value] : row.metrics) {
      w.Key(name);
      w.Double(value);
    }
    w.EndObject();
    w.Key("deterministic");
    w.BeginObject();
    for (const auto& [name, value] : row.deterministic) {
      w.Key(name);
      w.Int(value);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
}

Status BenchArtifact::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open bench artifact output: " + path);
  }
  Write(out);
  out.flush();
  if (!out) {
    return Status::IoError("failed writing bench artifact: " + path);
  }
  return Status::OK();
}

}  // namespace skymr::obs
