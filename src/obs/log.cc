#include "src/obs/log.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/common/logging.h"
#include "src/obs/json.h"
#include "src/obs/json_parse.h"
#include "src/obs/metrics.h"

namespace skymr::obs {
namespace {

/// The logger a SKYMR_CHECK failure dumps (InstallAsFatalDumper).
std::atomic<Logger*> g_fatal_dumper{nullptr};

void FatalDumpHook() {
  if (Logger* logger = g_fatal_dumper.load(std::memory_order_acquire)) {
    logger->NotifyFatal("check-failure");
  }
}

/// Copies `text` into a NUL-terminated fixed array, truncating silently:
/// a too-long event name must degrade, not drop the record.
template <size_t N>
void CopyTruncated(std::string_view text, char (&out)[N]) {
  const size_t n = std::min(text.size(), N - 1);
  // Stop at an embedded NUL: the array is read back as a C string, so
  // bytes after a NUL would be silently unreachable anyway (keeps
  // Format(Parse(line)) a fixpoint).
  size_t end = 0;
  while (end < n && text[end] != '\0') {
    ++end;
  }
  if (end != 0) {  // empty string_views may carry a null data().
    std::memcpy(out, text.data(), end);
  }
  out[end] = '\0';
}

constexpr uint64_t kSlotEmpty = 0;
constexpr uint64_t SlotBusy(uint64_t seq) { return 2 * seq + 1; }
constexpr uint64_t SlotCommitted(uint64_t seq) { return 2 * seq + 2; }

size_t RoundUpPow2(size_t n) {
  size_t p = 8;
  while (p < n && p < (size_t{1} << 30)) {
    p <<= 1;
  }
  return p;
}

}  // namespace

struct Logger::Slot {
  std::atomic<uint64_t> seq{kSlotEmpty};
  LogRecord record;
};

const char* LogSeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "debug";
    case LogSeverity::kInfo:
      return "info";
    case LogSeverity::kWarn:
      return "warn";
    case LogSeverity::kError:
      return "error";
    case LogSeverity::kFatal:
      return "fatal";
  }
  return "unknown";
}

StatusOr<LogSeverity> ParseLogSeverity(std::string_view name) {
  for (const LogSeverity severity :
       {LogSeverity::kDebug, LogSeverity::kInfo, LogSeverity::kWarn,
        LogSeverity::kError, LogSeverity::kFatal}) {
    if (name == LogSeverityName(severity)) {
      return severity;
    }
  }
  return Status::InvalidArgument("unknown log severity: " +
                                 std::string(name));
}

std::string FormatLogLine(const LogRecord& record) {
  std::ostringstream os;
  JsonWriter w(os, /*compact=*/true);
  w.BeginObject();
  w.Key("ts_us");
  w.Double(record.ts_us);
  w.Key("sev");
  w.String(LogSeverityName(record.severity));
  w.Key("event");
  w.String(record.event);
  if (record.query_id != 0) {
    w.Key("query");
    w.Uint(record.query_id);
  }
  if (record.tag[0] != '\0') {
    w.Key("tag");
    w.String(record.tag);
  }
  if (record.job[0] != '\0') {
    w.Key("job");
    w.String(record.job);
  }
  if (record.task >= 0) {
    w.Key("task");
    w.Int(record.task);
  }
  if (record.attempt != 0) {
    w.Key("attempt");
    w.Int(record.attempt);
  }
  if (record.message[0] != '\0') {
    w.Key("msg");
    w.String(record.message);
  }
  w.EndObject();
  return os.str();
}

StatusOr<LogRecord> ParseLogLine(std::string_view line) {
  auto doc_or = ParseJson(line);
  if (!doc_or.ok()) {
    return doc_or.status();
  }
  const JsonValue& doc = doc_or.value();
  if (!doc.is_object()) {
    return Status::InvalidArgument("log line is not a JSON object");
  }
  const JsonValue* sev = doc.Find("sev");
  if (sev == nullptr || !sev->is_string()) {
    return Status::InvalidArgument("log line has no \"sev\" string");
  }
  auto severity_or = ParseLogSeverity(sev->AsString());
  if (!severity_or.ok()) {
    return severity_or.status();
  }
  LogRecord record;
  record.severity = severity_or.value();
  record.ts_us = doc.GetDouble("ts_us", 0.0);
  const double query = doc.GetDouble("query", 0.0);
  record.query_id =
      query > 0.0 ? static_cast<uint64_t>(query) : uint64_t{0};
  const int64_t task = doc.GetInt("task", -1);
  record.task = task >= 0 && task <= INT32_MAX
                    ? static_cast<int32_t>(task)
                    : int32_t{-1};
  const int64_t attempt = doc.GetInt("attempt", 0);
  record.attempt = attempt > 0 && attempt <= INT32_MAX
                       ? static_cast<int32_t>(attempt)
                       : int32_t{0};
  CopyTruncated(doc.GetString("event", ""), record.event);
  CopyTruncated(doc.GetString("tag", ""), record.tag);
  CopyTruncated(doc.GetString("job", ""), record.job);
  CopyTruncated(doc.GetString("msg", ""), record.message);
  return record;
}

void StreamLogSink::Write(const LogRecord& record) {
  // One insert per line: concurrent writers to a shared stream cannot
  // interleave fragments (same policy as common/logging.cc).
  os_ << FormatLogLine(record) + "\n";
}

Logger::Logger() : Logger(Options()) {}

Logger::Logger(const Options& options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  mask_ = RoundUpPow2(options.ring_capacity) - 1;
  slots_ = std::make_unique<Slot[]>(mask_ + 1);
}

Logger::~Logger() {
  if (installed_as_fatal_dumper_) {
    Logger* self = this;
    g_fatal_dumper.compare_exchange_strong(self, nullptr,
                                           std::memory_order_acq_rel);
  }
}

void Logger::CountDrop() {
  dropped_.fetch_add(1, std::memory_order_relaxed);
  if (options_.metrics != nullptr) {
    options_.metrics->counter("mr.log_dropped")->Add(1);
  }
}

bool Logger::Append(const LogRecord& record) {
  writers_in_flight_.fetch_add(1, std::memory_order_seq_cst);
  if (!recording_.load(std::memory_order_seq_cst)) {
    writers_in_flight_.fetch_sub(1, std::memory_order_seq_cst);
    CountDrop();
    return false;
  }
  const uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];
  // Claim the slot: its previous occupant must have committed (or the
  // slot is empty on the first lap). A writer a whole ring lap behind is
  // still mid-copy here — overwriting would tear its record, so this
  // record is dropped instead.
  uint64_t expected =
      seq > mask_ ? SlotCommitted(seq - (mask_ + 1)) : kSlotEmpty;
  if (!slot.seq.compare_exchange_strong(expected, SlotBusy(seq),
                                        std::memory_order_acq_rel)) {
    writers_in_flight_.fetch_sub(1, std::memory_order_seq_cst);
    CountDrop();
    return false;
  }
  slot.record = record;
  slot.seq.store(SlotCommitted(seq), std::memory_order_release);
  writers_in_flight_.fetch_sub(1, std::memory_order_seq_cst);
  return true;
}

void Logger::Log(LogSeverity severity, std::string_view event,
                 std::string_view message, const Fields& fields) {
  if (!enabled(severity)) {
    return;
  }
  LogRecord record;
  record.ts_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - epoch_)
          .count();
  record.severity = severity;
  record.query_id = fields.query_id;
  record.task = fields.task;
  record.attempt = fields.attempt;
  CopyTruncated(event, record.event);
  CopyTruncated(fields.tag, record.tag);
  CopyTruncated(fields.job, record.job);
  CopyTruncated(message, record.message);
  if (severity >= options_.ring_min_severity) {
    Append(record);
  }
  if (severity >= options_.min_severity) {
    std::lock_guard<std::mutex> lock(sink_mutex_);
    for (LogSink* sink : sinks_) {
      sink->Write(record);
    }
  }
}

void Logger::LogQuery(LogSeverity severity, const QueryContext& query,
                      std::string_view event, std::string_view message,
                      std::string_view job, int32_t task, int32_t attempt) {
  Fields fields;
  fields.query_id = query.id;
  fields.tag = query.tag;
  fields.job = job;
  fields.task = task;
  fields.attempt = attempt;
  Log(severity, event, message, fields);
}

void Logger::AddSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  sinks_.push_back(sink);
}

std::vector<LogRecord> Logger::Snapshot() const {
  // Quiesce the ring: no new writers enter, in-flight writers finish.
  // Log() calls racing the drain are dropped (and counted) — a torn
  // record in a crash dump is worse than a missing one.
  Logger* self = const_cast<Logger*>(this);
  self->recording_.store(false, std::memory_order_seq_cst);
  while (writers_in_flight_.load(std::memory_order_seq_cst) != 0) {
    std::this_thread::yield();
  }
  const uint64_t head = head_.load(std::memory_order_seq_cst);
  const uint64_t capacity = mask_ + 1;
  const uint64_t first = head > capacity ? head - capacity : 0;
  std::vector<LogRecord> out;
  out.reserve(head - first);
  for (uint64_t seq = first; seq < head; ++seq) {
    const Slot& slot = slots_[seq & mask_];
    if (slot.seq.load(std::memory_order_acquire) == SlotCommitted(seq)) {
      out.push_back(slot.record);
    }
  }
  self->recording_.store(true, std::memory_order_seq_cst);
  return out;
}

Status Logger::DumpFlightRecorder(std::ostream& os,
                                  std::string_view reason) const {
  const std::vector<LogRecord> records = Snapshot();
  {
    std::ostringstream header;
    JsonWriter w(header, /*compact=*/true);
    w.BeginObject();
    w.Key("schema");
    w.String(kFlightSchemaVersion);
    w.Key("reason");
    w.String(reason);
    w.Key("records");
    w.Uint(records.size());
    w.Key("ring_capacity");
    w.Uint(ring_capacity());
    w.Key("dropped");
    w.Int(dropped());
    w.EndObject();
    os << header.str() + "\n";
  }
  for (const LogRecord& record : records) {
    os << FormatLogLine(record) + "\n";
  }
  if (!os) {
    return Status::Internal("flight recorder dump: stream write failed");
  }
  return Status::OK();
}

Status Logger::DumpFlightRecorderFile(const std::string& path,
                                      std::string_view reason) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::Internal("flight recorder dump: cannot open " + path);
  }
  return DumpFlightRecorder(file, reason);
}

void Logger::NotifyFatal(std::string_view reason) {
  Log(LogSeverity::kFatal, "log.fatal", std::string(reason));
  if (options_.crash_dump_path.empty()) {
    return;
  }
  bool expected = false;
  if (!crash_dumped_.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
    return;  // First fatal wins: the dump shows the events *before* it.
  }
  const Status dumped =
      DumpFlightRecorderFile(options_.crash_dump_path, reason);
  if (!dumped.ok()) {
    SKYMR_LOG(ERROR) << "flight recorder dump failed: " << dumped.message();
    return;
  }
  SKYMR_LOG(INFO) << "flight recorder: dumped " << ring_capacity()
                  << "-slot ring to " << options_.crash_dump_path << " ("
                  << reason << ")";
}

void Logger::InstallAsFatalDumper() {
  installed_as_fatal_dumper_ = true;
  g_fatal_dumper.store(this, std::memory_order_release);
  internal::SetFatalHook(&FatalDumpHook);
}

}  // namespace skymr::obs
