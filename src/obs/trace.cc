#include "src/obs/trace.h"

#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "src/obs/json.h"

namespace skymr::obs {
namespace internal {

std::atomic<bool> g_tracing_active{false};

namespace {

using Clock = std::chrono::steady_clock;

/// One thread's event buffer. Appended to only by its owner thread;
/// read/cleared by the registry functions, which the header contract
/// restricts to quiescent moments (no spans executing).
struct ThreadBuffer {
  uint32_t tid = 0;
  std::vector<TraceEvent> events;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  uint32_t next_tid = 1;
  Clock::time_point epoch = Clock::now();
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // Leaked: outlives all threads.
  return *registry;
}

thread_local ThreadBuffer* t_buffer = nullptr;
/// Stack of span ids open on this thread; size doubles as nesting depth.
thread_local std::vector<uint64_t> t_span_stack;

/// Process-wide span id source. Ids restart from 1 at StartTracing() so
/// same-seed runs produce identical id assignments (the header restricts
/// StartTracing to quiescent moments, so the relaxed store is safe).
std::atomic<uint64_t> g_next_span_id{1};

ThreadBuffer* GetThreadBuffer() {
  if (t_buffer == nullptr) {
    auto buffer = std::make_unique<ThreadBuffer>();
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    buffer->tid = registry.next_tid++;
    t_buffer = buffer.get();
    registry.buffers.push_back(std::move(buffer));
  }
  return t_buffer;
}

}  // namespace

double NowMicros() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   GetRegistry().epoch)
      .count();
}

void RecordEvent(const TraceEvent& event) {
  GetThreadBuffer()->events.push_back(event);
}

uint64_t NextSpanId() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

uint64_t CurrentSpanId() {
  return t_span_stack.empty() ? 0 : t_span_stack.back();
}

uint32_t EnterSpan(uint64_t id) {
  const uint32_t depth = static_cast<uint32_t>(t_span_stack.size());
  t_span_stack.push_back(id);
  return depth;
}

void LeaveSpan() { t_span_stack.pop_back(); }

}  // namespace internal

void StartTracing() {
  if (!TracingCompiledIn()) {
    return;
  }
  internal::Registry& registry = internal::GetRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (auto& buffer : registry.buffers) {
      buffer->events.clear();
    }
    registry.epoch = internal::Clock::now();
    internal::g_next_span_id.store(1, std::memory_order_relaxed);
  }
  internal::g_tracing_active.store(true, std::memory_order_relaxed);
}

void StopTracing() {
  internal::g_tracing_active.store(false, std::memory_order_relaxed);
}

void ClearTrace() {
  internal::Registry& registry = internal::GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (auto& buffer : registry.buffers) {
    buffer->events.clear();
  }
}

size_t CollectedEventCount() {
  internal::Registry& registry = internal::GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  size_t count = 0;
  for (const auto& buffer : registry.buffers) {
    count += buffer->events.size();
  }
  return count;
}

std::vector<TraceEventView> SnapshotTrace() {
  internal::Registry& registry = internal::GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<TraceEventView> out;
  for (const auto& buffer : registry.buffers) {
    for (const internal::TraceEvent& event : buffer->events) {
      TraceEventView view;
      view.name = event.name;
      view.ts_us = event.ts_us;
      view.dur_us = event.dur_us;
      view.tid = buffer->tid;
      view.depth = event.depth;
      view.phase = event.phase;
      view.id = event.id;
      view.parent_id = event.parent_id;
      view.link_id = event.link_id;
      if (event.arg1_name != nullptr) {
        view.args.emplace_back(event.arg1_name, event.arg1_value);
      }
      if (event.arg2_name != nullptr) {
        view.args.emplace_back(event.arg2_name, event.arg2_value);
      }
      out.push_back(std::move(view));
    }
  }
  return out;
}

void WriteChromeTrace(std::ostream& os) {
  internal::Registry& registry = internal::GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  JsonWriter w(os, /*compact=*/true);
  w.BeginObject();
  w.Key("schema");
  w.String(kTraceSchemaVersion);
  w.Key("displayTimeUnit");
  w.String("ms");
  w.Key("traceEvents");
  w.BeginArray();
  for (const auto& buffer : registry.buffers) {
    for (const internal::TraceEvent& event : buffer->events) {
      w.BeginObject();
      w.Key("name");
      w.String(event.name);
      w.Key("cat");
      w.String("skymr");
      w.Key("ph");
      w.String(std::string_view(&event.phase, 1));
      w.Key("ts");
      w.Double(event.ts_us);
      if (event.phase == 'X') {
        w.Key("dur");
        w.Double(event.dur_us);
      } else {
        // Chrome requires a scope for instant events; "t" = this thread.
        w.Key("s");
        w.String("t");
      }
      w.Key("pid");
      w.Int(1);
      w.Key("tid");
      w.Int(buffer->tid);
      w.Key("args");
      w.BeginObject();
      w.Key("depth");
      w.Uint(event.depth);
      if (event.id != 0) {
        w.Key("id");
        w.Uint(event.id);
      }
      if (event.parent_id != 0) {
        w.Key("parent");
        w.Uint(event.parent_id);
      }
      if (event.link_id != 0) {
        w.Key("link");
        w.Uint(event.link_id);
      }
      if (event.arg1_name != nullptr) {
        w.Key(event.arg1_name);
        w.Int(event.arg1_value);
      }
      if (event.arg2_name != nullptr) {
        w.Key(event.arg2_name);
        w.Int(event.arg2_value);
      }
      w.EndObject();
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
}

Status WriteChromeTraceFile(const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  WriteChromeTrace(file);
  file.flush();
  if (!file.good()) {
    return Status::Internal("failed writing trace to: " + path);
  }
  return Status::OK();
}

}  // namespace skymr::obs
