#include "src/relation/dominance.h"

namespace skymr {

bool Dominates(const double* a, const double* b, size_t dim) {
  bool strictly_better = false;
  for (size_t k = 0; k < dim; ++k) {
    if (a[k] > b[k]) {
      return false;
    }
    if (a[k] < b[k]) {
      strictly_better = true;
    }
  }
  return strictly_better;
}

bool DominatesOrEqual(const double* a, const double* b, size_t dim) {
  for (size_t k = 0; k < dim; ++k) {
    if (a[k] > b[k]) {
      return false;
    }
  }
  return true;
}

DominanceResult CompareDominance(const double* a, const double* b,
                                 size_t dim) {
  bool a_better = false;
  bool b_better = false;
  for (size_t k = 0; k < dim; ++k) {
    if (a[k] < b[k]) {
      a_better = true;
    } else if (b[k] < a[k]) {
      b_better = true;
    }
    if (a_better && b_better) {
      return DominanceResult::kIncomparable;
    }
  }
  if (a_better) {
    return DominanceResult::kADominatesB;
  }
  if (b_better) {
    return DominanceResult::kBDominatesA;
  }
  return DominanceResult::kEqual;
}

}  // namespace skymr
