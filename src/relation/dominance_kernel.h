// Block dominance kernels: the hot-path primitives behind SkylineWindow,
// the local skyline algorithms (BNL/SFS), and the GPSRS/GPMRS merge loops.
//
// All kernels scan a flat row-major block of `count` tuples of `dim`
// doubles (the SkylineWindow storage layout) against one candidate tuple
// and classify each row with two branchless flags:
//
//   lt = any k with row[k] < candidate[k]
//   gt = any k with row[k] > candidate[k]
//
//   row dominates candidate      iff !gt && lt   (Definition 1)
//   candidate dominates row      iff !lt && gt
//
// Two implementations sit behind one entry point: a portable flat loop
// the compiler can autovectorize, and an AVX2 path selected once at
// runtime via cpuid (x86-64 with GCC/Clang only). Both are exact — no
// tolerance, no reordering of the IEEE comparisons — so every caller
// observes the same results as the scalar `Dominates`/`CompareDominance`.
//
// The monotone min-sum key: CoordinateSum(t) is the left-to-right
// floating-point sum of t's coordinates. Rounded addition is monotone in
// each argument, so a[k] <= b[k] for all k implies
// CoordinateSum(a) <= CoordinateSum(b) — dominance never *increases* the
// computed sum even with rounding. One-directional scans use this for
// SFS-style early elimination: a row whose sum exceeds the candidate's
// can never dominate it and is skipped without touching its coordinates.

#ifndef SKYMR_RELATION_DOMINANCE_KERNEL_H_
#define SKYMR_RELATION_DOMINANCE_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace skymr {

/// The monotone dominance key: left-to-right sum of the coordinates.
double CoordinateSum(const double* row, size_t dim);

/// Fills sums[i] = CoordinateSum(rows + i * dim) for i in [0, count).
void CoordinateSums(const double* rows, size_t count, size_t dim,
                    double* sums);

/// Returns the smallest i such that rows[i] dominates `candidate`, or
/// `count` when no row does. `sums` may be null; when given, it must hold
/// the rows' CoordinateSums and `candidate_sum` the candidate's — rows
/// with sums[i] > candidate_sum are skipped without a coordinate compare
/// (they cannot dominate; see the min-sum key note above). The returned
/// index is always the first dominator in row order, screened or not.
size_t FirstDominatorIndex(const double* candidate, double candidate_sum,
                           const double* rows, const double* sums,
                           size_t count, size_t dim);

/// True iff some row of the block dominates `candidate` (no screening).
inline bool DominatesAny(const double* candidate, const double* rows,
                         size_t count, size_t dim) {
  return FirstDominatorIndex(candidate, 0.0, rows, /*sums=*/nullptr, count,
                             dim) != count;
}

/// One-pass Insert scan (the core of Algorithm 4): returns the smallest
/// index of a row dominating `candidate`, or `count`; when it returns
/// `count`, the ascending indices of rows dominated by `candidate` have
/// been appended to *evicted. Requires the block to be mutually
/// non-dominated (the SkylineWindow invariant): under that invariant a
/// dominator and an eviction cannot coexist, so the early exit on a
/// dominator loses nothing.
size_t InsertScan(const double* candidate, const double* rows, size_t count,
                  size_t dim, std::vector<uint32_t>* evicted);

/// Sets bit i of `words` (at least (count + 63) / 64 words, pre-zeroed by
/// the caller) for every row dominated by `candidate`; returns the number
/// of bits set. `sums`/`candidate_sum` screen as in FirstDominatorIndex
/// (rows with sums[i] < candidate_sum cannot be dominated); `sums` may be
/// null.
size_t DominanceBitmap(const double* candidate, double candidate_sum,
                       const double* rows, const double* sums, size_t count,
                       size_t dim, uint64_t* words);

/// Name of the dispatched implementation: "avx2" or "portable".
const char* DominanceKernelBackend();

namespace kernel_portable {
// The autovectorizable fallback, exposed for property tests and the
// microbenchmarks (the public entry points above dispatch to these when
// AVX2 is unavailable).
size_t FirstDominatorIndex(const double* candidate, double candidate_sum,
                           const double* rows, const double* sums,
                           size_t count, size_t dim);
size_t InsertScan(const double* candidate, const double* rows, size_t count,
                  size_t dim, std::vector<uint32_t>* evicted);
size_t DominanceBitmap(const double* candidate, double candidate_sum,
                       const double* rows, const double* sums, size_t count,
                       size_t dim, uint64_t* words);
}  // namespace kernel_portable

}  // namespace skymr

#endif  // SKYMR_RELATION_DOMINANCE_KERNEL_H_
