#include "src/relation/preferences.h"

#include <vector>

namespace skymr {

StatusOr<Dataset> ApplyPreferences(
    const Dataset& data, const std::vector<Preference>& preferences) {
  if (preferences.size() != data.dim()) {
    return Status::InvalidArgument(
        "preference count does not match the dimension");
  }
  const Bounds bounds = data.ComputeBounds();
  Dataset out(data.dim());
  out.Reserve(data.size());
  std::vector<double> row(data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    const double* src = data.RowPtr(static_cast<TupleId>(i));
    for (size_t k = 0; k < data.dim(); ++k) {
      row[k] = preferences[k] == Preference::kMaximize
                   ? bounds.hi[k] - src[k]
                   : src[k];
    }
    out.Append(row);
  }
  return out;
}

}  // namespace skymr
