// Tuple identifiers and lightweight tuple views over a Dataset.

#ifndef SKYMR_RELATION_TUPLE_H_
#define SKYMR_RELATION_TUPLE_H_

#include <cstdint>
#include <span>

namespace skymr {

/// Index of a tuple within its Dataset.
using TupleId = uint32_t;

/// A non-owning view of one tuple's dimensional values.
/// Values follow the paper's convention: smaller is better on every
/// dimension (Definition 1 discussion, Section 1).
using TupleView = std::span<const double>;

}  // namespace skymr

#endif  // SKYMR_RELATION_TUPLE_H_
