// Tuple dominance (Definition 1 of the paper).
//
// Smaller is better on every dimension: a dominates b iff a[k] <= b[k] for
// every k and a[k] < b[k] for at least one k.

#ifndef SKYMR_RELATION_DOMINANCE_H_
#define SKYMR_RELATION_DOMINANCE_H_

#include <cstddef>
#include <cstdint>

#include "src/relation/tuple.h"

namespace skymr {

/// Outcome of a pairwise dominance comparison.
enum class DominanceResult {
  kADominatesB,
  kBDominatesA,
  kEqual,
  kIncomparable,
};

/// True iff `a` dominates `b` (Definition 1).
bool Dominates(const double* a, const double* b, size_t dim);

inline bool Dominates(TupleView a, TupleView b) {
  return Dominates(a.data(), b.data(), a.size());
}

/// True iff `a[k] <= b[k]` for every k (dominates-or-equal).
bool DominatesOrEqual(const double* a, const double* b, size_t dim);

/// Full three-way-plus-incomparable classification in one pass.
DominanceResult CompareDominance(const double* a, const double* b, size_t dim);

inline DominanceResult CompareDominance(TupleView a, TupleView b) {
  return CompareDominance(a.data(), b.data(), a.size());
}

/// A per-thread counter of tuple-level dominance tests, used to reproduce
/// the paper's comparison-count experiments (Section 7.5) without polluting
/// the hot path with atomic operations.
class DominanceCounter {
 public:
  void Add(uint64_t n) { count_ += n; }
  uint64_t count() const { return count_; }
  void Reset() { count_ = 0; }

 private:
  uint64_t count_ = 0;
};

}  // namespace skymr

#endif  // SKYMR_RELATION_DOMINANCE_H_
