#include "src/relation/dominance_kernel.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SKYMR_KERNEL_X86 1
#include <immintrin.h>
#else
#define SKYMR_KERNEL_X86 0
#endif

namespace skymr {

double CoordinateSum(const double* row, size_t dim) {
  double sum = 0.0;
  for (size_t k = 0; k < dim; ++k) {
    sum += row[k];
  }
  return sum;
}

void CoordinateSums(const double* rows, size_t count, size_t dim,
                    double* sums) {
  for (size_t i = 0; i < count; ++i) {
    sums[i] = CoordinateSum(rows + i * dim, dim);
  }
}

namespace kernel_portable {
namespace {

// Bit 0: some row coordinate strictly below the candidate's.
// Bit 1: some row coordinate strictly above the candidate's.
// Flat |= loop, no early exit per coordinate: autovectorizable.
inline uint32_t RowFlags(const double* candidate, const double* row,
                         size_t dim) {
  bool lt = false;
  bool gt = false;
  for (size_t k = 0; k < dim; ++k) {
    lt |= row[k] < candidate[k];
    gt |= row[k] > candidate[k];
  }
  return static_cast<uint32_t>(lt) | (static_cast<uint32_t>(gt) << 1);
}

}  // namespace

size_t FirstDominatorIndex(const double* candidate, double candidate_sum,
                           const double* rows, const double* sums,
                           size_t count, size_t dim) {
  if (sums != nullptr) {
    for (size_t i = 0; i < count; ++i) {
      if (sums[i] > candidate_sum) {
        continue;  // A dominator's sum can never exceed the candidate's.
      }
      if (RowFlags(candidate, rows + i * dim, dim) == 1u) {
        return i;
      }
    }
    return count;
  }
  for (size_t i = 0; i < count; ++i) {
    if (RowFlags(candidate, rows + i * dim, dim) == 1u) {
      return i;
    }
  }
  return count;
}

size_t InsertScan(const double* candidate, const double* rows, size_t count,
                  size_t dim, std::vector<uint32_t>* evicted) {
  for (size_t i = 0; i < count; ++i) {
    const uint32_t flags = RowFlags(candidate, rows + i * dim, dim);
    if (flags == 1u) {
      return i;
    }
    if (flags == 2u) {
      evicted->push_back(static_cast<uint32_t>(i));
    }
  }
  return count;
}

size_t DominanceBitmap(const double* candidate, double candidate_sum,
                       const double* rows, const double* sums, size_t count,
                       size_t dim, uint64_t* words) {
  size_t set = 0;
  for (size_t i = 0; i < count; ++i) {
    if (sums != nullptr && sums[i] < candidate_sum) {
      continue;  // A dominated row's sum can never fall below the candidate's.
    }
    if (RowFlags(candidate, rows + i * dim, dim) == 2u) {
      words[i >> 6] |= uint64_t{1} << (i & 63u);
      ++set;
    }
  }
  return set;
}

}  // namespace kernel_portable

#if SKYMR_KERNEL_X86

namespace {

// AVX2 variants. The candidate's registers are hoisted out of the row loop,
// and dim == 6 (the paper's largest configuration) gets a fully unrolled
// 256+128-bit body: two loads, four compares, two movemasks per row.
// Comparisons use ordered non-signaling predicates, matching the scalar
// `<` / `>` exactly (NaN compares false).

__attribute__((target("avx2"))) inline int Lt6(const double* row,
                                               __m256d c4, __m128d c2) {
  return _mm256_movemask_pd(_mm256_cmp_pd(_mm256_loadu_pd(row), c4,
                                          _CMP_LT_OQ)) |
         (_mm_movemask_pd(_mm_cmplt_pd(_mm_loadu_pd(row + 4), c2)) << 4);
}

__attribute__((target("avx2"))) inline int Gt6(const double* row,
                                               __m256d c4, __m128d c2) {
  return _mm256_movemask_pd(_mm256_cmp_pd(_mm256_loadu_pd(row), c4,
                                          _CMP_GT_OQ)) |
         (_mm_movemask_pd(_mm_cmpgt_pd(_mm_loadu_pd(row + 4), c2)) << 4);
}

__attribute__((target("avx2"))) inline uint32_t RowFlagsWide(
    const double* candidate, const double* row, size_t dim) {
  __m256d ltv = _mm256_setzero_pd();
  __m256d gtv = _mm256_setzero_pd();
  size_t k = 0;
  for (; k + 4 <= dim; k += 4) {
    const __m256d cv = _mm256_loadu_pd(candidate + k);
    const __m256d rv = _mm256_loadu_pd(row + k);
    ltv = _mm256_or_pd(ltv, _mm256_cmp_pd(rv, cv, _CMP_LT_OQ));
    gtv = _mm256_or_pd(gtv, _mm256_cmp_pd(rv, cv, _CMP_GT_OQ));
  }
  uint32_t lt = _mm256_movemask_pd(ltv) != 0;
  uint32_t gt = _mm256_movemask_pd(gtv) != 0;
  for (; k < dim; ++k) {
    lt |= row[k] < candidate[k];
    gt |= row[k] > candidate[k];
  }
  return lt | (gt << 1);
}

__attribute__((target("avx2"))) size_t FirstDominatorIndexAvx2(
    const double* candidate, double candidate_sum, const double* rows,
    const double* sums, size_t count, size_t dim) {
  if (dim == 6) {
    const __m256d c4 = _mm256_loadu_pd(candidate);
    const __m128d c2 = _mm_loadu_pd(candidate + 4);
    for (size_t i = 0; i < count; ++i) {
      if (sums != nullptr && sums[i] > candidate_sum) {
        continue;
      }
      const double* row = rows + i * 6;
      if (Gt6(row, c4, c2) == 0 && Lt6(row, c4, c2) != 0) {
        return i;
      }
    }
    return count;
  }
  for (size_t i = 0; i < count; ++i) {
    if (sums != nullptr && sums[i] > candidate_sum) {
      continue;
    }
    if (RowFlagsWide(candidate, rows + i * dim, dim) == 1u) {
      return i;
    }
  }
  return count;
}

__attribute__((target("avx2"))) size_t InsertScanAvx2(
    const double* candidate, const double* rows, size_t count, size_t dim,
    std::vector<uint32_t>* evicted) {
  if (dim == 6) {
    const __m256d c4 = _mm256_loadu_pd(candidate);
    const __m128d c2 = _mm_loadu_pd(candidate + 4);
    for (size_t i = 0; i < count; ++i) {
      const double* row = rows + i * 6;
      const int lt = Lt6(row, c4, c2);
      const int gt = Gt6(row, c4, c2);
      if (gt == 0) {
        if (lt != 0) {
          return i;
        }
      } else if (lt == 0) {
        evicted->push_back(static_cast<uint32_t>(i));
      }
    }
    return count;
  }
  for (size_t i = 0; i < count; ++i) {
    const uint32_t flags = RowFlagsWide(candidate, rows + i * dim, dim);
    if (flags == 1u) {
      return i;
    }
    if (flags == 2u) {
      evicted->push_back(static_cast<uint32_t>(i));
    }
  }
  return count;
}

__attribute__((target("avx2"))) size_t DominanceBitmapAvx2(
    const double* candidate, double candidate_sum, const double* rows,
    const double* sums, size_t count, size_t dim, uint64_t* words) {
  size_t set = 0;
  if (dim == 6) {
    const __m256d c4 = _mm256_loadu_pd(candidate);
    const __m128d c2 = _mm_loadu_pd(candidate + 4);
    for (size_t i = 0; i < count; ++i) {
      if (sums != nullptr && sums[i] < candidate_sum) {
        continue;
      }
      const double* row = rows + i * 6;
      if (Lt6(row, c4, c2) == 0 && Gt6(row, c4, c2) != 0) {
        words[i >> 6] |= uint64_t{1} << (i & 63u);
        ++set;
      }
    }
    return set;
  }
  for (size_t i = 0; i < count; ++i) {
    if (sums != nullptr && sums[i] < candidate_sum) {
      continue;
    }
    if (RowFlagsWide(candidate, rows + i * dim, dim) == 2u) {
      words[i >> 6] |= uint64_t{1} << (i & 63u);
      ++set;
    }
  }
  return set;
}

}  // namespace

#endif  // SKYMR_KERNEL_X86

namespace {

bool DetectAvx2() {
#if SKYMR_KERNEL_X86
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const bool kUseAvx2 = DetectAvx2();

}  // namespace

size_t FirstDominatorIndex(const double* candidate, double candidate_sum,
                           const double* rows, const double* sums,
                           size_t count, size_t dim) {
#if SKYMR_KERNEL_X86
  if (kUseAvx2) {
    return FirstDominatorIndexAvx2(candidate, candidate_sum, rows, sums,
                                   count, dim);
  }
#endif
  return kernel_portable::FirstDominatorIndex(candidate, candidate_sum, rows,
                                              sums, count, dim);
}

size_t InsertScan(const double* candidate, const double* rows, size_t count,
                  size_t dim, std::vector<uint32_t>* evicted) {
#if SKYMR_KERNEL_X86
  if (kUseAvx2) {
    return InsertScanAvx2(candidate, rows, count, dim, evicted);
  }
#endif
  return kernel_portable::InsertScan(candidate, rows, count, dim, evicted);
}

size_t DominanceBitmap(const double* candidate, double candidate_sum,
                       const double* rows, const double* sums, size_t count,
                       size_t dim, uint64_t* words) {
#if SKYMR_KERNEL_X86
  if (kUseAvx2) {
    return DominanceBitmapAvx2(candidate, candidate_sum, rows, sums, count,
                               dim, words);
  }
#endif
  return kernel_portable::DominanceBitmap(candidate, candidate_sum, rows,
                                          sums, count, dim, words);
}

const char* DominanceKernelBackend() { return kUseAvx2 ? "avx2" : "portable"; }

}  // namespace skymr
