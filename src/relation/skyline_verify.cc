#include "src/relation/skyline_verify.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "src/relation/dominance.h"

namespace skymr {

std::vector<TupleId> ReferenceSkyline(const Dataset& data) {
  const size_t n = data.size();
  const size_t d = data.dim();
  std::vector<TupleId> result;
  for (size_t i = 0; i < n; ++i) {
    const double* row_i = data.RowPtr(static_cast<TupleId>(i));
    bool dominated = false;
    for (size_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;
      }
      if (Dominates(data.RowPtr(static_cast<TupleId>(j)), row_i, d)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      result.push_back(static_cast<TupleId>(i));
    }
  }
  return result;
}

bool SameIdSet(std::vector<TupleId> candidate, std::vector<TupleId> expected) {
  std::sort(candidate.begin(), candidate.end());
  std::sort(expected.begin(), expected.end());
  return candidate == expected;
}

std::string ExplainSkylineMismatch(const Dataset& data,
                                   const std::vector<TupleId>& candidate) {
  std::unordered_set<TupleId> seen;
  for (const TupleId id : candidate) {
    if (!seen.insert(id).second) {
      std::ostringstream os;
      os << "duplicate tuple id " << id << " in skyline output";
      return os.str();
    }
    if (id >= data.size()) {
      std::ostringstream os;
      os << "tuple id " << id << " out of range (dataset size "
         << data.size() << ")";
      return os.str();
    }
  }
  const std::vector<TupleId> expected = ReferenceSkyline(data);
  std::unordered_set<TupleId> expected_set(expected.begin(), expected.end());
  for (const TupleId id : candidate) {
    if (expected_set.find(id) == expected_set.end()) {
      std::ostringstream os;
      os << "tuple id " << id << " is dominated but reported in skyline";
      return os.str();
    }
  }
  if (candidate.size() != expected.size()) {
    std::ostringstream os;
    os << "skyline size mismatch: got " << candidate.size() << ", expected "
       << expected.size();
    return os.str();
  }
  return "";
}

}  // namespace skymr
