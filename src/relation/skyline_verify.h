// Helpers for validating skyline results against a reference and comparing
// skylines as tuple-id sets. Used by tests and by the experiment harness's
// self-checks.

#ifndef SKYMR_RELATION_SKYLINE_VERIFY_H_
#define SKYMR_RELATION_SKYLINE_VERIFY_H_

#include <string>
#include <vector>

#include "src/relation/dataset.h"
#include "src/relation/tuple.h"

namespace skymr {

/// Reference O(n^2) skyline over the whole dataset. Duplicated tuples (equal
/// on every dimension) are all retained, matching Definition 1 where equal
/// tuples do not dominate each other.
std::vector<TupleId> ReferenceSkyline(const Dataset& data);

/// True iff `candidate` equals `expected` as a set of tuple ids.
bool SameIdSet(std::vector<TupleId> candidate, std::vector<TupleId> expected);

/// Checks that `candidate` is exactly the skyline of `data`:
/// every candidate is non-dominated, no non-dominated tuple is missing, and
/// no id repeats. Returns an empty string on success, else a diagnostic.
std::string ExplainSkylineMismatch(const Dataset& data,
                                   const std::vector<TupleId>& candidate);

}  // namespace skymr

#endif  // SKYMR_RELATION_SKYLINE_VERIFY_H_
