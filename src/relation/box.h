// Axis-aligned constraint boxes for constrained skyline queries: the
// skyline is computed over only the tuples inside the box (closed on both
// ends). Constrained skylines are a standard extension (e.g. Chen, Cui &
// Lu, TKDE 2011, cited by the paper) and fit the grid scheme naturally —
// tuples outside the box never set a bitstring bit, so whole partitions
// outside the constraint are pruned for free.

#ifndef SKYMR_RELATION_BOX_H_
#define SKYMR_RELATION_BOX_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"

namespace skymr {

/// A closed axis-aligned box [lo, hi] used as a skyline constraint.
struct Box {
  std::vector<double> lo;
  std::vector<double> hi;

  /// True iff `row` lies inside the box on every dimension.
  bool Contains(const double* row, size_t dim) const {
    for (size_t k = 0; k < dim; ++k) {
      if (row[k] < lo[k] || row[k] > hi[k]) {
        return false;
      }
    }
    return true;
  }

  /// Checks the box is well-formed for `dim`-dimensional data.
  Status Validate(size_t dim) const {
    if (lo.size() != dim || hi.size() != dim) {
      return Status::InvalidArgument(
          "constraint box width does not match the data dimension");
    }
    for (size_t k = 0; k < dim; ++k) {
      if (!(lo[k] <= hi[k])) {
        return Status::InvalidArgument(
            "constraint box has lo > hi (or NaN) on a dimension");
      }
    }
    return Status::OK();
  }
};

}  // namespace skymr

#endif  // SKYMR_RELATION_BOX_H_
