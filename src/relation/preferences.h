// Per-dimension preference directions. The paper (like most skyline
// literature) assumes smaller-is-better on every dimension; real queries
// mix directions (minimize price, maximize rating). ApplyPreferences
// transforms a dataset so the standard min-skyline applies: maximize
// dimensions are reflected as v -> max_k - v, which preserves dominance
// relationships exactly while keeping values non-negative. Tuple ids are
// positional, so skyline ids from the transformed dataset index the
// original one.

#ifndef SKYMR_RELATION_PREFERENCES_H_
#define SKYMR_RELATION_PREFERENCES_H_

#include <vector>

#include "src/common/status.h"
#include "src/relation/dataset.h"

namespace skymr {

enum class Preference {
  kMinimize,
  kMaximize,
};

/// Returns a copy of `data` where every kMaximize dimension is reflected
/// about its maximum value. Fails when `preferences` does not match the
/// dimension count.
StatusOr<Dataset> ApplyPreferences(const Dataset& data,
                                   const std::vector<Preference>& preferences);

}  // namespace skymr

#endif  // SKYMR_RELATION_PREFERENCES_H_
