#include "src/relation/dataset.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace skymr {

Bounds Bounds::UnitCube(size_t dim) {
  Bounds b;
  b.lo.assign(dim, 0.0);
  b.hi.assign(dim, 1.0);
  return b;
}

Dataset::Dataset(size_t dim) : dim_(dim) { assert(dim >= 1); }

StatusOr<Dataset> Dataset::FromFlat(size_t dim, std::vector<double> values) {
  if (dim == 0) {
    return Status::InvalidArgument("dimension must be >= 1");
  }
  if (values.size() % dim != 0) {
    return Status::InvalidArgument(
        "flat value count is not a multiple of the dimension");
  }
  Dataset out(dim);
  out.size_ = values.size() / dim;
  out.values_ = std::move(values);
  return out;
}

TupleId Dataset::Append(std::span<const double> row) {
  assert(row.size() == dim_);
  values_.insert(values_.end(), row.begin(), row.end());
  return static_cast<TupleId>(size_++);
}

Bounds Dataset::ComputeBounds() const {
  if (size_ == 0) {
    return Bounds::UnitCube(dim_);
  }
  Bounds b;
  b.lo.assign(dim_, std::numeric_limits<double>::infinity());
  b.hi.assign(dim_, -std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < size_; ++i) {
    const double* row = RowPtr(static_cast<TupleId>(i));
    for (size_t k = 0; k < dim_; ++k) {
      b.lo[k] = std::min(b.lo[k], row[k]);
      b.hi[k] = std::max(b.hi[k], row[k]);
    }
  }
  return b;
}

}  // namespace skymr
