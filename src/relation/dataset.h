// Dataset: a column-bounded, row-major in-memory relation of d-dimensional
// numeric tuples. This is the tuple set R of the paper.

#ifndef SKYMR_RELATION_DATASET_H_
#define SKYMR_RELATION_DATASET_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/relation/tuple.h"

namespace skymr {

/// An axis-aligned bounding box of the data space.
struct Bounds {
  std::vector<double> lo;
  std::vector<double> hi;

  /// Unit hypercube [0,1]^d, the domain the synthetic generators use.
  static Bounds UnitCube(size_t dim);
};

/// A dense in-memory relation with row-major storage.
///
/// Rows are addressed by TupleId in insertion order. The storage layout is
/// one contiguous double array (dim * size), which keeps dominance checks
/// cache-friendly.
class Dataset {
 public:
  /// Creates an empty dataset with `dim` dimensions. Precondition: dim >= 1.
  explicit Dataset(size_t dim);

  /// Creates a dataset from flat row-major values.
  /// Precondition: values.size() is a multiple of dim.
  static StatusOr<Dataset> FromFlat(size_t dim, std::vector<double> values);

  size_t dim() const { return dim_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Appends one tuple. Precondition: row.size() == dim().
  TupleId Append(std::span<const double> row);

  /// Appends one tuple from an initializer list (test convenience).
  TupleId Append(std::initializer_list<double> row) {
    return Append(std::span<const double>(row.begin(), row.size()));
  }

  /// Returns a view of tuple `id`. Precondition: id < size().
  TupleView Row(TupleId id) const {
    return TupleView(&values_[static_cast<size_t>(id) * dim_], dim_);
  }

  /// Raw pointer to tuple `id`'s first value.
  const double* RowPtr(TupleId id) const {
    return &values_[static_cast<size_t>(id) * dim_];
  }

  /// The flat row-major value buffer.
  const std::vector<double>& values() const { return values_; }

  /// Computes the tight bounding box of the data. For an empty dataset
  /// returns the unit cube.
  Bounds ComputeBounds() const;

  /// Reserves storage for `n` tuples.
  void Reserve(size_t n) { values_.reserve(n * dim_); }

 private:
  size_t dim_;
  size_t size_ = 0;
  std::vector<double> values_;
};

}  // namespace skymr

#endif  // SKYMR_RELATION_DATASET_H_
