// Shuffle message types for the skyline MapReduce jobs, plus helpers for
// merging per-partition skylines on the reduce side.

#ifndef SKYMR_CORE_MESSAGES_H_
#define SKYMR_CORE_MESSAGES_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/serde.h"
#include "src/core/grid.h"
#include "src/local/skyline_window.h"

namespace skymr::core {

/// One partition's local skyline, S_p in the paper.
struct PartitionSkyline {
  CellId cell = 0;
  SkylineWindow window;

  bool operator==(const PartitionSkyline& other) const {
    return cell == other.cell && window == other.window;
  }
};

/// A mapper's full local skyline, organized by partition (the value sent
/// to MR-GPSRS's single reducer, Figure 4).
struct LocalSkylineSet {
  std::vector<PartitionSkyline> parts;

  bool operator==(const LocalSkylineSet& other) const {
    return parts == other.parts;
  }
};

/// The (S_i, ig) value MR-GPMRS mappers send to reducer `i` (Algorithm 8
/// line 18), extended with the Section 5.4.2 designation notification: the
/// cells whose skyline this reducer is responsible for outputting.
struct GroupPayload {
  uint32_t reducer_group = 0;
  std::vector<CellId> responsible;
  std::vector<PartitionSkyline> parts;

  bool operator==(const GroupPayload& other) const {
    return reducer_group == other.reducer_group &&
           responsible == other.responsible && parts == other.parts;
  }
};

/// Ordered per-cell window map used on the reduce side.
using CellWindowMap = std::map<CellId, SkylineWindow>;

/// Merges `parts` into `windows` tuple by tuple with InsertTuple
/// (Algorithm 6 lines 1-6 / Algorithm 9 lines 2-8).
void MergeParts(const std::vector<PartitionSkyline>& parts, size_t dim,
                CellWindowMap* windows, DominanceCounter* counter);

/// Concatenates all windows into one (the reducer's output union).
SkylineWindow UnionWindows(const CellWindowMap& windows, size_t dim);

}  // namespace skymr::core

namespace skymr {

template <>
struct Serde<core::PartitionSkyline> {
  static void Write(const core::PartitionSkyline& value, ByteSink* sink) {
    sink->AppendRaw<uint64_t>(value.cell);
    Serde<SkylineWindow>::Write(value.window, sink);
  }
  static core::PartitionSkyline Read(ByteSource* source) {
    core::PartitionSkyline out;
    out.cell = source->ReadRaw<uint64_t>();
    out.window = Serde<SkylineWindow>::Read(source);
    return out;
  }
};

template <>
struct Serde<core::LocalSkylineSet> {
  static void Write(const core::LocalSkylineSet& value, ByteSink* sink) {
    Serde<std::vector<core::PartitionSkyline>>::Write(value.parts, sink);
  }
  static core::LocalSkylineSet Read(ByteSource* source) {
    core::LocalSkylineSet out;
    out.parts = Serde<std::vector<core::PartitionSkyline>>::Read(source);
    return out;
  }
};

template <>
struct Serde<core::GroupPayload> {
  static void Write(const core::GroupPayload& value, ByteSink* sink) {
    sink->AppendRaw<uint32_t>(value.reducer_group);
    Serde<std::vector<core::CellId>>::Write(value.responsible, sink);
    Serde<std::vector<core::PartitionSkyline>>::Write(value.parts, sink);
  }
  static core::GroupPayload Read(ByteSource* source) {
    core::GroupPayload out;
    out.reducer_group = source->ReadRaw<uint32_t>();
    out.responsible = Serde<std::vector<core::CellId>>::Read(source);
    out.parts = Serde<std::vector<core::PartitionSkyline>>::Read(source);
    return out;
  }
};

}  // namespace skymr

#endif  // SKYMR_CORE_MESSAGES_H_
