// Shared plumbing of the two grid-partitioning skyline jobs (MR-GPSRS and
// MR-GPMRS): the broadcast job context and the mapper-side local skyline
// phase, which is identical in Algorithm 3 (lines 1-10) and Algorithm 8
// (lines 1-10).

#ifndef SKYMR_CORE_SKYLINE_JOB_COMMON_H_
#define SKYMR_CORE_SKYLINE_JOB_COMMON_H_

#include <memory>
#include <optional>
#include <utility>

#include "src/common/dynamic_bitset.h"
#include "src/core/bitstring_job.h"
#include "src/core/compare_partitions.h"
#include "src/core/grid.h"
#include "src/core/independent_groups.h"
#include "src/core/messages.h"
#include "src/common/logging.h"
#include "src/local/sfs.h"
#include "src/local/skyline_window.h"
#include "src/mapreduce/job.h"
#include "src/obs/histogram.h"
#include "src/relation/box.h"
#include "src/relation/skyline_verify.h"

namespace skymr::core {

/// Distributed cache key for the SkylineJobContext.
inline constexpr const char* kCacheKeySkylineContext = "skymr.skyline_ctx";

/// Which single-node algorithm mappers use for per-partition local
/// skylines. The paper uses InsertTuple (streaming BNL, Algorithm 4) and
/// names optimizing this step as future work (Section 8); kSfs realizes
/// that with presorting (Chomicki et al.): buffer a partition's tuples,
/// sort by coordinate sum, then filter with one-directional checks.
enum class LocalAlgorithm {
  kBnl,
  kSfs,
};

inline const char* LocalAlgorithmName(LocalAlgorithm algorithm) {
  switch (algorithm) {
    case LocalAlgorithm::kBnl:
      return "bnl";
    case LocalAlgorithm::kSfs:
      return "sfs";
  }
  return "unknown";
}

/// Side data broadcast to every task of a skyline job: the grid, the
/// Equation 2 bitstring BS_R, the optional constraint box, and (for
/// MR-GPMRS) the group policy.
struct SkylineJobContext {
  Grid grid;
  DynamicBitset bits;
  GroupMergeStrategy merge = GroupMergeStrategy::kComputationCost;
  int num_reducers = 1;
  std::optional<Box> constraint;
  LocalAlgorithm local_algorithm = LocalAlgorithm::kBnl;

  SkylineJobContext(Grid g, DynamicBitset b)
      : grid(std::move(g)), bits(std::move(b)) {}
};

/// Result of one skyline job: the global skyline plus engine metrics.
struct SkylineJobRun {
  SkylineWindow skyline;
  mr::JobMetrics metrics;
};

/// Input-size ceiling for the debug-only skyline cross-check below; the
/// reference is O(n^2), so the check is restricted to inputs where it
/// stays cheap enough to run after every job in sanitizer CI.
inline constexpr size_t kDebugSkylineVerifyMaxTuples = 4096;

/// Debug/sanitizer builds only (SKYMR_DCHECK_IS_ON): cross-checks a
/// finished GPSRS/GPMRS run against the O(n^2) reference skyline and
/// aborts on any mismatch. Constrained runs are skipped — the reference
/// is defined over the whole dataset — as are inputs too large for the
/// quadratic check.
inline void DebugVerifySkyline(const char* algorithm, const Dataset& data,
                               const SkylineWindow& skyline,
                               const std::optional<Box>& constraint) {
  if (!DchecksEnabled() || constraint.has_value() ||
      data.size() > kDebugSkylineVerifyMaxTuples) {
    return;
  }
  std::vector<TupleId> ids;
  ids.reserve(skyline.size());
  for (size_t i = 0; i < skyline.size(); ++i) {
    ids.push_back(skyline.IdAt(i));
  }
  const std::string mismatch = ExplainSkylineMismatch(data, ids);
  SKYMR_CHECK(mismatch.empty())
      << algorithm << " produced a wrong skyline: " << mismatch;
}

/// The mapper-side local phase: per-partition BNL windows for unpruned
/// partitions, then ComparePartitions across the mapper's windows.
class LocalSkylinePhase {
 public:
  /// Loads the dataset and job context from the distributed cache.
  /// Throws TaskFailure when side data is missing.
  void Setup(const mr::DistributedCache& cache) {
    data_ = cache.Get<Dataset>(kCacheKeyDataset);
    context_ = cache.Get<SkylineJobContext>(kCacheKeySkylineContext);
    if (data_ == nullptr || context_ == nullptr) {
      throw mr::TaskFailure("skyline mapper: cache entries missing");
    }
  }

  /// Algorithm 3 / 8, lines 2-8: route the tuple to its partition's window
  /// unless the partition was pruned by the bitstring (or the tuple falls
  /// outside the constraint box of a constrained skyline query).
  void Add(TupleId id) {
    const double* row = data_->RowPtr(id);
    if (context_->constraint.has_value() &&
        !context_->constraint->Contains(row, data_->dim())) {
      return;
    }
    const CellId cell = context_->grid.CellOf(row);
    if (!context_->bits.Test(cell)) {
      ++tuples_pruned_;
      return;  // Line 4: the partition cannot contain skyline tuples.
    }
    if (context_->local_algorithm == LocalAlgorithm::kSfs) {
      buffered_[cell].push_back(id);  // SFS sorts the whole partition.
      return;
    }
    auto [it, inserted] =
        windows_.try_emplace(cell, SkylineWindow(data_->dim()));
    it->second.Insert(row, id, &dominance_counter_);
  }

  /// Algorithm 3 / 8, lines 9-10: remove cross-partition false positives.
  /// Returns the windows and records counters; `histograms` receives the
  /// per-partition window lengths (the scan lengths InsertTuple/SFS walk),
  /// as the skymr.window_size distribution.
  CellWindowMap Finish(mr::Counters* counters,
                       obs::HistogramSet* histograms) {
    if (context_->local_algorithm == LocalAlgorithm::kSfs) {
      for (auto& [cell, ids] : buffered_) {
        windows_.emplace(cell,
                         SfsSkyline(*data_, ids, &dominance_counter_));
      }
      buffered_.clear();
    }
    const uint64_t partition_comparisons = CompareAllPartitions(
        context_->grid, &windows_, &dominance_counter_);
    counters->Add(mr::kCounterPartitionComparisons,
                  static_cast<int64_t>(partition_comparisons));
    counters->Add(mr::kCounterTupleComparisons,
                  static_cast<int64_t>(dominance_counter_.count()));
    counters->Add(mr::kCounterTuplesPruned,
                  static_cast<int64_t>(tuples_pruned_));
    if (histograms != nullptr) {
      for (const auto& [cell, window] : windows_) {
        histograms->Add("skymr.window_size", window.size());
      }
    }
    return std::move(windows_);
  }

  const Dataset& data() const { return *data_; }
  const SkylineJobContext& context() const { return *context_; }

 private:
  std::shared_ptr<const Dataset> data_;
  std::shared_ptr<const SkylineJobContext> context_;
  CellWindowMap windows_;
  std::map<CellId, std::vector<TupleId>> buffered_;  // kSfs only.
  DominanceCounter dominance_counter_;
  uint64_t tuples_pruned_ = 0;
};

}  // namespace skymr::core

#endif  // SKYMR_CORE_SKYLINE_JOB_COMMON_H_
