// Shared plumbing of the two grid-partitioning skyline jobs (MR-GPSRS and
// MR-GPMRS): the broadcast job context and the mapper-side local skyline
// phase, which is identical in Algorithm 3 (lines 1-10) and Algorithm 8
// (lines 1-10).

#ifndef SKYMR_CORE_SKYLINE_JOB_COMMON_H_
#define SKYMR_CORE_SKYLINE_JOB_COMMON_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "src/common/dynamic_bitset.h"
#include "src/common/status.h"
#include "src/core/bitstring_job.h"
#include "src/core/compare_partitions.h"
#include "src/core/grid.h"
#include "src/core/independent_groups.h"
#include "src/core/messages.h"
#include "src/common/logging.h"
#include "src/local/bbs.h"
#include "src/local/sfs.h"
#include "src/local/skyline_window.h"
#include "src/mapreduce/job.h"
#include "src/obs/histogram.h"
#include "src/relation/box.h"
#include "src/relation/skyline_verify.h"

namespace skymr::core {

/// Distributed cache key for the SkylineJobContext.
inline constexpr const char* kCacheKeySkylineContext = "skymr.skyline_ctx";

/// Which single-node algorithm mappers use for per-partition local
/// skylines. The paper uses InsertTuple (streaming BNL, Algorithm 4) and
/// names optimizing this step as future work (Section 8); kSfs realizes
/// that with presorting (Chomicki et al.): buffer a partition's tuples,
/// sort by coordinate sum, then filter with one-directional checks. kBbs
/// is the output-sensitive branch-and-bound kernel over a bulk-loaded
/// R-tree (src/local/bbs.h); kAuto picks kBbs or kSfs per partition from
/// its size and dimensionality (ResolveAutoKernel below), recording the
/// decisions in the JobReport via the skymr.bbs.auto_* counters.
enum class LocalAlgorithm {
  kBnl,
  kSfs,
  kBbs,
  kAuto,
};

inline const char* LocalAlgorithmName(LocalAlgorithm algorithm) {
  switch (algorithm) {
    case LocalAlgorithm::kBnl:
      return "bnl";
    case LocalAlgorithm::kSfs:
      return "sfs";
    case LocalAlgorithm::kBbs:
      return "bbs";
    case LocalAlgorithm::kAuto:
      return "auto";
  }
  return "unknown";
}

inline StatusOr<LocalAlgorithm> ParseLocalAlgorithm(const std::string& name) {
  if (name == "bnl") {
    return LocalAlgorithm::kBnl;
  }
  if (name == "sfs") {
    return LocalAlgorithm::kSfs;
  }
  if (name == "bbs") {
    return LocalAlgorithm::kBbs;
  }
  if (name == "auto") {
    return LocalAlgorithm::kAuto;
  }
  return Status::InvalidArgument("unknown local algorithm: " + name);
}

/// kAuto's per-partition choice. The crossover is empirical
/// (bench_kernel_crossover baseline): the tree kernel's per-candidate
/// descents beat the window scan once the skyline is a large fraction of
/// the partition — high dimensionality — and the partition is big enough
/// to amortize the STR build; below that, SFS's sorted scan wins.
inline LocalAlgorithm ResolveAutoKernel(size_t partition_tuples,
                                        size_t dim) {
  return (dim >= 5 && partition_tuples >= 512) ? LocalAlgorithm::kBbs
                                               : LocalAlgorithm::kSfs;
}

/// Deterministic BBS counters (DESIGN.md §13.5). The first three total
/// BbsStats across a task's partitions; the auto_* pair records kAuto's
/// per-partition decisions in the JobReport.
inline constexpr const char* kCounterBbsNodesVisited =
    "skymr.bbs.nodes_visited";
inline constexpr const char* kCounterBbsEntriesPruned =
    "skymr.bbs.entries_pruned";
inline constexpr const char* kCounterBbsHeapPeak = "skymr.bbs.heap_peak";
inline constexpr const char* kCounterBbsAutoBbs =
    "skymr.bbs.auto_bbs_partitions";
inline constexpr const char* kCounterBbsAutoSfs =
    "skymr.bbs.auto_sfs_partitions";

/// Side data broadcast to every task of a skyline job: the grid, the
/// Equation 2 bitstring BS_R, the optional constraint box, and (for
/// MR-GPMRS) the group policy.
struct SkylineJobContext {
  Grid grid;
  DynamicBitset bits;
  GroupMergeStrategy merge = GroupMergeStrategy::kComputationCost;
  int num_reducers = 1;
  std::optional<Box> constraint;
  LocalAlgorithm local_algorithm = LocalAlgorithm::kBnl;

  SkylineJobContext(Grid g, DynamicBitset b)
      : grid(std::move(g)), bits(std::move(b)) {}
};

/// Result of one skyline job: the global skyline plus engine metrics.
struct SkylineJobRun {
  SkylineWindow skyline;
  mr::JobMetrics metrics;
};

/// Input-size ceiling for the debug-only skyline cross-check below; the
/// reference is O(n^2), so the check is restricted to inputs where it
/// stays cheap enough to run after every job in sanitizer CI.
inline constexpr size_t kDebugSkylineVerifyMaxTuples = 4096;

/// Debug/sanitizer builds only (SKYMR_DCHECK_IS_ON): cross-checks a
/// finished GPSRS/GPMRS run against the O(n^2) reference skyline and
/// aborts on any mismatch. Constrained runs are skipped — the reference
/// is defined over the whole dataset — as are inputs too large for the
/// quadratic check.
inline void DebugVerifySkyline(const char* algorithm, const Dataset& data,
                               const SkylineWindow& skyline,
                               const std::optional<Box>& constraint) {
  if (!DchecksEnabled() || constraint.has_value() ||
      data.size() > kDebugSkylineVerifyMaxTuples) {
    return;
  }
  std::vector<TupleId> ids;
  ids.reserve(skyline.size());
  for (size_t i = 0; i < skyline.size(); ++i) {
    ids.push_back(skyline.IdAt(i));
  }
  const std::string mismatch = ExplainSkylineMismatch(data, ids);
  SKYMR_CHECK(mismatch.empty())
      << algorithm << " produced a wrong skyline: " << mismatch;
}

/// The mapper-side local phase: per-partition BNL windows for unpruned
/// partitions, then ComparePartitions across the mapper's windows.
class LocalSkylinePhase {
 public:
  /// Loads the dataset and job context from the distributed cache.
  /// Throws TaskFailure when side data is missing.
  void Setup(const mr::DistributedCache& cache) {
    data_ = cache.Get<Dataset>(kCacheKeyDataset);
    context_ = cache.Get<SkylineJobContext>(kCacheKeySkylineContext);
    if (data_ == nullptr || context_ == nullptr) {
      throw mr::TaskFailure("skyline mapper: cache entries missing");
    }
  }

  /// Algorithm 3 / 8, lines 2-8: route the tuple to its partition's window
  /// unless the partition was pruned by the bitstring (or the tuple falls
  /// outside the constraint box of a constrained skyline query).
  void Add(TupleId id) {
    const double* row = data_->RowPtr(id);
    if (context_->constraint.has_value() &&
        !context_->constraint->Contains(row, data_->dim())) {
      return;
    }
    const CellId cell = context_->grid.CellOf(row);
    if (!context_->bits.Test(cell)) {
      ++tuples_pruned_;
      return;  // Line 4: the partition cannot contain skyline tuples.
    }
    if (context_->local_algorithm != LocalAlgorithm::kBnl) {
      // SFS sorts and BBS tree-packs the whole partition at once.
      buffered_[cell].push_back(id);
      return;
    }
    auto [it, inserted] =
        windows_.try_emplace(cell, SkylineWindow(data_->dim()));
    it->second.Insert(row, id, &dominance_counter_);
  }

  /// Algorithm 3 / 8, lines 9-10: remove cross-partition false positives.
  /// Returns the windows and records counters; `histograms` receives the
  /// per-partition window lengths (the scan lengths InsertTuple/SFS walk),
  /// as the skymr.window_size distribution.
  CellWindowMap Finish(mr::Counters* counters,
                       obs::HistogramSet* histograms) {
    const LocalAlgorithm algorithm = context_->local_algorithm;
    if (algorithm != LocalAlgorithm::kBnl) {
      for (auto& [cell, ids] : buffered_) {
        LocalAlgorithm resolved = algorithm;
        if (algorithm == LocalAlgorithm::kAuto) {
          resolved = ResolveAutoKernel(ids.size(), data_->dim());
          if (resolved == LocalAlgorithm::kBbs) {
            ++auto_bbs_partitions_;
          } else {
            ++auto_sfs_partitions_;
          }
        }
        if (resolved == LocalAlgorithm::kBbs) {
          // The constraint was applied per tuple in Add(); the kernel's
          // own box hook is for callers outside the phase.
          windows_.emplace(
              cell, BbsSkyline({*data_, std::move(ids)},
                               &dominance_counter_, &bbs_stats_,
                               /*constraint=*/nullptr, &bbs_scratch_));
        } else {
          windows_.emplace(cell, SfsSkyline({*data_, std::move(ids)},
                                            &dominance_counter_));
        }
      }
      buffered_.clear();
    }
    const uint64_t partition_comparisons = CompareAllPartitions(
        context_->grid, &windows_, &dominance_counter_);
    counters->Add(mr::kCounterPartitionComparisons,
                  static_cast<int64_t>(partition_comparisons));
    counters->Add(mr::kCounterTupleComparisons,
                  static_cast<int64_t>(dominance_counter_.count()));
    counters->Add(mr::kCounterTuplesPruned,
                  static_cast<int64_t>(tuples_pruned_));
    if (algorithm == LocalAlgorithm::kBbs ||
        algorithm == LocalAlgorithm::kAuto) {
      counters->Add(kCounterBbsNodesVisited,
                    static_cast<int64_t>(bbs_stats_.nodes_visited));
      counters->Add(kCounterBbsEntriesPruned,
                    static_cast<int64_t>(bbs_stats_.entries_pruned));
      counters->Add(kCounterBbsHeapPeak,
                    static_cast<int64_t>(bbs_stats_.heap_peak));
    }
    if (algorithm == LocalAlgorithm::kAuto) {
      counters->Add(kCounterBbsAutoBbs,
                    static_cast<int64_t>(auto_bbs_partitions_));
      counters->Add(kCounterBbsAutoSfs,
                    static_cast<int64_t>(auto_sfs_partitions_));
    }
    if (histograms != nullptr) {
      for (const auto& [cell, window] : windows_) {
        histograms->Add("skymr.window_size", window.size());
      }
    }
    return std::move(windows_);
  }

  const Dataset& data() const { return *data_; }
  const SkylineJobContext& context() const { return *context_; }

 private:
  std::shared_ptr<const Dataset> data_;
  std::shared_ptr<const SkylineJobContext> context_;
  CellWindowMap windows_;
  std::map<CellId, std::vector<TupleId>> buffered_;  // non-kBnl kernels.
  DominanceCounter dominance_counter_;
  BbsStats bbs_stats_;
  BbsScratch bbs_scratch_;
  uint64_t tuples_pruned_ = 0;
  uint64_t auto_bbs_partitions_ = 0;
  uint64_t auto_sfs_partitions_ = 0;
};

}  // namespace skymr::core

#endif  // SKYMR_CORE_SKYLINE_JOB_COMMON_H_
