#include "src/core/grid.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/math_util.h"

namespace skymr::core {

StatusOr<Grid> Grid::Create(size_t dim, uint32_t ppd, Bounds bounds,
                            uint64_t max_cells) {
  if (dim < 1) {
    return Status::InvalidArgument("grid dimension must be >= 1");
  }
  if (ppd < 1) {
    return Status::InvalidArgument("PPD must be >= 1");
  }
  if (bounds.lo.size() != dim || bounds.hi.size() != dim) {
    return Status::InvalidArgument("bounds width does not match dimension");
  }
  for (size_t k = 0; k < dim; ++k) {
    if (!(bounds.lo[k] <= bounds.hi[k])) {
      return Status::InvalidArgument("bounds are inverted or NaN");
    }
  }
  const std::optional<uint64_t> cells =
      CheckedPow(ppd, static_cast<uint32_t>(dim));
  if (!cells.has_value() || *cells > max_cells) {
    return Status::OutOfRange("grid cell count n^d exceeds the budget");
  }
  return Grid(dim, ppd, std::move(bounds), *cells);
}

Grid::Grid(size_t dim, uint32_t ppd, Bounds bounds, uint64_t num_cells)
    : dim_(dim),
      ppd_(ppd),
      num_cells_(num_cells),
      bounds_(std::move(bounds)),
      inv_width_(dim),
      width_(dim) {
  for (size_t k = 0; k < dim_; ++k) {
    const double extent = bounds_.hi[k] - bounds_.lo[k];
    if (extent > 0.0) {
      inv_width_[k] = static_cast<double>(ppd_) / extent;
      width_[k] = extent / static_cast<double>(ppd_);
    } else {
      // Degenerate dimension: every tuple falls in coordinate 0.
      inv_width_[k] = 0.0;
      width_[k] = 0.0;
    }
  }
}

CellId Grid::CellOf(const double* row) const {
  CellId index = 0;
  CellId stride = 1;
  for (size_t k = 0; k < dim_; ++k) {
    double offset = (row[k] - bounds_.lo[k]) * inv_width_[k];
    if (!(offset > 0.0)) {
      offset = 0.0;  // Clamp below-range and NaN to the first cell.
    }
    auto coord = static_cast<uint64_t>(offset);
    if (coord >= ppd_) {
      coord = ppd_ - 1;  // Clamp the upper boundary into the last cell.
    }
    index += coord * stride;
    stride *= ppd_;
  }
  // Clamping bounds every coordinate into [0, ppd), so the linear index
  // is always a valid cell id.
  SKYMR_DCHECK(index < num_cells_)
      << "cell index " << index << " out of range " << num_cells_;
  return index;
}

void Grid::CoordsOf(CellId cell, uint32_t* coords) const {
  SKYMR_DCHECK(cell < num_cells_)
      << "cell " << cell << " out of range " << num_cells_;
  for (size_t k = 0; k < dim_; ++k) {
    coords[k] = static_cast<uint32_t>(cell % ppd_);
    cell /= ppd_;
  }
}

std::vector<uint32_t> Grid::Coords(CellId cell) const {
  std::vector<uint32_t> coords(dim_);
  CoordsOf(cell, coords.data());
  return coords;
}

CellId Grid::IndexOf(const uint32_t* coords) const {
  CellId index = 0;
  CellId stride = 1;
  for (size_t k = 0; k < dim_; ++k) {
    SKYMR_DCHECK(coords[k] < ppd_)
        << "coordinate " << coords[k] << " >= ppd " << ppd_;
    index += static_cast<CellId>(coords[k]) * stride;
    stride *= ppd_;
  }
  return index;
}

bool Grid::CellDominates(CellId a, CellId b) const {
  SKYMR_DCHECK(a < num_cells_) << "cell " << a << " out of range " << num_cells_;
  SKYMR_DCHECK(b < num_cells_) << "cell " << b << " out of range " << num_cells_;
  for (size_t k = 0; k < dim_; ++k) {
    const auto ca = static_cast<uint32_t>(a % ppd_);
    const auto cb = static_cast<uint32_t>(b % ppd_);
    if (cb < ca + 1) {
      return false;
    }
    a /= ppd_;
    b /= ppd_;
  }
  return true;
}

bool Grid::InAdrOf(CellId p, CellId q) const {
  SKYMR_DCHECK(p < num_cells_) << "cell " << p << " out of range " << num_cells_;
  SKYMR_DCHECK(q < num_cells_) << "cell " << q << " out of range " << num_cells_;
  if (p == q) {
    return false;
  }
  for (size_t k = 0; k < dim_; ++k) {
    const auto cp = static_cast<uint32_t>(p % ppd_);
    const auto cq = static_cast<uint32_t>(q % ppd_);
    if (cq > cp) {
      return false;
    }
    p /= ppd_;
    q /= ppd_;
  }
  return true;
}

bool Grid::InAdrOfCoords(const uint32_t* p, const uint32_t* q) const {
  bool same = true;
  for (size_t k = 0; k < dim_; ++k) {
    if (q[k] > p[k]) {
      return false;
    }
    same = same && q[k] == p[k];
  }
  return !same;
}

uint64_t Grid::AdrSize(CellId cell) const {
  SKYMR_DCHECK(cell < num_cells_)
      << "cell " << cell << " out of range " << num_cells_;
  uint64_t product = 1;
  for (size_t k = 0; k < dim_; ++k) {
    product *= static_cast<uint64_t>(cell % ppd_) + 1;
    cell /= ppd_;
  }
  return product - 1;
}

std::vector<double> Grid::MinCorner(CellId cell) const {
  SKYMR_DCHECK(cell < num_cells_)
      << "cell " << cell << " out of range " << num_cells_;
  std::vector<double> corner(dim_);
  for (size_t k = 0; k < dim_; ++k) {
    const auto coord = static_cast<uint32_t>(cell % ppd_);
    corner[k] = bounds_.lo[k] + static_cast<double>(coord) * width_[k];
    cell /= ppd_;
  }
  return corner;
}

std::vector<double> Grid::MaxCorner(CellId cell) const {
  SKYMR_DCHECK(cell < num_cells_)
      << "cell " << cell << " out of range " << num_cells_;
  std::vector<double> corner(dim_);
  for (size_t k = 0; k < dim_; ++k) {
    const auto coord = static_cast<uint32_t>(cell % ppd_);
    corner[k] =
        bounds_.lo[k] + static_cast<double>(coord + 1) * width_[k];
    cell /= ppd_;
  }
  return corner;
}

}  // namespace skymr::core
