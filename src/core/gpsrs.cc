#include "src/core/gpsrs.h"

#include <numeric>

#include "src/obs/trace.h"

namespace skymr::core {
namespace {

/// Algorithm 3: Map of MR-GPSRS.
class GpsrsMapper : public mr::Mapper<TupleId, uint32_t, LocalSkylineSet> {
 public:
  void Setup(mr::MapContext<uint32_t, LocalSkylineSet>& ctx) override {
    phase_.Setup(ctx.cache());
  }

  void Map(const TupleId& id,
           mr::MapContext<uint32_t, LocalSkylineSet>& ctx) override {
    (void)ctx;
    phase_.Add(id);
  }

  void Cleanup(mr::MapContext<uint32_t, LocalSkylineSet>& ctx) override {
    CellWindowMap windows =
        phase_.Finish(&ctx.counters(), &ctx.histograms());
    LocalSkylineSet set;
    set.parts.reserve(windows.size());
    for (auto& [cell, window] : windows) {
      set.parts.push_back(PartitionSkyline{cell, std::move(window)});
    }
    // Line 11: everything goes to the single reducer under one key.
    ctx.Emit(0, set);
  }

 private:
  LocalSkylinePhase phase_;
};

/// Algorithm 6: Reduce of MR-GPSRS.
class GpsrsReducer
    : public mr::Reducer<uint32_t, LocalSkylineSet, SkylineWindow> {
 public:
  void Setup(mr::ReduceContext<SkylineWindow>& ctx) override {
    context_ = ctx.cache().Get<SkylineJobContext>(kCacheKeySkylineContext);
    if (context_ == nullptr) {
      throw mr::TaskFailure("GPSRS reducer: job context missing");
    }
  }

  void Reduce(const uint32_t& key,
              mr::ValueIterator<LocalSkylineSet>& values,
              mr::ReduceContext<SkylineWindow>& ctx) override {
    (void)key;
    SKYMR_TRACE_SPAN("gpsrs.merge", "values",
                     static_cast<int64_t>(values.remaining()));
    const size_t dim = context_->grid.dim();
    DominanceCounter dominance_counter;
    // Lines 1-6: merge the mappers' per-partition skylines with InsertTuple.
    // One mapper's set is deserialized at a time; the whole value list is
    // never resident at once.
    CellWindowMap windows;
    while (values.HasNext()) {
      const LocalSkylineSet set = values.Next();
      MergeParts(set.parts, dim, &windows, &dominance_counter);
    }
    // Lines 7-8: eliminate cross-partition false positives globally.
    const uint64_t partition_comparisons = CompareAllPartitions(
        context_->grid, &windows, &dominance_counter);
    ctx.counters().Add(mr::kCounterPartitionComparisons,
                       static_cast<int64_t>(partition_comparisons));
    ctx.counters().Add(mr::kCounterTupleComparisons,
                       static_cast<int64_t>(dominance_counter.count()));
    // Line 9: output the union of all partition skylines.
    ctx.Emit(UnionWindows(windows, dim));
  }

 private:
  std::shared_ptr<const SkylineJobContext> context_;
};

}  // namespace

StatusOr<SkylineJobRun> RunGpsrsJob(std::shared_ptr<const Dataset> data,
                                    const Grid& grid,
                                    const DynamicBitset& bits,
                                    const mr::EngineOptions& engine,
                                    ThreadPool* pool,
                                    const std::optional<Box>& constraint,
                                    LocalAlgorithm local_algorithm) {
  if (data == nullptr) {
    return Status::InvalidArgument("GPSRS: dataset is null");
  }
  if (bits.size() != grid.num_cells()) {
    return Status::InvalidArgument("GPSRS: bitstring/grid size mismatch");
  }
  if (constraint.has_value()) {
    SKYMR_RETURN_IF_ERROR(constraint->Validate(data->dim()));
  }

  mr::DistributedCache cache;
  SKYMR_RETURN_IF_ERROR(cache.Put(kCacheKeyDataset, data));
  auto context = std::make_shared<SkylineJobContext>(grid, bits);
  context->constraint = constraint;
  context->local_algorithm = local_algorithm;
  SKYMR_RETURN_IF_ERROR(cache.Put(
      kCacheKeySkylineContext,
      std::shared_ptr<const SkylineJobContext>(std::move(context))));

  std::vector<TupleId> ids(data->size());
  std::iota(ids.begin(), ids.end(), 0);

  mr::Job<TupleId, uint32_t, LocalSkylineSet, SkylineWindow> job(
      "mr-gpsrs", [] { return std::make_unique<GpsrsMapper>(); },
      [] { return std::make_unique<GpsrsReducer>(); });

  mr::EngineOptions options = engine;
  options.num_reducers = 1;  // Single reducer, by definition of MR-GPSRS.
  auto result = job.Run(ids, options, cache, pool);
  if (!result.ok()) {
    return result.status;
  }

  SkylineJobRun run;
  run.metrics = std::move(result.metrics);
  if (result.outputs.empty()) {
    run.skyline = SkylineWindow(data->dim());  // Empty input, empty skyline.
  } else if (result.outputs.size() == 1) {
    run.skyline = std::move(result.outputs[0]);
  } else {
    return Status::Internal("GPSRS produced multiple outputs");
  }
  DebugVerifySkyline("MR-GPSRS", *data, run.skyline, constraint);
  return run;
}

}  // namespace skymr::core
