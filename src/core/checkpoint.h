// Phase-level checkpointing for the skyline pipeline.
//
// The grid algorithms run two jobs: the bitstring/PPD-selection job and
// the skyline job. On a real cluster the first phase's output would live
// in HDFS; here a PipelineCheckpoint plays that role, so a run that dies
// in the skyline phase (or a deliberate re-run, e.g. after a chaos-killed
// job) resumes from the stored bitstring instead of rescanning the input.
//
// Entries are keyed by a fingerprint of everything that determines the
// phase's output (dataset shape, PPD policy, prune mode, bounds choice,
// constraint box). A checkpoint from a different configuration simply
// misses, so resuming can never serve stale results. The store can be
// persisted to a single file (skymr_cli --checkpoint=FILE) and reloaded
// in a later process.

#ifndef SKYMR_CORE_CHECKPOINT_H_
#define SKYMR_CORE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/common/status.h"
#include "src/core/bitstring_job.h"

namespace skymr::core {

/// Thread-safe store of checkpointed bitstring-phase results. One
/// instance may be shared across ComputeSkyline calls.
class PipelineCheckpoint {
 public:
  /// Returns true and fills `out` when `fingerprint` has a stored result.
  bool LoadBitstring(uint64_t fingerprint, BitstringBuildResult* out) const;
  /// Stores (or replaces) the result for `fingerprint`.
  void StoreBitstring(uint64_t fingerprint,
                      const BitstringBuildResult& result);

  /// Serializes every entry to `path` (atomic only at the filesystem's
  /// rename granularity is not attempted; the file is rewritten whole).
  Status SaveFile(const std::string& path) const;
  /// Merges entries from `path` into the store; a missing file is OK
  /// (first run), a malformed one is an IoError.
  Status LoadFile(const std::string& path);

  /// The serialized form SaveFile writes, as bytes (magic included).
  std::vector<uint8_t> SaveBytes() const;
  /// Merges entries from a serialized store. Untrusted-input boundary:
  /// any malformed payload — bad magic, truncation, corrupt lengths —
  /// comes back as an IoError naming `origin`, never an exception, and
  /// leaves the store unchanged.
  Status LoadBytes(const uint8_t* data, size_t size,
                   const std::string& origin);

  void Clear();
  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<uint64_t, BitstringBuildResult> entries_;
};

}  // namespace skymr::core

#endif  // SKYMR_CORE_CHECKPOINT_H_
