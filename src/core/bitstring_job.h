// The bitstring generation MapReduce job (Section 3.2, Algorithms 1-2,
// Figure 3), extended with the PPD-series selection of Section 3.3.
//
// Map (Algorithm 1): each mapper scans its split R_i and builds one local
// bitstring per candidate PPD, marking the partitions its tuples fall in
// (Equation 1). Reduce (Algorithm 2, single reducer): local bitstrings are
// merged per candidate with bitwise OR, the candidate PPD is selected from
// the observed occupancies, and dominated partitions of the winning
// bitstring are cleared (Equation 2).

#ifndef SKYMR_CORE_BITSTRING_JOB_H_
#define SKYMR_CORE_BITSTRING_JOB_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/common/dynamic_bitset.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/partition_bitstring.h"
#include "src/core/ppd.h"
#include "src/mapreduce/job.h"
#include "src/relation/box.h"
#include "src/relation/dataset.h"

namespace skymr::core {

/// Distributed cache key for the input dataset (the "input file" every
/// mapper reads its split from).
inline constexpr const char* kCacheKeyDataset = "skymr.dataset";
/// Distributed cache key for the bitstring job configuration.
inline constexpr const char* kCacheKeyBitstringConfig =
    "skymr.bitstring_config";

/// Configuration broadcast to the bitstring job's tasks.
struct BitstringJobConfig {
  Bounds bounds;
  /// Candidate PPD series (from CandidatePpds, or one explicit value).
  std::vector<uint32_t> candidates;
  PpdOptions ppd;
  uint64_t cardinality = 0;
  PruneMode prune_mode = PruneMode::kPrefix;
  /// Constrained skyline: tuples outside this box are ignored, so
  /// partitions outside it stay empty in the bitstring.
  std::optional<Box> constraint;
};

/// The reducer's output: the selected grid resolution and its Equation 2
/// bitstring, plus selection diagnostics.
struct BitstringBuildResult {
  uint32_t ppd = 0;
  /// Bitstring after dominated-partition pruning (Equation 2).
  DynamicBitset bits;
  /// Non-empty partitions of the selected grid before pruning (rho).
  uint64_t nonempty = 0;
  /// Partitions cleared by dominance pruning.
  uint64_t pruned = 0;
  /// (candidate PPD, rho) for every candidate, ascending by PPD.
  std::vector<PpdOccupancy> occupancies;
};

struct BitstringJobRun {
  BitstringBuildResult result;
  mr::JobMetrics metrics;
};

/// Runs the bitstring generation job. `data` must stay alive for the run.
StatusOr<BitstringJobRun> RunBitstringJob(
    std::shared_ptr<const Dataset> data, const BitstringJobConfig& config,
    const mr::EngineOptions& engine, ThreadPool* pool = nullptr);

}  // namespace skymr::core

namespace skymr {

template <>
struct Serde<core::BitstringBuildResult> {
  static void Write(const core::BitstringBuildResult& value, ByteSink* sink) {
    sink->AppendRaw<uint32_t>(value.ppd);
    Serde<DynamicBitset>::Write(value.bits, sink);
    sink->AppendRaw<uint64_t>(value.nonempty);
    sink->AppendRaw<uint64_t>(value.pruned);
    Serde<std::vector<core::PpdOccupancy>>::Write(value.occupancies, sink);
  }
  static core::BitstringBuildResult Read(ByteSource* source) {
    core::BitstringBuildResult out;
    out.ppd = source->ReadRaw<uint32_t>();
    out.bits = Serde<DynamicBitset>::Read(source);
    out.nonempty = source->ReadRaw<uint64_t>();
    out.pruned = source->ReadRaw<uint64_t>();
    out.occupancies =
        Serde<std::vector<core::PpdOccupancy>>::Read(source);
    return out;
  }
};

}  // namespace skymr

#endif  // SKYMR_CORE_BITSTRING_JOB_H_
