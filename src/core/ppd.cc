#include "src/core/ppd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/common/math_util.h"

namespace skymr::core {

const char* PpdStrategyName(PpdStrategy strategy) {
  switch (strategy) {
    case PpdStrategy::kPaperLiteral:
      return "paper-literal";
    case PpdStrategy::kTargetTpp:
      return "target-tpp";
  }
  return "unknown";
}

std::vector<uint32_t> CandidatePpds(uint64_t cardinality, size_t dim,
                                    const PpdOptions& options) {
  if (options.explicit_ppd > 0) {
    return {options.explicit_ppd};
  }
  // n_m = floor(c^(1/d)): the PPD at which TPP would reach 1 on uniform
  // data (Equation 4 with TPP = 1).
  uint64_t nm = FloorRoot(cardinality, static_cast<uint32_t>(dim));
  nm = std::min<uint64_t>(nm, options.max_candidate);
  std::vector<uint32_t> candidates;
  for (uint32_t j = 2; j <= nm; ++j) {
    const std::optional<uint64_t> cells =
        CheckedPow(j, static_cast<uint32_t>(dim));
    if (!cells.has_value() || *cells > options.max_cells) {
      break;
    }
    candidates.push_back(j);
  }
  if (candidates.empty()) {
    // Tiny datasets (c < 2^d) still need a grid; fall back to PPD 2 when
    // it fits the cell budget.
    const std::optional<uint64_t> cells =
        CheckedPow(2, static_cast<uint32_t>(dim));
    if (cells.has_value() && *cells <= options.max_cells) {
      candidates.push_back(2);
    }
  }
  return candidates;
}

uint32_t SelectPpd(const PpdOptions& options, uint64_t cardinality,
                   size_t dim, const std::vector<PpdOccupancy>& occupancies) {
  assert(!occupancies.empty());
  if (cardinality == 0) {
    // Degenerate input: every candidate is equally (un)informative.
    return occupancies.front().first;
  }
  const auto c = static_cast<double>(cardinality);
  uint32_t best_ppd = 0;
  double best_diff = 0.0;
  // Ties within epsilon break toward the larger PPD; SelectPpd scans
  // candidates in ascending order, so `>= diff - eps` keeps the larger.
  constexpr double kEpsilon = 1e-9;
  for (const auto& [ppd, rho] : occupancies) {
    const double tpp_estimate =
        rho > 0 ? c / static_cast<double>(rho)
                : std::numeric_limits<double>::infinity();
    double diff = 0.0;
    switch (options.strategy) {
      case PpdStrategy::kPaperLiteral: {
        const double tpp_uniform =
            c / std::pow(static_cast<double>(ppd),
                         static_cast<double>(dim));
        diff = std::abs(tpp_estimate - tpp_uniform);
        break;
      }
      case PpdStrategy::kTargetTpp:
        diff = std::abs(tpp_estimate - options.target_tpp);
        break;
    }
    if (best_ppd == 0 || diff < best_diff - kEpsilon ||
        (diff <= best_diff + kEpsilon && ppd > best_ppd)) {
      if (best_ppd == 0 || diff < best_diff) {
        best_diff = diff;
      }
      best_ppd = ppd;
    }
  }
  return best_ppd;
}

}  // namespace skymr::core
