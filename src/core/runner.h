// SkylineRunner: the library's main entry point. Given a dataset and a
// configuration it executes the full pipeline the paper evaluates —
// bitstring-generation job (with PPD selection) followed by the chosen
// skyline job — and returns the skyline together with per-job metrics,
// real wall time, and the modeled cluster makespan.

#ifndef SKYMR_CORE_RUNNER_H_
#define SKYMR_CORE_RUNNER_H_

#include <string>
#include <vector>

#include "src/baselines/centralized.h"
#include "src/baselines/sky_quadtree.h"
#include "src/common/thread_pool.h"
#include "src/core/bitstring_job.h"
#include "src/core/hybrid.h"
#include "src/core/independent_groups.h"
#include "src/core/skyline_job_common.h"
#include "src/mapreduce/cluster_model.h"

namespace skymr {

namespace core {
class PipelineCheckpoint;  // checkpoint.h
}  // namespace core

/// The skyline computation strategies the library ships.
enum class Algorithm {
  kMrGpsrs,   // Paper Section 4.
  kMrGpmrs,   // Paper Section 5.
  kMrBnl,     // Baseline, Zhang et al. 2011.
  kMrAngle,   // Baseline, Chen et al. 2012.
  kHybrid,    // Paper Section 8 future work: auto GPSRS/GPMRS switch.
  kSkyMr,     // Baseline, Park et al. 2013 (sampling + sky-quadtree).
};

const char* AlgorithmName(Algorithm algorithm);
StatusOr<Algorithm> ParseAlgorithm(const std::string& name);

/// Full configuration for one skyline computation.
///
/// Legacy surface: RunnerConfig conflates dataset-scoped state and
/// per-query parameters. New code should open a serve/session.h Session
/// (SessionOptions + QuerySpec); ComputeSkyline splits a RunnerConfig
/// into those halves (SplitRunnerConfig) and runs a one-query session,
/// so both surfaces always agree.
struct RunnerConfig {
  Algorithm algorithm = Algorithm::kMrGpmrs;
  /// Map/reduce task counts and thread parallelism.
  mr::EngineOptions engine;
  /// Grid resolution policy (Section 3.3).
  core::PpdOptions ppd;
  /// How Equation 2 pruning is computed.
  core::PruneMode prune_mode = core::PruneMode::kPrefix;
  /// MR-GPMRS group merging policy (Section 5.4.1).
  core::GroupMergeStrategy merge =
      core::GroupMergeStrategy::kComputationCost;
  /// Mapper-side local skyline algorithm (kBnl is the paper's
  /// InsertTuple; kSfs and the R-tree kBbs realize the Section 8
  /// future-work optimization; kAuto picks kBbs vs kSfs per partition).
  core::LocalAlgorithm local_algorithm = core::LocalAlgorithm::kBnl;
  /// Hybrid switch tunables (Algorithm::kHybrid only).
  core::HybridPolicy hybrid;
  /// Modeled cluster for makespan accounting.
  mr::ClusterModel cluster;
  /// MR-Angle: approximate number of angular partitions.
  uint32_t angle_partitions = 64;
  /// SKY-MR: sample size, leaf capacity, and depth of the sky-quadtree.
  baselines::SkyQuadtree::Options skymr;
  /// Use the unit hypercube as the grid domain (true, the synthetic
  /// generators' domain) or compute tight data bounds (false).
  bool unit_bounds = true;
  /// Constrained skyline query: when set, the skyline is computed over
  /// only the tuples inside this box. Partitions outside the box never
  /// enter the bitstring, so they are pruned before any tuple work.
  ///
  /// DEPRECATED: the constraint is a per-query parameter — use
  /// QuerySpec::constraint (serve/query_spec.h). This field keeps
  /// working through the ComputeSkyline shim; lint_skymr's
  /// deprecated-constraint rule flags new uses.
  std::optional<Box> constraint;
  /// Worker pool shared across ComputeSkyline calls. When null (the
  /// default) a private pool of engine.num_threads is built per call;
  /// callers running many computations (benchmark loops, the CLI compare
  /// command) pass one pool here so threads are spawned once. The pool
  /// must outlive the call. Leave engine.num_threads 0 when set: an
  /// explicit nonzero count that contradicts the pool's size is an
  /// InvalidArgument (Validate), not a silent no-op.
  ThreadPool* pool = nullptr;
  /// Graceful degradation: when a GPMRS (or hybrid-resolved GPMRS) run
  /// fails permanently — e.g. its reducer-group merge keeps crashing
  /// under chaos — retry the skyline phase as a GPSRS single-reducer
  /// merge instead of surfacing the error. The result is flagged
  /// `degraded` and counted under mr.degraded_to_gpsrs.
  bool degrade_to_single_reducer = true;
  /// Phase-level checkpoint store (checkpoint.h). When set, the
  /// bitstring/PPD phase first consults the store (fingerprint-keyed, so
  /// a config or dataset change misses) and stores its result after
  /// running; a resumed run skips the whole first job. Must outlive the
  /// call. Null disables checkpointing.
  core::PipelineCheckpoint* checkpoint = nullptr;

  /// Rejects contradictory configurations before any work runs: task
  /// counts < 1, zero attempt budgets, PPD policy out of range,
  /// backoff/speculation tunables outside their domains, chaos
  /// schedules that can never finish, and a num_threads that
  /// contradicts an external pool. Called by ComputeSkyline; delegates
  /// to the split halves (SessionOptions/QuerySpec Validate).
  Status Validate() const;
};

/// The outcome of a skyline computation.
struct SkylineResult {
  /// The global skyline: tuple values plus original tuple ids.
  SkylineWindow skyline;
  /// Sorted skyline tuple ids (convenience for verification).
  std::vector<TupleId> SkylineIds() const;
  /// Per-job engine metrics, in execution order (grid algorithms run the
  /// bitstring job first, then the skyline job; baselines run one job).
  std::vector<mr::JobMetrics> jobs;
  /// Real wall time of the in-process simulation.
  double wall_seconds = 0.0;
  /// Modeled cluster makespan (the paper's "runtime" axis).
  double modeled_seconds = 0.0;
  /// Modeled makespan with job/task startup overheads zeroed: the part of
  /// the runtime that scales with the data. At scaled-down cardinalities
  /// the fixed Hadoop overheads dominate `modeled_seconds`, so figure
  /// *shapes* (who wins, crossovers) are read off this component.
  double modeled_compute_seconds = 0.0;
  /// Selected PPD (grid algorithms; 0 for baselines).
  uint32_t ppd = 0;
  /// Non-empty partitions before / pruned by Equation 2.
  uint64_t nonempty_partitions = 0;
  uint64_t pruned_partitions = 0;
  /// The algorithm that actually executed (resolves kHybrid).
  Algorithm algorithm_used = Algorithm::kMrGpsrs;
  /// Hybrid diagnostics (kHybrid only).
  core::HybridDecision hybrid_decision;
  /// True when a failing GPMRS merge was degraded to the GPSRS
  /// single-reducer merge (RunnerConfig::degrade_to_single_reducer).
  bool degraded = false;
  /// True when the bitstring phase was served from the checkpoint store
  /// instead of running (RunnerConfig::checkpoint).
  bool resumed_from_checkpoint = false;
  /// True when the bitstring phase was served from a Session's
  /// in-session cross-query cache (serve/session.h); the result then
  /// holds only the skyline job. Always false on the ComputeSkyline
  /// shim path, which runs a cache-less one-query session.
  bool session_cache_hit = false;
};

/// Computes the skyline of `data`. The dataset must outlive the call.
///
/// API contract: never throws. Invalid configurations come back as
/// InvalidArgument (RunnerConfig::Validate), permanent task failures as
/// Internal; internal exceptions (TaskFailure and friends) are absorbed
/// at this boundary.
StatusOr<SkylineResult> ComputeSkyline(const Dataset& data,
                                       const RunnerConfig& config);

}  // namespace skymr

#endif  // SKYMR_CORE_RUNNER_H_
