#include "src/core/messages.h"

namespace skymr::core {

void MergeParts(const std::vector<PartitionSkyline>& parts, size_t dim,
                CellWindowMap* windows, DominanceCounter* counter) {
  for (const PartitionSkyline& part : parts) {
    auto [it, inserted] = windows->try_emplace(part.cell, SkylineWindow(dim));
    SkylineWindow& target = it->second;
    for (size_t i = 0; i < part.window.size(); ++i) {
      target.Insert(part.window.RowAt(i), part.window.IdAt(i), counter);
    }
  }
}

SkylineWindow UnionWindows(const CellWindowMap& windows, size_t dim) {
  SkylineWindow out(dim);
  for (const auto& [cell, window] : windows) {
    for (size_t i = 0; i < window.size(); ++i) {
      out.AppendUnchecked(window.RowAt(i), window.IdAt(i));
    }
  }
  return out;
}

}  // namespace skymr::core
