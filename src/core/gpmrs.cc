#include "src/core/gpmrs.h"

#include <numeric>
#include <unordered_set>

#include "src/obs/trace.h"

namespace skymr::core {
namespace {

/// Algorithm 8: Map of MR-GPMRS.
class GpmrsMapper : public mr::Mapper<TupleId, uint32_t, GroupPayload> {
 public:
  void Setup(mr::MapContext<uint32_t, GroupPayload>& ctx) override {
    phase_.Setup(ctx.cache());
  }

  void Map(const TupleId& id,
           mr::MapContext<uint32_t, GroupPayload>& ctx) override {
    (void)ctx;
    phase_.Add(id);
  }

  void Cleanup(mr::MapContext<uint32_t, GroupPayload>& ctx) override {
    const SkylineJobContext& context = phase_.context();
    CellWindowMap windows =
        phase_.Finish(&ctx.counters(), &ctx.histograms());

    // Line 11: generate the independent groups from the bitstring only, so
    // every mapper derives exactly the same grouping (the consistency
    // requirement Section 5.3 states). Merging and duplicate-output
    // responsibility (Section 5.4) are equally bitstring-deterministic.
    SKYMR_TRACE_SPAN("gpmrs.group_assign", "reducers",
                     context.num_reducers);
    const std::vector<IndependentGroup> groups =
        GenerateIndependentGroups(context.grid, context.bits);
    const std::vector<ReducerGroup> reducer_groups = AssignGroupsToReducers(
        context.grid, groups, context.num_reducers, context.merge);

    // Lines 12-19: ship each group's local skylines to its reducer.
    for (uint32_t i = 0; i < reducer_groups.size(); ++i) {
      const ReducerGroup& group = reducer_groups[i];
      GroupPayload payload;
      payload.reducer_group = i;
      payload.responsible = group.responsible;
      for (const CellId cell : group.cells) {
        const auto it = windows.find(cell);
        if (it != windows.end()) {
          payload.parts.push_back(PartitionSkyline{cell, it->second});
        }
      }
      ctx.Emit(i, payload);
    }
  }

 private:
  LocalSkylinePhase phase_;
};

/// Algorithm 9: Reduce of MR-GPMRS. Each key is one (merged) independent
/// group; the reducer finalizes that group's share of the global skyline.
class GpmrsReducer
    : public mr::Reducer<uint32_t, GroupPayload, SkylineWindow> {
 public:
  void Setup(mr::ReduceContext<SkylineWindow>& ctx) override {
    context_ = ctx.cache().Get<SkylineJobContext>(kCacheKeySkylineContext);
    if (context_ == nullptr) {
      throw mr::TaskFailure("GPMRS reducer: job context missing");
    }
  }

  void Reduce(const uint32_t& key, mr::ValueIterator<GroupPayload>& values,
              mr::ReduceContext<SkylineWindow>& ctx) override {
    (void)key;
    if (!values.HasNext()) {
      return;
    }
    SKYMR_TRACE_SPAN("gpmrs.merge", "group", static_cast<int64_t>(key),
                     "values", static_cast<int64_t>(values.remaining()));
    const size_t dim = context_->grid.dim();
    DominanceCounter dominance_counter;
    // Lines 2-8: merge per-partition skylines across mappers, one payload
    // at a time. Every mapper ships the same responsibility list for a
    // group, so remembering the first payload's copy is enough.
    const GroupPayload first = values.Next();
    std::vector<CellId> responsible_cells = first.responsible;
    CellWindowMap windows;
    MergeParts(first.parts, dim, &windows, &dominance_counter);
    while (values.HasNext()) {
      const GroupPayload payload = values.Next();
      MergeParts(payload.parts, dim, &windows, &dominance_counter);
    }
    // Lines 9-10: false-positive elimination within the group. The group
    // is independent (Definition 5), so every partition's full
    // anti-dominating region is present.
    const uint64_t partition_comparisons = CompareAllPartitions(
        context_->grid, &windows, &dominance_counter);
    ctx.counters().Add(mr::kCounterPartitionComparisons,
                       static_cast<int64_t>(partition_comparisons));
    ctx.counters().Add(mr::kCounterTupleComparisons,
                       static_cast<int64_t>(dominance_counter.count()));

    // Line 11 + Section 5.4.2: output only the partitions this group is
    // responsible for, eliminating duplicates across replicated cells.
    const std::unordered_set<CellId> responsible(responsible_cells.begin(),
                                                 responsible_cells.end());
    SkylineWindow out(dim);
    for (const auto& [cell, window] : windows) {
      if (responsible.count(cell) == 0) {
        continue;
      }
      for (size_t i = 0; i < window.size(); ++i) {
        out.AppendUnchecked(window.RowAt(i), window.IdAt(i));
      }
    }
    ctx.Emit(std::move(out));
  }

 private:
  std::shared_ptr<const SkylineJobContext> context_;
};

}  // namespace

StatusOr<SkylineJobRun> RunGpmrsJob(
    std::shared_ptr<const Dataset> data, const Grid& grid,
    const DynamicBitset& bits, GroupMergeStrategy merge,
    const mr::EngineOptions& engine, ThreadPool* pool,
    const std::optional<Box>& constraint, LocalAlgorithm local_algorithm) {
  if (data == nullptr) {
    return Status::InvalidArgument("GPMRS: dataset is null");
  }
  if (bits.size() != grid.num_cells()) {
    return Status::InvalidArgument("GPMRS: bitstring/grid size mismatch");
  }
  if (constraint.has_value()) {
    SKYMR_RETURN_IF_ERROR(constraint->Validate(data->dim()));
  }

  mr::DistributedCache cache;
  SKYMR_RETURN_IF_ERROR(cache.Put(kCacheKeyDataset, data));
  auto context = std::make_shared<SkylineJobContext>(grid, bits);
  context->merge = merge;
  context->num_reducers = engine.num_reducers;
  context->constraint = constraint;
  context->local_algorithm = local_algorithm;
  SKYMR_RETURN_IF_ERROR(cache.Put(
      kCacheKeySkylineContext,
      std::shared_ptr<const SkylineJobContext>(std::move(context))));

  std::vector<TupleId> ids(data->size());
  std::iota(ids.begin(), ids.end(), 0);

  mr::Job<TupleId, uint32_t, GroupPayload, SkylineWindow> job(
      "mr-gpmrs", [] { return std::make_unique<GpmrsMapper>(); },
      [] { return std::make_unique<GpmrsReducer>(); });
  // Reducer-group i is pinned to reducer i (group count never exceeds the
  // reducer count after merging).
  job.UseModuloPartitioner();

  auto result = job.Run(ids, engine, cache, pool);
  if (!result.ok()) {
    return result.status;
  }

  SkylineJobRun run;
  run.metrics = std::move(result.metrics);
  // Per-reducer group load (Section 5.4.1's balancing target). The
  // assignment is bitstring-deterministic, so recomputing it here matches
  // exactly what every mapper shipped.
  const std::vector<ReducerGroup> reducer_groups = AssignGroupsToReducers(
      grid, GenerateIndependentGroups(grid, bits), engine.num_reducers,
      merge);
  for (const ReducerGroup& group : reducer_groups) {
    run.metrics.histograms.Add("skymr.reducer_group_cells",
                               group.cells.size());
    run.metrics.histograms.Add("skymr.reducer_group_cost", group.cost);
  }
  run.skyline = SkylineWindow(data->dim());
  for (const SkylineWindow& window : result.outputs) {
    for (size_t i = 0; i < window.size(); ++i) {
      run.skyline.AppendUnchecked(window.RowAt(i), window.IdAt(i));
    }
  }
  DebugVerifySkyline("MR-GPMRS", *data, run.skyline, constraint);
  return run;
}

}  // namespace skymr::core
