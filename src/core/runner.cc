#include "src/core/runner.h"

#include <algorithm>
#include <memory>

#include "src/baselines/mr_angle.h"
#include "src/baselines/mr_bnl.h"
#include "src/baselines/mr_skymr.h"
#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/core/gpmrs.h"
#include "src/core/gpsrs.h"
#include "src/obs/trace.h"

namespace skymr {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMrGpsrs:
      return "mr-gpsrs";
    case Algorithm::kMrGpmrs:
      return "mr-gpmrs";
    case Algorithm::kMrBnl:
      return "mr-bnl";
    case Algorithm::kMrAngle:
      return "mr-angle";
    case Algorithm::kHybrid:
      return "hybrid";
    case Algorithm::kSkyMr:
      return "sky-mr";
  }
  return "unknown";
}

StatusOr<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "mr-gpsrs") {
    return Algorithm::kMrGpsrs;
  }
  if (name == "mr-gpmrs") {
    return Algorithm::kMrGpmrs;
  }
  if (name == "mr-bnl") {
    return Algorithm::kMrBnl;
  }
  if (name == "mr-angle") {
    return Algorithm::kMrAngle;
  }
  if (name == "hybrid") {
    return Algorithm::kHybrid;
  }
  if (name == "sky-mr" || name == "skymr") {
    return Algorithm::kSkyMr;
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

std::vector<TupleId> SkylineResult::SkylineIds() const {
  std::vector<TupleId> ids = skyline.ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

namespace {

/// Wraps a caller-owned dataset in a non-owning shared_ptr for the
/// distributed cache. The RunnerConfig contract requires the dataset to
/// outlive the call.
std::shared_ptr<const Dataset> Unowned(const Dataset& data) {
  return {&data, [](const Dataset*) {}};
}

/// Fills both makespan flavours from the per-job metrics.
void FillModeledTimes(const mr::ClusterModel& cluster,
                      SkylineResult* result) {
  result->modeled_seconds = cluster.PipelineMakespan(result->jobs);
  mr::ClusterModel no_overhead = cluster;
  no_overhead.job_startup_seconds = 0.0;
  no_overhead.task_startup_seconds = 0.0;
  result->modeled_compute_seconds =
      no_overhead.PipelineMakespan(result->jobs);
}

}  // namespace

StatusOr<SkylineResult> ComputeSkyline(const Dataset& data,
                                       const RunnerConfig& config) {
  Stopwatch total_clock;
  SKYMR_TRACE_SPAN("skyline.pipeline", "tuples",
                   static_cast<int64_t>(data.size()), "dim",
                   static_cast<int64_t>(data.dim()));
  SkylineResult result;
  if (config.constraint.has_value()) {
    SKYMR_RETURN_IF_ERROR(config.constraint->Validate(data.dim()));
  }
  const Bounds bounds = config.unit_bounds ? Bounds::UnitCube(data.dim())
                                           : data.ComputeBounds();
  const std::shared_ptr<const Dataset> shared = Unowned(data);
  // One pool drives every job of the pipeline; with config.pool the
  // caller amortizes thread startup across ComputeSkyline calls too.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool_ptr = config.pool;
  if (pool_ptr == nullptr) {
    const int threads = config.engine.num_threads > 0
                            ? config.engine.num_threads
                            : ThreadPool::DefaultThreads();
    owned_pool = std::make_unique<ThreadPool>(threads);
    pool_ptr = owned_pool.get();
  }
  ThreadPool& pool = *pool_ptr;

  // ---- Baselines: one job, no bitstring phase ----
  if (config.algorithm == Algorithm::kMrBnl ||
      config.algorithm == Algorithm::kMrAngle ||
      config.algorithm == Algorithm::kSkyMr) {
    auto run_or =
        config.algorithm == Algorithm::kMrBnl
            ? baselines::RunMrBnlJob(shared, bounds, config.engine, &pool,
                                     config.constraint)
        : config.algorithm == Algorithm::kMrAngle
            ? baselines::RunMrAngleJob(shared, bounds,
                                       config.angle_partitions,
                                       config.engine, &pool,
                                       config.constraint)
            : baselines::RunSkyMrJob(shared, bounds, config.skymr,
                                     config.engine, &pool,
                                     config.constraint);
    if (!run_or.ok()) {
      return run_or.status();
    }
    result.skyline = std::move(run_or->skyline);
    result.jobs.push_back(std::move(run_or->metrics));
    result.algorithm_used = config.algorithm;
    result.wall_seconds = total_clock.ElapsedSeconds();
    FillModeledTimes(config.cluster, &result);
    return result;
  }

  // ---- Grid algorithms: bitstring job first ----
  core::BitstringJobConfig bitstring_config;
  bitstring_config.bounds = bounds;
  bitstring_config.candidates =
      core::CandidatePpds(data.size(), data.dim(), config.ppd);
  if (bitstring_config.candidates.empty()) {
    return Status::InvalidArgument(
        "no feasible PPD candidate: 2^d exceeds the cell budget");
  }
  bitstring_config.ppd = config.ppd;
  bitstring_config.cardinality = data.size();
  bitstring_config.prune_mode = config.prune_mode;
  bitstring_config.constraint = config.constraint;

  auto bitstring_or =
      core::RunBitstringJob(shared, bitstring_config, config.engine, &pool);
  if (!bitstring_or.ok()) {
    return bitstring_or.status();
  }
  core::BitstringJobRun& bitstring = bitstring_or.value();
  result.jobs.push_back(std::move(bitstring.metrics));
  result.ppd = bitstring.result.ppd;
  result.nonempty_partitions = bitstring.result.nonempty;
  result.pruned_partitions = bitstring.result.pruned;
  SKYMR_LOG(DEBUG) << "bitstring job: selected PPD " << result.ppd << ", "
                   << result.nonempty_partitions << " non-empty cells, "
                   << result.pruned_partitions << " pruned";

  auto grid_or = core::Grid::Create(data.dim(), bitstring.result.ppd,
                                    bounds, config.ppd.max_cells);
  if (!grid_or.ok()) {
    return grid_or.status();
  }
  const core::Grid& grid = grid_or.value();

  // ---- Decide the skyline job ----
  Algorithm algorithm = config.algorithm;
  mr::EngineOptions engine = config.engine;
  if (algorithm == Algorithm::kHybrid) {
    result.hybrid_decision = core::DecideHybrid(
        config.hybrid, data, grid, bitstring.result, config.constraint);
    algorithm = result.hybrid_decision.use_multiple_reducers
                    ? Algorithm::kMrGpmrs
                    : Algorithm::kMrGpsrs;
    engine.num_reducers = result.hybrid_decision.num_reducers;
  }
  result.algorithm_used = algorithm;

  auto run_or =
      algorithm == Algorithm::kMrGpmrs
          ? core::RunGpmrsJob(shared, grid, bitstring.result.bits,
                              config.merge, engine, &pool,
                              config.constraint, config.local_algorithm)
          : core::RunGpsrsJob(shared, grid, bitstring.result.bits, engine,
                              &pool, config.constraint,
                              config.local_algorithm);
  if (!run_or.ok()) {
    return run_or.status();
  }
  result.skyline = std::move(run_or->skyline);
  result.jobs.push_back(std::move(run_or->metrics));
  result.wall_seconds = total_clock.ElapsedSeconds();
  FillModeledTimes(config.cluster, &result);
  SKYMR_LOG(DEBUG) << AlgorithmName(result.algorithm_used) << ": skyline "
                   << result.skyline.size() << " of " << data.size()
                   << " tuples in " << result.wall_seconds << "s wall, "
                   << result.modeled_seconds << "s modeled";
  return result;
}

}  // namespace skymr
