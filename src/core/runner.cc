#include "src/core/runner.h"

#include <algorithm>
#include <memory>

#include "src/serve/session.h"

namespace skymr {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMrGpsrs:
      return "mr-gpsrs";
    case Algorithm::kMrGpmrs:
      return "mr-gpmrs";
    case Algorithm::kMrBnl:
      return "mr-bnl";
    case Algorithm::kMrAngle:
      return "mr-angle";
    case Algorithm::kHybrid:
      return "hybrid";
    case Algorithm::kSkyMr:
      return "sky-mr";
  }
  return "unknown";
}

StatusOr<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "mr-gpsrs") {
    return Algorithm::kMrGpsrs;
  }
  if (name == "mr-gpmrs") {
    return Algorithm::kMrGpmrs;
  }
  if (name == "mr-bnl") {
    return Algorithm::kMrBnl;
  }
  if (name == "mr-angle") {
    return Algorithm::kMrAngle;
  }
  if (name == "hybrid") {
    return Algorithm::kHybrid;
  }
  if (name == "sky-mr" || name == "skymr") {
    return Algorithm::kSkyMr;
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

std::vector<TupleId> SkylineResult::SkylineIds() const {
  std::vector<TupleId> ids = skyline.ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status RunnerConfig::Validate() const {
  // The split halves own the checks (serve/session.cc), so the legacy
  // config and the session API can never drift apart on what counts as
  // valid: a RunnerConfig is valid iff its split is.
  const SplitConfig split = SplitRunnerConfig(*this);
  if (const Status valid = split.session.Validate(); !valid.ok()) {
    return valid;
  }
  return split.query.Validate();
}

StatusOr<SkylineResult> ComputeSkyline(const Dataset& data,
                                       const RunnerConfig& config) {
  // Thin shim over a single-query session (serve/session.h): Open
  // validates the dataset-scoped half and builds the pool, Submit
  // validates the per-query half and runs the same pipeline this
  // function always ran — including the query.start/finish logs and the
  // no-throw boundary.
  const SplitConfig split = SplitRunnerConfig(config);
  auto session_or = Session::Open(data, split.session);
  if (!session_or.ok()) {
    return session_or.status();
  }
  return (*session_or)->Submit(split.query);
}

}  // namespace skymr
