#include "src/core/runner.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>

#include "src/baselines/mr_angle.h"
#include "src/baselines/mr_bnl.h"
#include "src/baselines/mr_skymr.h"
#include "src/common/logging.h"
#include "src/common/stopwatch.h"
#include "src/core/checkpoint.h"
#include "src/core/gpmrs.h"
#include "src/core/gpsrs.h"
#include "src/mapreduce/chaos.h"
#include "src/obs/log.h"
#include "src/obs/trace.h"

namespace skymr {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kMrGpsrs:
      return "mr-gpsrs";
    case Algorithm::kMrGpmrs:
      return "mr-gpmrs";
    case Algorithm::kMrBnl:
      return "mr-bnl";
    case Algorithm::kMrAngle:
      return "mr-angle";
    case Algorithm::kHybrid:
      return "hybrid";
    case Algorithm::kSkyMr:
      return "sky-mr";
  }
  return "unknown";
}

StatusOr<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "mr-gpsrs") {
    return Algorithm::kMrGpsrs;
  }
  if (name == "mr-gpmrs") {
    return Algorithm::kMrGpmrs;
  }
  if (name == "mr-bnl") {
    return Algorithm::kMrBnl;
  }
  if (name == "mr-angle") {
    return Algorithm::kMrAngle;
  }
  if (name == "hybrid") {
    return Algorithm::kHybrid;
  }
  if (name == "sky-mr" || name == "skymr") {
    return Algorithm::kSkyMr;
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

std::vector<TupleId> SkylineResult::SkylineIds() const {
  std::vector<TupleId> ids = skyline.ids();
  std::sort(ids.begin(), ids.end());
  return ids;
}

Status RunnerConfig::Validate() const {
  SKYMR_RETURN_IF_ERROR(mr::ValidateEngineOptions(engine));
  if (ppd.explicit_ppd == 1) {
    return Status::InvalidArgument(
        "ppd: explicit_ppd must be 0 (auto-select) or >= 2");
  }
  if (ppd.max_candidate < 2) {
    return Status::InvalidArgument(
        "ppd: max_candidate must be >= 2 (the smallest grid)");
  }
  if (!(ppd.target_tpp > 0.0 && std::isfinite(ppd.target_tpp))) {
    return Status::InvalidArgument("ppd: target_tpp must be finite and > 0");
  }
  if (ppd.max_cells < 4) {
    return Status::InvalidArgument(
        "ppd: max_cells must admit at least the 2^d grid of a 2-d space");
  }
  if (algorithm == Algorithm::kMrAngle && angle_partitions < 1) {
    return Status::InvalidArgument("mr-angle: angle_partitions must be >= 1");
  }
  switch (local_algorithm) {
    case core::LocalAlgorithm::kBnl:
    case core::LocalAlgorithm::kSfs:
    case core::LocalAlgorithm::kBbs:
    case core::LocalAlgorithm::kAuto:
      break;
    default:
      // Configs can arrive from untrusted bytes (fuzz_config); reject
      // enum values outside the declared range before any job runs.
      return Status::InvalidArgument("local_algorithm out of range");
  }
  return Status::OK();
}

namespace {

/// Wraps a caller-owned dataset in a non-owning shared_ptr for the
/// distributed cache. The RunnerConfig contract requires the dataset to
/// outlive the call.
std::shared_ptr<const Dataset> Unowned(const Dataset& data) {
  return {&data, [](const Dataset*) {}};
}

/// Fills both makespan flavours from the per-job metrics.
void FillModeledTimes(const mr::ClusterModel& cluster,
                      SkylineResult* result) {
  result->modeled_seconds = cluster.PipelineMakespan(result->jobs);
  mr::ClusterModel no_overhead = cluster;
  no_overhead.job_startup_seconds = 0.0;
  no_overhead.task_startup_seconds = 0.0;
  result->modeled_compute_seconds =
      no_overhead.PipelineMakespan(result->jobs);
}

/// Fingerprint of everything that determines the bitstring phase's
/// output: dataset shape plus a content probe (first/middle/last tuples),
/// PPD policy, prune mode, bounds choice, and the constraint box. Keyed
/// lookups in the checkpoint store miss on any change, so resume can
/// never serve a result computed for different inputs.
uint64_t BitstringFingerprint(const Dataset& data,
                              const RunnerConfig& config) {
  uint64_t h = mr::ChaosMix64(0x736b796d72636b70ULL);
  const auto mix = [&h](uint64_t v) { h = mr::ChaosMix64(h ^ v); };
  const auto mix_double = [&mix](double v) {
    mix(std::bit_cast<uint64_t>(v));
  };
  mix(data.size());
  mix(data.dim());
  if (data.size() > 0) {
    for (const size_t probe :
         {size_t{0}, data.size() / 2, data.size() - 1}) {
      for (size_t d = 0; d < data.dim(); ++d) {
        mix_double(data.RowPtr(static_cast<TupleId>(probe))[d]);
      }
    }
  }
  mix(config.ppd.explicit_ppd);
  mix(static_cast<uint64_t>(config.ppd.strategy));
  mix_double(config.ppd.target_tpp);
  mix(config.ppd.max_candidate);
  mix(config.ppd.max_cells);
  mix(static_cast<uint64_t>(config.prune_mode));
  mix(config.unit_bounds ? 1 : 0);
  if (config.constraint.has_value()) {
    for (size_t d = 0; d < config.constraint->lo.size(); ++d) {
      mix_double(config.constraint->lo[d]);
      mix_double(config.constraint->hi[d]);
    }
  }
  return h;
}

StatusOr<SkylineResult> ComputeSkylineImpl(const Dataset& data,
                                           const RunnerConfig& config) {
  Stopwatch total_clock;
  SKYMR_TRACE_SPAN("skyline.pipeline", "tuples",
                   static_cast<int64_t>(data.size()), "dim",
                   static_cast<int64_t>(data.dim()));
  SkylineResult result;
  if (config.constraint.has_value()) {
    SKYMR_RETURN_IF_ERROR(config.constraint->Validate(data.dim()));
  }
  const Bounds bounds = config.unit_bounds ? Bounds::UnitCube(data.dim())
                                           : data.ComputeBounds();
  const std::shared_ptr<const Dataset> shared = Unowned(data);
  // One pool drives every job of the pipeline; with config.pool the
  // caller amortizes thread startup across ComputeSkyline calls too.
  std::unique_ptr<ThreadPool> owned_pool;
  ThreadPool* pool_ptr = config.pool;
  if (pool_ptr == nullptr) {
    const int threads = config.engine.num_threads > 0
                            ? config.engine.num_threads
                            : ThreadPool::DefaultThreads();
    owned_pool = std::make_unique<ThreadPool>(threads);
    pool_ptr = owned_pool.get();
  }
  ThreadPool& pool = *pool_ptr;

  // ---- Baselines: one job, no bitstring phase ----
  if (config.algorithm == Algorithm::kMrBnl ||
      config.algorithm == Algorithm::kMrAngle ||
      config.algorithm == Algorithm::kSkyMr) {
    auto run_or =
        config.algorithm == Algorithm::kMrBnl
            ? baselines::RunMrBnlJob(shared, bounds, config.engine, &pool,
                                     config.constraint)
        : config.algorithm == Algorithm::kMrAngle
            ? baselines::RunMrAngleJob(shared, bounds,
                                       config.angle_partitions,
                                       config.engine, &pool,
                                       config.constraint)
            : baselines::RunSkyMrJob(shared, bounds, config.skymr,
                                     config.engine, &pool,
                                     config.constraint);
    if (!run_or.ok()) {
      return run_or.status();
    }
    result.skyline = std::move(run_or->skyline);
    result.jobs.push_back(std::move(run_or->metrics));
    result.algorithm_used = config.algorithm;
    result.wall_seconds = total_clock.ElapsedSeconds();
    FillModeledTimes(config.cluster, &result);
    return result;
  }

  // ---- Grid algorithms: bitstring job first ----
  core::BitstringJobConfig bitstring_config;
  bitstring_config.bounds = bounds;
  bitstring_config.candidates =
      core::CandidatePpds(data.size(), data.dim(), config.ppd);
  if (bitstring_config.candidates.empty()) {
    return Status::InvalidArgument(
        "no feasible PPD candidate: 2^d exceeds the cell budget");
  }
  bitstring_config.ppd = config.ppd;
  bitstring_config.cardinality = data.size();
  bitstring_config.prune_mode = config.prune_mode;
  bitstring_config.constraint = config.constraint;

  core::BitstringBuildResult phase;
  const uint64_t fingerprint = config.checkpoint != nullptr
                                   ? BitstringFingerprint(data, config)
                                   : 0;
  if (config.checkpoint != nullptr &&
      config.checkpoint->LoadBitstring(fingerprint, &phase)) {
    // Resume: the whole first job is skipped; result.jobs holds only the
    // skyline job.
    result.resumed_from_checkpoint = true;
    SKYMR_TRACE_INSTANT("checkpoint.resume", "ppd",
                        static_cast<int64_t>(phase.ppd));
    SKYMR_LOG(DEBUG) << "bitstring phase resumed from checkpoint (ppd "
                     << phase.ppd << ")";
  } else {
    auto bitstring_or = core::RunBitstringJob(shared, bitstring_config,
                                              config.engine, &pool);
    if (!bitstring_or.ok()) {
      return bitstring_or.status();
    }
    result.jobs.push_back(std::move(bitstring_or->metrics));
    phase = std::move(bitstring_or->result);
    if (config.checkpoint != nullptr) {
      config.checkpoint->StoreBitstring(fingerprint, phase);
    }
  }
  result.ppd = phase.ppd;
  result.nonempty_partitions = phase.nonempty;
  result.pruned_partitions = phase.pruned;
  SKYMR_LOG(DEBUG) << "bitstring job: selected PPD " << result.ppd << ", "
                   << result.nonempty_partitions << " non-empty cells, "
                   << result.pruned_partitions << " pruned";

  auto grid_or = core::Grid::Create(data.dim(), phase.ppd,
                                    bounds, config.ppd.max_cells);
  if (!grid_or.ok()) {
    return grid_or.status();
  }
  const core::Grid& grid = grid_or.value();

  // ---- Decide the skyline job ----
  Algorithm algorithm = config.algorithm;
  mr::EngineOptions engine = config.engine;
  if (algorithm == Algorithm::kHybrid) {
    result.hybrid_decision = core::DecideHybrid(
        config.hybrid, data, grid, phase, config.constraint);
    algorithm = result.hybrid_decision.use_multiple_reducers
                    ? Algorithm::kMrGpmrs
                    : Algorithm::kMrGpsrs;
    engine.num_reducers = result.hybrid_decision.num_reducers;
  }
  result.algorithm_used = algorithm;

  auto run_or =
      algorithm == Algorithm::kMrGpmrs
          ? core::RunGpmrsJob(shared, grid, phase.bits,
                              config.merge, engine, &pool,
                              config.constraint, config.local_algorithm)
          : core::RunGpsrsJob(shared, grid, phase.bits, engine,
                              &pool, config.constraint,
                              config.local_algorithm);
  if (!run_or.ok() && algorithm == Algorithm::kMrGpmrs &&
      config.degrade_to_single_reducer &&
      run_or.status().code() == StatusCode::kInternal) {
    // Degradation ladder: GPMRS's reducer-group merge keeps failing
    // (every retry exhausted), so fall back to the GPSRS single-reducer
    // merge over the same grid and bitstring — slower, but the skyline is
    // identical by Section 4/5 equivalence.
    SKYMR_LOG(DEBUG) << "mr-gpmrs failed permanently ("
                     << run_or.status().message()
                     << "); degrading to mr-gpsrs";
    SKYMR_TRACE_INSTANT("degrade.gpsrs");
    result.degraded = true;
    result.algorithm_used = Algorithm::kMrGpsrs;
    run_or = core::RunGpsrsJob(shared, grid, phase.bits, engine, &pool,
                               config.constraint, config.local_algorithm);
  }
  if (!run_or.ok()) {
    return run_or.status();
  }
  result.skyline = std::move(run_or->skyline);
  result.jobs.push_back(std::move(run_or->metrics));
  if (result.degraded) {
    result.jobs.back().counters.Add("mr.degraded_to_gpsrs", 1);
  }
  result.wall_seconds = total_clock.ElapsedSeconds();
  FillModeledTimes(config.cluster, &result);
  SKYMR_LOG(DEBUG) << AlgorithmName(result.algorithm_used) << ": skyline "
                   << result.skyline.size() << " of " << data.size()
                   << " tuples in " << result.wall_seconds << "s wall, "
                   << result.modeled_seconds << "s modeled";
  return result;
}

}  // namespace

StatusOr<SkylineResult> ComputeSkyline(const Dataset& data,
                                       const RunnerConfig& config) {
  if (const Status valid = config.Validate(); !valid.ok()) {
    return valid;
  }
  obs::Logger* log = config.engine.log;
  if (log != nullptr) {
    log->LogQuery(obs::LogSeverity::kInfo, config.engine.query,
                  "query.start",
                  std::string(AlgorithmName(config.algorithm)) + ", " +
                      std::to_string(data.size()) + " tuples, dim " +
                      std::to_string(data.dim()));
  }
  // API hardening: nothing escapes this boundary as an exception. Task
  // failures inside the engine already surface as Status; this catch is
  // the backstop for anything unexpected (user functors, OOM, bugs).
  StatusOr<SkylineResult> result = [&]() -> StatusOr<SkylineResult> {
    try {
      return ComputeSkylineImpl(data, config);
    } catch (const std::exception& e) {
      return Status::Internal(
          std::string("skyline pipeline: unexpected exception: ") + e.what());
    }
  }();
  if (log != nullptr) {
    if (result.ok()) {
      log->LogQuery(
          obs::LogSeverity::kInfo, config.engine.query, "query.finish",
          "skyline " + std::to_string(result->skyline.size()) + " of " +
              std::to_string(data.size()) + " tuples, " +
              std::to_string(
                  static_cast<int64_t>(result->wall_seconds * 1e6)) +
              " us" + (result->degraded ? ", degraded" : ""));
    } else {
      // Permanent task failures already NotifyFatal'ed inside the
      // scheduler; this records the query-level outcome with the same id
      // so the post-mortem dump names the query that died.
      log->LogQuery(obs::LogSeverity::kError, config.engine.query,
                    "query.error", result.status().message());
    }
  }
  return result;
}

}  // namespace skymr
