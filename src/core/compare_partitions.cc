#include "src/core/compare_partitions.h"

#include <vector>

#include "src/obs/trace.h"

namespace skymr::core {

uint64_t CompareAllPartitions(const Grid& grid, CellWindowMap* windows,
                              DominanceCounter* tuple_counter) {
  SKYMR_TRACE_SPAN("core.compare_partitions", "partitions",
                   static_cast<int64_t>(windows->size()));
  const size_t d = grid.dim();
  // Decode every partition's coordinates once.
  std::vector<CellId> cells;
  cells.reserve(windows->size());
  for (const auto& [cell, window] : *windows) {
    cells.push_back(cell);
  }
  std::vector<uint32_t> coords(cells.size() * d);
  for (size_t i = 0; i < cells.size(); ++i) {
    grid.CoordsOf(cells[i], &coords[i * d]);
  }

  uint64_t partition_comparisons = 0;
  for (size_t i = 0; i < cells.size(); ++i) {
    SkylineWindow& target = (*windows)[cells[i]];
    for (size_t j = 0; j < cells.size(); ++j) {
      if (i == j) {
        continue;
      }
      // Algorithm 5, line 2: only partitions in p.ADR can hold dominators.
      if (!grid.InAdrOfCoords(&coords[i * d], &coords[j * d])) {
        continue;
      }
      ++partition_comparisons;
      target.RemoveDominatedBy((*windows)[cells[j]], tuple_counter);
    }
  }
  return partition_comparisons;
}

}  // namespace skymr::core
