// Choosing the number of partitions per dimension (Section 3.3).
//
// The mappers build bitstrings for a series of candidate PPDs
// j = 2 .. n_m with n_m = floor(c^(1/d)), and the reducer picks the PPD
// whose observed occupancy best matches the desired tuples-per-partition.
//
// Two decision rules are provided:
//  * kPaperLiteral — the rule as printed in the paper: minimize
//    |c/rho_j - c/j^d|, where rho_j is the number of non-empty partitions
//    of candidate j. Ties (within epsilon) break toward the larger j, so
//    on well-spread data this selects the finest grid whose cells are
//    still (almost) all occupied.
//  * kTargetTpp — minimize |c/rho_j - TPP*| for an explicit desired
//    tuples-per-partition TPP*, the quantity Section 3.3 says the ideal
//    rule would use if mapper/reducer capacities were known.

#ifndef SKYMR_CORE_PPD_H_
#define SKYMR_CORE_PPD_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/grid.h"

namespace skymr::core {

enum class PpdStrategy {
  kPaperLiteral,
  kTargetTpp,
};

const char* PpdStrategyName(PpdStrategy strategy);

/// Configuration for grid-resolution selection.
struct PpdOptions {
  /// When > 0, skip selection entirely and use this PPD.
  uint32_t explicit_ppd = 0;
  PpdStrategy strategy = PpdStrategy::kPaperLiteral;
  /// Desired tuples per partition for kTargetTpp.
  double target_tpp = 512.0;
  /// Largest candidate PPD considered (bounds mapper-side bitstring work).
  uint32_t max_candidate = 64;
  /// Budget for n^d per candidate grid.
  uint64_t max_cells = Grid::kDefaultMaxCells;
};

/// Occupancy of one candidate: (PPD j, non-empty partition count rho_j).
using PpdOccupancy = std::pair<uint32_t, uint64_t>;

/// The candidate series 2 .. n_m, n_m = floor(c^(1/d)), additionally capped
/// by options.max_candidate and by the n^d <= max_cells budget. Always
/// returns at least one candidate (PPD 2) when 2^d fits the budget.
std::vector<uint32_t> CandidatePpds(uint64_t cardinality, size_t dim,
                                    const PpdOptions& options);

/// Applies the selection rule to the measured occupancies. Precondition:
/// `occupancies` is non-empty and every rho is >= 1.
uint32_t SelectPpd(const PpdOptions& options, uint64_t cardinality,
                   size_t dim, const std::vector<PpdOccupancy>& occupancies);

}  // namespace skymr::core

#endif  // SKYMR_CORE_PPD_H_
