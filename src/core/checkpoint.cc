#include "src/core/checkpoint.h"

#include <fstream>
#include <vector>

#include "src/common/serde.h"

namespace skymr::core {
namespace {

/// File magic: "SKYCKP" + schema version. Bump the digit on any layout
/// change so stale files fail loudly instead of deserializing garbage.
constexpr char kMagic[8] = {'S', 'K', 'Y', 'C', 'K', 'P', 'v', '1'};

}  // namespace

bool PipelineCheckpoint::LoadBitstring(uint64_t fingerprint,
                                       BitstringBuildResult* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    return false;
  }
  *out = it->second;
  return true;
}

void PipelineCheckpoint::StoreBitstring(uint64_t fingerprint,
                                        const BitstringBuildResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[fingerprint] = result;
}

std::vector<uint8_t> PipelineCheckpoint::SaveBytes() const {
  ByteSink sink;
  std::lock_guard<std::mutex> lock(mutex_);
  sink.Append(kMagic, sizeof(kMagic));
  sink.AppendRaw<uint64_t>(entries_.size());
  for (const auto& [fingerprint, result] : entries_) {
    sink.AppendRaw<uint64_t>(fingerprint);
    Serde<BitstringBuildResult>::Write(result, &sink);
  }
  return sink.TakeBuffer();
}

Status PipelineCheckpoint::LoadBytes(const uint8_t* data, size_t size,
                                     const std::string& origin) {
  ByteSource source(data, size);
  try {
    char magic[sizeof(kMagic)];
    source.Read(magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      return Status::IoError("checkpoint: bad magic in " + origin);
    }
    const auto count = source.ReadRaw<uint64_t>();
    std::map<uint64_t, BitstringBuildResult> loaded;
    for (uint64_t i = 0; i < count; ++i) {
      const auto fingerprint = source.ReadRaw<uint64_t>();
      loaded[fingerprint] = Serde<BitstringBuildResult>::Read(&source);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [fingerprint, result] : loaded) {
      entries_[fingerprint] = std::move(result);
    }
  } catch (const SerdeUnderflow& underflow) {
    return Status::IoError("checkpoint: truncated " + origin + ": " +
                           underflow.what());
  }
  return Status::OK();
}

Status PipelineCheckpoint::SaveFile(const std::string& path) const {
  const std::vector<uint8_t> bytes = SaveBytes();
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::IoError("checkpoint: cannot open for write: " + path);
  }
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  if (!file) {
    return Status::IoError("checkpoint: write failed: " + path);
  }
  return Status::OK();
}

Status PipelineCheckpoint::LoadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Status::OK();  // No checkpoint yet: a first run starts cold.
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                             std::istreambuf_iterator<char>());
  return LoadBytes(bytes.data(), bytes.size(), "file " + path);
}

void PipelineCheckpoint::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

size_t PipelineCheckpoint::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace skymr::core
