// Grid partitioning of the data space (Section 3.1 of the paper).
//
// An n x ... x n grid (n = partitions per dimension, PPD) divides a
// d-dimensional bounding box into n^d cells. Cells are identified by a
// column-major linear index, as in the paper's Figure 2:
//   index = sum_k coord[k] * n^k,   coord[k] in [0, n).
//
// Cells are half-open boxes [min, max) except along the upper domain
// boundary, where tuples equal to the boundary are clamped into the last
// cell. With that convention, partition dominance (Definition 2) and the
// dominating / anti-dominating regions (Definitions 3 and 4) reduce to
// exact integer tests on cell coordinates:
//
//   p_i dominates p_j          <=>  coord_j[k] >= coord_i[k] + 1 for all k
//   p_j in p_i.ADR (j != i)    <=>  coord_j[k] <= coord_i[k]     for all k
//
// which reproduces Figure 2 (p4.DR = {p8}, p4.ADR = {p0, p1, p3}) and
// avoids floating-point boundary ambiguity entirely.

#ifndef SKYMR_CORE_GRID_H_
#define SKYMR_CORE_GRID_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/relation/dataset.h"

namespace skymr::core {

/// Linear index of a grid cell (partition).
using CellId = uint64_t;

/// An immutable n^d grid over a bounding box.
class Grid {
 public:
  /// Creates a grid; fails when ppd < 1, dim < 1, the cell count would
  /// exceed `max_cells`, or the bounds are malformed.
  static StatusOr<Grid> Create(size_t dim, uint32_t ppd, Bounds bounds,
                               uint64_t max_cells = kDefaultMaxCells);

  /// Default budget for n^d (2^24 cells = 2 MiB of bitstring).
  static constexpr uint64_t kDefaultMaxCells = uint64_t{1} << 24;

  size_t dim() const { return dim_; }
  uint32_t ppd() const { return ppd_; }
  uint64_t num_cells() const { return num_cells_; }
  const Bounds& bounds() const { return bounds_; }

  /// The cell containing `row` (values clamped into the bounding box).
  CellId CellOf(const double* row) const;

  /// Decodes a cell id into per-dimension coordinates (column-major).
  void CoordsOf(CellId cell, uint32_t* coords) const;

  /// Decoded coordinates as a vector (convenience).
  std::vector<uint32_t> Coords(CellId cell) const;

  /// Encodes coordinates into a cell id.
  CellId IndexOf(const uint32_t* coords) const;

  /// True iff cell `a` dominates cell `b` (Definition 2):
  /// a.max dominates b.min.
  bool CellDominates(CellId a, CellId b) const;

  /// True iff cell `q` lies in cell `p`'s anti-dominating region
  /// (Definition 4): q may contain tuples dominating p.max.
  bool InAdrOf(CellId p, CellId q) const;

  /// Same ADR test on pre-decoded coordinates (hot path of
  /// ComparePartitions).
  bool InAdrOfCoords(const uint32_t* p, const uint32_t* q) const;

  /// |p.ADR| over the full grid: prod_k (coord[k] + 1) - 1.
  /// This is Equation 6's rho_dom, the paper's per-partition cost estimate.
  uint64_t AdrSize(CellId cell) const;

  /// The cell's minimum (best) corner, p.min.
  std::vector<double> MinCorner(CellId cell) const;

  /// The cell's maximum (worst) corner, p.max.
  std::vector<double> MaxCorner(CellId cell) const;

  /// Calls fn(CellId) for every cell in `cell`'s dominating region
  /// (Definition 3). Used by the literal Algorithm 2 pruning.
  template <typename Fn>
  void ForEachDominatedCell(CellId cell, Fn&& fn) const {
    std::vector<uint32_t> base(dim_);
    CoordsOf(cell, base.data());
    for (size_t k = 0; k < dim_; ++k) {
      if (base[k] + 1 >= ppd_) {
        return;  // DR is empty: no room to move up in dimension k.
      }
    }
    std::vector<uint32_t> cur(dim_);
    for (size_t k = 0; k < dim_; ++k) {
      cur[k] = base[k] + 1;
    }
    while (true) {
      fn(IndexOf(cur.data()));
      // Odometer increment over coords in [base[k]+1, ppd).
      size_t k = 0;
      while (k < dim_) {
        if (cur[k] + 1 < ppd_) {
          ++cur[k];
          break;
        }
        cur[k] = base[k] + 1;
        ++k;
      }
      if (k == dim_) {
        return;
      }
    }
  }

 private:
  Grid(size_t dim, uint32_t ppd, Bounds bounds, uint64_t num_cells);

  size_t dim_;
  uint32_t ppd_;
  uint64_t num_cells_;
  Bounds bounds_;
  std::vector<double> inv_width_;  // ppd / (hi - lo) per dimension.
  std::vector<double> width_;      // (hi - lo) / ppd per dimension.
};

}  // namespace skymr::core

#endif  // SKYMR_CORE_GRID_H_
