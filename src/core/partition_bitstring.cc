#include "src/core/partition_bitstring.h"

#include <vector>

#include "src/common/logging.h"

namespace skymr::core {

DynamicBitset BuildLocalBitstring(const Grid& grid, const Dataset& data,
                                  TupleId begin, TupleId end) {
  SKYMR_DCHECK(begin <= end) << "split [" << begin << ", " << end << ")";
  SKYMR_DCHECK(end <= data.size())
      << "split end " << end << " overruns dataset size " << data.size();
  DynamicBitset bits(grid.num_cells());
  for (TupleId id = begin; id < end; ++id) {
    bits.Set(grid.CellOf(data.RowPtr(id)));
  }
  return bits;
}

uint64_t PruneDominated(const Grid& grid, DynamicBitset* bits,
                        PruneMode mode) {
  // Equations 1-2: the bitstring always has exactly n^d bits, one per
  // grid cell. Everything downstream (group generation, mapper pruning)
  // indexes it by cell id, so a size mismatch is memory corruption.
  SKYMR_CHECK(bits->size() == grid.num_cells())
      << "bitstring has " << bits->size() << " bits for a grid of "
      << grid.num_cells() << " cells";
  switch (mode) {
    case PruneMode::kLiteral:
      return PruneDominatedLiteral(grid, bits);
    case PruneMode::kPrefix:
      return PruneDominatedPrefix(grid, bits);
  }
  return 0;
}

uint64_t PruneDominatedLiteral(const Grid& grid, DynamicBitset* bits) {
  SKYMR_DCHECK(bits->size() == grid.num_cells())
      << "bitstring has " << bits->size() << " bits for "
      << grid.num_cells() << " cells";
  // Algorithm 2, lines 4-7: for ascending i with BS[i] = 1, clear p_i.DR.
  // Scanning the mutated bitstring is sound: if p_i was cleared by an
  // earlier p_k (p_k dominates p_i), then p_k also dominates everything in
  // p_i.DR by transitivity, so skipping p_i loses nothing.
  uint64_t pruned = 0;
  for (size_t i = bits->FindFirst(); i < bits->size();
       i = bits->FindNext(i)) {
    grid.ForEachDominatedCell(i, [bits, &pruned](CellId j) {
      if (bits->Test(j)) {
        bits->Reset(j);
        ++pruned;
      }
    });
  }
  return pruned;
}

uint64_t PruneDominatedPrefix(const Grid& grid, DynamicBitset* bits) {
  SKYMR_DCHECK(bits->size() == grid.num_cells())
      << "bitstring has " << bits->size() << " bits for "
      << grid.num_cells() << " cells";
  const uint64_t n = grid.ppd();
  const size_t d = grid.dim();
  const uint64_t cells = grid.num_cells();
  if (n < 2 || bits->None()) {
    return 0;  // A 1-per-dimension grid has empty dominating regions.
  }

  // closure[c] = 1 iff some originally-set cell has coords <= coords(c)
  // componentwise. Computed with one prefix-OR sweep per dimension.
  DynamicBitset closure = *bits;
  uint64_t stride = 1;
  for (size_t k = 0; k < d; ++k) {
    for (uint64_t c = stride; c < cells; ++c) {
      // coord_k(c) = (c / stride) % n; skip coordinate 0.
      if ((c / stride) % n == 0) {
        continue;
      }
      if (closure.Test(c - stride)) {
        closure.Set(c);
      }
    }
    stride *= n;
  }

  // Cell c is dominated iff closure holds at c - (1,...,1), i.e. at
  // c - sum_k stride_k, valid only when every coordinate of c is >= 1.
  uint64_t diag = 0;
  stride = 1;
  for (size_t k = 0; k < d; ++k) {
    diag += stride;
    stride *= n;
  }
  uint64_t pruned = 0;
  for (size_t c = bits->FindFirst(); c < bits->size();
       c = bits->FindNext(c)) {
    // Check all coordinates >= 1.
    bool interior = true;
    uint64_t rest = c;
    for (size_t k = 0; k < d; ++k) {
      if (rest % n == 0) {
        interior = false;
        break;
      }
      rest /= n;
    }
    if (interior && closure.Test(c - diag)) {
      bits->Reset(c);
      ++pruned;
    }
  }
  return pruned;
}

}  // namespace skymr::core
