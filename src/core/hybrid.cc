#include "src/core/hybrid.h"

#include <algorithm>

#include "src/core/independent_groups.h"
#include "src/local/skyline_window.h"

namespace skymr::core {

double EstimateSkylineFraction(const Dataset& data, size_t sample_size,
                               const std::optional<Box>& constraint) {
  if (data.empty() || sample_size == 0) {
    return 0.0;
  }
  const size_t stride = std::max<size_t>(1, data.size() / sample_size);
  SkylineWindow window(data.dim());
  size_t sampled = 0;
  for (size_t i = 0; i < data.size(); i += stride) {
    const double* row = data.RowPtr(static_cast<TupleId>(i));
    if (constraint.has_value() && !constraint->Contains(row, data.dim())) {
      continue;
    }
    window.Insert(row, static_cast<TupleId>(i), nullptr);
    ++sampled;
  }
  return sampled > 0
             ? static_cast<double>(window.size()) /
                   static_cast<double>(sampled)
             : 0.0;
}

HybridDecision DecideHybrid(const HybridPolicy& policy, const Dataset& data,
                            const Grid& grid,
                            const BitstringBuildResult& result,
                            const std::optional<Box>& constraint) {
  HybridDecision decision;
  decision.sampled_skyline_fraction =
      EstimateSkylineFraction(data, policy.sample_size, constraint);
  decision.num_groups =
      GenerateIndependentGroups(grid, result.bits).size();
  if (decision.sampled_skyline_fraction >
          policy.skyline_fraction_threshold &&
      decision.num_groups > 1) {
    decision.use_multiple_reducers = true;
    decision.num_reducers = static_cast<int>(std::min<uint64_t>(
        static_cast<uint64_t>(std::max(1, policy.preferred_reducers)),
        decision.num_groups));
  } else {
    decision.use_multiple_reducers = false;
    decision.num_reducers = 1;
  }
  return decision;
}

}  // namespace skymr::core
