// MR-GPSRS: Grid Partitioning based Single-Reducer Skyline computation
// (Section 4 of the paper, Algorithms 3-6, Figure 4).
//
// Mappers compute per-partition local skylines for unpruned partitions and
// eliminate cross-partition false positives; a single reducer merges the
// local skylines per partition with InsertTuple and runs ComparePartitions
// once more to obtain the global skyline.

#ifndef SKYMR_CORE_GPSRS_H_
#define SKYMR_CORE_GPSRS_H_

#include <memory>

#include "src/core/skyline_job_common.h"

namespace skymr::core {

/// Runs the MR-GPSRS skyline job over `data` using the grid and Equation 2
/// bitstring produced by the bitstring job. `engine.num_reducers` is
/// forced to 1 (the algorithm is single-reducer by construction). When
/// `constraint` is set, the skyline is computed over the tuples inside the
/// box only (the bitstring must have been built under the same box).
StatusOr<SkylineJobRun> RunGpsrsJob(
    std::shared_ptr<const Dataset> data, const Grid& grid,
    const DynamicBitset& bits, const mr::EngineOptions& engine,
    ThreadPool* pool = nullptr,
    const std::optional<Box>& constraint = std::nullopt,
    LocalAlgorithm local_algorithm = LocalAlgorithm::kBnl);

}  // namespace skymr::core

#endif  // SKYMR_CORE_GPSRS_H_
