#include "src/core/independent_groups.h"

#include <algorithm>
#include <map>
#include <queue>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/common/logging.h"

namespace skymr::core {

std::vector<IndependentGroup> GenerateIndependentGroups(
    const Grid& grid, const DynamicBitset& bits) {
  // Cache the decoded coordinates of every set cell once; ADR membership
  // tests then cost O(d) per (seed, cell) pair.
  const size_t d = grid.dim();
  std::vector<CellId> set_cells;
  bits.ForEachSetBit([&set_cells](size_t i) { set_cells.push_back(i); });
  std::vector<uint32_t> coords(set_cells.size() * d);
  for (size_t i = 0; i < set_cells.size(); ++i) {
    grid.CoordsOf(set_cells[i], &coords[i * d]);
  }

  std::vector<IndependentGroup> groups;
  DynamicBitset working = bits;
  while (!working.None()) {
    // Algorithm 7, line 3: the remaining non-empty partition with the
    // largest index seeds the next group.
    const CellId seed = working.FindLast();
    std::vector<uint32_t> seed_coords(d);
    grid.CoordsOf(seed, seed_coords.data());

    IndependentGroup group;
    group.seed = seed;
    group.cost = grid.AdrSize(seed);
    // Line 4: ig = {p_m} union p_m.ADR, with ADR membership taken against
    // the *original* bitstring so partitions can repeat across groups.
    for (size_t i = 0; i < set_cells.size(); ++i) {
      const CellId cell = set_cells[i];
      if (cell == seed ||
          grid.InAdrOfCoords(seed_coords.data(), &coords[i * d])) {
        group.cells.push_back(cell);
      }
    }
    // set_cells is ascending, so group.cells is already sorted.
    // Lines 5-6: clear the used partitions from the working copy only.
    for (const CellId cell : group.cells) {
      working.Reset(cell);
    }
    groups.push_back(std::move(group));
  }
  if (DchecksEnabled()) {
    // Definition 5 bookkeeping: the groups must cover exactly the
    // non-empty cells — every member is a set bit (no phantom cells) and
    // every set bit is in some group (no partition's skyline is lost).
    DynamicBitset covered(bits.size());
    for (const IndependentGroup& group : groups) {
      for (const CellId cell : group.cells) {
        SKYMR_DCHECK(bits.Test(cell))
            << "group contains empty cell " << cell;
        covered.Set(cell);
      }
    }
    SKYMR_DCHECK(covered == bits)
        << "independent groups do not cover all non-empty cells";
  }
  return groups;
}

const char* GroupMergeStrategyName(GroupMergeStrategy strategy) {
  switch (strategy) {
    case GroupMergeStrategy::kRoundRobin:
      return "round-robin";
    case GroupMergeStrategy::kComputationCost:
      return "computation-cost";
    case GroupMergeStrategy::kCommunicationCost:
      return "communication-cost";
    case GroupMergeStrategy::kBalanced:
      return "balanced";
  }
  return "unknown";
}

namespace {

/// Builds one ReducerGroup from the member group indexes in `members`.
ReducerGroup BuildReducerGroup(
    const std::vector<IndependentGroup>& groups,
    std::vector<uint32_t> members,
    const std::unordered_map<CellId, uint32_t>& owner_of_cell) {
  ReducerGroup out;
  out.member_groups = std::move(members);
  std::sort(out.member_groups.begin(), out.member_groups.end());
  for (const uint32_t g : out.member_groups) {
    out.cells.insert(out.cells.end(), groups[g].cells.begin(),
                     groups[g].cells.end());
    out.cost += groups[g].cost;
  }
  std::sort(out.cells.begin(), out.cells.end());
  out.cells.erase(std::unique(out.cells.begin(), out.cells.end()),
                  out.cells.end());
  const std::unordered_set<uint32_t> member_set(out.member_groups.begin(),
                                                out.member_groups.end());
  for (const CellId cell : out.cells) {
    const auto it = owner_of_cell.find(cell);
    SKYMR_DCHECK(it != owner_of_cell.end())
        << "cell " << cell << " has no owning reducer group";
    if (member_set.count(it->second) > 0) {
      out.responsible.push_back(cell);
    }
  }
  return out;
}

/// Longest-processing-time-first packing of group costs into `bins`.
std::vector<std::vector<uint32_t>> PackByComputationCost(
    const std::vector<IndependentGroup>& groups, int bins) {
  std::vector<uint32_t> order(groups.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&groups](uint32_t a, uint32_t b) {
    if (groups[a].cost != groups[b].cost) {
      return groups[a].cost > groups[b].cost;
    }
    return a < b;
  });
  // Min-heap of (load, bin).
  using Slot = std::pair<uint64_t, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> heap;
  for (int i = 0; i < bins; ++i) {
    heap.push({0, i});
  }
  std::vector<std::vector<uint32_t>> packed(static_cast<size_t>(bins));
  for (const uint32_t g : order) {
    auto [load, bin] = heap.top();
    heap.pop();
    packed[static_cast<size_t>(bin)].push_back(g);
    heap.push({load + groups[g].cost, bin});
  }
  return packed;
}

/// Greedy communication-cost merging: repeatedly fold the smallest group
/// into the partner sharing the most cells, until at most `bins` remain.
std::vector<std::vector<uint32_t>> PackByCommunicationCost(
    const std::vector<IndependentGroup>& groups, int bins) {
  struct Cluster {
    std::vector<uint32_t> members;
    std::vector<CellId> cells;  // Sorted unique union.
    bool alive = true;
  };
  std::vector<Cluster> clusters(groups.size());
  for (uint32_t i = 0; i < groups.size(); ++i) {
    clusters[i].members = {i};
    clusters[i].cells = groups[i].cells;
  }
  auto overlap = [](const std::vector<CellId>& a,
                    const std::vector<CellId>& b) {
    size_t i = 0;
    size_t j = 0;
    size_t count = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (b[j] < a[i]) {
        ++j;
      } else {
        ++count;
        ++i;
        ++j;
      }
    }
    return count;
  };

  size_t alive = clusters.size();
  while (alive > static_cast<size_t>(bins)) {
    // Smallest alive cluster (fewest cells; ties -> lowest index).
    size_t smallest = clusters.size();
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (!clusters[i].alive) {
        continue;
      }
      if (smallest == clusters.size() ||
          clusters[i].cells.size() < clusters[smallest].cells.size()) {
        smallest = i;
      }
    }
    // Partner with maximal shared cells (ties -> lowest index).
    size_t best = clusters.size();
    size_t best_overlap = 0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      if (i == smallest || !clusters[i].alive) {
        continue;
      }
      const size_t shared =
          overlap(clusters[smallest].cells, clusters[i].cells);
      if (best == clusters.size() || shared > best_overlap) {
        best = i;
        best_overlap = shared;
      }
    }
    SKYMR_DCHECK(best < clusters.size())
        << "no merge target among " << clusters.size() << " clusters";
    Cluster& dst = clusters[best];
    Cluster& src = clusters[smallest];
    dst.members.insert(dst.members.end(), src.members.begin(),
                       src.members.end());
    std::vector<CellId> merged;
    merged.reserve(dst.cells.size() + src.cells.size());
    std::merge(dst.cells.begin(), dst.cells.end(), src.cells.begin(),
               src.cells.end(), std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    dst.cells = std::move(merged);
    src.alive = false;
    --alive;
  }

  std::vector<std::vector<uint32_t>> packed;
  for (const Cluster& cluster : clusters) {
    if (cluster.alive) {
      packed.push_back(cluster.members);
    }
  }
  return packed;
}

/// Greedy bi-criteria packing: place groups (largest cost first) on the
/// bin minimizing normalized-load-after-placement plus the normalized
/// number of cells the bin would newly receive. Both terms are scaled by
/// their totals so neither cost dominates by unit choice.
std::vector<std::vector<uint32_t>> PackByBalancedCost(
    const std::vector<IndependentGroup>& groups, int bins) {
  std::vector<uint32_t> order(groups.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&groups](uint32_t a, uint32_t b) {
    if (groups[a].cost != groups[b].cost) {
      return groups[a].cost > groups[b].cost;
    }
    return a < b;
  });
  double total_cost = 0.0;
  double total_cells = 0.0;
  for (const auto& group : groups) {
    total_cost += static_cast<double>(group.cost);
    total_cells += static_cast<double>(group.cells.size());
  }
  total_cost = std::max(total_cost, 1.0);
  total_cells = std::max(total_cells, 1.0);

  struct Bin {
    uint64_t load = 0;
    std::unordered_set<CellId> cells;
    std::vector<uint32_t> members;
  };
  std::vector<Bin> packed(static_cast<size_t>(bins));
  for (const uint32_t g : order) {
    size_t best = 0;
    double best_score = 0.0;
    for (size_t b = 0; b < packed.size(); ++b) {
      size_t new_cells = 0;
      for (const CellId cell : groups[g].cells) {
        new_cells += packed[b].cells.count(cell) == 0 ? 1 : 0;
      }
      const double score =
          static_cast<double>(packed[b].load + groups[g].cost) /
              total_cost +
          static_cast<double>(new_cells) / total_cells;
      if (b == 0 || score < best_score) {
        best = b;
        best_score = score;
      }
    }
    packed[best].load += groups[g].cost;
    packed[best].cells.insert(groups[g].cells.begin(),
                              groups[g].cells.end());
    packed[best].members.push_back(g);
  }
  std::vector<std::vector<uint32_t>> out;
  out.reserve(packed.size());
  for (Bin& bin : packed) {
    out.push_back(std::move(bin.members));
  }
  return out;
}

}  // namespace

std::vector<ReducerGroup> AssignGroupsToReducers(
    const Grid& grid, const std::vector<IndependentGroup>& groups,
    int num_reducers, GroupMergeStrategy strategy) {
  (void)grid;
  if (groups.empty()) {
    return {};
  }
  const int r = std::max(1, num_reducers);

  // Section 5.4.2: the responsible group for a replicated partition is the
  // one whose seed has minimal |p_m.ADR| (ties -> lowest group index), so
  // the busiest reducers are not burdened further.
  std::unordered_map<CellId, uint32_t> owner_of_cell;
  for (uint32_t g = 0; g < groups.size(); ++g) {
    for (const CellId cell : groups[g].cells) {
      const auto it = owner_of_cell.find(cell);
      if (it == owner_of_cell.end()) {
        owner_of_cell.emplace(cell, g);
      } else {
        const uint32_t cur = it->second;
        if (groups[g].cost < groups[cur].cost ||
            (groups[g].cost == groups[cur].cost && g < cur)) {
          it->second = g;
        }
      }
    }
  }

  std::vector<std::vector<uint32_t>> packed;
  if (groups.size() <= static_cast<size_t>(r)) {
    // No merging needed: one group per reducer group.
    packed.resize(groups.size());
    for (uint32_t g = 0; g < groups.size(); ++g) {
      packed[g] = {g};
    }
  } else {
    switch (strategy) {
      case GroupMergeStrategy::kRoundRobin: {
        packed.resize(static_cast<size_t>(r));
        for (uint32_t g = 0; g < groups.size(); ++g) {
          packed[g % static_cast<uint32_t>(r)].push_back(g);
        }
        break;
      }
      case GroupMergeStrategy::kComputationCost:
        packed = PackByComputationCost(groups, r);
        break;
      case GroupMergeStrategy::kCommunicationCost:
        packed = PackByCommunicationCost(groups, r);
        break;
      case GroupMergeStrategy::kBalanced:
        packed = PackByBalancedCost(groups, r);
        break;
    }
  }

  std::vector<ReducerGroup> out;
  out.reserve(packed.size());
  for (auto& members : packed) {
    if (members.empty()) {
      continue;  // More reducers than groups: skip empty bins.
    }
    out.push_back(BuildReducerGroup(groups, std::move(members),
                                    owner_of_cell));
  }
  if (DchecksEnabled()) {
    // Section 5.4.2: duplicate elimination is correct only if every
    // non-empty cell is the responsibility of exactly one reducer group.
    std::unordered_map<CellId, int> responsible_count;
    for (const ReducerGroup& group : out) {
      for (const CellId cell : group.responsible) {
        ++responsible_count[cell];
      }
    }
    SKYMR_DCHECK(responsible_count.size() == owner_of_cell.size())
        << "some cells have no responsible reducer group";
    for (const auto& [cell, count] : responsible_count) {
      SKYMR_DCHECK(count == 1)
          << "cell " << cell << " is output by " << count << " groups";
    }
  }
  return out;
}

std::string ExplainGroupIndependenceViolation(
    const Grid& grid, const DynamicBitset& bits,
    const std::vector<IndependentGroup>& groups) {
  for (size_t g = 0; g < groups.size(); ++g) {
    const std::unordered_set<CellId> members(groups[g].cells.begin(),
                                             groups[g].cells.end());
    for (const CellId cell : groups[g].cells) {
      // Definition 5: every non-empty partition in cell.ADR must be a
      // member of the group.
      for (size_t other = bits.FindFirst(); other < bits.size();
           other = bits.FindNext(other)) {
        if (grid.InAdrOf(cell, other) && members.count(other) == 0) {
          std::ostringstream os;
          os << "group " << g << " (seed " << groups[g].seed
             << ") contains cell " << cell << " but not ADR member "
             << other;
          return os.str();
        }
      }
    }
  }
  return "";
}

}  // namespace skymr::core
