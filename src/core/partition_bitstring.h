// The bitstring representation of the grid partitioning (Section 3.2).
//
// Bit i is 1 iff partition p_i is non-empty (Equation 1). After merging the
// per-mapper bitstrings with bitwise OR, dominated partitions are cleared
// (Equation 2): bit i becomes 0 when some non-empty p_j dominates p_i.
//
// Two pruning implementations are provided:
//  * PruneDominatedLiteral: Algorithm 2 verbatim — walk set bits in
//    ascending index order and clear each one's dominating region. Correct
//    because partition dominance is transitive, but enumerates DR cells
//    repeatedly; O(#set-bits * |DR|) in the worst case.
//  * PruneDominatedPrefix: an equivalent O(d * n^d) sum-over-subsets pass —
//    compute the downward closure (is there a non-empty cell with
//    coordinates <= mine?) with d prefix-OR sweeps, then clear cell c when
//    the closure holds at c - (1,1,...,1).
// Tests assert both produce identical bitstrings.

#ifndef SKYMR_CORE_PARTITION_BITSTRING_H_
#define SKYMR_CORE_PARTITION_BITSTRING_H_

#include <cstdint>

#include "src/common/dynamic_bitset.h"
#include "src/core/grid.h"
#include "src/relation/dataset.h"
#include "src/relation/tuple.h"

namespace skymr::core {

/// How Equation 2's dominated-partition pruning is computed.
enum class PruneMode {
  kLiteral,  // Algorithm 2 as written in the paper.
  kPrefix,   // Equivalent linear-time dynamic program.
};

/// Builds the Equation 1 bitstring for tuples [begin, end) of `data`
/// (Algorithm 1, one mapper's view).
DynamicBitset BuildLocalBitstring(const Grid& grid, const Dataset& data,
                                  TupleId begin, TupleId end);

/// Clears bits of partitions dominated by another set partition
/// (Equation 1 -> Equation 2). Returns the number of bits cleared.
uint64_t PruneDominated(const Grid& grid, DynamicBitset* bits,
                        PruneMode mode = PruneMode::kPrefix);

/// Algorithm 2's pruning loop, verbatim.
uint64_t PruneDominatedLiteral(const Grid& grid, DynamicBitset* bits);

/// The equivalent prefix-OR dynamic program.
uint64_t PruneDominatedPrefix(const Grid& grid, DynamicBitset* bits);

}  // namespace skymr::core

#endif  // SKYMR_CORE_PARTITION_BITSTRING_H_
