// MR-GPMRS: Grid Partitioning based Multiple-Reducer Skyline computation
// (Section 5 of the paper, Algorithms 8-9, Figure 5).
//
// Mappers run the same local phase as MR-GPSRS, then generate independent
// partition groups from the bitstring (Algorithm 7) — identically on every
// mapper — and ship each group's local skylines to its reducer. Every
// reducer independently finalizes its groups' share of the global skyline
// (Lemma 2), so no post-merge step exists. Section 5.4's group merging and
// duplicate-elimination-by-responsible-group are applied.

#ifndef SKYMR_CORE_GPMRS_H_
#define SKYMR_CORE_GPMRS_H_

#include <memory>

#include "src/core/skyline_job_common.h"

namespace skymr::core {

/// Runs the MR-GPMRS skyline job with `engine.num_reducers` reducers.
/// When `constraint` is set, the skyline is computed over the tuples
/// inside the box only (the bitstring must have been built under the
/// same box).
StatusOr<SkylineJobRun> RunGpmrsJob(
    std::shared_ptr<const Dataset> data, const Grid& grid,
    const DynamicBitset& bits, GroupMergeStrategy merge,
    const mr::EngineOptions& engine, ThreadPool* pool = nullptr,
    const std::optional<Box>& constraint = std::nullopt,
    LocalAlgorithm local_algorithm = LocalAlgorithm::kBnl);

}  // namespace skymr::core

#endif  // SKYMR_CORE_GPMRS_H_
