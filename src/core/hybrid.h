// Hybrid algorithm selection (realizing the paper's Section 8 future-work
// direction): "a hybrid method can be developed by combining MR-GPSRS and
// MR-GPMRS. Such a method should be able to switch between the two
// algorithms automatically, and intelligently decide how many reducers to
// use."
//
// Section 7's conclusion is the decision rule: MR-GPMRS wins when a large
// fraction of the tuples are in the skyline; MR-GPSRS wins when the
// skyline fraction is small. The fraction is estimated on the driver from
// a small deterministic sample (stride sampling + single-node BNL), which
// costs microseconds and needs no extra MapReduce round. The bitstring-job
// output additionally caps the reducer count at the number of independent
// partition groups, since extra reducers would idle.
//
// (The bitstring alone cannot estimate the skyline fraction: it records
// which partitions are occupied but not how many of a partition's tuples
// survive local dominance, which is exactly what separates independent
// from anti-correlated data.)

#ifndef SKYMR_CORE_HYBRID_H_
#define SKYMR_CORE_HYBRID_H_

#include <cstdint>

#include "src/core/bitstring_job.h"

namespace skymr::core {

/// Tunables for the hybrid switch.
struct HybridPolicy {
  /// Use MR-GPMRS when the sampled skyline fraction exceeds this value.
  double skyline_fraction_threshold = 0.15;
  /// Sample size for the driver-side skyline-fraction estimate.
  size_t sample_size = 2048;
  /// Reducers to request when MR-GPMRS is chosen (before capping by the
  /// group count).
  int preferred_reducers = 13;
};

/// The hybrid decision derived from the sample and bitstring-job result.
struct HybridDecision {
  bool use_multiple_reducers = false;
  int num_reducers = 1;
  /// Skyline fraction of the driver-side sample.
  double sampled_skyline_fraction = 0.0;
  /// Independent partition groups available (the reducer-count cap).
  uint64_t num_groups = 0;
};

/// Estimates the skyline fraction of `data` from a deterministic stride
/// sample of at most `sample_size` tuples. With a constraint box, only
/// in-box tuples are sampled (the constrained skyline's population).
double EstimateSkylineFraction(
    const Dataset& data, size_t sample_size,
    const std::optional<Box>& constraint = std::nullopt);

/// Decides between MR-GPSRS and MR-GPMRS. `grid` must be the grid of
/// `result.bits`; `data` is the job's input dataset.
HybridDecision DecideHybrid(
    const HybridPolicy& policy, const Dataset& data, const Grid& grid,
    const BitstringBuildResult& result,
    const std::optional<Box>& constraint = std::nullopt);

}  // namespace skymr::core

#endif  // SKYMR_CORE_HYBRID_H_
