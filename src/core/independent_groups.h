// Independent partition groups (Section 5 of the paper).
//
// Definition 5: a set of partitions P_I is independent iff every member's
// anti-dominating region is contained in P_I. Lemma 2 then guarantees the
// local skyline of P_I's tuples is a subset of the global skyline, which is
// what lets MR-GPMRS use multiple reducers with no final merge.
//
// Algorithm 7 generates the groups: repeatedly take the non-empty partition
// with the largest remaining index as a seed p_m (a maximum partition,
// Definition 6), form {p_m} union (p_m.ADR restricted to non-empty
// partitions), and clear the used bits from a *working copy* of the
// bitstring. ADR membership always consults the original bitstring, so a
// partition can be replicated across groups (Figure 6: p1 and p3 appear in
// two groups each).
//
// Section 5.4.1: when there are more groups than reducers, groups are
// merged. Both strategies from the paper are implemented — merging by
// estimated computation cost |p_m.ADR| (the paper's preferred option) and
// by communication cost (merge groups sharing the most partitions) — plus
// plain round-robin distribution for the unmerged baseline behavior.
//
// Section 5.4.2: each replicated partition gets exactly one *responsible*
// group (the group whose seed has minimal |p_m.ADR|); only the responsible
// group's reducer outputs that partition's skyline, eliminating duplicates.

#ifndef SKYMR_CORE_INDEPENDENT_GROUPS_H_
#define SKYMR_CORE_INDEPENDENT_GROUPS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/dynamic_bitset.h"
#include "src/common/status.h"
#include "src/core/grid.h"

namespace skymr::core {

/// One independent partition group {p_m} union p_m.ADR (non-empty cells).
struct IndependentGroup {
  /// The maximum partition p_m that seeded the group.
  CellId seed = 0;
  /// All member cells, sorted ascending; includes the seed.
  std::vector<CellId> cells;
  /// The paper's computation-cost estimate for the group: |p_m.ADR| over
  /// the full grid (Equation 6's coordinate product minus one).
  uint64_t cost = 0;
};

/// Runs Algorithm 7 on the (post-pruning) bitstring.
std::vector<IndependentGroup> GenerateIndependentGroups(
    const Grid& grid, const DynamicBitset& bits);

/// Group-to-reducer assignment strategies (Section 5.4.1).
enum class GroupMergeStrategy {
  /// No merging: group i goes to reducer i % r (Algorithm 8 line 18).
  kRoundRobin,
  /// Merge so reducer loads (sum of |p_m.ADR|) balance; the paper's choice.
  kComputationCost,
  /// Merge groups sharing the most partitions to cut replication traffic.
  kCommunicationCost,
  /// Balance both costs (the paper's Section 8 future-work direction):
  /// greedily place each group on the reducer minimizing the sum of its
  /// normalized load increase and the normalized count of newly shipped
  /// cells.
  kBalanced,
};

const char* GroupMergeStrategyName(GroupMergeStrategy strategy);

/// The unit of work sent to one reducer: the union of one or more
/// independent groups, with duplicate-output responsibility resolved.
struct ReducerGroup {
  /// Distinct member cells, sorted ascending.
  std::vector<CellId> cells;
  /// Cells whose final skyline this reducer outputs. Every non-empty
  /// unpruned cell appears in exactly one ReducerGroup's responsible set.
  std::vector<CellId> responsible;
  /// Indexes into the original group list (diagnostics).
  std::vector<uint32_t> member_groups;
  /// Total replicated-cell traffic this grouping causes for the reducer.
  uint64_t cost = 0;
};

/// Assigns groups to at most `num_reducers` reducer groups using
/// `strategy`, and computes responsibility per Section 5.4.2. The result
/// is deterministic: mappers and reducers can both derive it from the
/// bitstring alone, which Algorithm 8 (line 11) requires for consistency.
std::vector<ReducerGroup> AssignGroupsToReducers(
    const Grid& grid, const std::vector<IndependentGroup>& groups,
    int num_reducers, GroupMergeStrategy strategy);

/// Validates Definition 5 for every group: each member's non-empty ADR is
/// inside the group. Returns an empty string or a diagnostic. Test helper.
std::string ExplainGroupIndependenceViolation(
    const Grid& grid, const DynamicBitset& bits,
    const std::vector<IndependentGroup>& groups);

}  // namespace skymr::core

#endif  // SKYMR_CORE_INDEPENDENT_GROUPS_H_
