#include "src/core/bitstring_job.h"

#include <map>
#include <numeric>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace skymr::core {
namespace {

/// Algorithm 1: builds one local bitstring per candidate PPD over the
/// mapper's split.
class BitstringMapper
    : public mr::Mapper<TupleId, uint32_t, DynamicBitset> {
 public:
  void Setup(mr::MapContext<uint32_t, DynamicBitset>& ctx) override {
    data_ = ctx.cache().Get<Dataset>(kCacheKeyDataset);
    config_ = ctx.cache().Get<BitstringJobConfig>(kCacheKeyBitstringConfig);
    if (data_ == nullptr || config_ == nullptr) {
      throw mr::TaskFailure("bitstring mapper: cache entries missing");
    }
    for (const uint32_t ppd : config_->candidates) {
      auto grid_or = Grid::Create(data_->dim(), ppd, config_->bounds,
                                  config_->ppd.max_cells);
      if (!grid_or.ok()) {
        throw mr::TaskFailure("bitstring mapper: " +
                              grid_or.status().ToString());
      }
      locals_.emplace_back(ppd,
                           DynamicBitset(grid_or.value().num_cells()));
      grids_.push_back(std::move(grid_or).value());
    }
  }

  void Map(const TupleId& id,
           mr::MapContext<uint32_t, DynamicBitset>& ctx) override {
    (void)ctx;
    const double* row = data_->RowPtr(id);
    if (config_->constraint.has_value() &&
        !config_->constraint->Contains(row, data_->dim())) {
      return;  // Constrained skyline: the tuple is out of scope.
    }
    for (size_t i = 0; i < grids_.size(); ++i) {
      locals_[i].second.Set(grids_[i].CellOf(row));
    }
  }

  void Cleanup(mr::MapContext<uint32_t, DynamicBitset>& ctx) override {
    for (auto& [ppd, bits] : locals_) {
      ctx.Emit(ppd, bits);
    }
  }

 private:
  std::shared_ptr<const Dataset> data_;
  std::shared_ptr<const BitstringJobConfig> config_;
  std::vector<Grid> grids_;
  std::vector<std::pair<uint32_t, DynamicBitset>> locals_;
};

/// Algorithm 2 + Section 3.3: ORs the local bitstrings per candidate,
/// selects the PPD from the occupancies, and prunes dominated partitions
/// of the winner.
class BitstringReducer
    : public mr::Reducer<uint32_t, DynamicBitset, BitstringBuildResult> {
 public:
  void Setup(mr::ReduceContext<BitstringBuildResult>& ctx) override {
    config_ = ctx.cache().Get<BitstringJobConfig>(kCacheKeyBitstringConfig);
    if (config_ == nullptr) {
      throw mr::TaskFailure("bitstring reducer: config missing from cache");
    }
  }

  void Reduce(const uint32_t& ppd, mr::ValueIterator<DynamicBitset>& values,
              mr::ReduceContext<BitstringBuildResult>& ctx) override {
    (void)ctx;
    if (!values.HasNext()) {
      return;
    }
    DynamicBitset merged = values.Next();
    while (values.HasNext()) {
      merged |= values.Next();
    }
    merged_[ppd] = std::move(merged);
  }

  void Cleanup(mr::ReduceContext<BitstringBuildResult>& ctx) override {
    if (merged_.empty()) {
      throw mr::TaskFailure("bitstring reducer: no candidate bitstrings");
    }
    BitstringBuildResult result;
    for (const auto& [ppd, bits] : merged_) {
      result.occupancies.emplace_back(ppd, bits.Count());
    }
    {
      SKYMR_TRACE_SPAN("ppd.select", "candidates",
                       static_cast<int64_t>(result.occupancies.size()));
      result.ppd = SelectPpd(config_->ppd, config_->cardinality,
                             config_->bounds.lo.size(), result.occupancies);
    }
    auto it = merged_.find(result.ppd);
    if (it == merged_.end()) {
      throw mr::TaskFailure("bitstring reducer: selected PPD not merged");
    }
    result.bits = std::move(it->second);
    result.nonempty = result.bits.Count();
    auto grid_or = Grid::Create(config_->bounds.lo.size(), result.ppd,
                                config_->bounds, config_->ppd.max_cells);
    if (!grid_or.ok()) {
      throw mr::TaskFailure("bitstring reducer: " +
                            grid_or.status().ToString());
    }
    {
      SKYMR_TRACE_SPAN("bitstring.prune", "ppd",
                       static_cast<int64_t>(result.ppd), "nonempty",
                       static_cast<int64_t>(result.nonempty));
      result.pruned =
          PruneDominated(grid_or.value(), &result.bits, config_->prune_mode);
    }
    // Equations 1-2: the broadcast bitstring BS_R has exactly n^d bits,
    // and pruning only ever clears bits, never flips them on.
    SKYMR_CHECK(result.bits.size() == grid_or.value().num_cells())
        << "bitstring has " << result.bits.size() << " bits for "
        << grid_or.value().num_cells() << " cells";
    SKYMR_DCHECK(result.bits.Count() + result.pruned == result.nonempty)
        << "pruning accounting mismatch: " << result.bits.Count() << " set + "
        << result.pruned << " pruned != " << result.nonempty << " nonempty";
    ctx.counters().Add(mr::kCounterPartitionsPruned,
                       static_cast<int64_t>(result.pruned));
    ctx.Emit(std::move(result));
  }

 private:
  std::shared_ptr<const BitstringJobConfig> config_;
  std::map<uint32_t, DynamicBitset> merged_;
};

}  // namespace

StatusOr<BitstringJobRun> RunBitstringJob(
    std::shared_ptr<const Dataset> data, const BitstringJobConfig& config,
    const mr::EngineOptions& engine, ThreadPool* pool) {
  if (data == nullptr) {
    return Status::InvalidArgument("bitstring job: dataset is null");
  }
  if (config.candidates.empty()) {
    return Status::InvalidArgument("bitstring job: no candidate PPDs");
  }
  if (config.bounds.lo.size() != data->dim()) {
    return Status::InvalidArgument("bitstring job: bounds/dim mismatch");
  }

  mr::DistributedCache cache;
  SKYMR_RETURN_IF_ERROR(cache.Put(kCacheKeyDataset, data));
  SKYMR_RETURN_IF_ERROR(cache.PutValue(kCacheKeyBitstringConfig, config));

  std::vector<TupleId> ids(data->size());
  std::iota(ids.begin(), ids.end(), 0);

  mr::Job<TupleId, uint32_t, DynamicBitset, BitstringBuildResult> job(
      "bitstring-generation",
      [] { return std::make_unique<BitstringMapper>(); },
      [] { return std::make_unique<BitstringReducer>(); });

  mr::EngineOptions options = engine;
  options.num_reducers = 1;  // Figure 3: a single reducer merges BS_R.
  auto result = job.Run(ids, options, cache, pool);
  if (!result.ok()) {
    return result.status;
  }
  if (result.outputs.size() != 1) {
    return Status::Internal("bitstring job produced " +
                            std::to_string(result.outputs.size()) +
                            " outputs, expected 1");
  }
  BitstringJobRun run;
  run.result = std::move(result.outputs[0]);
  run.metrics = std::move(result.metrics);
  return run;
}

}  // namespace skymr::core
