// ComparePartitions (Algorithm 5): false-positive elimination across
// partition-local skylines. For every partition p, tuples of S_p dominated
// by a tuple of S_pi with p_i in p.ADR are removed. Used by the map step
// (Algorithm 3 lines 9-10, Algorithm 8 lines 9-10) and the reduce step
// (Algorithm 6 lines 7-8, Algorithm 9 lines 9-10).

#ifndef SKYMR_CORE_COMPARE_PARTITIONS_H_
#define SKYMR_CORE_COMPARE_PARTITIONS_H_

#include <cstdint>

#include "src/core/grid.h"
#include "src/core/messages.h"

namespace skymr::core {

/// Applies Algorithm 5 to every window in `windows` against all others.
/// Returns the number of partition-wise comparisons performed, i.e. how
/// many times Algorithm 5's line 3 executed — the quantity the paper's
/// cost model (Section 6) estimates and Section 7.5 measures.
/// `tuple_counter` (optional) additionally accrues tuple dominance tests.
uint64_t CompareAllPartitions(const Grid& grid, CellWindowMap* windows,
                              DominanceCounter* tuple_counter);

}  // namespace skymr::core

#endif  // SKYMR_CORE_COMPARE_PARTITIONS_H_
