#include "src/baselines/sky_quadtree.h"

#include <algorithm>
#include <cassert>

#include "src/local/bnl.h"
#include "src/relation/dominance.h"

namespace skymr::baselines {

size_t SkyQuadtree::ChildCode(const double* row,
                              const std::vector<double>& lo,
                              const std::vector<double>& hi, size_t dim) {
  size_t code = 0;
  for (size_t k = 0; k < dim; ++k) {
    const double mid = lo[k] + (hi[k] - lo[k]) / 2.0;
    if (row[k] >= mid) {
      code |= size_t{1} << k;
    }
  }
  return code;
}

SkyQuadtree SkyQuadtree::Build(const Dataset& data, const Bounds& bounds,
                               const Options& options,
                               const Box* constraint) {
  SkyQuadtree tree;
  tree.dim_ = data.dim();
  const size_t dim = tree.dim_;

  // Deterministic stride sample (restricted to the constraint box).
  std::vector<TupleId> sample;
  if (!data.empty() && options.sample_size > 0) {
    const size_t stride =
        std::max<size_t>(1, data.size() / options.sample_size);
    for (size_t i = 0; i < data.size(); i += stride) {
      const auto id = static_cast<TupleId>(i);
      if (constraint != nullptr &&
          !constraint->Contains(data.RowPtr(id), dim)) {
        continue;
      }
      sample.push_back(id);
    }
  }
  tree.sample_count_ = sample.size();

  // Recursive split: nodes hold the sample ids routed to them.
  struct Pending {
    int32_t node;
    std::vector<TupleId> ids;
    int depth;
  };
  Node root;
  root.lo = bounds.lo;
  root.hi = bounds.hi;
  tree.nodes_.push_back(root);
  std::vector<Pending> stack;
  stack.push_back({0, sample, 0});
  const size_t fanout = size_t{1} << dim;

  while (!stack.empty()) {
    Pending task = std::move(stack.back());
    stack.pop_back();
    Node& node = tree.nodes_[static_cast<size_t>(task.node)];
    const bool split = task.ids.size() > options.leaf_capacity &&
                       task.depth < options.max_depth &&
                       dim <= 20;  // Fanout guard.
    if (!split) {
      Leaf leaf;
      leaf.lo = node.lo;
      leaf.hi = node.hi;
      node.leaf_index = static_cast<int32_t>(tree.leaves_.size());
      tree.leaves_.push_back(std::move(leaf));
      continue;
    }
    // Route sample points to children.
    std::vector<std::vector<TupleId>> child_ids(fanout);
    for (const TupleId id : task.ids) {
      child_ids[ChildCode(data.RowPtr(id), node.lo, node.hi, dim)]
          .push_back(id);
    }
    const auto first_child = static_cast<int32_t>(tree.nodes_.size());
    tree.nodes_[static_cast<size_t>(task.node)].first_child = first_child;
    // Create children (the reference to `node` may dangle after the
    // push_backs below, so copy the box first).
    const std::vector<double> lo = tree.nodes_[static_cast<size_t>(task.node)].lo;
    const std::vector<double> hi = tree.nodes_[static_cast<size_t>(task.node)].hi;
    for (size_t code = 0; code < fanout; ++code) {
      Node child;
      child.lo.resize(dim);
      child.hi.resize(dim);
      for (size_t k = 0; k < dim; ++k) {
        const double mid = lo[k] + (hi[k] - lo[k]) / 2.0;
        if ((code >> k) & 1u) {
          child.lo[k] = mid;
          child.hi[k] = hi[k];
        } else {
          child.lo[k] = lo[k];
          child.hi[k] = mid;
        }
      }
      tree.nodes_.push_back(std::move(child));
    }
    for (size_t code = 0; code < fanout; ++code) {
      stack.push_back({first_child + static_cast<int32_t>(code),
                       std::move(child_ids[code]), task.depth + 1});
    }
  }

  // Mark pruned leaves using the sample skyline: a leaf whose best corner
  // is dominated by a (real) sample tuple holds only dominated tuples.
  if (tree.sample_count_ > 0) {
    const SkylineWindow sample_skyline = BnlSkyline({data, sample});
    for (Leaf& leaf : tree.leaves_) {
      for (size_t s = 0; s < sample_skyline.size(); ++s) {
        if (Dominates(sample_skyline.RowAt(s), leaf.lo.data(), dim)) {
          leaf.pruned = true;
          ++tree.num_pruned_;
          break;
        }
      }
    }
  }
  return tree;
}

uint32_t SkyQuadtree::LeafOf(const double* row) const {
  size_t node = 0;
  while (nodes_[node].first_child >= 0) {
    const Node& n = nodes_[node];
    node = static_cast<size_t>(n.first_child) + ChildCode(row, n.lo, n.hi, dim_);
  }
  assert(nodes_[node].leaf_index >= 0);
  return static_cast<uint32_t>(nodes_[node].leaf_index);
}

bool SkyQuadtree::CanDominate(uint32_t a, uint32_t b) const {
  if (a == b) {
    return false;
  }
  return DominatesOrEqual(leaves_[a].lo.data(), leaves_[b].hi.data(), dim_);
}

}  // namespace skymr::baselines
