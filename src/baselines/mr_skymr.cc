#include "src/baselines/mr_skymr.h"

#include <numeric>
#include <vector>

namespace skymr::baselines {
namespace {

using core::CellWindowMap;
using core::kCacheKeyDataset;
using core::LocalSkylineSet;
using core::PartitionSkyline;

inline constexpr const char* kCacheKeySkyQuadtree = "skymr.sky_quadtree";
inline constexpr const char* kCacheKeySkyMrConstraint =
    "skymr.skymr_constraint";

/// Removes cross-leaf false positives: for each leaf window, drop tuples
/// dominated by windows of leaves whose region can dominate it. Returns
/// the number of leaf-pair comparisons.
uint64_t CompareLeaves(const SkyQuadtree& tree, CellWindowMap* windows,
                       DominanceCounter* counter) {
  std::vector<uint32_t> leaves;
  leaves.reserve(windows->size());
  for (const auto& [leaf, window] : *windows) {
    leaves.push_back(static_cast<uint32_t>(leaf));
  }
  uint64_t comparisons = 0;
  for (const uint32_t target : leaves) {
    SkylineWindow& window = (*windows)[target];
    for (const uint32_t other : leaves) {
      if (!tree.CanDominate(other, target)) {
        continue;
      }
      ++comparisons;
      window.RemoveDominatedBy((*windows)[other], counter);
    }
  }
  return comparisons;
}

/// Map: BNL window per unpruned quadtree leaf, then cross-leaf filter.
class SkyMrMapper : public mr::Mapper<TupleId, uint32_t, LocalSkylineSet> {
 public:
  void Setup(mr::MapContext<uint32_t, LocalSkylineSet>& ctx) override {
    data_ = ctx.cache().Get<Dataset>(kCacheKeyDataset);
    tree_ = ctx.cache().Get<SkyQuadtree>(kCacheKeySkyQuadtree);
    constraint_ = ctx.cache().Get<Box>(kCacheKeySkyMrConstraint);
    if (data_ == nullptr || tree_ == nullptr) {
      throw mr::TaskFailure("SKY-MR mapper: cache entries missing");
    }
  }

  void Map(const TupleId& id,
           mr::MapContext<uint32_t, LocalSkylineSet>& ctx) override {
    const double* row = data_->RowPtr(id);
    if (constraint_ != nullptr &&
        !constraint_->Contains(row, data_->dim())) {
      return;
    }
    const uint32_t leaf = tree_->LeafOf(row);
    if (tree_->IsPruned(leaf)) {
      ctx.counters().Add(mr::kCounterTuplesPruned, 1);
      return;  // The sky-filter: the whole region is dominated.
    }
    auto [it, inserted] =
        windows_.try_emplace(leaf, SkylineWindow(data_->dim()));
    it->second.Insert(row, id, &dominance_counter_);
  }

  void Cleanup(mr::MapContext<uint32_t, LocalSkylineSet>& ctx) override {
    const uint64_t comparisons =
        CompareLeaves(*tree_, &windows_, &dominance_counter_);
    ctx.counters().Add(mr::kCounterPartitionComparisons,
                       static_cast<int64_t>(comparisons));
    ctx.counters().Add(mr::kCounterTupleComparisons,
                       static_cast<int64_t>(dominance_counter_.count()));
    LocalSkylineSet set;
    set.parts.reserve(windows_.size());
    for (auto& [leaf, window] : windows_) {
      set.parts.push_back(PartitionSkyline{leaf, std::move(window)});
    }
    ctx.Emit(0, set);
  }

 private:
  std::shared_ptr<const Dataset> data_;
  std::shared_ptr<const SkyQuadtree> tree_;
  std::shared_ptr<const Box> constraint_;
  CellWindowMap windows_;
  DominanceCounter dominance_counter_;
};

/// Reduce (single): merge leaf windows across mappers, cross-leaf filter.
class SkyMrReducer
    : public mr::Reducer<uint32_t, LocalSkylineSet, SkylineWindow> {
 public:
  void Setup(mr::ReduceContext<SkylineWindow>& ctx) override {
    data_ = ctx.cache().Get<Dataset>(kCacheKeyDataset);
    tree_ = ctx.cache().Get<SkyQuadtree>(kCacheKeySkyQuadtree);
    if (data_ == nullptr || tree_ == nullptr) {
      throw mr::TaskFailure("SKY-MR reducer: cache entries missing");
    }
  }

  void Reduce(const uint32_t& key,
              mr::ValueIterator<LocalSkylineSet>& values,
              mr::ReduceContext<SkylineWindow>& ctx) override {
    (void)key;
    DominanceCounter dominance_counter;
    CellWindowMap windows;
    while (values.HasNext()) {
      const LocalSkylineSet set = values.Next();
      core::MergeParts(set.parts, data_->dim(), &windows,
                       &dominance_counter);
    }
    const uint64_t comparisons =
        CompareLeaves(*tree_, &windows, &dominance_counter);
    ctx.counters().Add(mr::kCounterPartitionComparisons,
                       static_cast<int64_t>(comparisons));
    ctx.counters().Add(mr::kCounterTupleComparisons,
                       static_cast<int64_t>(dominance_counter.count()));
    ctx.Emit(core::UnionWindows(windows, data_->dim()));
  }

 private:
  std::shared_ptr<const Dataset> data_;
  std::shared_ptr<const SkyQuadtree> tree_;
};

}  // namespace

StatusOr<core::SkylineJobRun> RunSkyMrJob(
    std::shared_ptr<const Dataset> data, const Bounds& bounds,
    const SkyQuadtree::Options& options, const mr::EngineOptions& engine,
    ThreadPool* pool, const std::optional<Box>& constraint) {
  if (data == nullptr) {
    return Status::InvalidArgument("SKY-MR: dataset is null");
  }
  if (bounds.lo.size() != data->dim()) {
    return Status::InvalidArgument("SKY-MR: bounds/dim mismatch");
  }
  if (constraint.has_value()) {
    SKYMR_RETURN_IF_ERROR(constraint->Validate(data->dim()));
  }

  // Pre-processing (driver-side, as in the original): sample, build the
  // sky-quadtree, mark dominated regions.
  auto tree = std::make_shared<const SkyQuadtree>(SkyQuadtree::Build(
      *data, bounds, options,
      constraint.has_value() ? &*constraint : nullptr));

  mr::DistributedCache cache;
  SKYMR_RETURN_IF_ERROR(cache.Put(kCacheKeyDataset, data));
  SKYMR_RETURN_IF_ERROR(cache.Put(kCacheKeySkyQuadtree, tree));
  if (constraint.has_value()) {
    SKYMR_RETURN_IF_ERROR(
        cache.PutValue(kCacheKeySkyMrConstraint, *constraint));
  }

  std::vector<TupleId> ids(data->size());
  std::iota(ids.begin(), ids.end(), 0);

  mr::Job<TupleId, uint32_t, LocalSkylineSet, SkylineWindow> job(
      "sky-mr", [] { return std::make_unique<SkyMrMapper>(); },
      [] { return std::make_unique<SkyMrReducer>(); });

  mr::EngineOptions run_options = engine;
  run_options.num_reducers = 1;
  auto result = job.Run(ids, run_options, cache, pool);
  if (!result.ok()) {
    return result.status;
  }

  core::SkylineJobRun run;
  run.metrics = std::move(result.metrics);
  if (result.outputs.empty()) {
    run.skyline = SkylineWindow(data->dim());
  } else {
    run.skyline = std::move(result.outputs[0]);
  }
  return run;
}

}  // namespace skymr::baselines
