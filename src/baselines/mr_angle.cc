#include "src/baselines/mr_angle.h"

#include <cmath>
#include <numeric>

#include "src/common/math_util.h"

namespace skymr::baselines {
namespace {

using core::CellWindowMap;
using core::kCacheKeyDataset;
using core::LocalSkylineSet;
using core::PartitionSkyline;

inline constexpr const char* kCacheKeyAnglePartitioner =
    "skymr.angle_partitioner";
inline constexpr const char* kCacheKeyAngleConstraint =
    "skymr.angle_constraint";
constexpr double kHalfPi = 1.57079632679489661923;

}  // namespace

AngularPartitioner::AngularPartitioner(size_t dim, uint32_t parts_per_angle,
                                       Bounds bounds)
    : dim_(dim),
      parts_per_angle_(dim >= 2 ? parts_per_angle : 1),
      bounds_(std::move(bounds)) {
  num_partitions_ =
      dim_ >= 2 ? PowU64(parts_per_angle_, static_cast<uint32_t>(dim_ - 1))
                : 1;
}

AngularPartitioner AngularPartitioner::ForTargetPartitions(
    size_t dim, uint32_t target_partitions, Bounds bounds) {
  if (dim < 2 || target_partitions <= 1) {
    return AngularPartitioner(dim, 1, std::move(bounds));
  }
  uint32_t parts = 1;
  while (true) {
    const std::optional<uint64_t> total =
        CheckedPow(parts, static_cast<uint32_t>(dim - 1));
    if (total.has_value() && *total >= target_partitions) {
      break;
    }
    ++parts;
  }
  return AngularPartitioner(dim, parts, std::move(bounds));
}

std::vector<double> AngularPartitioner::AnglesOf(const double* row) const {
  // Hyperspherical angles over the shifted positive orthant
  // (Vlachou et al.): phi_i = atan2(||(x_{i+1},...,x_d)||, x_i).
  std::vector<double> angles(dim_ >= 2 ? dim_ - 1 : 0);
  // Suffix norms: tail[i] = sqrt(x_{i+1}^2 + ... + x_d^2).
  double tail_sq = 0.0;
  std::vector<double> shifted(dim_);
  for (size_t k = 0; k < dim_; ++k) {
    shifted[k] = row[k] - bounds_.lo[k];
    if (shifted[k] < 0.0) {
      shifted[k] = 0.0;
    }
  }
  for (size_t i = dim_; i-- > 1;) {
    tail_sq += shifted[i] * shifted[i];
    angles[i - 1] = std::atan2(std::sqrt(tail_sq), shifted[i - 1]);
  }
  return angles;
}

uint64_t AngularPartitioner::PartitionOf(const double* row) const {
  if (dim_ < 2 || parts_per_angle_ == 1) {
    return 0;
  }
  const std::vector<double> angles = AnglesOf(row);
  uint64_t index = 0;
  uint64_t stride = 1;
  for (const double angle : angles) {
    auto cell = static_cast<uint64_t>(angle / kHalfPi *
                                      static_cast<double>(parts_per_angle_));
    if (cell >= parts_per_angle_) {
      cell = parts_per_angle_ - 1;
    }
    index += cell * stride;
    stride *= parts_per_angle_;
  }
  return index;
}

namespace {

/// Map: a BNL local skyline per angular partition over the split.
class MrAngleMapper : public mr::Mapper<TupleId, uint32_t, LocalSkylineSet> {
 public:
  void Setup(mr::MapContext<uint32_t, LocalSkylineSet>& ctx) override {
    data_ = ctx.cache().Get<Dataset>(kCacheKeyDataset);
    partitioner_ =
        ctx.cache().Get<AngularPartitioner>(kCacheKeyAnglePartitioner);
    constraint_ = ctx.cache().Get<Box>(kCacheKeyAngleConstraint);
    if (data_ == nullptr || partitioner_ == nullptr) {
      throw mr::TaskFailure("MR-Angle mapper: cache entries missing");
    }
  }

  void Map(const TupleId& id,
           mr::MapContext<uint32_t, LocalSkylineSet>& ctx) override {
    (void)ctx;
    const double* row = data_->RowPtr(id);
    if (constraint_ != nullptr && !constraint_->Contains(row, data_->dim())) {
      return;
    }
    const uint64_t part = partitioner_->PartitionOf(row);
    auto [it, inserted] =
        windows_.try_emplace(part, SkylineWindow(data_->dim()));
    it->second.Insert(row, id, &dominance_counter_);
  }

  void Cleanup(mr::MapContext<uint32_t, LocalSkylineSet>& ctx) override {
    ctx.counters().Add(mr::kCounterTupleComparisons,
                       static_cast<int64_t>(dominance_counter_.count()));
    LocalSkylineSet set;
    set.parts.reserve(windows_.size());
    for (auto& [part, window] : windows_) {
      set.parts.push_back(PartitionSkyline{part, std::move(window)});
    }
    ctx.Emit(0, set);
  }

 private:
  std::shared_ptr<const Dataset> data_;
  std::shared_ptr<const AngularPartitioner> partitioner_;
  std::shared_ptr<const Box> constraint_;
  CellWindowMap windows_;
  DominanceCounter dominance_counter_;
};

/// Reduce (single): global BNL over all local skyline tuples. Angular
/// partitions carry no dominance order, so no partition-level pruning is
/// available here.
class MrAngleReducer
    : public mr::Reducer<uint32_t, LocalSkylineSet, SkylineWindow> {
 public:
  void Reduce(const uint32_t& key,
              mr::ValueIterator<LocalSkylineSet>& values,
              mr::ReduceContext<SkylineWindow>& ctx) override {
    (void)key;
    DominanceCounter dominance_counter;
    SkylineWindow global;
    bool first = true;
    while (values.HasNext()) {
      const LocalSkylineSet set = values.Next();
      for (const PartitionSkyline& part : set.parts) {
        if (first && part.window.dim() > 0) {
          global = SkylineWindow(part.window.dim());
          first = false;
        }
        for (size_t i = 0; i < part.window.size(); ++i) {
          global.Insert(part.window.RowAt(i), part.window.IdAt(i),
                        &dominance_counter);
        }
      }
    }
    ctx.counters().Add(mr::kCounterTupleComparisons,
                       static_cast<int64_t>(dominance_counter.count()));
    ctx.Emit(std::move(global));
  }
};

}  // namespace

StatusOr<core::SkylineJobRun> RunMrAngleJob(
    std::shared_ptr<const Dataset> data, const Bounds& bounds,
    uint32_t target_partitions, const mr::EngineOptions& engine,
    ThreadPool* pool, const std::optional<Box>& constraint) {
  if (data == nullptr) {
    return Status::InvalidArgument("MR-Angle: dataset is null");
  }
  if (bounds.lo.size() != data->dim()) {
    return Status::InvalidArgument("MR-Angle: bounds/dim mismatch");
  }
  if (constraint.has_value()) {
    SKYMR_RETURN_IF_ERROR(constraint->Validate(data->dim()));
  }

  mr::DistributedCache cache;
  SKYMR_RETURN_IF_ERROR(cache.Put(kCacheKeyDataset, data));
  if (constraint.has_value()) {
    SKYMR_RETURN_IF_ERROR(
        cache.PutValue(kCacheKeyAngleConstraint, *constraint));
  }
  SKYMR_RETURN_IF_ERROR(cache.Put(
      kCacheKeyAnglePartitioner,
      std::shared_ptr<const AngularPartitioner>(
          std::make_shared<AngularPartitioner>(
              AngularPartitioner::ForTargetPartitions(
                  data->dim(), target_partitions, bounds)))));

  std::vector<TupleId> ids(data->size());
  std::iota(ids.begin(), ids.end(), 0);

  mr::Job<TupleId, uint32_t, LocalSkylineSet, SkylineWindow> job(
      "mr-angle", [] { return std::make_unique<MrAngleMapper>(); },
      [] { return std::make_unique<MrAngleReducer>(); });

  mr::EngineOptions options = engine;
  options.num_reducers = 1;
  auto result = job.Run(ids, options, cache, pool);
  if (!result.ok()) {
    return result.status;
  }

  core::SkylineJobRun run;
  run.metrics = std::move(result.metrics);
  if (result.outputs.empty()) {
    run.skyline = SkylineWindow(data->dim());
  } else {
    run.skyline = std::move(result.outputs[0]);
  }
  return run;
}

}  // namespace skymr::baselines
