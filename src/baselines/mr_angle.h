// MR-Angle (Chen, Hwang & Wu, IPDPS Workshops 2012), as described in the
// paper's Section 2.2: the data space is divided with the angular
// partitioning of Vlachou et al. (SIGMOD'08) — hyperspherical coordinates
// with the angle space cut into equal cells — mappers compute a BNL local
// skyline per angular partition, and a single reducer merges all local
// skylines with BNL to obtain the global skyline.
//
// Angular partitions have no dominance order between them (every angular
// region touches the origin), so unlike the grid algorithms the reducer
// must compare all local skyline tuples pairwise; the benefit is that
// local skylines are small because skyline tuples spread evenly over
// angles.

#ifndef SKYMR_BASELINES_MR_ANGLE_H_
#define SKYMR_BASELINES_MR_ANGLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/skyline_job_common.h"

namespace skymr::baselines {

/// Maps tuples in the positive orthant to angular cells.
class AngularPartitioner {
 public:
  /// Creates a partitioner over `dim`-dimensional data with
  /// `parts_per_angle` cells on each of the d-1 hyperspherical angles.
  /// `bounds` shifts the data so the origin is the best corner.
  AngularPartitioner(size_t dim, uint32_t parts_per_angle, Bounds bounds);

  /// Picks parts_per_angle so the total cell count is at least
  /// `target_partitions` (and exactly 1 when d == 1).
  static AngularPartitioner ForTargetPartitions(size_t dim,
                                                uint32_t target_partitions,
                                                Bounds bounds);

  size_t dim() const { return dim_; }
  uint32_t parts_per_angle() const { return parts_per_angle_; }
  uint64_t num_partitions() const { return num_partitions_; }

  /// The angular cell containing `row`.
  uint64_t PartitionOf(const double* row) const;

  /// The d-1 hyperspherical angles of `row`, each in [0, pi/2].
  std::vector<double> AnglesOf(const double* row) const;

 private:
  size_t dim_;
  uint32_t parts_per_angle_;
  uint64_t num_partitions_;
  Bounds bounds_;
};

/// Runs the MR-Angle job with roughly `target_partitions` angular cells.
/// `engine.num_reducers` is forced to 1. When `constraint` is set, tuples
/// outside the box are ignored.
StatusOr<core::SkylineJobRun> RunMrAngleJob(
    std::shared_ptr<const Dataset> data, const Bounds& bounds,
    uint32_t target_partitions, const mr::EngineOptions& engine,
    ThreadPool* pool = nullptr,
    const std::optional<Box>& constraint = std::nullopt);

}  // namespace skymr::baselines

#endif  // SKYMR_BASELINES_MR_ANGLE_H_
