// The sky-quadtree of SKY-MR (Park, Min & Shim, PVLDB 2013), the
// sampling-based alternative the paper contrasts its bitstring with
// (Section 2.2: "SKY-MR obtains a random sample of the entire data set
// and builds a quadtree for the sample to identify dominated sampled
// regions. In contrast, the bitstring used in this work does not require
// sampling, and it is built in parallel by MapReduce.").
//
// The tree recursively splits the data space at box midpoints into 2^d
// children until a leaf holds at most `leaf_capacity` sample points (or
// the depth cap is reached). A leaf is marked *pruned* when some sample
// point dominates the leaf's best corner — every tuple that falls in it
// is dominated by that (real) sample tuple, so dropping the leaf is
// exact, not approximate.

#ifndef SKYMR_BASELINES_SKY_QUADTREE_H_
#define SKYMR_BASELINES_SKY_QUADTREE_H_

#include <cstdint>
#include <vector>

#include "src/relation/box.h"
#include "src/relation/dataset.h"
#include "src/relation/tuple.h"

namespace skymr::baselines {

/// An immutable quadtree over the data space, built from a sample.
class SkyQuadtree {
 public:
  struct Options {
    /// Deterministic stride-sample size.
    size_t sample_size = 1024;
    /// Maximum sample points per leaf before splitting.
    size_t leaf_capacity = 16;
    /// Depth cap: each level multiplies the leaf count by up to 2^d.
    int max_depth = 6;
  };

  /// Builds the tree for `data` over `bounds` (which must enclose the
  /// data). With a `constraint`, only in-box tuples are sampled — pruning
  /// dominators must come from the constrained population for constrained
  /// skylines to stay exact.
  static SkyQuadtree Build(const Dataset& data, const Bounds& bounds,
                           const Options& options,
                           const Box* constraint = nullptr);

  size_t dim() const { return dim_; }
  uint32_t num_leaves() const { return static_cast<uint32_t>(leaves_.size()); }
  /// Sample points used to build the tree.
  size_t sample_count() const { return sample_count_; }

  /// The leaf containing `row`.
  uint32_t LeafOf(const double* row) const;

  /// True when the leaf's whole region is dominated by a sample tuple.
  bool IsPruned(uint32_t leaf) const { return leaves_[leaf].pruned; }
  uint32_t num_pruned_leaves() const { return num_pruned_; }

  /// True when tuples in leaf `a`'s region may dominate tuples in leaf
  /// `b`'s region (a.min <= b.max componentwise, a != b). Conservative:
  /// never false when a dominating pair could exist.
  bool CanDominate(uint32_t a, uint32_t b) const;

  /// Leaf region corners (closed boxes).
  const std::vector<double>& LeafMin(uint32_t leaf) const {
    return leaves_[leaf].lo;
  }
  const std::vector<double>& LeafMax(uint32_t leaf) const {
    return leaves_[leaf].hi;
  }

 private:
  struct Node {
    std::vector<double> lo;
    std::vector<double> hi;
    /// Index of the first child node, or -1 for a leaf.
    int32_t first_child = -1;
    /// Leaf index (position in leaves_), valid for leaves only.
    int32_t leaf_index = -1;
  };

  struct Leaf {
    std::vector<double> lo;
    std::vector<double> hi;
    bool pruned = false;
  };

  SkyQuadtree() = default;

  /// Child code of `row` within a node box: bit k set iff
  /// row[k] >= midpoint[k].
  static size_t ChildCode(const double* row, const std::vector<double>& lo,
                          const std::vector<double>& hi, size_t dim);

  size_t dim_ = 0;
  size_t sample_count_ = 0;
  uint32_t num_pruned_ = 0;
  std::vector<Node> nodes_;
  std::vector<Leaf> leaves_;
};

}  // namespace skymr::baselines

#endif  // SKYMR_BASELINES_SKY_QUADTREE_H_
