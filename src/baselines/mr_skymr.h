// SKY-MR (Park, Min & Shim, PVLDB 2013), the sampling-based comparator
// the paper discusses in Section 2.2. Implemented in the spirit of the
// original on this engine:
//
//  1. A driver-side pre-processing step draws a deterministic sample,
//     builds the sky-quadtree, and marks leaves whose whole region is
//     dominated by a sample tuple (SKY-MR's "sky-filter" step, which the
//     original also runs on a single machine before MapReduce).
//  2. One MapReduce job computes the skyline: mappers drop tuples in
//     pruned leaves, maintain a BNL window per leaf, and remove
//     cross-leaf false positives using the leaves' region dominance;
//     a single reducer merges per-leaf windows and repeats the
//     cross-leaf filter to obtain the exact global skyline.
//
// Simplification versus the original (documented for honesty): Park et
// al. split the work into a local-skyline job and a global-filter job
// with multiple reducers keyed by quadtree region; here both phases run
// in one job with a single reducer, matching the structure of the other
// single-reducer baselines in this repository so the comparison isolates
// the *partitioning/pruning* strategy (sample + quadtree vs bitstring).

#ifndef SKYMR_BASELINES_MR_SKYMR_H_
#define SKYMR_BASELINES_MR_SKYMR_H_

#include <memory>

#include "src/baselines/sky_quadtree.h"
#include "src/core/skyline_job_common.h"

namespace skymr::baselines {

/// Runs the SKY-MR style job. `engine.num_reducers` is forced to 1.
/// When `constraint` is set, tuples outside the box are ignored (the
/// quadtree sample is drawn from in-box tuples as well).
StatusOr<core::SkylineJobRun> RunSkyMrJob(
    std::shared_ptr<const Dataset> data, const Bounds& bounds,
    const SkyQuadtree::Options& options, const mr::EngineOptions& engine,
    ThreadPool* pool = nullptr,
    const std::optional<Box>& constraint = std::nullopt);

}  // namespace skymr::baselines

#endif  // SKYMR_BASELINES_MR_SKYMR_H_
