#include "src/baselines/centralized.h"

#include "src/common/stopwatch.h"
#include "src/local/bnl.h"
#include "src/local/naive.h"
#include "src/local/sfs.h"

namespace skymr::baselines {

const char* CentralizedAlgorithmName(CentralizedAlgorithm algorithm) {
  switch (algorithm) {
    case CentralizedAlgorithm::kBnl:
      return "bnl";
    case CentralizedAlgorithm::kSfs:
      return "sfs";
    case CentralizedAlgorithm::kNaive:
      return "naive";
  }
  return "unknown";
}

CentralizedRun RunCentralized(const Dataset& data,
                              CentralizedAlgorithm algorithm) {
  CentralizedRun run;
  DominanceCounter counter;
  Stopwatch clock;
  switch (algorithm) {
    case CentralizedAlgorithm::kBnl:
      run.skyline = BnlSkyline(data, &counter);
      break;
    case CentralizedAlgorithm::kSfs:
      run.skyline = SfsSkyline(data, &counter);
      break;
    case CentralizedAlgorithm::kNaive:
      run.skyline = NaiveSkyline(data, &counter);
      break;
  }
  run.wall_seconds = clock.ElapsedSeconds();
  run.tuple_comparisons = counter.count();
  return run;
}

}  // namespace skymr::baselines
