// Centralized (single-node) skyline drivers, used as non-MapReduce
// comparison points in the examples and ablation benches.

#ifndef SKYMR_BASELINES_CENTRALIZED_H_
#define SKYMR_BASELINES_CENTRALIZED_H_

#include <cstdint>

#include "src/local/skyline_window.h"
#include "src/relation/dataset.h"

namespace skymr::baselines {

/// Which single-node algorithm a centralized run uses.
enum class CentralizedAlgorithm {
  kBnl,
  kSfs,
  kNaive,
};

const char* CentralizedAlgorithmName(CentralizedAlgorithm algorithm);

struct CentralizedRun {
  SkylineWindow skyline;
  double wall_seconds = 0.0;
  uint64_t tuple_comparisons = 0;
};

/// Computes the skyline of `data` on a single thread.
CentralizedRun RunCentralized(const Dataset& data,
                              CentralizedAlgorithm algorithm);

}  // namespace skymr::baselines

#endif  // SKYMR_BASELINES_CENTRALIZED_H_
