// MR-BNL (Zhang et al., DASFAA 2011 workshops), as described in the
// paper's Section 2.2: each dimension's domain is split into two halves,
// giving 2^d blocks; mappers compute a BNL local skyline per block over
// their split; a single reducer merges the block skylines and removes
// cross-block false positives using block-code incomparability.
//
// The half-per-dimension blocks are exactly a PPD-2 grid, so this baseline
// reuses the grid machinery — but, unlike MR-GPSRS, there is no bitstring
// job, no empty/dominated-partition pruning, and no map-side cross-block
// filtering. Those are the paper's contributions that this baseline lacks.

#ifndef SKYMR_BASELINES_MR_BNL_H_
#define SKYMR_BASELINES_MR_BNL_H_

#include <memory>

#include "src/core/skyline_job_common.h"

namespace skymr::baselines {

/// Runs the MR-BNL job. `engine.num_reducers` is forced to 1. When
/// `constraint` is set, tuples outside the box are ignored.
StatusOr<core::SkylineJobRun> RunMrBnlJob(
    std::shared_ptr<const Dataset> data, const Bounds& bounds,
    const mr::EngineOptions& engine, ThreadPool* pool = nullptr,
    const std::optional<Box>& constraint = std::nullopt);

}  // namespace skymr::baselines

#endif  // SKYMR_BASELINES_MR_BNL_H_
