#include "src/baselines/mr_bnl.h"

#include <numeric>

namespace skymr::baselines {
namespace {

using core::CellId;
using core::CellWindowMap;
using core::Grid;
using core::kCacheKeyDataset;
using core::LocalSkylineSet;
using core::PartitionSkyline;

inline constexpr const char* kCacheKeyMrBnlGrid = "skymr.mrbnl_grid";
inline constexpr const char* kCacheKeyMrBnlConstraint =
    "skymr.mrbnl_constraint";

/// Map: a BNL local skyline per 2^d block over the split.
class MrBnlMapper : public mr::Mapper<TupleId, uint32_t, LocalSkylineSet> {
 public:
  void Setup(mr::MapContext<uint32_t, LocalSkylineSet>& ctx) override {
    data_ = ctx.cache().Get<Dataset>(kCacheKeyDataset);
    grid_ = ctx.cache().Get<Grid>(kCacheKeyMrBnlGrid);
    constraint_ = ctx.cache().Get<Box>(kCacheKeyMrBnlConstraint);
    if (data_ == nullptr || grid_ == nullptr) {
      throw mr::TaskFailure("MR-BNL mapper: cache entries missing");
    }
  }

  void Map(const TupleId& id,
           mr::MapContext<uint32_t, LocalSkylineSet>& ctx) override {
    (void)ctx;
    const double* row = data_->RowPtr(id);
    if (constraint_ != nullptr && !constraint_->Contains(row, data_->dim())) {
      return;
    }
    const CellId block = grid_->CellOf(row);
    auto [it, inserted] =
        windows_.try_emplace(block, SkylineWindow(data_->dim()));
    it->second.Insert(row, id, &dominance_counter_);
  }

  void Cleanup(mr::MapContext<uint32_t, LocalSkylineSet>& ctx) override {
    ctx.counters().Add(mr::kCounterTupleComparisons,
                       static_cast<int64_t>(dominance_counter_.count()));
    LocalSkylineSet set;
    set.parts.reserve(windows_.size());
    for (auto& [block, window] : windows_) {
      set.parts.push_back(PartitionSkyline{block, std::move(window)});
    }
    ctx.Emit(0, set);
  }

 private:
  std::shared_ptr<const Dataset> data_;
  std::shared_ptr<const Grid> grid_;
  std::shared_ptr<const Box> constraint_;
  CellWindowMap windows_;
  DominanceCounter dominance_counter_;
};

/// Reduce (single): merge block skylines; filter across comparable blocks.
class MrBnlReducer
    : public mr::Reducer<uint32_t, LocalSkylineSet, SkylineWindow> {
 public:
  void Setup(mr::ReduceContext<SkylineWindow>& ctx) override {
    grid_ = ctx.cache().Get<Grid>(kCacheKeyMrBnlGrid);
    if (grid_ == nullptr) {
      throw mr::TaskFailure("MR-BNL reducer: grid missing");
    }
  }

  void Reduce(const uint32_t& key,
              mr::ValueIterator<LocalSkylineSet>& values,
              mr::ReduceContext<SkylineWindow>& ctx) override {
    (void)key;
    DominanceCounter dominance_counter;
    CellWindowMap windows;
    while (values.HasNext()) {
      const LocalSkylineSet set = values.Next();
      core::MergeParts(set.parts, grid_->dim(), &windows,
                       &dominance_counter);
    }
    // Cross-block filtering: block a may dominate into block b only when
    // a's half-code is componentwise <= b's — the PPD-2 ADR relation.
    const uint64_t partition_comparisons =
        core::CompareAllPartitions(*grid_, &windows, &dominance_counter);
    ctx.counters().Add(mr::kCounterPartitionComparisons,
                       static_cast<int64_t>(partition_comparisons));
    ctx.counters().Add(mr::kCounterTupleComparisons,
                       static_cast<int64_t>(dominance_counter.count()));
    ctx.Emit(core::UnionWindows(windows, grid_->dim()));
  }

 private:
  std::shared_ptr<const Grid> grid_;
};

}  // namespace

StatusOr<core::SkylineJobRun> RunMrBnlJob(
    std::shared_ptr<const Dataset> data, const Bounds& bounds,
    const mr::EngineOptions& engine, ThreadPool* pool,
    const std::optional<Box>& constraint) {
  if (data == nullptr) {
    return Status::InvalidArgument("MR-BNL: dataset is null");
  }
  auto grid_or = Grid::Create(data->dim(), 2, bounds);
  if (!grid_or.ok()) {
    return grid_or.status();
  }
  if (constraint.has_value()) {
    SKYMR_RETURN_IF_ERROR(constraint->Validate(data->dim()));
  }

  mr::DistributedCache cache;
  SKYMR_RETURN_IF_ERROR(cache.Put(kCacheKeyDataset, data));
  SKYMR_RETURN_IF_ERROR(cache.Put(
      kCacheKeyMrBnlGrid, std::shared_ptr<const Grid>(
                              std::make_shared<Grid>(grid_or.value()))));
  if (constraint.has_value()) {
    SKYMR_RETURN_IF_ERROR(cache.PutValue(kCacheKeyMrBnlConstraint,
                                         *constraint));
  }

  std::vector<TupleId> ids(data->size());
  std::iota(ids.begin(), ids.end(), 0);

  mr::Job<TupleId, uint32_t, LocalSkylineSet, SkylineWindow> job(
      "mr-bnl", [] { return std::make_unique<MrBnlMapper>(); },
      [] { return std::make_unique<MrBnlReducer>(); });

  mr::EngineOptions options = engine;
  options.num_reducers = 1;
  auto result = job.Run(ids, options, cache, pool);
  if (!result.ok()) {
    return result.status;
  }

  core::SkylineJobRun run;
  run.metrics = std::move(result.metrics);
  if (result.outputs.empty()) {
    run.skyline = SkylineWindow(data->dim());
  } else {
    run.skyline = std::move(result.outputs[0]);
  }
  return run;
}

}  // namespace skymr::baselines
