// Synthetic data generators for the experiment workloads.
//
// The paper (Section 7.1) uses synthetic independent and anti-correlated
// data "generated according to the existing methods [Börzsönyi et al.,
// ICDE'01]". This module implements those distribution families plus the
// correlated and clustered variants commonly used in skyline evaluations:
//
//  * kIndependent:     every dimension i.i.d. uniform in [0,1).
//  * kCorrelated:      tuples concentrated around the main diagonal; a tuple
//                      good in one dimension tends to be good in all
//                      (small skylines).
//  * kAntiCorrelated:  tuples concentrated around the anti-diagonal
//                      hyperplane sum(x) = d*v; a tuple good in one
//                      dimension tends to be bad in others (large skylines).
//  * kClustered:       Gaussian clusters around random centers.
//
// All generators are deterministic given (seed, cardinality, dim).

#ifndef SKYMR_DATA_GENERATOR_H_
#define SKYMR_DATA_GENERATOR_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/relation/dataset.h"

namespace skymr::data {

enum class Distribution {
  kIndependent,
  kCorrelated,
  kAntiCorrelated,
  kClustered,
};

/// Stable name used in bench output ("independent", "anti-correlated", ...).
const char* DistributionName(Distribution dist);

/// Parses a distribution name (as produced by DistributionName).
StatusOr<Distribution> ParseDistribution(const std::string& name);

struct GeneratorConfig {
  Distribution distribution = Distribution::kIndependent;
  size_t cardinality = 0;
  size_t dim = 2;
  uint64_t seed = 42;
  /// Number of clusters for kClustered.
  size_t num_clusters = 8;
};

/// Generates a dataset in the unit hypercube [0,1)^d.
StatusOr<Dataset> Generate(const GeneratorConfig& config);

/// Convenience wrappers used throughout tests and benches.
Dataset GenerateIndependent(size_t cardinality, size_t dim, uint64_t seed);
Dataset GenerateCorrelated(size_t cardinality, size_t dim, uint64_t seed);
Dataset GenerateAntiCorrelated(size_t cardinality, size_t dim, uint64_t seed);

}  // namespace skymr::data

#endif  // SKYMR_DATA_GENERATOR_H_
