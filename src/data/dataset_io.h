// CSV import/export for datasets, used by the examples and for feeding real
// data into the library.

#ifndef SKYMR_DATA_DATASET_IO_H_
#define SKYMR_DATA_DATASET_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/relation/dataset.h"

namespace skymr::data {

/// Writes `data` as CSV. When `header` is non-empty it becomes the first
/// row and must have data.dim() entries.
Status SaveCsv(const Dataset& data, const std::string& path,
               const std::vector<std::string>& header = {});

/// The CSV text SaveCsv would write (%.17g fields, so values round-trip
/// exactly through LoadCsvFromString).
StatusOr<std::string> SaveCsvToString(
    const Dataset& data, const std::vector<std::string>& header = {});

/// Reads a dataset from CSV. When `has_header` is true the first row is
/// skipped. All fields must parse as doubles and all rows must have the
/// same width.
StatusOr<Dataset> LoadCsv(const std::string& path, bool has_header);

/// LoadCsv over in-memory text. Untrusted-input boundary: any byte
/// sequence yields a Dataset or an error Status, never a crash.
StatusOr<Dataset> LoadCsvFromString(std::string_view text, bool has_header);

}  // namespace skymr::data

#endif  // SKYMR_DATA_DATASET_IO_H_
