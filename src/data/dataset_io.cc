#include "src/data/dataset_io.h"

#include <charconv>
#include <cstdio>

#include "src/common/csv.h"

namespace skymr::data {

namespace {

/// Renders `data` as CSV rows (%.17g fields), header first when present.
StatusOr<std::vector<std::vector<std::string>>> CsvRows(
    const Dataset& data, const std::vector<std::string>& header) {
  if (!header.empty() && header.size() != data.dim()) {
    return Status::InvalidArgument("header width does not match dimension");
  }
  std::vector<std::vector<std::string>> rows;
  rows.reserve(data.size() + 1);
  if (!header.empty()) {
    rows.push_back(header);
  }
  char buf[64];
  for (size_t i = 0; i < data.size(); ++i) {
    std::vector<std::string> row;
    row.reserve(data.dim());
    const double* values = data.RowPtr(static_cast<TupleId>(i));
    for (size_t k = 0; k < data.dim(); ++k) {
      std::snprintf(buf, sizeof(buf), "%.17g", values[k]);
      row.emplace_back(buf);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Shared back end of LoadCsv/LoadCsvFromString. `origin` names the
/// input in diagnostics.
StatusOr<Dataset> DatasetFromRows(
    const std::vector<std::vector<std::string>>& rows, bool has_header,
    const std::string& origin) {
  const size_t start = has_header ? 1 : 0;
  if (rows.size() <= start) {
    return Status::InvalidArgument("CSV has no data rows: " + origin);
  }
  const size_t dim = rows[start].size();
  if (dim == 0) {
    return Status::InvalidArgument("CSV has empty rows: " + origin);
  }
  Dataset out(dim);
  out.Reserve(rows.size() - start);
  std::vector<double> row(dim);
  for (size_t i = start; i < rows.size(); ++i) {
    if (rows[i].size() != dim) {
      return Status::InvalidArgument("CSV row width mismatch at line " +
                                     std::to_string(i + 1));
    }
    for (size_t k = 0; k < dim; ++k) {
      const std::string& field = rows[i][k];
      char* end = nullptr;
      row[k] = std::strtod(field.c_str(), &end);
      if (end == field.c_str() || (end != nullptr && *end != '\0')) {
        return Status::InvalidArgument("CSV field is not a number: '" +
                                       field + "' at line " +
                                       std::to_string(i + 1));
      }
    }
    out.Append(row);
  }
  return out;
}

}  // namespace

Status SaveCsv(const Dataset& data, const std::string& path,
               const std::vector<std::string>& header) {
  auto rows = CsvRows(data, header);
  if (!rows.ok()) {
    return rows.status();
  }
  return WriteCsvFile(path, rows.value());
}

StatusOr<std::string> SaveCsvToString(
    const Dataset& data, const std::vector<std::string>& header) {
  auto rows = CsvRows(data, header);
  if (!rows.ok()) {
    return rows.status();
  }
  std::string out;
  for (const auto& row : rows.value()) {
    out += FormatCsvLine(row);
    out.push_back('\n');
  }
  return out;
}

StatusOr<Dataset> LoadCsv(const std::string& path, bool has_header) {
  auto rows_or = ReadCsvFile(path);
  if (!rows_or.ok()) {
    return rows_or.status();
  }
  return DatasetFromRows(rows_or.value(), has_header, path);
}

StatusOr<Dataset> LoadCsvFromString(std::string_view text, bool has_header) {
  auto rows_or = ParseCsvText(text);
  if (!rows_or.ok()) {
    return rows_or.status();
  }
  return DatasetFromRows(rows_or.value(), has_header, "inline text");
}

}  // namespace skymr::data
