#include "src/data/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/rng.h"

namespace skymr::data {
namespace {

/// "Peak" distribution on [0,1): mean of 12 uniforms, approximately normal
/// around 0.5. This mirrors random_peak() in the original Börzsönyi
/// generator.
double RandomPeak(Rng* rng) {
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) {
    sum += rng->NextDouble();
  }
  return sum / 12.0;
}

bool InUnitCube(const std::vector<double>& row) {
  for (const double v : row) {
    if (v < 0.0 || v >= 1.0) {
      return false;
    }
  }
  return true;
}

/// One independent tuple: i.i.d. uniform per dimension.
void MakeIndependent(Rng* rng, std::vector<double>* row) {
  for (double& v : *row) {
    v = rng->NextDouble();
  }
}

/// One correlated tuple: a diagonal position v (peak-distributed, so its
/// variance across tuples is large relative to the jitter) plus zero-sum
/// pairwise shifts with small amplitude, so all dimensions move together.
/// Rejection keeps the tuple inside the unit cube.
void MakeCorrelated(Rng* rng, std::vector<double>* row) {
  const size_t d = row->size();
  while (true) {
    const double v = RandomPeak(rng);
    const double l = (v <= 0.5 ? v : 1.0 - v) * 0.1;
    std::fill(row->begin(), row->end(), v);
    for (size_t i = 0; i < d; ++i) {
      const double h = rng->Uniform(-l, l);
      (*row)[i] += h;
      (*row)[(i + 1) % d] -= h;
    }
    if (InUnitCube(*row)) {
      return;
    }
  }
}

/// One anti-correlated tuple: a normal plane position v with a *small*
/// standard deviation (the tuples concentrate in a thin band around the
/// anti-diagonal hyperplane sum(x) = d/2), then zero-sum pairwise shifts
/// with amplitude up to the distance to the cube boundary, spreading
/// tuples across the hyperplane. The thin band is what makes tuples
/// mutually incomparable and skylines huge — the defining property the
/// paper's Section 7 experiments rely on.
void MakeAntiCorrelated(Rng* rng, std::vector<double>* row) {
  const size_t d = row->size();
  while (true) {
    double v = rng->Gaussian(0.5, 0.05);
    if (v < 0.0 || v >= 1.0) {
      continue;
    }
    const double l = v <= 0.5 ? v : 1.0 - v;
    std::fill(row->begin(), row->end(), v);
    for (size_t i = 0; i < d; ++i) {
      const double h = rng->Uniform(-l, l);
      (*row)[i] += h;
      (*row)[(i + 1) % d] -= h;
    }
    if (InUnitCube(*row)) {
      return;
    }
  }
}

}  // namespace

const char* DistributionName(Distribution dist) {
  switch (dist) {
    case Distribution::kIndependent:
      return "independent";
    case Distribution::kCorrelated:
      return "correlated";
    case Distribution::kAntiCorrelated:
      return "anti-correlated";
    case Distribution::kClustered:
      return "clustered";
  }
  return "unknown";
}

StatusOr<Distribution> ParseDistribution(const std::string& name) {
  if (name == "independent") {
    return Distribution::kIndependent;
  }
  if (name == "correlated") {
    return Distribution::kCorrelated;
  }
  if (name == "anti-correlated" || name == "anticorrelated") {
    return Distribution::kAntiCorrelated;
  }
  if (name == "clustered") {
    return Distribution::kClustered;
  }
  return Status::InvalidArgument("unknown distribution: " + name);
}

StatusOr<Dataset> Generate(const GeneratorConfig& config) {
  if (config.dim < 1) {
    return Status::InvalidArgument("dimension must be >= 1");
  }
  if (config.distribution == Distribution::kClustered &&
      config.num_clusters == 0) {
    return Status::InvalidArgument("clustered data needs >= 1 cluster");
  }
  Rng rng(config.seed);
  Dataset out(config.dim);
  out.Reserve(config.cardinality);
  std::vector<double> row(config.dim);

  std::vector<std::vector<double>> centers;
  if (config.distribution == Distribution::kClustered) {
    centers.resize(config.num_clusters, std::vector<double>(config.dim));
    for (auto& center : centers) {
      for (double& v : center) {
        v = rng.NextDouble();
      }
    }
  }

  for (size_t i = 0; i < config.cardinality; ++i) {
    switch (config.distribution) {
      case Distribution::kIndependent:
        MakeIndependent(&rng, &row);
        break;
      case Distribution::kCorrelated:
        MakeCorrelated(&rng, &row);
        break;
      case Distribution::kAntiCorrelated:
        MakeAntiCorrelated(&rng, &row);
        break;
      case Distribution::kClustered: {
        const auto& center = centers[rng.NextBounded(centers.size())];
        do {
          for (size_t k = 0; k < config.dim; ++k) {
            row[k] = rng.Gaussian(center[k], 0.05);
          }
        } while (!InUnitCube(row));
        break;
      }
    }
    out.Append(row);
  }
  return out;
}

Dataset GenerateIndependent(size_t cardinality, size_t dim, uint64_t seed) {
  GeneratorConfig config;
  config.distribution = Distribution::kIndependent;
  config.cardinality = cardinality;
  config.dim = dim;
  config.seed = seed;
  return std::move(Generate(config)).value();
}

Dataset GenerateCorrelated(size_t cardinality, size_t dim, uint64_t seed) {
  GeneratorConfig config;
  config.distribution = Distribution::kCorrelated;
  config.cardinality = cardinality;
  config.dim = dim;
  config.seed = seed;
  return std::move(Generate(config)).value();
}

Dataset GenerateAntiCorrelated(size_t cardinality, size_t dim, uint64_t seed) {
  GeneratorConfig config;
  config.distribution = Distribution::kAntiCorrelated;
  config.cardinality = cardinality;
  config.dim = dim;
  config.seed = seed;
  return std::move(Generate(config)).value();
}

}  // namespace skymr::data
