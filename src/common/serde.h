// Binary serialization used by the MapReduce shuffle.
//
// The engine round-trips every shuffled key and value through this layer so
// that (1) shuffle byte counts are exact, matching what a real Hadoop
// deployment would put on the wire, and (2) no in-memory state can leak
// between "nodes" through a value type.
//
// A type T is shuffle-serializable when Serde<T> provides:
//   static void Write(const T&, ByteSink*);
//   static T Read(ByteSource*);
// Specializations are provided for arithmetic types, std::string,
// std::pair, std::vector, and DynamicBitset. Library message types add
// their own specializations next to their definitions.

#ifndef SKYMR_COMMON_SERDE_H_
#define SKYMR_COMMON_SERDE_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/dynamic_bitset.h"
#include "src/common/logging.h"

namespace skymr {

/// Thrown when a deserializer would read past the end of its buffer
/// (truncated or corrupt shuffle data). Checked in every build mode; the
/// MapReduce engine treats it like a task failure, so a bad payload fails
/// the task instead of reading out of bounds.
class SerdeUnderflow : public std::runtime_error {
 public:
  explicit SerdeUnderflow(const std::string& what)
      : std::runtime_error(what) {}
};

/// An append-only byte buffer used as a serialization target.
class ByteSink {
 public:
  void Append(const void* data, size_t size) {
    if (size == 0) {
      return;  // `data` may be null (e.g. an empty vector's data()).
    }
    const auto* bytes = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + size);
  }

  template <typename T>
  void AppendRaw(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Append(&value, sizeof(T));
  }

  size_t size() const { return buffer_.size(); }
  const uint8_t* data() const { return buffer_.data(); }
  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }

  /// Empties the buffer but keeps its capacity (arena reuse across
  /// map-task retries).
  void Clear() { buffer_.clear(); }

 private:
  std::vector<uint8_t> buffer_;
};

/// A sequential reader over a byte buffer produced by ByteSink.
class ByteSource {
 public:
  ByteSource(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteSource(const std::vector<uint8_t>& buffer)
      : data_(buffer.data()), size_(buffer.size()) {}

  void Read(void* out, size_t size) {
    if (size > size_ - pos_) {  // pos_ <= size_ always holds.
      throw SerdeUnderflow("serde underflow: need " + std::to_string(size) +
                           " bytes, " + std::to_string(size_ - pos_) +
                           " remaining");
    }
    if (size == 0) {
      return;  // `out` may be null (e.g. an empty vector's data()).
    }
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
  }

  template <typename T>
  T ReadRaw() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    Read(&value, sizeof(T));
    return value;
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

namespace serde_internal {

/// Validates a length prefix read from untrusted bytes: `count` elements
/// of `elem_size` bytes each must fit in the source's remaining bytes.
/// The division form makes the check immune to `count * elem_size`
/// overflowing uint64 (a corrupt length near 2^64 must underflow, not
/// wrap around to a small allocation). Returns the byte total.
inline uint64_t CheckedLengthBytes(uint64_t count, uint64_t elem_size,
                                   const ByteSource& source,
                                   const char* what) {
  if (count > source.remaining() / elem_size) {
    throw SerdeUnderflow(std::string("serde underflow: ") + what +
                         " length " + std::to_string(count) +
                         " exceeds remaining " +
                         std::to_string(source.remaining()));
  }
  return count * elem_size;  // <= remaining(), so this cannot overflow.
}

/// Caps a container reservation made from an untrusted length prefix.
/// Elements still underflow individually while being read; this only
/// bounds the up-front allocation so a corrupt length cannot demand
/// `count * sizeof(T)` bytes before the first element read fails.
inline size_t BoundedReserve(uint64_t count, const ByteSource& source) {
  constexpr uint64_t kMaxUpFront = 1024;
  return static_cast<size_t>(std::min(
      count, std::min<uint64_t>(source.remaining(), kMaxUpFront)));
}

}  // namespace serde_internal

template <typename T, typename Enable = void>
struct Serde;

/// Arithmetic types and enums: raw little-endian bytes.
template <typename T>
struct Serde<T, std::enable_if_t<std::is_arithmetic_v<T> || std::is_enum_v<T>>> {
  static void Write(const T& value, ByteSink* sink) { sink->AppendRaw(value); }
  static T Read(ByteSource* source) { return source->ReadRaw<T>(); }
};

template <>
struct Serde<std::string> {
  static void Write(const std::string& value, ByteSink* sink) {
    sink->AppendRaw<uint64_t>(value.size());
    sink->Append(value.data(), value.size());
  }
  static std::string Read(ByteSource* source) {
    const auto size = source->ReadRaw<uint64_t>();
    serde_internal::CheckedLengthBytes(size, 1, *source, "string");
    std::string out(size, '\0');
    source->Read(out.data(), size);
    return out;
  }
};

template <typename A, typename B>
struct Serde<std::pair<A, B>> {
  static void Write(const std::pair<A, B>& value, ByteSink* sink) {
    Serde<A>::Write(value.first, sink);
    Serde<B>::Write(value.second, sink);
  }
  static std::pair<A, B> Read(ByteSource* source) {
    A first = Serde<A>::Read(source);
    B second = Serde<B>::Read(source);
    return {std::move(first), std::move(second)};
  }
};

template <typename T>
struct Serde<std::vector<T>> {
  static void Write(const std::vector<T>& value, ByteSink* sink) {
    sink->AppendRaw<uint64_t>(value.size());
    if constexpr (std::is_trivially_copyable_v<T>) {
      sink->Append(value.data(), value.size() * sizeof(T));
    } else {
      for (const T& item : value) {
        Serde<T>::Write(item, sink);
      }
    }
  }
  static std::vector<T> Read(ByteSource* source) {
    const auto size = source->ReadRaw<uint64_t>();
    std::vector<T> out;
    if constexpr (std::is_trivially_copyable_v<T>) {
      const uint64_t bytes =
          serde_internal::CheckedLengthBytes(size, sizeof(T), *source,
                                             "vector");
      out.resize(size);
      source->Read(out.data(), bytes);
    } else {
      // Element reads underflow on their own; just bound the reservation
      // so a corrupt length cannot force a huge allocation up front.
      out.reserve(serde_internal::BoundedReserve(size, *source));
      for (uint64_t i = 0; i < size; ++i) {
        out.push_back(Serde<T>::Read(source));
      }
    }
    return out;
  }
};

template <>
struct Serde<DynamicBitset> {
  static void Write(const DynamicBitset& value, ByteSink* sink) {
    sink->AppendRaw<uint64_t>(value.size());
    sink->Append(value.words().data(),
                 value.words().size() * sizeof(uint64_t));
  }
  static DynamicBitset Read(ByteSource* source) {
    const auto size = source->ReadRaw<uint64_t>();
    // size / 64 (not (size + 63) / 64) so a bit count near 2^64 cannot
    // wrap the word count around to a small number.
    const uint64_t word_count = size / 64 + (size % 64 != 0 ? 1 : 0);
    serde_internal::CheckedLengthBytes(word_count, sizeof(uint64_t), *source,
                                       "bitset");
    std::vector<uint64_t> words(word_count);
    source->Read(words.data(), words.size() * sizeof(uint64_t));
    return DynamicBitset::FromWords(size, std::move(words));
  }
};

/// Serializes a value to a standalone byte vector.
template <typename T>
std::vector<uint8_t> SerializeToBytes(const T& value) {
  ByteSink sink;
  Serde<T>::Write(value, &sink);
  return sink.TakeBuffer();
}

/// Deserializes a value previously produced by SerializeToBytes.
template <typename T>
T DeserializeFromBytes(const std::vector<uint8_t>& bytes) {
  ByteSource source(bytes);
  return Serde<T>::Read(&source);
}

/// Exact encoded size of a value, used for shuffle byte accounting.
template <typename T>
size_t SerializedByteSize(const T& value) {
  ByteSink sink;
  Serde<T>::Write(value, &sink);
  return sink.size();
}

}  // namespace skymr

#endif  // SKYMR_COMMON_SERDE_H_
