#include "src/common/thread_pool.h"

#include <algorithm>

namespace skymr {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_tasks_ == 0; });
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutting down.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_tasks_;
      if (queue_.empty() && active_tasks_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& fn) {
  for (int i = 0; i < count; ++i) {
    pool->Submit([&fn, i] { fn(i); });
  }
  pool->WaitIdle();
}

}  // namespace skymr
