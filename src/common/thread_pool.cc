#include "src/common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

namespace skymr {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  // Manual predicate loop (not a lambda) so the thread-safety analysis
  // sees the guarded reads happen under mutex_.
  while (!queue_.empty() || active_tasks_ != 0) {
    all_done_.wait(lock);
  }
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) {
      return false;
    }
    task = std::move(queue_.front());
    queue_.pop_front();
    ++active_tasks_;
  }
  RunTask(std::move(task));
  return true;
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::RunTask(std::function<void()> task) {
  // Caller has already incremented active_tasks_ while popping `task`.
  task();
  std::lock_guard<std::mutex> lock(mutex_);
  --active_tasks_;
  if (queue_.empty() && active_tasks_ == 0) {
    all_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!shutting_down_ && queue_.empty()) {
        work_available_.wait(lock);
      }
      if (queue_.empty()) {
        return;  // Shutting down and fully drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_tasks_;
    }
    RunTask(std::move(task));
  }
}

void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& fn) {
  if (count <= 0) {
    return;
  }
  // Per-call completion state. A pool-wide WaitIdle would (a) wait on
  // unrelated tasks when several ParallelFor calls share the pool and
  // (b) deadlock when called from inside a task, because the caller
  // itself counts as active. Tracking exactly our `count` tasks — and
  // helping run queued work while waiting — fixes both.
  struct CallState {
    std::mutex mutex;
    std::condition_variable done;
    int remaining = 0;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<CallState>();
  state->remaining = count;

  for (int i = 0; i < count; ++i) {
    // `fn` is captured by reference: ParallelFor does not return before
    // every wrapper has finished, so the reference cannot dangle.
    pool->Submit([state, &fn, i] {
      std::exception_ptr error;
      try {
        fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->mutex);
      if (error != nullptr && state->first_error == nullptr) {
        state->first_error = error;
      }
      if (--state->remaining == 0) {
        state->done.notify_all();
      }
    });
  }

  while (true) {
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (state->remaining == 0) {
        break;
      }
    }
    if (pool->TryRunOneTask()) {
      continue;  // Helped drain the queue; re-check completion.
    }
    // Queue momentarily empty: all of this call's tasks are running on
    // other threads (any nested ParallelFor they start helps itself), so
    // blocking here cannot deadlock.
    std::unique_lock<std::mutex> lock(state->mutex);
    while (state->remaining != 0) {
      state->done.wait(lock);
    }
    break;
  }

  if (state->first_error != nullptr) {
    std::rethrow_exception(state->first_error);
  }
}

}  // namespace skymr
