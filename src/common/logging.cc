#include "src/common/logging.h"

#include <atomic>
#include <mutex>

namespace skymr {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;
std::atomic<internal::FatalHook> g_fatal_hook{nullptr};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

void SetFatalHook(FatalHook hook) {
  g_fatal_hook.store(hook, std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  // Assemble the full line — newline included — before touching the sink,
  // then emit it with one insert: a single write that other threads (and,
  // since stderr is unbuffered, other processes sharing the fd) cannot
  // split mid-line. See the flush policy note in logging.h.
  stream_ << '\n';
  const std::string line = stream_.str();
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << line;
  }
  if (level_ == LogLevel::kFatal) {
    // Give the flight recorder its last chance to dump before the abort;
    // the hook is cleared first so a hook that itself fatals cannot
    // recurse.
    if (FatalHook hook =
            g_fatal_hook.exchange(nullptr, std::memory_order_acq_rel)) {
      hook();
    }
    std::abort();
  }
}

}  // namespace internal
}  // namespace skymr
