#include "src/common/dynamic_bitset.h"

#include <algorithm>
#include <cassert>

namespace skymr {

DynamicBitset::DynamicBitset(size_t size)
    : size_(size), words_((size + 63) / 64, 0) {}

DynamicBitset DynamicBitset::FromString(const std::string& bits) {
  DynamicBitset out(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    assert(bits[i] == '0' || bits[i] == '1');
    if (bits[i] == '1') {
      out.Set(i);
    }
  }
  return out;
}

DynamicBitset DynamicBitset::FromWords(size_t size,
                                       std::vector<uint64_t> words) {
  assert(words.size() == (size + 63) / 64);
  DynamicBitset out;
  out.size_ = size;
  out.words_ = std::move(words);
  out.TrimTail();
  return out;
}

void DynamicBitset::Clear() { std::fill(words_.begin(), words_.end(), 0); }

void DynamicBitset::Fill() {
  std::fill(words_.begin(), words_.end(), ~uint64_t{0});
  TrimTail();
}

void DynamicBitset::TrimTail() {
  const size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail) - 1;
  }
}

size_t DynamicBitset::Count() const {
  size_t count = 0;
  for (uint64_t word : words_) {
    count += static_cast<size_t>(__builtin_popcountll(word));
  }
  return count;
}

bool DynamicBitset::None() const {
  for (uint64_t word : words_) {
    if (word != 0) {
      return false;
    }
  }
  return true;
}

bool DynamicBitset::All() const { return Count() == size_; }

size_t DynamicBitset::FindFirst() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * 64 + static_cast<size_t>(__builtin_ctzll(words_[w]));
    }
  }
  return size_;
}

size_t DynamicBitset::FindNext(size_t index) const {
  if (index + 1 >= size_) {
    return size_;
  }
  size_t w = (index + 1) >> 6;
  uint64_t word = words_[w] & (~uint64_t{0} << ((index + 1) & 63));
  while (true) {
    if (word != 0) {
      return w * 64 + static_cast<size_t>(__builtin_ctzll(word));
    }
    ++w;
    if (w >= words_.size()) {
      return size_;
    }
    word = words_[w];
  }
}

size_t DynamicBitset::FindLast() const {
  for (size_t w = words_.size(); w-- > 0;) {
    if (words_[w] != 0) {
      return w * 64 + 63 - static_cast<size_t>(__builtin_clzll(words_[w]));
    }
  }
  return size_;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t w = 0; w < words_.size(); ++w) {
    words_[w] |= other.words_[w];
  }
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= other.words_[w];
  }
  return *this;
}

DynamicBitset& DynamicBitset::AndNot(const DynamicBitset& other) {
  assert(size_ == other.size_);
  for (size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= ~other.words_[w];
  }
  return *this;
}

bool DynamicBitset::operator==(const DynamicBitset& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

std::string DynamicBitset::ToString() const {
  std::string out(size_, '0');
  ForEachSetBit([&out](size_t i) { out[i] = '1'; });
  return out;
}

}  // namespace skymr
