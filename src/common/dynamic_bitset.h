// DynamicBitset: a runtime-sized bitset with the word-level operations the
// partition bitstring (Section 3.2 of the paper) needs: bitwise OR merge,
// population count, and fast iteration over set bits.

#ifndef SKYMR_COMMON_DYNAMIC_BITSET_H_
#define SKYMR_COMMON_DYNAMIC_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace skymr {

/// A fixed-size-at-construction bitset backed by 64-bit words.
class DynamicBitset {
 public:
  /// Creates an empty bitset (size 0).
  DynamicBitset() = default;

  /// Creates a bitset with `size` bits, all cleared.
  explicit DynamicBitset(size_t size);

  /// Creates a bitset from a string of '0'/'1' characters, index 0 first.
  static DynamicBitset FromString(const std::string& bits);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Returns bit `index`. Precondition: index < size().
  bool Test(size_t index) const {
    return (words_[index >> 6] >> (index & 63)) & 1u;
  }

  /// Sets bit `index` to 1.
  void Set(size_t index) { words_[index >> 6] |= uint64_t{1} << (index & 63); }

  /// Sets bit `index` to 0.
  void Reset(size_t index) {
    words_[index >> 6] &= ~(uint64_t{1} << (index & 63));
  }

  /// Sets bit `index` to `value`.
  void Assign(size_t index, bool value) {
    if (value) {
      Set(index);
    } else {
      Reset(index);
    }
  }

  /// Clears all bits.
  void Clear();

  /// Sets all bits.
  void Fill();

  /// Number of set bits.
  size_t Count() const;

  /// True when no bit is set.
  bool None() const;

  /// True when every bit is set.
  bool All() const;

  /// Index of the first set bit, or size() when none.
  size_t FindFirst() const;

  /// Index of the first set bit strictly after `index`, or size() when none.
  size_t FindNext(size_t index) const;

  /// Index of the last set bit, or size() when none.
  size_t FindLast() const;

  /// Bitwise OR with `other`. Precondition: same size.
  DynamicBitset& operator|=(const DynamicBitset& other);

  /// Bitwise AND with `other`. Precondition: same size.
  DynamicBitset& operator&=(const DynamicBitset& other);

  /// Bitwise AND-NOT (this &= ~other). Precondition: same size.
  DynamicBitset& AndNot(const DynamicBitset& other);

  bool operator==(const DynamicBitset& other) const;
  bool operator!=(const DynamicBitset& other) const {
    return !(*this == other);
  }

  /// Calls `fn(index)` for every set bit in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Renders the bitset as a '0'/'1' string, index 0 first (as the paper
  /// writes bitstrings, e.g. "011110100" for Figure 2).
  std::string ToString() const;

  /// Number of bytes this bitset occupies on the wire.
  size_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

  const std::vector<uint64_t>& words() const { return words_; }
  std::vector<uint64_t>& mutable_words() { return words_; }

  /// Rebuilds a bitset from its word representation.
  static DynamicBitset FromWords(size_t size, std::vector<uint64_t> words);

 private:
  /// Zeroes the unused high bits of the last word.
  void TrimTail();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace skymr

#endif  // SKYMR_COMMON_DYNAMIC_BITSET_H_
