// Stopwatch: wall-clock timing for task metrics and benchmarks.

#ifndef SKYMR_COMMON_STOPWATCH_H_
#define SKYMR_COMMON_STOPWATCH_H_

#include <chrono>

namespace skymr {

/// Measures elapsed wall time with steady_clock resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace skymr

#endif  // SKYMR_COMMON_STOPWATCH_H_
