// Minimal CSV reading/writing for dataset import/export and experiment
// output. Handles quoted fields, embedded commas, and CRLF line endings.

#ifndef SKYMR_COMMON_CSV_H_
#define SKYMR_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace skymr {

/// Parses one CSV line into fields. Supports RFC-4180 double quoting.
std::vector<std::string> ParseCsvLine(const std::string& line);

/// Joins fields into one CSV line, quoting fields that need it.
std::string FormatCsvLine(const std::vector<std::string>& fields);

/// Parses CSV text into rows of fields. Skips empty lines. Untrusted
/// input is fine: any byte sequence yields rows or a Status, never a
/// crash.
StatusOr<std::vector<std::vector<std::string>>> ParseCsvText(
    std::string_view text);

/// Reads a whole CSV file into rows of fields. Skips empty lines.
StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Writes rows of fields to a CSV file, overwriting it.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace skymr

#endif  // SKYMR_COMMON_CSV_H_
