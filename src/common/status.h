// Status and StatusOr: lightweight error propagation without exceptions.
//
// Modeled after the absl::Status idiom used across database codebases
// (Arrow, RocksDB): functions that can fail return Status or StatusOr<T>,
// callers branch on ok().

#ifndef SKYMR_COMMON_STATUS_H_
#define SKYMR_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace skymr {

/// Error categories used throughout the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result carrying a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error result. Access to value() requires ok().
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok() && "value() called on non-OK StatusOr");
    return *value_;
  }
  T& value() & {
    assert(ok() && "value() called on non-OK StatusOr");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "value() called on non-OK StatusOr");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace skymr

/// Propagates a non-OK Status from an expression to the caller.
#define SKYMR_RETURN_IF_ERROR(expr)           \
  do {                                        \
    ::skymr::Status _skymr_status = (expr);   \
    if (!_skymr_status.ok()) {                \
      return _skymr_status;                   \
    }                                         \
  } while (false)

#endif  // SKYMR_COMMON_STATUS_H_
