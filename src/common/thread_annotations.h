// Clang thread-safety-analysis annotations (no-ops on other compilers).
//
// The macros attach lock requirements to data members and functions so
// `-Wthread-safety` can prove, at compile time, that every access to
// shared engine state happens under the right mutex. GCC and MSVC define
// them away, so annotated code builds everywhere; the Clang CI
// configuration turns violations into errors.
//
// Usage:
//   std::mutex mutex_;
//   int queued_ SKYMR_GUARDED_BY(mutex_) = 0;
//   void Drain() SKYMR_EXCLUDES(mutex_);
//   void DrainLocked() SKYMR_REQUIRES(mutex_);

#ifndef SKYMR_COMMON_THREAD_ANNOTATIONS_H_
#define SKYMR_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SKYMR_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SKYMR_THREAD_ANNOTATION__(x)
#endif

/// Data member: may only be read or written while holding `x`.
#define SKYMR_GUARDED_BY(x) SKYMR_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member: the *pointee* is protected by `x` (the pointer itself
/// is not).
#define SKYMR_PT_GUARDED_BY(x) SKYMR_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function: caller must already hold the listed capabilities.
#define SKYMR_REQUIRES(...) \
  SKYMR_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function: caller must NOT hold the listed capabilities (the function
/// acquires them itself; calling with them held would deadlock).
#define SKYMR_EXCLUDES(...) \
  SKYMR_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function: acquires the listed capabilities and returns holding them.
#define SKYMR_ACQUIRE(...) \
  SKYMR_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function: releases the listed capabilities.
#define SKYMR_RELEASE(...) \
  SKYMR_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Type: behaves as a lockable capability (mutex wrappers).
#define SKYMR_CAPABILITY(x) SKYMR_THREAD_ANNOTATION__(capability(x))

/// Type: RAII object that acquires a capability for its lifetime.
#define SKYMR_SCOPED_CAPABILITY SKYMR_THREAD_ANNOTATION__(scoped_lockable)

/// Function return value: returns a reference to the named capability.
#define SKYMR_RETURN_CAPABILITY(x) \
  SKYMR_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch for code the analysis cannot model (e.g. handoff through
/// a condition variable predicate). Use sparingly and document why.
#define SKYMR_NO_THREAD_SAFETY_ANALYSIS \
  SKYMR_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // SKYMR_COMMON_THREAD_ANNOTATIONS_H_
