// Small integer math helpers shared by the grid and the cost model.

#ifndef SKYMR_COMMON_MATH_UTIL_H_
#define SKYMR_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <limits>
#include <optional>

namespace skymr {

/// base^exp over uint64 with overflow detection; nullopt on overflow.
inline std::optional<uint64_t> CheckedPow(uint64_t base, uint32_t exp) {
  uint64_t result = 1;
  for (uint32_t i = 0; i < exp; ++i) {
    if (base != 0 && result > std::numeric_limits<uint64_t>::max() / base) {
      return std::nullopt;
    }
    result *= base;
  }
  return result;
}

/// base^exp over uint64; callers must know the result fits.
inline uint64_t PowU64(uint64_t base, uint32_t exp) {
  uint64_t result = 1;
  for (uint32_t i = 0; i < exp; ++i) {
    result *= base;
  }
  return result;
}

/// Ceiling division for non-negative integers.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// Integer floor of the d-th root of c: the largest n with n^d <= c.
inline uint64_t FloorRoot(uint64_t c, uint32_t d) {
  if (d == 0 || c == 0) {
    return 0;
  }
  if (d == 1) {
    return c;
  }
  uint64_t lo = 1;
  uint64_t hi = c;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo + 1) / 2;
    const std::optional<uint64_t> p = CheckedPow(mid, d);
    if (p.has_value() && *p <= c) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace skymr

#endif  // SKYMR_COMMON_MATH_UTIL_H_
