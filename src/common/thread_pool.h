// A fixed-size worker pool used by the MapReduce engine to run map and
// reduce tasks concurrently.

#ifndef SKYMR_COMMON_THREAD_POOL_H_
#define SKYMR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace skymr {

/// Fixed-size thread pool with a Submit/WaitIdle interface.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Default parallelism: hardware concurrency, at least 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_tasks_ = 0;
  bool shutting_down_ = false;
};

/// Runs `count` indexed tasks on `pool` and waits for all of them.
/// `fn(i)` is invoked once for each i in [0, count).
void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& fn);

}  // namespace skymr

#endif  // SKYMR_COMMON_THREAD_POOL_H_
