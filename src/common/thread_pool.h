// A fixed-size worker pool used by the MapReduce engine to run map and
// reduce tasks concurrently.
//
// Concurrency contract (checked by Clang -Wthread-safety and by the TSan
// configuration of the test suite):
//  * Submit/WaitIdle/TryRunOneTask are safe to call from any thread,
//    including from inside a running task.
//  * ParallelFor tracks completion per call, so concurrent ParallelFor
//    calls on a shared pool do not wait on each other's tasks, and a task
//    may itself call ParallelFor (nested parallelism): the waiting thread
//    helps execute queued tasks instead of blocking a worker slot, which
//    is what makes nesting deadlock-free even on a 1-thread pool.
//  * Exceptions thrown by a ParallelFor body are caught, the remaining
//    indices still run, and the first exception is rethrown to the
//    caller. Tasks passed to raw Submit must not throw.

#ifndef SKYMR_COMMON_THREAD_POOL_H_
#define SKYMR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"

namespace skymr {

/// Fixed-size thread pool with a Submit/WaitIdle interface.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (minimum 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution. The task must not throw.
  void Submit(std::function<void()> task) SKYMR_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished. Note this waits for
  /// *global* idleness; per-call completion is what ParallelFor tracks.
  /// Must not be called from inside a task (the calling task itself
  /// counts as active, so it would never return).
  void WaitIdle() SKYMR_EXCLUDES(mutex_);

  /// Dequeues and runs one pending task on the calling thread. Returns
  /// false when the queue was empty. Lets waiting threads help drain the
  /// queue (see ParallelFor) instead of occupying a worker.
  bool TryRunOneTask() SKYMR_EXCLUDES(mutex_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Default parallelism: hardware concurrency, at least 1.
  static int DefaultThreads();

 private:
  void WorkerLoop() SKYMR_EXCLUDES(mutex_);

  /// Runs `task` and maintains the active count / idle signal around it.
  void RunTask(std::function<void()> task) SKYMR_EXCLUDES(mutex_);

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_ SKYMR_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
  int active_tasks_ SKYMR_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ SKYMR_GUARDED_BY(mutex_) = false;
};

/// Runs `count` indexed tasks on `pool` and waits for exactly those tasks
/// to finish. `fn(i)` is invoked once for each i in [0, count). Safe to
/// call concurrently from multiple threads and from inside pool tasks;
/// the first exception thrown by `fn` is rethrown after all indices ran.
void ParallelFor(ThreadPool* pool, int count,
                 const std::function<void(int)>& fn);

}  // namespace skymr

#endif  // SKYMR_COMMON_THREAD_POOL_H_
