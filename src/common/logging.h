// Minimal leveled logger with a process-wide level and stream sink.
//
// Usage:
//   SKYMR_LOG(INFO) << "job finished in " << secs << "s";
// Levels below the global threshold are compiled into a no-op branch.

#ifndef SKYMR_COMMON_LOGGING_H_
#define SKYMR_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace skymr {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Returns the process-wide minimum level that is emitted.
LogLevel GetLogLevel();

/// Sets the process-wide minimum level. Thread-safe (relaxed atomic).
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement whose level is below the threshold.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace skymr

#define SKYMR_LOG_LEVEL_DEBUG ::skymr::LogLevel::kDebug
#define SKYMR_LOG_LEVEL_INFO ::skymr::LogLevel::kInfo
#define SKYMR_LOG_LEVEL_WARNING ::skymr::LogLevel::kWarning
#define SKYMR_LOG_LEVEL_ERROR ::skymr::LogLevel::kError
#define SKYMR_LOG_LEVEL_FATAL ::skymr::LogLevel::kFatal

#define SKYMR_LOG(severity)                                       \
  (SKYMR_LOG_LEVEL_##severity < ::skymr::GetLogLevel())           \
      ? (void)0                                                   \
      : ::skymr::internal::LogMessageVoidify() &                  \
            ::skymr::internal::LogMessage(SKYMR_LOG_LEVEL_##severity, \
                                          __FILE__, __LINE__)     \
                .stream()

/// Always-on invariant check: aborts with a message when `cond` is false.
#define SKYMR_CHECK(cond)                                              \
  (cond) ? (void)0                                                     \
         : ::skymr::internal::LogMessageVoidify() &                    \
               ::skymr::internal::LogMessage(SKYMR_LOG_LEVEL_FATAL,    \
                                             __FILE__, __LINE__)       \
                   .stream()                                           \
               << "Check failed: " #cond " "

#endif  // SKYMR_COMMON_LOGGING_H_
