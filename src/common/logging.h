// Minimal leveled logger with a process-wide level and stream sink.
//
// Usage:
//   SKYMR_LOG(INFO) << "job finished in " << secs << "s";
// Levels below the global threshold are compiled into a no-op branch.
//
// Emission and flush policy: each statement assembles its complete line
// (prefix, message, trailing '\n') in a private buffer and emits it with a
// single std::cerr insert under a process-wide mutex, so concurrent
// ThreadPool tasks can never interleave fragments of two lines. std::cerr
// is unit-buffered, so the single insert also flushes the line; there is
// no separate flush step and no buffering across lines.

#ifndef SKYMR_COMMON_LOGGING_H_
#define SKYMR_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace skymr {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Returns the process-wide minimum level that is emitted.
LogLevel GetLogLevel();

/// Sets the process-wide minimum level. Thread-safe (relaxed atomic).
void SetLogLevel(LogLevel level);

namespace internal {

/// Callback invoked once, right before a fatal log statement aborts the
/// process. The observability layer registers a flight-recorder dump
/// here (obs::Logger::InstallAsFatalDumper) so SKYMR_CHECK failures
/// leave a post-mortem trail. The hook must be async-signal-tolerant in
/// spirit: no throwing, no further fatal logging.
using FatalHook = void (*)();

/// Installs `hook` (nullptr clears). Thread-safe (relaxed atomic).
void SetFatalHook(FatalHook hook);

/// Accumulates one log line and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows a log statement whose level is below the threshold.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace skymr

#define SKYMR_LOG_LEVEL_DEBUG ::skymr::LogLevel::kDebug
#define SKYMR_LOG_LEVEL_INFO ::skymr::LogLevel::kInfo
#define SKYMR_LOG_LEVEL_WARNING ::skymr::LogLevel::kWarning
#define SKYMR_LOG_LEVEL_ERROR ::skymr::LogLevel::kError
#define SKYMR_LOG_LEVEL_FATAL ::skymr::LogLevel::kFatal

#define SKYMR_LOG(severity)                                       \
  (SKYMR_LOG_LEVEL_##severity < ::skymr::GetLogLevel())           \
      ? (void)0                                                   \
      : ::skymr::internal::LogMessageVoidify() &                  \
            ::skymr::internal::LogMessage(SKYMR_LOG_LEVEL_##severity, \
                                          __FILE__, __LINE__)     \
                .stream()

/// Always-on invariant check: aborts with a message when `cond` is false.
#define SKYMR_CHECK(cond)                                              \
  (cond) ? (void)0                                                     \
         : ::skymr::internal::LogMessageVoidify() &                    \
               ::skymr::internal::LogMessage(SKYMR_LOG_LEVEL_FATAL,    \
                                             __FILE__, __LINE__)       \
                   .stream()                                           \
               << "Check failed: " #cond " "

// Debug-only checks guard hot-path invariants (grid cell ranges,
// bitstring sizes, group coverage) that are too expensive for release
// builds. They are on in debug builds and whenever SKYMR_FORCE_DCHECKS
// is defined — the sanitizer CMake configurations define it so
// ASan/UBSan/TSan CI exercises every invariant.
#if !defined(NDEBUG) || defined(SKYMR_FORCE_DCHECKS)
#define SKYMR_DCHECK_IS_ON 1
#else
#define SKYMR_DCHECK_IS_ON 0
#endif

#if SKYMR_DCHECK_IS_ON
#define SKYMR_DCHECK(cond) SKYMR_CHECK(cond)
#else
// `true || (cond)` keeps `cond` compiled (names stay checked and used)
// while the short-circuit guarantees it is never evaluated; the dead
// branch — including streamed operands — folds away entirely.
#define SKYMR_DCHECK(cond) SKYMR_CHECK(true || (cond))
#endif

namespace skymr {

/// Runtime view of SKYMR_DCHECK_IS_ON, for gating verification passes
/// too expensive to hide behind a single macro expression.
inline constexpr bool DchecksEnabled() { return SKYMR_DCHECK_IS_ON != 0; }

}  // namespace skymr

#endif  // SKYMR_COMMON_LOGGING_H_
