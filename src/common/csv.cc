#include "src/common/csv.h"

#include <fstream>
#include <sstream>

namespace skymr {

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else {
      if (c == '"') {
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(current));
        current.clear();
      } else if (c == '\r' && i + 1 == line.size()) {
        // Trailing CR from a CRLF file: drop it.
      } else {
        current.push_back(c);
      }
    }
    ++i;
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string FormatCsvLine(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    const std::string& field = fields[i];
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (needs_quotes) {
      out.push_back('"');
      for (const char c : field) {
        if (c == '"') {
          out.push_back('"');
        }
        out.push_back(c);
      }
      out.push_back('"');
    } else {
      out += field;
    }
  }
  return out;
}

StatusOr<std::vector<std::vector<std::string>>> ParseCsvText(
    std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) {
      if (begin == text.size()) {
        break;  // No trailing fragment after the last newline.
      }
      end = text.size();
    }
    const std::string line(text.substr(begin, end - begin));
    begin = end + 1;
    if (line.empty() || (line.size() == 1 && line[0] == '\r')) {
      continue;
    }
    rows.push_back(ParseCsvLine(line));
  }
  return rows;
}

StatusOr<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("failed reading " + path);
  }
  return ParseCsvText(buffer.str());
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  for (const auto& row : rows) {
    out << FormatCsvLine(row) << '\n';
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace skymr
