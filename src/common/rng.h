// Deterministic pseudo-random number generation (xoshiro256++) used by the
// data generators and tests. Seeded generators are fully reproducible across
// platforms, which the experiment harness relies on.

#ifndef SKYMR_COMMON_RNG_H_
#define SKYMR_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace skymr {

/// xoshiro256++ generator with splitmix64 seeding.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      state_[i] = SplitMix64(&x);
    }
    has_gaussian_ = false;
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(NextU64()) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(NextU64()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (cached second draw).
  double NextGaussian() {
    if (has_gaussian_) {
      has_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = NextDouble();
    while (u1 <= 1e-300) {
      u1 = NextDouble();
    }
    const double u2 = NextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_gaussian_ = radius * std::sin(theta);
    has_gaussian_ = true;
    return radius * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace skymr

#endif  // SKYMR_COMMON_RNG_H_
