// LocalKernelInput: the one input shape every local skyline kernel
// consumes. Callers hand a kernel either a whole dataset, a contiguous
// [begin, end) id range, or an explicit id subset; the adapter carries the
// shape so each algorithm (BNL / SFS / BBS) exposes a single entry point
// instead of re-declaring the three overloads per header.
//
// The range and whole-dataset shapes stay lazy — no id vector is
// materialized until a kernel asks for one via TakeIds() — so BNL's
// streaming scan over a range is as allocation-free as it was with the
// dedicated overload.

#ifndef SKYMR_LOCAL_KERNEL_INPUT_H_
#define SKYMR_LOCAL_KERNEL_INPUT_H_

#include <numeric>
#include <utility>
#include <vector>

#include "src/relation/dataset.h"

namespace skymr {

/// A reference to the tuples one local-kernel call runs over. Converting
/// constructors (intentionally implicit) let call sites write
/// `SfsSkyline(data)`, `SfsSkyline({data, begin, end})`, or
/// `SfsSkyline({data, ids})`. The referenced dataset (and id vector, for
/// the subset shape) must outlive the kernel call.
class LocalKernelInput {
 public:
  /// The whole dataset.
  LocalKernelInput(const Dataset& data)
      : data_(&data), begin_(0), end_(static_cast<TupleId>(data.size())) {}

  /// The contiguous id range [begin, end). Precondition: begin <= end and
  /// end <= data.size().
  LocalKernelInput(const Dataset& data, TupleId begin, TupleId end)
      : data_(&data), begin_(begin), end_(end) {}

  /// An explicit id subset, visited in the given order.
  LocalKernelInput(const Dataset& data, std::vector<TupleId> ids)
      : data_(&data), ids_(std::move(ids)), has_ids_(true) {}

  const Dataset& data() const { return *data_; }
  size_t dim() const { return data_->dim(); }

  size_t size() const {
    return has_ids_ ? ids_.size() : static_cast<size_t>(end_ - begin_);
  }
  bool empty() const { return size() == 0; }

  /// The i-th tuple id of this input. Precondition: i < size().
  TupleId IdAt(size_t i) const {
    return has_ids_ ? ids_[i] : begin_ + static_cast<TupleId>(i);
  }

  /// Row pointer of the i-th tuple. Precondition: i < size().
  const double* RowAt(size_t i) const { return data_->RowPtr(IdAt(i)); }

  /// Materializes the id list (moved out for the subset shape, an iota
  /// fill for the others). Kernels that reorder ids (SFS sort, BBS STR
  /// packing) take ownership this way instead of copying.
  std::vector<TupleId> TakeIds() && {
    if (has_ids_) {
      return std::move(ids_);
    }
    std::vector<TupleId> ids(size());
    std::iota(ids.begin(), ids.end(), begin_);
    return ids;
  }

 private:
  const Dataset* data_;
  TupleId begin_ = 0;
  TupleId end_ = 0;
  std::vector<TupleId> ids_;
  bool has_ids_ = false;
};

}  // namespace skymr

#endif  // SKYMR_LOCAL_KERNEL_INPUT_H_
