#include "src/local/bnl.h"

namespace skymr {

SkylineWindow BnlSkyline(const LocalKernelInput& input,
                         DominanceCounter* counter) {
  SkylineWindow window(input.dim());
  const size_t n = input.size();
  for (size_t i = 0; i < n; ++i) {
    window.Insert(input.RowAt(i), input.IdAt(i), counter);
  }
  return window;
}

}  // namespace skymr
