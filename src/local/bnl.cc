#include "src/local/bnl.h"

namespace skymr {

SkylineWindow BnlSkyline(const Dataset& data, TupleId begin, TupleId end,
                         DominanceCounter* counter) {
  SkylineWindow window(data.dim());
  for (TupleId id = begin; id < end; ++id) {
    window.Insert(data.RowPtr(id), id, counter);
  }
  return window;
}

SkylineWindow BnlSkyline(const Dataset& data, DominanceCounter* counter) {
  return BnlSkyline(data, 0, static_cast<TupleId>(data.size()), counter);
}

SkylineWindow BnlSkyline(const Dataset& data, const std::vector<TupleId>& ids,
                         DominanceCounter* counter) {
  SkylineWindow window(data.dim());
  for (const TupleId id : ids) {
    window.Insert(data.RowPtr(id), id, counter);
  }
  return window;
}

}  // namespace skymr
