// Naive O(n^2) skyline over a dataset range, as the most direct possible
// encoding of Definition 1. Tests use it as the ground truth.

#ifndef SKYMR_LOCAL_NAIVE_H_
#define SKYMR_LOCAL_NAIVE_H_

#include "src/local/skyline_window.h"
#include "src/relation/dataset.h"

namespace skymr {

/// Computes the skyline of tuples [begin, end) of `data` by checking every
/// tuple against every other.
SkylineWindow NaiveSkyline(const Dataset& data, TupleId begin, TupleId end,
                           DominanceCounter* counter = nullptr);

/// Computes the skyline of the whole dataset naively.
SkylineWindow NaiveSkyline(const Dataset& data,
                           DominanceCounter* counter = nullptr);

}  // namespace skymr

#endif  // SKYMR_LOCAL_NAIVE_H_
