// Packed static R-tree over a subset of dataset rows, bulk loaded with
// Sort-Tile-Recursive packing (Leutenegger et al., ICDE'97). Built once
// per partition and never updated, so the layout is pure arenas: flat
// node records, node-major MBR corner arrays, and a slot-major copy of
// the indexed rows so leaf blocks feed the AVX2 dominance kernel as one
// contiguous `rows` pointer. All arenas keep their capacity across
// Build() calls — one tree object per map task is the intended reuse
// pattern (same allocation-lean discipline as the shuffle buffers).
//
// Determinism: the STR sort breaks coordinate ties by tuple id and
// sibling lists are ordered by (mindist, node id), so the same id set
// always yields the same tree — retried map attempts rebuild it
// bit-identically.

#ifndef SKYMR_LOCAL_RTREE_H_
#define SKYMR_LOCAL_RTREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/relation/dataset.h"

namespace skymr {

/// STR packing parameters. The defaults match the dominance kernel's
/// sweet spot: 16-row leaf blocks amortize the block scan setup, and an
/// 8-way fanout keeps the tree shallow for the per-candidate descents.
struct RtreeOptions {
  uint32_t leaf_capacity = 16;
  uint32_t fanout = 8;
};

/// One packed node. For a leaf, [first, first + count) indexes the slot
/// arena (contiguous rows); for an internal node it indexes the child-id
/// arena (see StrRtree::ChildAt).
struct RtreeNode {
  uint32_t first = 0;
  uint32_t count = 0;
  bool leaf = false;
};

/// The bulk-loaded tree. Lookup-only after Build().
class StrRtree {
 public:
  /// (Re)builds the tree over `ids`, copying their rows into the slot
  /// arena in STR order. Accepts an empty id list (the tree becomes
  /// empty; root() must not be called). Previous contents are discarded
  /// but capacity is retained.
  void Build(const Dataset& data, std::vector<TupleId> ids,
             const RtreeOptions& options = RtreeOptions());

  bool empty() const { return slot_ids_.empty(); }
  /// Number of indexed rows.
  size_t size() const { return slot_ids_.size(); }
  size_t dim() const { return dim_; }
  size_t node_count() const { return nodes_.size(); }

  /// Root node id. Precondition: !empty().
  uint32_t root() const { return root_; }

  const RtreeNode& node(uint32_t id) const { return nodes_[id]; }
  /// Lower / upper MBR corner of a node (dim() doubles each).
  const double* NodeLo(uint32_t id) const { return &lo_[id * dim_]; }
  const double* NodeHi(uint32_t id) const { return &hi_[id * dim_]; }
  /// CoordinateSum of the lower MBR corner: a lower bound on the
  /// coordinate sum of every row in the subtree (the BBS mindist key).
  double NodeMindist(uint32_t id) const { return mindist_[id]; }
  /// i-th child id of an internal node, mindist-ascending. Precondition:
  /// !node.leaf and i < node.count.
  uint32_t ChildAt(const RtreeNode& node, uint32_t i) const {
    return children_[node.first + i];
  }

  /// Slot accessors (slots are STR positions, 0 .. size()-1).
  TupleId SlotId(uint32_t slot) const { return slot_ids_[slot]; }
  const double* SlotRow(uint32_t slot) const { return &rows_[slot * dim_]; }
  double SlotSum(uint32_t slot) const { return sums_[slot]; }
  /// Contiguous rows / precomputed sums of a leaf's slot run, in the
  /// dominance kernel's block layout. Precondition: node.leaf.
  const double* LeafRows(const RtreeNode& node) const {
    return &rows_[node.first * dim_];
  }
  const double* LeafSums(const RtreeNode& node) const {
    return &sums_[node.first];
  }

 private:
  size_t dim_ = 0;
  uint32_t root_ = 0;
  std::vector<RtreeNode> nodes_;
  std::vector<double> lo_;         // node-major lower corners
  std::vector<double> hi_;         // node-major upper corners
  std::vector<double> mindist_;    // per-node lower-corner sums
  std::vector<uint32_t> children_; // child-id arena for internal nodes
  std::vector<TupleId> slot_ids_;  // slot -> tuple id, STR order
  std::vector<double> rows_;       // slot-major row copies
  std::vector<double> sums_;       // per-slot coordinate sums
  std::vector<uint32_t> level_;    // Build() scratch: current level's ids
  std::vector<uint32_t> next_level_;
};

}  // namespace skymr

#endif  // SKYMR_LOCAL_RTREE_H_
