// SkylineWindow: the materialized local-skyline container shared by mappers
// and reducers, together with the paper's InsertTuple routine (Algorithm 4).
//
// A window owns its tuple values (flat row-major) plus the original tuple
// ids, so it can be serialized and shipped through the shuffle like the
// local skylines in the paper's Figures 4 and 5.
//
// Insert and RemoveDominatedBy run on the block dominance kernels
// (src/relation/dominance_kernel.h): one flat scan over the row-major
// storage classifies every window tuple against the candidate, and evicted
// rows are then removed in a replay of the original swap-remove sequence —
// the resulting row order and the reported comparison counts are identical
// to the scalar tuple-at-a-time implementation. Each row also carries its
// monotone coordinate-sum key (sums()), which lets RemoveDominatedBy and
// the reducer-side merges skip rows that provably cannot dominate.

#ifndef SKYMR_LOCAL_SKYLINE_WINDOW_H_
#define SKYMR_LOCAL_SKYLINE_WINDOW_H_

#include <cstddef>
#include <vector>

#include "src/common/serde.h"
#include "src/relation/dominance.h"
#include "src/relation/tuple.h"

namespace skymr {

/// A self-contained set of mutually non-dominated tuples.
class SkylineWindow {
 public:
  SkylineWindow() = default;
  explicit SkylineWindow(size_t dim) : dim_(dim) {}

  size_t dim() const { return dim_; }
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  const double* RowAt(size_t i) const { return &values_[i * dim_]; }
  TupleId IdAt(size_t i) const { return ids_[i]; }

  /// Algorithm 4 (InsertTuple): adds `row` unless it is dominated by a
  /// window tuple; removes window tuples dominated by `row`. Equal tuples
  /// do not dominate each other, so duplicates are retained.
  /// Returns true when the tuple was added. `counter` (optional) accrues
  /// one unit per tuple-dominance test performed.
  bool Insert(const double* row, TupleId id, DominanceCounter* counter);

  /// Appends a tuple without any dominance check (caller guarantees the
  /// window invariant, e.g. when deserializing a valid window).
  void AppendUnchecked(const double* row, TupleId id);

  /// Removes every tuple of this window that is dominated by some tuple of
  /// `other` (the critical operation of Algorithm 5, line 3).
  void RemoveDominatedBy(const SkylineWindow& other, DominanceCounter* counter);

  /// Removes tuples at positions where `keep` is false.
  void Filter(const std::vector<bool>& keep);

  const std::vector<TupleId>& ids() const { return ids_; }
  const std::vector<double>& values() const { return values_; }

  /// Per-row monotone dominance keys (CoordinateSum of each row), kept in
  /// step with the rows. Not serialized: recomputed on deserialization.
  const std::vector<double>& sums() const { return sums_; }

  /// Exact wire size when shipped through the shuffle.
  size_t ByteSize() const {
    return sizeof(uint64_t) * 3 + values_.size() * sizeof(double) +
           ids_.size() * sizeof(TupleId);
  }

  bool operator==(const SkylineWindow& other) const {
    return dim_ == other.dim_ && ids_ == other.ids_ &&
           values_ == other.values_;
  }

 private:
  friend struct Serde<SkylineWindow>;

  /// Removes the rows at the given ascending positions, replaying the
  /// swap-remove-with-recheck order of the scalar eviction loop so the
  /// surviving rows end up in exactly the same positions.
  void EvictAscending(const std::vector<uint32_t>& evicted);

  /// Rebuilds sums_ from values_ (after deserialization).
  void RecomputeSums();

  size_t dim_ = 0;
  std::vector<TupleId> ids_;
  std::vector<double> values_;  // Row-major, ids_.size() * dim_.
  std::vector<double> sums_;    // Per-row CoordinateSum, ids_.size().
};

template <>
struct Serde<SkylineWindow> {
  static void Write(const SkylineWindow& window, ByteSink* sink) {
    sink->AppendRaw<uint64_t>(window.dim_);
    Serde<std::vector<TupleId>>::Write(window.ids_, sink);
    Serde<std::vector<double>>::Write(window.values_, sink);
  }
  static SkylineWindow Read(ByteSource* source) {
    SkylineWindow out;
    out.dim_ = static_cast<size_t>(source->ReadRaw<uint64_t>());
    out.ids_ = Serde<std::vector<TupleId>>::Read(source);
    out.values_ = Serde<std::vector<double>>::Read(source);
    // Shape invariant: values_ is row-major ids_.size() x dim_. A payload
    // that decodes but violates it (corrupt or adversarial bytes) would
    // turn every later RowAt into an out-of-bounds read, so reject it
    // here like any other truncation.
    const uint64_t rows = out.ids_.size();
    if ((out.dim_ == 0 && !out.values_.empty()) ||
        (out.dim_ != 0 && (rows > out.values_.size() / out.dim_ ||
                           out.values_.size() != rows * out.dim_))) {
      throw SerdeUnderflow(
          "serde underflow: window shape mismatch: " +
          std::to_string(rows) + " ids x dim " + std::to_string(out.dim_) +
          " vs " + std::to_string(out.values_.size()) + " values");
    }
    out.RecomputeSums();
    return out;
  }
};

}  // namespace skymr

#endif  // SKYMR_LOCAL_SKYLINE_WINDOW_H_
