// Block Nested Loop skyline (Börzsönyi et al., ICDE'01) over an in-memory
// dataset range. This is the local skyline algorithm the paper's mappers
// run (Algorithm 3 uses InsertTuple, which is BNL's window maintenance).

#ifndef SKYMR_LOCAL_BNL_H_
#define SKYMR_LOCAL_BNL_H_

#include <vector>

#include "src/local/skyline_window.h"
#include "src/relation/dataset.h"

namespace skymr {

/// Computes the skyline of tuples [begin, end) of `data` via BNL.
SkylineWindow BnlSkyline(const Dataset& data, TupleId begin, TupleId end,
                         DominanceCounter* counter = nullptr);

/// Computes the skyline of the whole dataset via BNL.
SkylineWindow BnlSkyline(const Dataset& data,
                         DominanceCounter* counter = nullptr);

/// Computes the skyline of an explicit id subset via BNL.
SkylineWindow BnlSkyline(const Dataset& data, const std::vector<TupleId>& ids,
                         DominanceCounter* counter = nullptr);

}  // namespace skymr

#endif  // SKYMR_LOCAL_BNL_H_
