// Block Nested Loop skyline (Börzsönyi et al., ICDE'01) over an in-memory
// dataset range. This is the local skyline algorithm the paper's mappers
// run (Algorithm 3 uses InsertTuple, which is BNL's window maintenance).

#ifndef SKYMR_LOCAL_BNL_H_
#define SKYMR_LOCAL_BNL_H_

#include "src/local/kernel_input.h"
#include "src/local/skyline_window.h"

namespace skymr {

/// Computes the skyline of `input` via BNL. Call sites pass a whole
/// dataset, `{data, begin, end}`, or `{data, ids}` (LocalKernelInput
/// converts from all three shapes); tuples stream through the window in
/// input order without materializing an id list.
SkylineWindow BnlSkyline(const LocalKernelInput& input,
                         DominanceCounter* counter = nullptr);

}  // namespace skymr

#endif  // SKYMR_LOCAL_BNL_H_
