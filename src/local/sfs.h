// Sort Filter Skyline (Chomicki et al., ICDE'03): presort by a monotone
// score so that no tuple can be dominated by a later one, then filter with
// one-directional checks. Used as an optimized local skyline algorithm and
// as the second correctness reference.

#ifndef SKYMR_LOCAL_SFS_H_
#define SKYMR_LOCAL_SFS_H_

#include "src/local/kernel_input.h"
#include "src/local/skyline_window.h"

namespace skymr {

/// Computes the skyline of `input` via SFS. Call sites pass a whole
/// dataset, `{data, begin, end}`, or `{data, ids}` (LocalKernelInput
/// converts from all three shapes).
SkylineWindow SfsSkyline(LocalKernelInput input,
                         DominanceCounter* counter = nullptr);

}  // namespace skymr

#endif  // SKYMR_LOCAL_SFS_H_
