// Sort Filter Skyline (Chomicki et al., ICDE'03): presort by a monotone
// score so that no tuple can be dominated by a later one, then filter with
// one-directional checks. Used as an optimized local skyline algorithm and
// as the second correctness reference.

#ifndef SKYMR_LOCAL_SFS_H_
#define SKYMR_LOCAL_SFS_H_

#include <vector>

#include "src/local/skyline_window.h"
#include "src/relation/dataset.h"

namespace skymr {

/// Computes the skyline of tuples [begin, end) of `data` via SFS.
SkylineWindow SfsSkyline(const Dataset& data, TupleId begin, TupleId end,
                         DominanceCounter* counter = nullptr);

/// Computes the skyline of the whole dataset via SFS.
SkylineWindow SfsSkyline(const Dataset& data,
                         DominanceCounter* counter = nullptr);

/// Computes the skyline of an explicit id subset via SFS.
SkylineWindow SfsSkyline(const Dataset& data, std::vector<TupleId> ids,
                         DominanceCounter* counter = nullptr);

}  // namespace skymr

#endif  // SKYMR_LOCAL_SFS_H_
