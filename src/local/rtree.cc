#include "src/local/rtree.h"

#include <algorithm>
#include <cmath>

#include "src/relation/dominance_kernel.h"

namespace skymr {
namespace {

// Recursive STR tiling: sort [lo, hi) on axis `k` (ties by id, for a
// deterministic layout), slice into slabs sized to a whole number of
// leaves, recurse on the next axis. Leaves end up as consecutive runs of
// `leaf_capacity` slots, all full except possibly the last.
void StrSort(const Dataset& data, std::vector<TupleId>& ids, size_t lo,
             size_t hi, size_t k, size_t leaf_capacity) {
  const size_t n = hi - lo;
  const size_t dim = data.dim();
  std::sort(ids.begin() + static_cast<ptrdiff_t>(lo),
            ids.begin() + static_cast<ptrdiff_t>(hi),
            [&data, k](TupleId a, TupleId b) {
              const double va = data.RowPtr(a)[k];
              const double vb = data.RowPtr(b)[k];
              return va != vb ? va < vb : a < b;
            });
  if (n <= leaf_capacity || k + 1 >= dim) {
    return;
  }
  const size_t leaves = (n + leaf_capacity - 1) / leaf_capacity;
  const size_t axes_left = dim - k;
  const size_t slabs = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(std::pow(
             static_cast<double>(leaves),
             1.0 / static_cast<double>(axes_left)))));
  const size_t slab =
      ((n + slabs - 1) / slabs + leaf_capacity - 1) / leaf_capacity *
      leaf_capacity;
  for (size_t s = lo; s < hi; s += slab) {
    StrSort(data, ids, s, std::min(hi, s + slab), k + 1, leaf_capacity);
  }
}

}  // namespace

void StrRtree::Build(const Dataset& data, std::vector<TupleId> ids,
                     const RtreeOptions& options) {
  dim_ = data.dim();
  root_ = 0;
  nodes_.clear();
  lo_.clear();
  hi_.clear();
  mindist_.clear();
  children_.clear();
  slot_ids_ = std::move(ids);
  rows_.clear();
  sums_.clear();
  if (slot_ids_.empty()) {
    return;
  }
  const size_t leaf_capacity = std::max<uint32_t>(2, options.leaf_capacity);
  const size_t fanout = std::max<uint32_t>(2, options.fanout);
  const size_t n = slot_ids_.size();

  StrSort(data, slot_ids_, 0, n, 0, leaf_capacity);
  // Within each leaf run, order slots by (sum, id): the block scan then
  // meets the likeliest dominators first, and equal-sum ties stay
  // deterministic.
  for (size_t i = 0; i < n; i += leaf_capacity) {
    const auto run_begin = slot_ids_.begin() + static_cast<ptrdiff_t>(i);
    const auto run_end =
        slot_ids_.begin() +
        static_cast<ptrdiff_t>(std::min(n, i + leaf_capacity));
    std::sort(run_begin, run_end, [&data, this](TupleId a, TupleId b) {
      const double sa = CoordinateSum(data.RowPtr(a), dim_);
      const double sb = CoordinateSum(data.RowPtr(b), dim_);
      return sa != sb ? sa < sb : a < b;
    });
  }
  rows_.resize(n * dim_);
  sums_.resize(n);
  for (size_t s = 0; s < n; ++s) {
    std::copy_n(data.RowPtr(slot_ids_[s]), dim_, &rows_[s * dim_]);
  }
  CoordinateSums(rows_.data(), n, dim_, sums_.data());

  // Leaf level: one node per consecutive slot run.
  level_.clear();
  for (size_t i = 0; i < n; i += leaf_capacity) {
    const uint32_t count =
        static_cast<uint32_t>(std::min(n - i, leaf_capacity));
    const uint32_t id = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(RtreeNode{static_cast<uint32_t>(i), count, true});
    lo_.resize(lo_.size() + dim_);
    hi_.resize(hi_.size() + dim_);
    double* node_lo = &lo_[id * dim_];
    double* node_hi = &hi_[id * dim_];
    std::copy_n(&rows_[i * dim_], dim_, node_lo);
    std::copy_n(&rows_[i * dim_], dim_, node_hi);
    for (size_t j = 1; j < count; ++j) {
      const double* row = &rows_[(i + j) * dim_];
      for (size_t k = 0; k < dim_; ++k) {
        node_lo[k] = std::min(node_lo[k], row[k]);
        node_hi[k] = std::max(node_hi[k], row[k]);
      }
    }
    mindist_.push_back(CoordinateSum(node_lo, dim_));
    level_.push_back(id);
  }

  // Internal levels: pack `fanout` consecutive children per parent, with
  // each sibling list ordered by (mindist, id) so descents try the
  // likeliest-dominating subtree first.
  while (level_.size() > 1) {
    next_level_.clear();
    for (size_t i = 0; i < level_.size(); i += fanout) {
      const uint32_t count =
          static_cast<uint32_t>(std::min(level_.size() - i, fanout));
      const uint32_t child_first = static_cast<uint32_t>(children_.size());
      children_.insert(children_.end(),
                       level_.begin() + static_cast<ptrdiff_t>(i),
                       level_.begin() + static_cast<ptrdiff_t>(i + count));
      std::sort(children_.begin() + child_first, children_.end(),
                [this](uint32_t a, uint32_t b) {
                  return mindist_[a] != mindist_[b]
                             ? mindist_[a] < mindist_[b]
                             : a < b;
                });
      const uint32_t id = static_cast<uint32_t>(nodes_.size());
      nodes_.push_back(RtreeNode{child_first, count, false});
      lo_.resize(lo_.size() + dim_);
      hi_.resize(hi_.size() + dim_);
      double* node_lo = &lo_[id * dim_];
      double* node_hi = &hi_[id * dim_];
      const uint32_t c0 = children_[child_first];
      std::copy_n(&lo_[c0 * dim_], dim_, node_lo);
      std::copy_n(&hi_[c0 * dim_], dim_, node_hi);
      for (uint32_t j = 1; j < count; ++j) {
        const uint32_t c = children_[child_first + j];
        for (size_t k = 0; k < dim_; ++k) {
          node_lo[k] = std::min(node_lo[k], lo_[c * dim_ + k]);
          node_hi[k] = std::max(node_hi[k], hi_[c * dim_ + k]);
        }
      }
      mindist_.push_back(CoordinateSum(node_lo, dim_));
      next_level_.push_back(id);
    }
    level_.swap(next_level_);
  }
  root_ = level_.front();
}

}  // namespace skymr
