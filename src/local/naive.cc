#include "src/local/naive.h"

namespace skymr {

SkylineWindow NaiveSkyline(const Dataset& data, TupleId begin, TupleId end,
                           DominanceCounter* counter) {
  const size_t dim = data.dim();
  SkylineWindow window(dim);
  uint64_t checks = 0;
  for (TupleId i = begin; i < end; ++i) {
    const double* row_i = data.RowPtr(i);
    bool dominated = false;
    for (TupleId j = begin; j < end; ++j) {
      if (i == j) {
        continue;
      }
      ++checks;
      if (Dominates(data.RowPtr(j), row_i, dim)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      window.AppendUnchecked(row_i, i);
    }
  }
  if (counter != nullptr) {
    counter->Add(checks);
  }
  return window;
}

SkylineWindow NaiveSkyline(const Dataset& data, DominanceCounter* counter) {
  return NaiveSkyline(data, 0, static_cast<TupleId>(data.size()), counter);
}

}  // namespace skymr
