#include "src/local/sfs.h"

#include <algorithm>
#include <numeric>

#include "src/relation/dominance_kernel.h"

namespace skymr {

SkylineWindow SfsSkyline(const Dataset& data, TupleId begin, TupleId end,
                         DominanceCounter* counter) {
  std::vector<TupleId> ids(end - begin);
  std::iota(ids.begin(), ids.end(), begin);
  return SfsSkyline(data, std::move(ids), counter);
}

SkylineWindow SfsSkyline(const Dataset& data, std::vector<TupleId> ids,
                         DominanceCounter* counter) {
  const size_t dim = data.dim();
  // Monotone score: if score(a) <= score(b) then b cannot dominate a
  // (dominance implies a strictly smaller coordinate sum, ties excepted;
  // equal tuples never dominate each other).
  auto score = [&data, dim](TupleId id) {
    return CoordinateSum(data.RowPtr(id), dim);
  };
  std::stable_sort(ids.begin(), ids.end(), [&score](TupleId a, TupleId b) {
    return score(a) < score(b);
  });

  // Sorting makes every window row's sum <= the candidate's, so the sum
  // screen cannot help here; the block kernel alone carries the scan.
  SkylineWindow window(dim);
  uint64_t checks = 0;
  for (const TupleId id : ids) {
    const double* row = data.RowPtr(id);
    const size_t n = window.size();
    const size_t first = FirstDominatorIndex(row, 0.0, window.values().data(),
                                             /*sums=*/nullptr, n, dim);
    checks += (first != n) ? first + 1 : n;
    if (first == n) {
      window.AppendUnchecked(row, id);
    }
  }
  if (counter != nullptr) {
    counter->Add(checks);
  }
  return window;
}

SkylineWindow SfsSkyline(const Dataset& data, DominanceCounter* counter) {
  return SfsSkyline(data, 0, static_cast<TupleId>(data.size()), counter);
}

}  // namespace skymr
