#include "src/local/sfs.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/relation/dominance_kernel.h"

namespace skymr {

SkylineWindow SfsSkyline(LocalKernelInput input, DominanceCounter* counter) {
  const Dataset& data = input.data();
  const size_t dim = input.dim();
  std::vector<TupleId> ids = std::move(input).TakeIds();
  // Monotone score: if score(a) <= score(b) then b cannot dominate a
  // (dominance implies a strictly smaller coordinate sum, ties excepted;
  // equal tuples never dominate each other).
  auto score = [&data, dim](TupleId id) {
    return CoordinateSum(data.RowPtr(id), dim);
  };
  std::stable_sort(ids.begin(), ids.end(), [&score](TupleId a, TupleId b) {
    return score(a) < score(b);
  });

  // Sorting makes every window row's sum <= the candidate's, so the sum
  // screen cannot help here; the block kernel alone carries the scan.
  SkylineWindow window(dim);
  uint64_t checks = 0;
  for (const TupleId id : ids) {
    const double* row = data.RowPtr(id);
    const size_t n = window.size();
    const size_t first = FirstDominatorIndex(row, 0.0, window.values().data(),
                                             /*sums=*/nullptr, n, dim);
    checks += (first != n) ? first + 1 : n;
    if (first == n) {
      window.AppendUnchecked(row, id);
    }
  }
  if (counter != nullptr) {
    counter->Add(checks);
  }
  return window;
}

}  // namespace skymr
