#include "src/local/sfs.h"

#include <algorithm>
#include <numeric>

namespace skymr {

SkylineWindow SfsSkyline(const Dataset& data, TupleId begin, TupleId end,
                         DominanceCounter* counter) {
  std::vector<TupleId> ids(end - begin);
  std::iota(ids.begin(), ids.end(), begin);
  return SfsSkyline(data, std::move(ids), counter);
}

SkylineWindow SfsSkyline(const Dataset& data, std::vector<TupleId> ids,
                         DominanceCounter* counter) {
  const size_t dim = data.dim();
  // Monotone score: if score(a) <= score(b) then b cannot dominate a
  // (dominance implies a strictly smaller coordinate sum, ties excepted;
  // equal tuples never dominate each other).
  auto score = [&data, dim](TupleId id) {
    const double* row = data.RowPtr(id);
    double sum = 0.0;
    for (size_t k = 0; k < dim; ++k) {
      sum += row[k];
    }
    return sum;
  };
  std::stable_sort(ids.begin(), ids.end(), [&score](TupleId a, TupleId b) {
    return score(a) < score(b);
  });

  SkylineWindow window(dim);
  uint64_t checks = 0;
  for (const TupleId id : ids) {
    const double* row = data.RowPtr(id);
    bool dominated = false;
    for (size_t i = 0; i < window.size(); ++i) {
      ++checks;
      if (Dominates(window.RowAt(i), row, dim)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      window.AppendUnchecked(row, id);
    }
  }
  if (counter != nullptr) {
    counter->Add(checks);
  }
  return window;
}

SkylineWindow SfsSkyline(const Dataset& data, DominanceCounter* counter) {
  return SfsSkyline(data, 0, static_cast<TupleId>(data.size()), counter);
}

}  // namespace skymr
