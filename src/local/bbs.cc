#include "src/local/bbs.h"

#include <algorithm>
#include <utility>

#include "src/obs/trace.h"
#include "src/relation/dominance_kernel.h"

namespace skymr {
namespace {

// Heap "less": a orders AFTER b. Key ascending, nodes before points at
// equal key, then index — a total order, so the pop sequence (and with
// it every counter) is deterministic.
bool PopsAfter(const BbsHeapEntry& a, const BbsHeapEntry& b) {
  if (a.key != b.key) {
    return a.key > b.key;
  }
  if (a.is_point != b.is_point) {
    return a.is_point;
  }
  return a.idx > b.idx;
}

// Returns true iff some indexed row strictly dominates `candidate`.
// Descends only subtrees whose lower corner is coordinate-wise <= the
// candidate (no other subtree can hold a dominator), children in mindist
// order so likely dominators surface early. Accounting mirrors SFS: one
// unit per node corner test, plus `first + 1` (dominator found at
// `first`) or `count` (none) units per leaf block scan.
bool TreeDominated(const StrRtree& tree, const double* candidate,
                   double candidate_sum, std::vector<uint32_t>* stack,
                   uint64_t* units) {
  const size_t dim = tree.dim();
  stack->clear();
  stack->push_back(tree.root());
  while (!stack->empty()) {
    const uint32_t id = stack->back();
    stack->pop_back();
    ++*units;
    const double* lo = tree.NodeLo(id);
    bool can_dominate = true;
    for (size_t k = 0; k < dim; ++k) {
      if (lo[k] > candidate[k]) {
        can_dominate = false;
        break;
      }
    }
    if (!can_dominate) {
      continue;
    }
    const RtreeNode& node = tree.node(id);
    if (node.leaf) {
      const size_t first =
          FirstDominatorIndex(candidate, candidate_sum, tree.LeafRows(node),
                              tree.LeafSums(node), node.count, dim);
      *units += (first != node.count) ? first + 1 : node.count;
      if (first != node.count) {
        return true;
      }
    } else {
      // Reverse push: the mindist-smallest child pops first.
      for (uint32_t i = node.count; i-- > 0;) {
        stack->push_back(tree.ChildAt(node, i));
      }
    }
  }
  return false;
}

void HeapPush(std::vector<BbsHeapEntry>* heap, const BbsHeapEntry& entry) {
  heap->push_back(entry);
  std::push_heap(heap->begin(), heap->end(), PopsAfter);
}

BbsHeapEntry HeapPop(std::vector<BbsHeapEntry>* heap) {
  std::pop_heap(heap->begin(), heap->end(), PopsAfter);
  const BbsHeapEntry entry = heap->back();
  heap->pop_back();
  return entry;
}

}  // namespace

SkylineWindow BbsSkyline(LocalKernelInput input, DominanceCounter* counter,
                         BbsStats* stats, const Box* constraint,
                         BbsScratch* scratch, const RtreeOptions& options) {
  const size_t dim = input.dim();
  const Dataset& data = input.data();
  SkylineWindow window(dim);
  std::vector<TupleId> ids = std::move(input).TakeIds();
  if (constraint != nullptr) {
    ids.erase(std::remove_if(ids.begin(), ids.end(),
                             [&](TupleId id) {
                               return !constraint->Contains(data.RowPtr(id),
                                                            dim);
                             }),
              ids.end());
  }
  if (ids.empty()) {
    return window;
  }

  BbsScratch local;
  BbsScratch& s = scratch != nullptr ? *scratch : local;
  {
    SKYMR_TRACE_SPAN("bbs.build", "tuples",
                     static_cast<int64_t>(ids.size()), "dim",
                     static_cast<int64_t>(dim));
    s.tree.Build(data, std::move(ids), options);
  }

  SKYMR_TRACE_SPAN("bbs.query", "tuples",
                   static_cast<int64_t>(s.tree.size()));
  uint64_t units = 0;
  uint64_t nodes_visited = 0;
  uint64_t entries_pruned = 0;
  uint64_t heap_peak = 0;
  s.heap.clear();
  HeapPush(&s.heap,
           BbsHeapEntry{s.tree.NodeMindist(s.tree.root()), s.tree.root(),
                        false});
  heap_peak = 1;
  while (!s.heap.empty()) {
    const BbsHeapEntry entry = HeapPop(&s.heap);
    if (entry.is_point) {
      const double* row = s.tree.SlotRow(entry.idx);
      if (TreeDominated(s.tree, row, s.tree.SlotSum(entry.idx), &s.stack,
                        &units)) {
        ++entries_pruned;
      } else {
        window.AppendUnchecked(row, s.tree.SlotId(entry.idx));
      }
      continue;
    }
    // A strictly dominated lower corner kills the whole subtree: the
    // witness row is <= the corner everywhere and < on some axis, and
    // every subtree row is >= the corner everywhere.
    if (TreeDominated(s.tree, s.tree.NodeLo(entry.idx),
                      s.tree.NodeMindist(entry.idx), &s.stack, &units)) {
      ++entries_pruned;
      continue;
    }
    ++nodes_visited;
    const RtreeNode& node = s.tree.node(entry.idx);
    if (node.leaf) {
      for (uint32_t slot = node.first; slot < node.first + node.count;
           ++slot) {
        HeapPush(&s.heap, BbsHeapEntry{s.tree.SlotSum(slot), slot, true});
      }
    } else {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t child = s.tree.ChildAt(node, i);
        HeapPush(&s.heap,
                 BbsHeapEntry{s.tree.NodeMindist(child), child, false});
      }
    }
    heap_peak = std::max<uint64_t>(heap_peak, s.heap.size());
  }

  if (counter != nullptr) {
    counter->Add(units);
  }
  if (stats != nullptr) {
    stats->nodes_visited += nodes_visited;
    stats->entries_pruned += entries_pruned;
    stats->heap_peak += heap_peak;
  }
  return window;
}

}  // namespace skymr
