// Branch-and-bound skyline (BBS, Papadias et al., SIGMOD'03) over the
// STR-packed R-tree: pop heap entries in ascending mindist (coordinate
// sum of the lower MBR corner), prune entries whose corner is strictly
// dominated, and report every surviving point. The dominance oracle is
// the data tree itself: a candidate is discarded iff SOME indexed row
// strictly dominates it — the dominator does not have to be a skyline
// point (dominance is transitive), so the test can descend the static
// tree and check leaf blocks with the AVX2 dominance kernel instead of
// scanning the flat window. That makes the test output-sensitive in the
// regime where window scans degrade: anti-correlated, high-dimensional
// partitions with huge skylines (see DESIGN.md §14 for the correctness
// argument and measured crossover).

#ifndef SKYMR_LOCAL_BBS_H_
#define SKYMR_LOCAL_BBS_H_

#include <cstdint>
#include <vector>

#include "src/local/kernel_input.h"
#include "src/local/rtree.h"
#include "src/local/skyline_window.h"
#include "src/relation/box.h"

namespace skymr {

/// Deterministic instrumentation, accumulated across calls (one stats
/// object per map task; the totals feed the skymr.bbs.* counters).
struct BbsStats {
  uint64_t nodes_visited = 0;   ///< Tree nodes expanded from the heap.
  uint64_t entries_pruned = 0;  ///< Heap entries discarded as dominated.
  uint64_t heap_peak = 0;       ///< Sum over calls of the heap's peak size.
};

/// One heap entry: an R-tree node or a point slot, keyed by its mindist
/// lower bound.
struct BbsHeapEntry {
  double key = 0;
  uint32_t idx = 0;
  bool is_point = false;
};

/// Reusable per-call scratch: the R-tree arenas, the traversal heap, and
/// the descent stack keep their capacity across partitions. Treat as
/// opaque; contents are unspecified between calls.
struct BbsScratch {
  StrRtree tree;
  std::vector<BbsHeapEntry> heap;
  std::vector<uint32_t> stack;
};

/// Computes the skyline of `input` via BBS. When `constraint` is given,
/// rows outside the box are dropped before the tree is built (the
/// constrained skyline is the skyline OF the in-box rows, so out-of-box
/// rows can neither survive nor serve as dominators). `stats` and
/// `scratch` may be null; pass a per-task scratch to reuse allocations.
SkylineWindow BbsSkyline(LocalKernelInput input,
                         DominanceCounter* counter = nullptr,
                         BbsStats* stats = nullptr,
                         const Box* constraint = nullptr,
                         BbsScratch* scratch = nullptr,
                         const RtreeOptions& options = RtreeOptions());

}  // namespace skymr

#endif  // SKYMR_LOCAL_BBS_H_
