#include "src/local/skyline_window.h"

#include <cassert>

namespace skymr {

bool SkylineWindow::Insert(const double* row, TupleId id,
                           DominanceCounter* counter) {
  assert(dim_ > 0);
  uint64_t checks = 0;
  size_t i = 0;
  bool keep = true;
  while (i < size()) {
    const DominanceResult cmp = CompareDominance(RowAt(i), row, dim_);
    ++checks;
    if (cmp == DominanceResult::kADominatesB) {
      // An existing window tuple dominates the candidate: reject.
      keep = false;
      break;
    }
    if (cmp == DominanceResult::kBDominatesA) {
      // The candidate dominates a window tuple: evict it.
      SwapRemove(i);
      continue;  // The swapped-in tuple now sits at position i.
    }
    ++i;
  }
  if (counter != nullptr) {
    counter->Add(checks);
  }
  if (keep) {
    AppendUnchecked(row, id);
  }
  return keep;
}

void SkylineWindow::AppendUnchecked(const double* row, TupleId id) {
  ids_.push_back(id);
  values_.insert(values_.end(), row, row + dim_);
}

void SkylineWindow::RemoveDominatedBy(const SkylineWindow& other,
                                      DominanceCounter* counter) {
  assert(dim_ == other.dim_ || other.empty() || empty());
  uint64_t checks = 0;
  size_t i = 0;
  while (i < size()) {
    bool dominated = false;
    for (size_t j = 0; j < other.size(); ++j) {
      ++checks;
      if (Dominates(other.RowAt(j), RowAt(i), dim_)) {
        dominated = true;
        break;
      }
    }
    if (dominated) {
      SwapRemove(i);
    } else {
      ++i;
    }
  }
  if (counter != nullptr) {
    counter->Add(checks);
  }
}

void SkylineWindow::Filter(const std::vector<bool>& keep) {
  assert(keep.size() == size());
  SkylineWindow kept(dim_);
  for (size_t i = 0; i < size(); ++i) {
    if (keep[i]) {
      kept.AppendUnchecked(RowAt(i), IdAt(i));
    }
  }
  *this = std::move(kept);
}

void SkylineWindow::SwapRemove(size_t i) {
  const size_t last = size() - 1;
  if (i != last) {
    ids_[i] = ids_[last];
    for (size_t k = 0; k < dim_; ++k) {
      values_[i * dim_ + k] = values_[last * dim_ + k];
    }
  }
  ids_.pop_back();
  values_.resize(values_.size() - dim_);
}

}  // namespace skymr
