#include "src/local/skyline_window.h"

#include <cassert>
#include <cstring>

#include "src/relation/dominance_kernel.h"

namespace skymr {

bool SkylineWindow::Insert(const double* row, TupleId id,
                           DominanceCounter* counter) {
  assert(dim_ > 0);
  static thread_local std::vector<uint32_t> evicted;
  evicted.clear();
  const size_t n = size();
  const size_t first = InsertScan(row, values_.data(), n, dim_, &evicted);
  if (counter != nullptr) {
    // Same count as the tuple-at-a-time loop: on rejection it compared
    // rows 0..first once each; on acceptance every row exactly once (under
    // the window invariant a dominator and an eviction cannot coexist, and
    // each swapped-in row is a not-yet-compared row).
    counter->Add(first != n ? first + 1 : n);
  }
  if (first != n) {
    return false;
  }
  if (!evicted.empty()) {
    EvictAscending(evicted);
  }
  AppendUnchecked(row, id);
  return true;
}

void SkylineWindow::AppendUnchecked(const double* row, TupleId id) {
  ids_.push_back(id);
  values_.insert(values_.end(), row, row + dim_);
  sums_.push_back(CoordinateSum(row, dim_));
}

void SkylineWindow::RemoveDominatedBy(const SkylineWindow& other,
                                      DominanceCounter* counter) {
  assert(dim_ == other.dim_ || other.empty() || empty());
  if (empty() || other.empty()) {
    return;
  }
  static thread_local std::vector<uint32_t> dominated;
  dominated.clear();
  uint64_t checks = 0;
  const size_t m = other.size();
  for (size_t i = 0; i < size(); ++i) {
    const size_t first =
        FirstDominatorIndex(RowAt(i), sums_[i], other.values_.data(),
                            other.sums_.data(), m, dim_);
    if (first != m) {
      dominated.push_back(static_cast<uint32_t>(i));
      checks += first + 1;
    } else {
      checks += m;
    }
  }
  if (counter != nullptr) {
    counter->Add(checks);
  }
  if (!dominated.empty()) {
    EvictAscending(dominated);
  }
}

void SkylineWindow::Filter(const std::vector<bool>& keep) {
  assert(keep.size() == size());
  SkylineWindow kept(dim_);
  for (size_t i = 0; i < size(); ++i) {
    if (keep[i]) {
      kept.AppendUnchecked(RowAt(i), IdAt(i));
    }
  }
  *this = std::move(kept);
}

void SkylineWindow::EvictAscending(const std::vector<uint32_t>& evicted) {
  // Replays the scalar loop "while (i < m) { dominated ? swap last into i
  // and re-check i : ++i }": popping already-doomed rows off the back first
  // means the first surviving row from the back is the one that lands in
  // slot i, exactly as the re-check would have arranged.
  size_t m = size();
  size_t i = 0;
  size_t lo = 0;               // Next unconsumed eviction (ascending).
  size_t hi = evicted.size();  // One past the last unconsumed eviction.
  while (i < m) {
    if (lo < hi && evicted[lo] == i) {
      ++lo;
      while (m - 1 > i && hi > lo && evicted[hi - 1] == m - 1) {
        --hi;
        --m;
      }
      const size_t last = m - 1;
      if (i != last) {
        ids_[i] = ids_[last];
        sums_[i] = sums_[last];
        std::memcpy(&values_[i * dim_], &values_[last * dim_],
                    dim_ * sizeof(double));
      }
      --m;
    } else {
      ++i;
    }
  }
  ids_.resize(m);
  sums_.resize(m);
  values_.resize(m * dim_);
}

void SkylineWindow::RecomputeSums() {
  sums_.resize(ids_.size());
  if (dim_ > 0 && !ids_.empty()) {
    CoordinateSums(values_.data(), ids_.size(), dim_, sums_.data());
  }
}

}  // namespace skymr
