#include "src/mapreduce/task_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <thread>

#include "src/common/serde.h"
#include "src/obs/trace.h"

namespace skymr::mr {
namespace {

using Clock = std::chrono::steady_clock;

const char* KindName(TaskKind kind) {
  return kind == TaskKind::kMap ? "map" : "reduce";
}

int64_t ElapsedUs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
      .count();
}

}  // namespace

Status ValidateEngineOptions(const EngineOptions& options) {
  if (options.num_map_tasks < 1 || options.num_reducers < 1) {
    return Status::InvalidArgument("engine: task counts must be >= 1");
  }
  if (options.max_task_attempts < 1) {
    return Status::InvalidArgument("engine: max_task_attempts must be >= 1");
  }
  if (options.num_threads < 0 || options.num_workers < 0) {
    return Status::InvalidArgument(
        "engine: thread/worker counts must be >= 0 (0 = default)");
  }
  // Accept-form float comparisons throughout: NaN fails every ordering,
  // so `!(x >= 0.0)`-style checks reject it, where the reject-form
  // `x < 0.0` would let a NaN tunable reach the scheduler's arithmetic.
  if (!(options.retry_backoff_base_ms >= 0.0 &&
        options.retry_backoff_max_ms >= 0.0 &&
        std::isfinite(options.retry_backoff_base_ms) &&
        std::isfinite(options.retry_backoff_max_ms))) {
    return Status::InvalidArgument(
        "engine: backoff durations must be finite and >= 0");
  }
  if (options.retry_backoff_base_ms > options.retry_backoff_max_ms) {
    return Status::InvalidArgument(
        "engine: retry_backoff_base_ms exceeds retry_backoff_max_ms");
  }
  if (options.worker_blacklist_threshold < 1) {
    return Status::InvalidArgument(
        "engine: worker_blacklist_threshold must be >= 1");
  }
  if (!(options.speculation_wave_fraction > 0.0 &&
        options.speculation_wave_fraction <= 1.0)) {
    return Status::InvalidArgument(
        "engine: speculation_wave_fraction must be in (0, 1]");
  }
  if (!(options.speculation_slowdown >= 1.0 &&
        std::isfinite(options.speculation_slowdown))) {
    return Status::InvalidArgument(
        "engine: speculation_slowdown must be finite and >= 1");
  }
  if (!(options.speculation_poll_ms > 0.0 &&
        std::isfinite(options.speculation_poll_ms))) {
    return Status::InvalidArgument(
        "engine: speculation_poll_ms must be finite and > 0");
  }
  return ValidateChaosSchedule(options.chaos, options.max_task_attempts);
}

/// Per-task shared state. Attempts of one task (primary + speculative
/// duplicates) coordinate only through these atomics; the scheduler never
/// holds a lock while user code runs.
struct TaskScheduler::TaskState {
  /// Output-commit gate handed to the attempt body (TaskAttempt::TryCommit).
  std::atomic<bool> committed{false};
  /// Set by the winning attempt once its output is published.
  std::atomic<bool> success{false};
  /// Set on permanent failure (budget exhausted or non-retryable error).
  std::atomic<bool> failed{false};
  /// Cooperative cancellation for the losing duplicate / doomed sleeps.
  std::atomic<bool> cancel{false};
  /// Global attempt numbering across all runners of this task; caps the
  /// combined primary + speculative budget at max_task_attempts.
  std::atomic<int> attempts_started{0};
  std::atomic<int> failures{0};
  /// One speculative duplicate per task at most.
  std::atomic<bool> speculated{false};
  /// Attempt number that committed (for TaskMetrics::attempts).
  std::atomic<int> winner_attempt{0};
  Clock::time_point start{};
  std::atomic<int64_t> duration_us{-1};
};

struct TaskScheduler::WaveContext {
  TaskKind kind = TaskKind::kMap;
  int num_tasks = 0;
  const AttemptBody* body = nullptr;
  std::vector<std::unique_ptr<TaskState>> states;

  std::atomic<int64_t> retries{0};
  std::atomic<int64_t> backoff_waits{0};
  std::atomic<int64_t> backoff_total_ms{0};
  std::atomic<int64_t> speculative_launched{0};
  std::atomic<int64_t> speculative_wins{0};

  std::mutex error_mutex;
  Status first_error;  // Guarded by error_mutex; OK until a task fails.

  // Speculative-path coordination: the caller waits for active_runners to
  // drain while periodically scanning for stragglers.
  std::mutex wave_mutex;
  std::condition_variable wave_cv;
  int active_runners = 0;  // Guarded by wave_mutex.
};

TaskScheduler::TaskScheduler(const EngineOptions& options,
                             std::string job_name)
    : options_(options),
      job_name_(std::move(job_name)),
      num_workers_(options.num_workers > 0 ? options.num_workers : 8),
      chaos_(options.chaos.enabled()
                 ? std::make_unique<ChaosEngine>(options.chaos, job_name_)
                 : nullptr),
      worker_failures_(static_cast<size_t>(num_workers_), 0),
      worker_blacklisted_(static_cast<size_t>(num_workers_), false) {}

TaskScheduler::~TaskScheduler() = default;

int64_t TaskScheduler::blacklisted_workers() const {
  std::lock_guard<std::mutex> lock(worker_mutex_);
  return blacklisted_count_;
}

Status TaskScheduler::RunWave(ThreadPool* pool, TaskKind kind, int num_tasks,
                              const AttemptBody& body, WaveStats* stats) {
  WaveContext wave;
  wave.kind = kind;
  wave.num_tasks = num_tasks;
  wave.body = &body;
  wave.states.reserve(static_cast<size_t>(num_tasks));
  for (int t = 0; t < num_tasks; ++t) {
    wave.states.push_back(std::make_unique<TaskState>());
  }

  if (options_.speculative_execution) {
    RunWaveSpeculative(pool, wave);
  } else {
    ParallelFor(pool, num_tasks,
                [this, &wave](int task) { RunTaskChain(wave, task, false); });
  }

  if (stats != nullptr) {
    stats->retries += wave.retries.load(std::memory_order_relaxed);
    stats->backoff_waits += wave.backoff_waits.load(std::memory_order_relaxed);
    stats->backoff_total_ms +=
        wave.backoff_total_ms.load(std::memory_order_relaxed);
    stats->speculative_launched +=
        wave.speculative_launched.load(std::memory_order_relaxed);
    stats->speculative_wins +=
        wave.speculative_wins.load(std::memory_order_relaxed);
  }

  for (int t = 0; t < num_tasks; ++t) {
    if (!wave.states[static_cast<size_t>(t)]->success.load(
            std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(wave.error_mutex);
      if (!wave.first_error.ok()) {
        return wave.first_error;
      }
      return Status::Internal("job '" + job_name_ + "' " + KindName(kind) +
                              " task " + std::to_string(t) +
                              " never committed");
    }
  }
  return Status::OK();
}

/// Attempt number of the winning runner for task metrics; 1 when the task
/// somehow has no recorded winner (defensive — RunWave fails such tasks).
int TaskScheduler::WinnerAttempt(const WaveContext& wave, int task) const {
  const int won =
      wave.states[static_cast<size_t>(task)]->winner_attempt.load(
          std::memory_order_relaxed);
  return won > 0 ? won : 1;
}

void TaskScheduler::RunTaskChain(WaveContext& wave, int task,
                                 bool speculative) {
  TaskState& state = *wave.states[static_cast<size_t>(task)];
  while (!state.success.load(std::memory_order_acquire) &&
         !state.failed.load(std::memory_order_acquire)) {
    const int attempt =
        state.attempts_started.fetch_add(1, std::memory_order_relaxed) + 1;
    if (attempt > options_.max_task_attempts) {
      // The other runner of this task holds the remaining budget.
      return;
    }
    if (attempt > 1) {
      Backoff(wave, state, task, attempt);
      if (state.success.load(std::memory_order_acquire) ||
          state.failed.load(std::memory_order_acquire)) {
        return;
      }
    }
    RunOneAttempt(wave, state, task, attempt, speculative);
  }
}

void TaskScheduler::RunOneAttempt(WaveContext& wave, TaskState& state,
                                  int task, int attempt, bool speculative) {
  const int worker = PickWorker(task, attempt);
  TaskAttempt handle;
  handle.task_id = task;
  handle.attempt = attempt;
  handle.worker = worker;
  handle.speculative = speculative;
  handle.cancel_flag = &state.cancel;
  handle.commit_flag = &state.committed;

  try {
    ChaosTaskScope scope(chaos_.get(), static_cast<int>(wave.kind), task,
                         attempt);
    if (chaos_ != nullptr) {
      if (chaos_->ShouldCrash(static_cast<int>(wave.kind), task, attempt,
                              worker)) {
        throw TaskFailure(std::string("chaos: injected crash (") +
                          KindName(wave.kind) + " task " +
                          std::to_string(task) + ", attempt " +
                          std::to_string(attempt) + ", worker " +
                          std::to_string(worker) + ")");
      }
      const double delay_ms =
          chaos_->SlowDelayMs(static_cast<int>(wave.kind), task, attempt);
      if (delay_ms > 0.0) {
        SleepCancellable(delay_ms, state);
        if (state.cancel.load(std::memory_order_relaxed)) {
          throw TaskCancelled();
        }
      }
    }
    const Status status = (*wave.body)(handle);
    if (!status.ok()) {
      MarkFailed(wave, state, task, status);
      return;
    }
    if (handle.won()) {
      state.winner_attempt.store(attempt, std::memory_order_relaxed);
      state.duration_us.store(ElapsedUs(state.start),
                              std::memory_order_relaxed);
      state.success.store(true, std::memory_order_release);
      // Abort the duplicate (it polls cancel in sleeps and long loops).
      state.cancel.store(true, std::memory_order_relaxed);
      if (speculative) {
        wave.speculative_wins.fetch_add(1, std::memory_order_relaxed);
        SKYMR_TRACE_INSTANT("task.speculative_win", "task", task, "attempt",
                            attempt);
      }
    }
    // A losing duplicate's output was discarded by the body; the winner
    // has already marked success, so the chain loop exits.
  } catch (const TaskCancelled&) {
    // Benign: a duplicate committed first. No retry budget consumed
    // beyond the attempt slot already taken.
  } catch (const TaskFailure& failure) {
    HandleRetryableFailure(wave, state, task, attempt, worker,
                           failure.what());
  } catch (const SerdeUnderflow& failure) {
    HandleRetryableFailure(wave, state, task, attempt, worker,
                           failure.what());
  } catch (const std::exception& e) {
    // Anything else is a bug in user code, not a cluster fault: fail the
    // task permanently instead of letting the exception cross the engine
    // boundary (the public API contract is Status, never throw).
    MarkFailed(wave, state, task,
               Status::Internal("job '" + job_name_ + "' " +
                                KindName(wave.kind) + " task " +
                                std::to_string(task) +
                                " threw unexpected exception: " + e.what()));
  }
}

void TaskScheduler::HandleRetryableFailure(WaveContext& wave,
                                           TaskState& state, int task,
                                           int attempt, int worker,
                                           const std::string& what) {
  RecordWorkerFailure(worker);
  const int failures =
      state.failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (failures >= options_.max_task_attempts) {
    MarkFailed(wave, state, task,
               Status::Internal("job '" + job_name_ + "' " +
                                KindName(wave.kind) + " task " +
                                std::to_string(task) + " failed after " +
                                std::to_string(failures) +
                                " attempts: " + what));
    return;
  }
  wave.retries.fetch_add(1, std::memory_order_relaxed);
  SKYMR_TRACE_INSTANT("task.retry", "task", task, "attempt", attempt);
  if (options_.log != nullptr) {
    options_.log->LogQuery(obs::LogSeverity::kWarn, options_.query,
                           "task.retry", what, job_name_, task, attempt);
  }
}

void TaskScheduler::MarkFailed(WaveContext& wave, TaskState& state, int task,
                               Status status) {
  if (options_.log != nullptr) {
    // The permanent failure is the engine's "fatal chaos fault": record
    // it with the query's id, then trigger the flight-recorder crash
    // dump so the post-mortem shows the events leading up to it.
    options_.log->LogQuery(obs::LogSeverity::kError, options_.query,
                           "task.fatal", status.message(), job_name_, task,
                           0);
    options_.log->NotifyFatal("task.fatal: job '" + job_name_ + "'");
  }
  {
    std::lock_guard<std::mutex> lock(wave.error_mutex);
    if (wave.first_error.ok()) {
      wave.first_error = std::move(status);
    }
  }
  state.failed.store(true, std::memory_order_release);
  state.cancel.store(true, std::memory_order_relaxed);
}

void TaskScheduler::Backoff(WaveContext& wave, TaskState& state, int task,
                            int attempt) {
  if (options_.retry_backoff_base_ms <= 0.0) {
    return;
  }
  // attempt 2 waits base, attempt 3 waits 2*base, ... capped at max.
  const int exponent = std::min(attempt - 2, 30);
  double delay_ms = options_.retry_backoff_base_ms *
                    std::ldexp(1.0, std::max(exponent, 0));
  delay_ms = std::min(delay_ms, options_.retry_backoff_max_ms);
  // Deterministic jitter in [0.5, 1.0]: hashed, not drawn from a shared
  // RNG, so retry timing never depends on thread interleaving.
  uint64_t h = ChaosMix64(options_.chaos.seed ^ 0x626f66665f6a6974ULL);
  h = ChaosMix64(h ^ static_cast<uint64_t>(wave.kind));
  h = ChaosMix64(h ^ static_cast<uint64_t>(task));
  h = ChaosMix64(h ^ static_cast<uint64_t>(attempt));
  const double jitter =
      0.5 + 0.5 * (static_cast<double>(h >> 11) * 0x1.0p-53);
  delay_ms *= jitter;
  const auto planned_ms = static_cast<int64_t>(std::llround(delay_ms));
  wave.backoff_waits.fetch_add(1, std::memory_order_relaxed);
  // Count the planned wait, not the slept wall time: the counter must be
  // identical across runs even when a cancellation cuts the sleep short.
  wave.backoff_total_ms.fetch_add(planned_ms, std::memory_order_relaxed);
  SleepCancellable(delay_ms, state);
}

void TaskScheduler::SleepCancellable(double delay_ms, TaskState& state) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(delay_ms));
  while (Clock::now() < deadline) {
    if (state.cancel.load(std::memory_order_relaxed) ||
        state.success.load(std::memory_order_acquire) ||
        state.failed.load(std::memory_order_acquire)) {
      return;
    }
    const auto remaining = deadline - Clock::now();
    std::this_thread::sleep_for(
        std::min(remaining, std::chrono::duration_cast<Clock::duration>(
                                std::chrono::milliseconds(1))));
  }
}

int TaskScheduler::PickWorker(int task, int attempt) {
  uint64_t h = ChaosMix64(static_cast<uint64_t>(task) *
                          0x9e3779b97f4a7c15ULL);
  h = ChaosMix64(h ^ static_cast<uint64_t>(attempt));
  const int base = static_cast<int>(h % static_cast<uint64_t>(num_workers_));
  std::lock_guard<std::mutex> lock(worker_mutex_);
  for (int probe = 0; probe < num_workers_; ++probe) {
    const int worker = (base + probe) % num_workers_;
    if (!worker_blacklisted_[static_cast<size_t>(worker)]) {
      return worker;
    }
  }
  // Every worker blacklisted: schedule on the base slot anyway (the
  // simulated cluster never runs out of capacity entirely).
  return base;
}

void TaskScheduler::RecordWorkerFailure(int worker) {
  std::lock_guard<std::mutex> lock(worker_mutex_);
  const auto slot = static_cast<size_t>(worker);
  if (++worker_failures_[slot] >= options_.worker_blacklist_threshold &&
      !worker_blacklisted_[slot]) {
    worker_blacklisted_[slot] = true;
    ++blacklisted_count_;
    SKYMR_TRACE_INSTANT("worker.blacklist", "worker", worker);
    if (options_.log != nullptr) {
      options_.log->LogQuery(obs::LogSeverity::kWarn, options_.query,
                             "worker.blacklist",
                             "worker " + std::to_string(worker) +
                                 " blacklisted after " +
                                 std::to_string(worker_failures_[slot]) +
                                 " failures",
                             job_name_);
    }
  }
}

Status TaskScheduler::RunWaveSpeculative(ThreadPool* pool,
                                         WaveContext& wave) {
  const int n = wave.num_tasks;
  const auto wave_start = Clock::now();
  for (auto& state : wave.states) {
    state->start = wave_start;
  }

  auto spawn = [this, pool, &wave](int task, bool speculative) {
    {
      std::lock_guard<std::mutex> lock(wave.wave_mutex);
      ++wave.active_runners;
    }
    pool->Submit([this, &wave, task, speculative]() {
      // RunTaskChain absorbs every task exception; Submit bodies must not
      // throw.
      RunTaskChain(wave, task, speculative);
      // Notify while holding the mutex: the wave owner only destroys the
      // WaveContext after observing active_runners == 0 under this mutex,
      // which cannot happen until notify_all has returned and the lock is
      // released — notifying after unlock would race cv destruction.
      std::lock_guard<std::mutex> lock(wave.wave_mutex);
      --wave.active_runners;
      wave.wave_cv.notify_all();
    });
  };

  for (int task = 0; task < n; ++task) {
    spawn(task, false);
  }

  const int done_threshold = std::max(
      1, static_cast<int>(
             std::ceil(options_.speculation_wave_fraction * n)));
  const auto poll = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(
          std::max(0.5, options_.speculation_poll_ms)));

  // The caller work-helps below (so the wave finishes even on pools whose
  // workers are all busy), which means it can get stuck inside a
  // long-running task body — exactly the straggler speculation exists to
  // beat. The straggler scan therefore runs on a dedicated monitor thread
  // that only reads atomics and submits duplicates, never task bodies.
  std::atomic<bool> wave_settled{false};
  std::thread monitor([this, n, done_threshold, poll, &wave, &spawn,
                       &wave_settled] {
    std::unique_lock<std::mutex> monitor_lock(wave.wave_mutex);
    while (!wave_settled.load(std::memory_order_acquire)) {
      wave.wave_cv.wait_for(monitor_lock, poll);
      if (wave_settled.load(std::memory_order_acquire)) {
        break;
      }
      monitor_lock.unlock();

      // Straggler scan (atomics only).
      int done = 0;
      std::vector<int64_t> durations;
      for (const auto& state : wave.states) {
        if (state->success.load(std::memory_order_acquire)) {
          ++done;
          durations.push_back(state->duration_us.load(
              std::memory_order_relaxed));
        } else if (state->failed.load(std::memory_order_acquire)) {
          ++done;
        }
      }
      if (done < done_threshold || done == n || durations.empty()) {
        monitor_lock.lock();
        continue;
      }
      std::nth_element(durations.begin(),
                       durations.begin() + durations.size() / 2,
                       durations.end());
      // 1ms floor: sub-millisecond medians would make every task with any
      // scheduling delay look like a straggler.
      const int64_t median_us =
          std::max<int64_t>(durations[durations.size() / 2], 1000);
      const auto cutoff_us = static_cast<int64_t>(
          options_.speculation_slowdown * static_cast<double>(median_us));

      for (int task = 0; task < n; ++task) {
        TaskState& state = *wave.states[static_cast<size_t>(task)];
        if (state.success.load(std::memory_order_acquire) ||
            state.failed.load(std::memory_order_acquire) ||
            state.speculated.load(std::memory_order_relaxed)) {
          continue;
        }
        if (ElapsedUs(state.start) > cutoff_us &&
            !state.speculated.exchange(true, std::memory_order_relaxed)) {
          wave.speculative_launched.fetch_add(1, std::memory_order_relaxed);
          SKYMR_TRACE_INSTANT("task.speculate", "task", task);
          spawn(task, true);
        }
      }
      monitor_lock.lock();
    }
  });

  const auto drain = [pool, poll, &wave](std::unique_lock<std::mutex>& lock) {
    while (wave.active_runners > 0) {
      lock.unlock();
      const bool helped = pool->TryRunOneTask();
      lock.lock();
      if (wave.active_runners == 0) {
        break;
      }
      if (!helped) {
        wave.wave_cv.wait_for(lock, poll);
      }
    }
  };

  std::unique_lock<std::mutex> lock(wave.wave_mutex);
  drain(lock);
  lock.unlock();
  wave_settled.store(true, std::memory_order_release);
  wave.wave_cv.notify_all();
  monitor.join();
  // The monitor may have spawned a duplicate in the instant between the
  // runner count hitting zero and wave_settled being set; drain again so
  // no runner outlives the wave context.
  lock.lock();
  drain(lock);
  return Status::OK();
}

}  // namespace skymr::mr
