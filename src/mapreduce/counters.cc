#include "src/mapreduce/counters.h"

#include <sstream>

namespace skymr::mr {

void Counters::Add(const std::string& name, int64_t delta) {
  values_[name] += delta;
}

int64_t Counters::Get(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

void Counters::Merge(const Counters& other) {
  for (const auto& [name, value] : other.values_) {
    values_[name] += value;
  }
}

std::string Counters::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) {
      os << ", ";
    }
    first = false;
    os << name << "=" << value;
  }
  return os.str();
}

}  // namespace skymr::mr
