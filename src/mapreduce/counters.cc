#include "src/mapreduce/counters.h"

#include <sstream>

namespace skymr::mr {
namespace {

constexpr std::string_view kSlotNames[] = {
    kCounterTupleComparisons,
    kCounterPartitionComparisons,
    kCounterTuplesPruned,
    kCounterPartitionsPruned,
};

}  // namespace

size_t Counters::SlotOf(std::string_view name) {
  // All well-known names share the "skymr." prefix; reject others with one
  // comparison before the (short) exact-match scan.
  if (name.size() < 7 || name.substr(0, 6) != "skymr.") {
    return kNumSlots;
  }
  for (size_t i = 0; i < kNumSlots; ++i) {
    if (name == kSlotNames[i]) {
      return i;
    }
  }
  return kNumSlots;
}

void Counters::Add(std::string_view name, int64_t delta) {
  const size_t slot = SlotOf(name);
  if (slot < kNumSlots) {
    slots_[slot] += delta;
    touched_slots_ = static_cast<uint8_t>(touched_slots_ | (1u << slot));
    return;
  }
  values_[std::string(name)] += delta;
}

int64_t Counters::Get(std::string_view name) const {
  const size_t slot = SlotOf(name);
  if (slot < kNumSlots) {
    return slots_[slot];
  }
  const auto it = values_.find(std::string(name));
  return it == values_.end() ? 0 : it->second;
}

void Counters::Merge(const Counters& other) {
  for (size_t i = 0; i < kNumSlots; ++i) {
    slots_[i] += other.slots_[i];
  }
  touched_slots_ = static_cast<uint8_t>(touched_slots_ | other.touched_slots_);
  for (const auto& [name, value] : other.values_) {
    values_[name] += value;
  }
}

std::map<std::string, int64_t> Counters::values() const {
  std::map<std::string, int64_t> merged = values_;
  for (size_t i = 0; i < kNumSlots; ++i) {
    if ((touched_slots_ & (1u << i)) != 0) {
      merged[std::string(kSlotNames[i])] += slots_[i];
    }
  }
  return merged;
}

std::string Counters::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, value] : values()) {
    if (!first) {
      os << ", ";
    }
    first = false;
    os << name << "=" << value;
  }
  return os.str();
}

}  // namespace skymr::mr
