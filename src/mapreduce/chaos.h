// Deterministic fault injection for the simulated MapReduce engine.
//
// The paper's setting is a cluster where tasks crash, straggle, and get
// re-executed; a ChaosSchedule reproduces those conditions inside the
// in-process engine so the fault-tolerance machinery (retry/backoff,
// worker blacklisting, speculative execution, degradation) can be
// exercised and regression-tested. Every injection decision is a pure
// hash of (seed, job, task kind, task id, attempt[, extras]) — no shared
// RNG state — so thread scheduling cannot perturb which attempts fail:
// the same seed yields the same failures, the same retry counters, and a
// bit-identical skyline on every run.
//
// Injection sites:
//  * crash     — the scheduler throws TaskFailure at attempt start
//                (worker died before committing any output);
//  * slow      — the scheduler sleeps slow_ms before running the attempt
//                (straggler), cooperatively cancellable so a speculative
//                duplicate's win aborts the sleep;
//  * corrupt   — one serialized shuffle value of a reduce attempt is
//                truncated in an attempt-local copy of the slice index;
//                the reducer's Serde read hits the existing
//                SerdeUnderflow path and the retry reads clean bytes;
//  * cache     — DistributedCache lookups made inside a task attempt
//                return a miss (nullptr), exercising the user-code
//                missing-side-data failure paths. Routed through a
//                thread-local task-attempt scope so the cache needs no
//                knowledge of the engine.

#ifndef SKYMR_MAPREDUCE_CHAOS_H_
#define SKYMR_MAPREDUCE_CHAOS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace skymr::mr {

/// One job-wide fault-injection plan. All-default means chaos is off and
/// the engine takes its zero-overhead path.
struct ChaosSchedule {
  /// Seed for every injection hash. Two runs with equal seeds (and equal
  /// schedules) inject exactly the same faults.
  uint64_t seed = 0;
  /// Probability that a given (task, attempt) crashes before running.
  double crash_rate = 0.0;
  /// Attempts <= this value always crash (crash-on-attempt-N: a task
  /// succeeds only from attempt crash_until_attempt + 1 on). 0 = off.
  int crash_until_attempt = 0;
  /// Probability that a given (task, attempt) is delayed by slow_ms.
  double slow_rate = 0.0;
  /// Straggler delay in milliseconds for slow attempts.
  double slow_ms = 20.0;
  /// Deterministic straggler: this task id (when >= 0) is delayed by
  /// slow_ms on attempts <= slow_until_attempt.
  int slow_task = -1;
  int slow_until_attempt = 1;
  /// Probability that a reduce (task, attempt) reads one truncated
  /// shuffle value (SerdeUnderflow on deserialization).
  double corrupt_rate = 0.0;
  /// Probability that a DistributedCache lookup inside a task attempt
  /// misses even though the entry exists.
  double cache_fail_rate = 0.0;
  /// Simulated bad node: tasks scheduled on this worker id (when >= 0)
  /// always crash, until blacklisting routes attempts away from it.
  int bad_worker = -1;
  /// Poisoned job: every task attempt of jobs whose name contains this
  /// substring crashes. Drives the GPMRS -> GPSRS degradation path.
  std::string fail_job;

  /// True when any injection can fire.
  bool enabled() const {
    return crash_rate > 0.0 || crash_until_attempt > 0 || slow_rate > 0.0 ||
           slow_task >= 0 || corrupt_rate > 0.0 || cache_fail_rate > 0.0 ||
           bad_worker >= 0 || !fail_job.empty();
  }
};

/// Named chaos profiles for the CLI / CI (--chaos-profile). "none" is the
/// empty schedule; unknown names are InvalidArgument.
StatusOr<ChaosSchedule> ChaosProfile(const std::string& name);
std::vector<std::string> ChaosProfileNames();

/// Rejects schedules that cannot terminate (rates >= 1 on failure paths,
/// crash_until_attempt >= max_task_attempts) or are out of range.
Status ValidateChaosSchedule(const ChaosSchedule& schedule,
                             int max_task_attempts);

/// Per-job injection oracle plus injection totals (for the mr.chaos_*
/// counters). Decision methods are deterministic pure hashes; the atomics
/// only count how often each site fired.
class ChaosEngine {
 public:
  ChaosEngine(const ChaosSchedule& schedule, const std::string& job_name);

  const ChaosSchedule& schedule() const { return schedule_; }

  /// True when this (kind, task, attempt, worker) crashes at start.
  bool ShouldCrash(int kind, int task, int attempt, int worker);
  /// Injected straggler delay in ms for this attempt; 0 when not slow.
  double SlowDelayMs(int kind, int task, int attempt);
  /// True when this reduce attempt should read one corrupted value.
  bool ShouldCorruptShuffle(int task, int attempt);
  /// Which of `count` shuffle values to truncate. Requires count > 0.
  size_t CorruptIndex(int task, int attempt, size_t count) const;
  /// True when the `sequence`-th cache lookup of this attempt misses.
  bool ShouldFailCacheRead(int kind, int task, int attempt,
                           uint64_t sequence);

  int64_t crashes_injected() const { return crashes_.load(); }
  int64_t slow_injected() const { return slow_.load(); }
  int64_t corruptions_injected() const { return corruptions_.load(); }
  int64_t cache_faults_injected() const { return cache_faults_.load(); }

 private:
  /// Uniform [0, 1) hash of the mixed decision inputs.
  double UnitHash(uint64_t salt, uint64_t a, uint64_t b, uint64_t c,
                  uint64_t d = 0) const;

  ChaosSchedule schedule_;
  uint64_t job_hash_;
  bool fail_job_hit_;
  std::atomic<int64_t> crashes_{0};
  std::atomic<int64_t> slow_{0};
  std::atomic<int64_t> corruptions_{0};
  std::atomic<int64_t> cache_faults_{0};
};

/// RAII marker: "this thread is running task attempt (kind, task,
/// attempt) under `engine`". While a scope is active, ChaosInjectCacheFault
/// consults the engine; scopes nest (the inner one wins) and a null
/// engine disables injection. Installed by the TaskScheduler around every
/// attempt, including the user code it runs.
class ChaosTaskScope {
 public:
  ChaosTaskScope(ChaosEngine* engine, int kind, int task, int attempt);
  ~ChaosTaskScope();
  ChaosTaskScope(const ChaosTaskScope&) = delete;
  ChaosTaskScope& operator=(const ChaosTaskScope&) = delete;

 private:
  void* previous_;
};

/// Called by DistributedCache on every lookup: true means "pretend the
/// entry is missing". Always false outside a ChaosTaskScope or when the
/// active schedule has cache_fail_rate == 0.
bool ChaosInjectCacheFault();

/// splitmix64 finalizer — the mixing primitive behind every injection
/// hash, exported so the scheduler derives deterministic backoff jitter
/// the same way.
uint64_t ChaosMix64(uint64_t x);

}  // namespace skymr::mr

#endif  // SKYMR_MAPREDUCE_CHAOS_H_
