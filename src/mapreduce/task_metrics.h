// Per-task and per-job execution metrics captured by the engine. The
// ClusterModel consumes these to compute a modeled cluster makespan; the
// obs::JobReport exporter renders them as JSON.

#ifndef SKYMR_MAPREDUCE_TASK_METRICS_H_
#define SKYMR_MAPREDUCE_TASK_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mapreduce/counters.h"
#include "src/obs/histogram.h"

namespace skymr::mr {

/// Metrics for one map or reduce task attempt that succeeded.
struct TaskMetrics {
  /// CPU-side wall time the task spent executing user code, excluding
  /// queueing. On a loaded machine this is still per-task because tasks run
  /// one per thread.
  double busy_seconds = 0.0;
  uint64_t input_records = 0;
  uint64_t output_records = 0;
  /// Serialized bytes this task produced (map: into the shuffle;
  /// reduce: as job output).
  uint64_t output_bytes = 0;
  /// Serialized bytes this task consumed from the shuffle (reduce only).
  uint64_t input_bytes = 0;
  /// Number of attempts it took to finish (1 = no retry).
  int attempts = 1;
  /// Reduce only: wall time spent building this reducer's shuffle input
  /// (gathering + sorting its bucket). Feeds the critical-path analyzer's
  /// shuffle edge weight; 0 on map tasks.
  double shuffle_seconds = 0.0;
  Counters counters;
  /// Distribution metrics recorded by the task (window scan lengths, ...).
  obs::HistogramSet histograms;
};

/// Metrics for one MapReduce job.
struct JobMetrics {
  /// The job's name, as passed to mr::Job (e.g. "mr-gpmrs").
  std::string name;
  std::vector<TaskMetrics> map_tasks;
  std::vector<TaskMetrics> reduce_tasks;
  /// Total serialized key+value bytes moved through the shuffle.
  uint64_t shuffle_bytes = 0;
  /// Real wall time of the simulated job on this machine.
  double wall_seconds = 0.0;
  /// Counters merged across all tasks, plus the engine's own counters
  /// (mr.task_retries, mr.cache_hits, mr.cache_misses).
  Counters counters;
  /// Histograms merged across all tasks, plus the engine's own
  /// distributions (mr.map_task_busy_us, mr.reduce_task_busy_us,
  /// mr.shuffle_bucket_bytes).
  obs::HistogramSet histograms;

  /// Largest value of `counter` across map tasks (Figure 11a's
  /// "mapper with the highest number of comparisons").
  int64_t MaxMapCounter(const std::string& counter) const {
    int64_t best = 0;
    for (const TaskMetrics& t : map_tasks) {
      best = std::max(best, t.counters.Get(counter));
    }
    return best;
  }

  /// Largest value of `counter` across reduce tasks (Figure 11b).
  int64_t MaxReduceCounter(const std::string& counter) const {
    int64_t best = 0;
    for (const TaskMetrics& t : reduce_tasks) {
      best = std::max(best, t.counters.Get(counter));
    }
    return best;
  }
};

}  // namespace skymr::mr

#endif  // SKYMR_MAPREDUCE_TASK_METRICS_H_
