#include "src/mapreduce/distributed_cache.h"

#include "src/mapreduce/chaos.h"

namespace skymr::mr {

Status DistributedCache::PutErased(const std::string& key,
                                   std::type_index type,
                                   std::shared_ptr<const void> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] =
      entries_.emplace(key, Entry{type, std::move(value)});
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("distributed cache key exists: " + key);
  }
  return Status::OK();
}

std::shared_ptr<const void> DistributedCache::GetErased(
    const std::string& key, std::type_index type) const {
  // Chaos hook: inside a task attempt whose schedule injects cache
  // faults, pretend the entry is missing. User code sees an ordinary
  // miss (nullptr) and fails through its existing missing-side-data
  // path; the retried attempt rolls a fresh deterministic coin.
  if (ChaosInjectCacheFault()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second.type != type) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.value;
}

void DistributedCache::Remove(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.erase(key);
}

bool DistributedCache::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(key) != entries_.end();
}

size_t DistributedCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace skymr::mr
