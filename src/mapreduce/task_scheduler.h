// TaskScheduler: the fault-tolerant wave executor behind Job::Run.
//
// The engine used to retry a failed task immediately, inline, with no
// notion of where the task ran. This scheduler models a small cluster:
//
//  * retry with exponential backoff + deterministic jitter — a failed
//    attempt waits base * 2^(k-1) ms (capped), scaled by a jitter factor
//    hashed from (seed, job, task, attempt), before re-running;
//  * per-"worker" blacklisting — every attempt is deterministically
//    assigned to one of `num_workers` simulated slots; a worker that
//    accumulates `worker_blacklist_threshold` failures stops receiving
//    attempts (routing probes the next slot), so a "bad node" cannot
//    eat a task's whole retry budget;
//  * speculative execution — once >= speculation_wave_fraction of a wave
//    has finished, outstanding tasks running longer than
//    speculation_slowdown x the median completed duration get a
//    duplicate attempt; the first finisher commits (idempotent output
//    commit via TaskAttempt::TryCommit), the loser is cooperatively
//    cancelled;
//  * chaos — when EngineOptions::chaos is enabled, a ChaosEngine decides
//    per attempt whether to crash it, delay it, or fail its cache reads
//    (see chaos.h), all deterministically.
//
// The scheduler is type-erased (attempt bodies are std::function), so it
// compiles once in task_scheduler.cc while the templated Job stays
// header-only.

#ifndef SKYMR_MAPREDUCE_TASK_SCHEDULER_H_
#define SKYMR_MAPREDUCE_TASK_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/mapreduce/chaos.h"
#include "src/obs/log.h"

namespace skymr::obs {
class MetricsRegistry;  // metrics.h
}  // namespace skymr::obs

namespace skymr::mr {

/// Thrown by user code to signal a recoverable task failure; the engine
/// retries the task up to EngineOptions::max_task_attempts times.
class TaskFailure : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown inside an attempt whose duplicate already committed (the
/// scheduler's cancellation flag is set). Not a failure: the scheduler
/// discards the attempt without consuming retry budget. User code may
/// throw it from long loops after polling TaskAttempt::Cancelled().
class TaskCancelled : public std::exception {
 public:
  const char* what() const noexcept override {
    return "task attempt cancelled (duplicate committed first)";
  }
};

/// Map wave or reduce wave (chaos decisions hash the kind so the same
/// task id fails independently in each wave).
enum class TaskKind { kMap = 0, kReduce = 1 };

/// Engine configuration for one job.
struct EngineOptions {
  /// Number of map tasks (m in the paper). The input is split into this
  /// many contiguous splits.
  int num_map_tasks = 4;
  /// Number of reduce tasks (r in the paper).
  int num_reducers = 1;
  /// Worker threads simulating cluster slots; 0 = hardware concurrency.
  int num_threads = 0;
  /// Maximum attempts per task before the job fails (Hadoop default: 4).
  int max_task_attempts = 1;

  // -- Fault tolerance --
  /// First-retry backoff in milliseconds; doubles per failure. 0 turns
  /// backoff off (failed attempts re-run immediately, as before).
  double retry_backoff_base_ms = 1.0;
  /// Backoff cap in milliseconds.
  double retry_backoff_max_ms = 32.0;
  /// Simulated worker slots attempts are scheduled onto; 0 = 8.
  int num_workers = 0;
  /// Failures on one worker before it is blacklisted.
  int worker_blacklist_threshold = 3;
  /// Launch duplicate attempts of stragglers (off by default: duplicates
  /// make wall-time-dependent counters nondeterministic).
  bool speculative_execution = false;
  /// Fraction of the wave that must have finished before speculating.
  double speculation_wave_fraction = 0.75;
  /// An outstanding task is a straggler when it has run longer than this
  /// multiple of the median completed-task duration.
  double speculation_slowdown = 2.0;
  /// Straggler-scan period of the wave coordinator, in milliseconds.
  double speculation_poll_ms = 2.0;
  /// Fault injection (off by default; see chaos.h).
  ChaosSchedule chaos;

  // -- Observability --
  /// Live metrics sink (obs/metrics.h). When set, Job::Run records
  /// in-flight job gauges, completion counters, and task/shuffle latency
  /// sketches into it while the job executes. Null (the default) keeps
  /// the engine metrics-free; the registry must outlive the run.
  obs::MetricsRegistry* metrics = nullptr;
  /// Structured log + flight recorder (obs/log.h). When set, Job::Run
  /// and the TaskScheduler emit job/task lifecycle records into it, and
  /// a permanent (chaos-) task failure triggers the flight-recorder
  /// crash dump (Logger::NotifyFatal). Null (the default) keeps the
  /// engine log-free; the logger must outlive the run.
  obs::Logger* log = nullptr;
  /// Correlation spine of the query this job serves: its id and tag are
  /// stamped on every span instant and log record the job's tasks emit,
  /// so one query's events can be picked out of a shared flight
  /// recorder. Default (id 0) means "not query-scoped" (batch runs).
  obs::QueryContext query;
};

/// Rejects nonsensical engine configurations: non-positive task counts,
/// zero attempt budgets, bad backoff/speculation tunables, and chaos
/// schedules that can never finish (ValidateChaosSchedule).
Status ValidateEngineOptions(const EngineOptions& options);

/// One scheduled task attempt, handed to the attempt body. The body must
/// call TryCommit() exactly once after computing its result and write the
/// task's output slot only when it returns true — that is what makes
/// output commit idempotent under duplicate attempts.
struct TaskAttempt {
  int task_id = 0;
  /// 1-based, unique across a task's primary and speculative runners.
  int attempt = 1;
  /// Simulated worker slot the attempt was scheduled on.
  int worker = 0;
  /// True for attempts launched by speculative execution.
  bool speculative = false;

  /// Cooperative cancellation: set once a duplicate of this task has
  /// committed. Long-running user loops may poll and throw TaskCancelled.
  bool Cancelled() const {
    return cancel_flag->load(std::memory_order_relaxed);
  }
  /// First-committer-wins output gate. True exactly once per task.
  bool TryCommit() const {
    won_ = !commit_flag->exchange(true, std::memory_order_acq_rel);
    return won_;
  }
  /// True when this attempt's TryCommit won (scheduler bookkeeping).
  bool won() const { return won_; }

  const std::atomic<bool>* cancel_flag = nullptr;
  std::atomic<bool>* commit_flag = nullptr;

 private:
  friend class TaskScheduler;
  mutable bool won_ = false;
};

/// Per-wave scheduling outcome, merged into the job's mr.* counters.
struct WaveStats {
  /// Failed attempts that were retried (the task.retry instants).
  int64_t retries = 0;
  /// Backoff sleeps taken and their total (deterministic) duration.
  int64_t backoff_waits = 0;
  int64_t backoff_total_ms = 0;
  /// Speculative duplicates launched / that beat the original attempt.
  int64_t speculative_launched = 0;
  int64_t speculative_wins = 0;
};

/// Runs waves of tasks for one job. Worker failure counts and the
/// blacklist persist across the job's waves (a bad node stays bad between
/// the map and reduce phases); construct one scheduler per Job::Run.
class TaskScheduler {
 public:
  /// Attempt body contract: compute the attempt's result into local
  /// state, then `if (!attempt.TryCommit()) return OK` (duplicate lost —
  /// discard), else publish to the task's output slot and return OK.
  /// Throw TaskFailure / SerdeUnderflow for retryable failures; a non-OK
  /// Status is a permanent, non-retryable failure.
  using AttemptBody = std::function<Status(const TaskAttempt&)>;

  TaskScheduler(const EngineOptions& options, std::string job_name);
  ~TaskScheduler();

  /// Runs `num_tasks` tasks to completion on `pool`, retrying and
  /// speculating per the options. Returns the first permanent task
  /// failure, or OK when every task committed.
  Status RunWave(ThreadPool* pool, TaskKind kind, int num_tasks,
                 const AttemptBody& body, WaveStats* stats);

  /// The job's fault injector; null when chaos is disabled.
  ChaosEngine* chaos() const { return chaos_.get(); }
  /// Workers blacklisted so far during this job.
  int64_t blacklisted_workers() const;

 private:
  struct TaskState;
  struct WaveContext;

  void RunTaskChain(WaveContext& wave, int task, bool speculative);
  void RunOneAttempt(WaveContext& wave, TaskState& state, int task,
                     int attempt, bool speculative);
  void HandleRetryableFailure(WaveContext& wave, TaskState& state, int task,
                              int attempt, int worker,
                              const std::string& what);
  void Backoff(WaveContext& wave, TaskState& state, int task, int attempt);
  static void SleepCancellable(double delay_ms, TaskState& state);
  int PickWorker(int task, int attempt);
  void RecordWorkerFailure(int worker);
  void MarkFailed(WaveContext& wave, TaskState& state, int task,
                  Status status);
  Status RunWaveSpeculative(ThreadPool* pool, WaveContext& wave);
  int WinnerAttempt(const WaveContext& wave, int task) const;

  const EngineOptions options_;
  const std::string job_name_;
  const int num_workers_;
  std::unique_ptr<ChaosEngine> chaos_;

  mutable std::mutex worker_mutex_;
  std::vector<int> worker_failures_;
  std::vector<bool> worker_blacklisted_;
  int64_t blacklisted_count_ = 0;
};

}  // namespace skymr::mr

#endif  // SKYMR_MAPREDUCE_TASK_SCHEDULER_H_
