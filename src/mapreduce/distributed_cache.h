// DistributedCache: Hadoop's mechanism for broadcasting read-only side data
// to every map and reduce task. The paper relies on it to ship the global
// bitstring BS_R (Section 2.1: "This paper assumes that the Distributed
// Cache, or something similar, is available").
//
// Entries are immutable once put; tasks receive shared const pointers.
// The entry map itself is mutex-protected so Put/Remove (between chained
// jobs) cannot race the concurrent Get calls tasks issue during a job.

#ifndef SKYMR_MAPREDUCE_DISTRIBUTED_CACHE_H_
#define SKYMR_MAPREDUCE_DISTRIBUTED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>

#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace skymr::mr {

/// A typed, immutable broadcast store keyed by string.
class DistributedCache {
 public:
  /// Stores `value` under `key`. Fails when the key already exists (cache
  /// entries are immutable for the lifetime of a job chain).
  template <typename T>
  Status Put(const std::string& key, std::shared_ptr<const T> value) {
    return PutErased(key, std::type_index(typeid(T)),
                     std::shared_ptr<const void>(std::move(value)));
  }

  /// Convenience overload that copies `value` into the cache.
  template <typename T>
  Status PutValue(const std::string& key, T value) {
    return Put<T>(key, std::make_shared<const T>(std::move(value)));
  }

  /// Retrieves the entry under `key`. Returns nullptr when the key is
  /// missing or was stored with a different type.
  template <typename T>
  std::shared_ptr<const T> Get(const std::string& key) const {
    const std::shared_ptr<const void> erased =
        GetErased(key, std::type_index(typeid(T)));
    return std::static_pointer_cast<const T>(erased);
  }

  /// Removes an entry (used between chained jobs to replace side data).
  void Remove(const std::string& key) SKYMR_EXCLUDES(mutex_);

  bool Contains(const std::string& key) const SKYMR_EXCLUDES(mutex_);
  size_t size() const SKYMR_EXCLUDES(mutex_);

  /// Lifetime Get statistics: a hit is a Get that found the key with the
  /// requested type, a miss is any other Get. Monotonic across jobs; the
  /// engine snapshots them around each job and reports the deltas as the
  /// mr.cache_hits / mr.cache_misses job counters.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    std::type_index type;
    std::shared_ptr<const void> value;
  };

  Status PutErased(const std::string& key, std::type_index type,
                   std::shared_ptr<const void> value)
      SKYMR_EXCLUDES(mutex_);
  std::shared_ptr<const void> GetErased(const std::string& key,
                                        std::type_index type) const
      SKYMR_EXCLUDES(mutex_);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_ SKYMR_GUARDED_BY(mutex_);
  // Atomics, not guarded: bumped inside GetErased's critical section but
  // read lock-free by hits()/misses().
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace skymr::mr

#endif  // SKYMR_MAPREDUCE_DISTRIBUTED_CACHE_H_
