// Named int64 counters, the Hadoop-style mechanism tasks use to report
// statistics (records processed, dominance tests, partition comparisons).
// Each task owns a private Counters instance; the engine merges them into
// job-level totals, so no synchronization is needed on the hot path.
//
// The four well-known skymr.* counters are stored in pre-interned slots:
// Add/Get on them is an array access after a short name check, with no
// std::map lookup and no std::string construction when called with a
// string literal. Ad-hoc names still go through the string map. The
// external behavior — Get, Merge, empty, values(), ToString ordering —
// is identical for both kinds.

#ifndef SKYMR_MAPREDUCE_COUNTERS_H_
#define SKYMR_MAPREDUCE_COUNTERS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace skymr::mr {

/// Well-known counter names used by the skyline algorithms.
inline constexpr const char* kCounterTupleComparisons =
    "skymr.tuple_comparisons";
inline constexpr const char* kCounterPartitionComparisons =
    "skymr.partition_comparisons";
inline constexpr const char* kCounterTuplesPruned = "skymr.tuples_pruned";
inline constexpr const char* kCounterPartitionsPruned =
    "skymr.partitions_pruned";

/// A mergeable bag of named counters with deterministic iteration order.
class Counters {
 public:
  /// Adds `delta` to counter `name` (creating it at zero).
  void Add(std::string_view name, int64_t delta);

  /// Returns the value of `name`, or 0 when absent.
  int64_t Get(std::string_view name) const;

  /// Adds every counter of `other` into this.
  void Merge(const Counters& other);

  bool empty() const { return touched_slots_ == 0 && values_.empty(); }

  /// Every counter by name, interned slots included. Materialized per
  /// call; iterate once, not per lookup.
  std::map<std::string, int64_t> values() const;

  /// Renders "name=value" pairs separated by ", ".
  std::string ToString() const;

 private:
  static constexpr size_t kNumSlots = 4;

  /// Slot of a well-known name, or kNumSlots when ad-hoc.
  static size_t SlotOf(std::string_view name);

  std::array<int64_t, kNumSlots> slots_{};
  /// Bit i set when slot i was ever Added to (so a counter added with a
  /// zero delta still appears in values()/ToString, exactly as the map
  /// behaves for ad-hoc names).
  uint8_t touched_slots_ = 0;
  std::map<std::string, int64_t> values_;
};

}  // namespace skymr::mr

#endif  // SKYMR_MAPREDUCE_COUNTERS_H_
