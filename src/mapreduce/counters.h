// Named int64 counters, the Hadoop-style mechanism tasks use to report
// statistics (records processed, dominance tests, partition comparisons).
// Each task owns a private Counters instance; the engine merges them into
// job-level totals, so no synchronization is needed on the hot path.

#ifndef SKYMR_MAPREDUCE_COUNTERS_H_
#define SKYMR_MAPREDUCE_COUNTERS_H_

#include <cstdint>
#include <map>
#include <string>

namespace skymr::mr {

/// Well-known counter names used by the skyline algorithms.
inline constexpr const char* kCounterTupleComparisons =
    "skymr.tuple_comparisons";
inline constexpr const char* kCounterPartitionComparisons =
    "skymr.partition_comparisons";
inline constexpr const char* kCounterTuplesPruned = "skymr.tuples_pruned";
inline constexpr const char* kCounterPartitionsPruned =
    "skymr.partitions_pruned";

/// A mergeable bag of named counters with deterministic iteration order.
class Counters {
 public:
  /// Adds `delta` to counter `name` (creating it at zero).
  void Add(const std::string& name, int64_t delta);

  /// Returns the value of `name`, or 0 when absent.
  int64_t Get(const std::string& name) const;

  /// Adds every counter of `other` into this.
  void Merge(const Counters& other);

  bool empty() const { return values_.empty(); }

  const std::map<std::string, int64_t>& values() const { return values_; }

  /// Renders "name=value" pairs separated by ", ".
  std::string ToString() const;

 private:
  std::map<std::string, int64_t> values_;
};

}  // namespace skymr::mr

#endif  // SKYMR_MAPREDUCE_COUNTERS_H_
