// The MapReduce engine: a faithful in-process implementation of the
// programming model the paper targets (Section 2.1).
//
//   Map(k1, v1)        -> list(k2, v2)
//   Reduce(k2, [v2])   -> list(k3, v3)
//
// Semantics reproduced from Hadoop 1.x:
//  * the input is split into `num_map_tasks` contiguous splits, one mapper
//    task per split, with Setup/Map/Cleanup lifecycle;
//  * every emitted (k2, v2) is routed to a reducer by a Partitioner and
//    *serialized* at the map side — values physically cross the "network"
//    as bytes, so no shared in-memory state can leak between tasks and the
//    shuffle byte counts are exact;
//  * each reducer task receives its bucket grouped by key in sorted key
//    order, with values ordered by (mapper id, emit order);
//  * a DistributedCache broadcasts immutable side data to all tasks;
//  * tasks may fail (throw TaskFailure) and are retried up to
//    `max_task_attempts` times with exponential backoff, worker
//    blacklisting, and optional speculative execution — see
//    task_scheduler.h for the scheduling policy and chaos.h for
//    deterministic fault injection;
//  * per-task busy times, record counts, byte counts, and Counters are
//    captured so a ClusterModel can compute a modeled cluster makespan.
//
// Map and reduce tasks run concurrently on a ThreadPool.
//
// Shuffle storage is allocation-lean: each map task owns one contiguous
// byte arena per reducer bucket into which Emit serializes key and value
// back to back (one write doubles as the byte-count measurement), plus a
// small offset/length record index. The shuffle moves whole arenas to the
// reducer side — never per-record buffers — and each reducer's merge and
// sort runs as its own pool task. Reducers consume values through a
// streaming ValueIterator that deserializes one value at a time straight
// out of the arena, so a key group is never materialized as a
// std::vector<V2>.

#ifndef SKYMR_MAPREDUCE_JOB_H_
#define SKYMR_MAPREDUCE_JOB_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"
#include "src/mapreduce/chaos.h"
#include "src/mapreduce/counters.h"
#include "src/mapreduce/distributed_cache.h"
#include "src/mapreduce/task_metrics.h"
#include "src/mapreduce/task_scheduler.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace skymr::mr {

/// How emitted keys are routed to reducers. The common routings are plain
/// enum cases so MapContext::Emit dispatches with an inlineable switch
/// instead of a std::function call per record.
enum class PartitionerKind {
  kSingleReducer,  ///< One reducer: every record goes to bucket 0.
  kHash,           ///< std::hash(key) % num_reducers (the default).
  kModulo,         ///< key % num_reducers for integral keys.
  kCustom,         ///< User std::function (validated per record).
};

/// Streams one key group's values out of the shuffle arena, deserializing
/// lazily: Next() decodes exactly one value, so a reducer that keeps only
/// a running aggregate never materializes the group.
template <typename V2>
class ValueIterator {
 public:
  /// One serialized value inside a shuffle arena.
  struct Slice {
    const uint8_t* data;
    size_t size;
  };

  ValueIterator(const Slice* slices, size_t count)
      : slices_(slices), count_(count) {}

  bool HasNext() const { return next_ < count_; }
  size_t remaining() const { return count_ - next_; }

  /// Deserializes and returns the next value. Requires HasNext().
  V2 Next() {
    SKYMR_DCHECK(HasNext()) << "Next() past the last shuffle value";
    const Slice& slice = slices_[next_++];
    ByteSource source(slice.data, slice.size);
    return Serde<V2>::Read(&source);
  }

  /// Materializes every remaining value. Convenience for callers that
  /// genuinely need the whole group at once; prefer streaming with Next().
  std::vector<V2> Drain() {
    std::vector<V2> out;
    out.reserve(remaining());
    while (HasNext()) {
      out.push_back(Next());
    }
    return out;
  }

 private:
  const Slice* slices_;
  size_t count_;
  size_t next_ = 0;
};

/// The interface map tasks use to emit records and report statistics.
template <typename K2, typename V2>
class MapContext {
 public:
  MapContext(int task_id, int num_reducers, const DistributedCache* cache,
             PartitionerKind partitioner_kind,
             const std::function<int(const K2&, int)>* custom_partitioner)
      : task_id_(task_id),
        num_reducers_(num_reducers),
        cache_(cache),
        partitioner_kind_(partitioner_kind),
        custom_partitioner_(custom_partitioner),
        buckets_(static_cast<size_t>(num_reducers)) {}

  /// Emits one intermediate record. Key and value are serialized once,
  /// back to back, into the destination bucket's arena; the arena growth
  /// is the byte count, so nothing is encoded twice.
  void Emit(const K2& key, const V2& value) {
    const int bucket_index = Route(key);
    Bucket& bucket = buckets_[static_cast<size_t>(bucket_index)];
    const size_t key_begin = bucket.arena.size();
    Serde<K2>::Write(key, &bucket.arena);
    const size_t value_begin = bucket.arena.size();
    Serde<V2>::Write(value, &bucket.arena);
    Record record;
    record.key = key;
    record.value_offset = value_begin;
    record.key_bytes = value_begin - key_begin;
    record.value_bytes = bucket.arena.size() - value_begin;
    bucket.records.push_back(std::move(record));
    ++output_records_;
  }

  int task_id() const { return task_id_; }
  int num_reducers() const { return num_reducers_; }
  const DistributedCache& cache() const { return *cache_; }
  Counters& counters() { return counters_; }
  obs::HistogramSet& histograms() { return histograms_; }

 private:
  template <typename In, typename KK, typename VV, typename Out>
  friend class Job;

  struct Record {
    K2 key;
    size_t value_offset = 0;  // Of the value bytes within the arena.
    size_t key_bytes = 0;
    size_t value_bytes = 0;
  };

  /// One reducer bucket: a contiguous serialization arena plus the record
  /// index into it.
  struct Bucket {
    ByteSink arena;
    std::vector<Record> records;
  };

  int Route(const K2& key) {
    switch (partitioner_kind_) {
      case PartitionerKind::kSingleReducer:
        return 0;
      case PartitionerKind::kHash:
        return static_cast<int>(std::hash<K2>{}(key) %
                                static_cast<size_t>(num_reducers_));
      case PartitionerKind::kModulo:
        if constexpr (std::is_integral_v<K2>) {
          return static_cast<int>(static_cast<uint64_t>(key) %
                                  static_cast<uint64_t>(num_reducers_));
        } else {
          return 0;  // Unreachable: UseModuloPartitioner is static_asserted.
        }
      case PartitionerKind::kCustom: {
        const int bucket = (*custom_partitioner_)(key, num_reducers_);
        if (bucket < 0 || bucket >= num_reducers_) {
          throw TaskFailure("partitioner returned out-of-range bucket " +
                            std::to_string(bucket));
        }
        return bucket;
      }
    }
    return 0;
  }

  int task_id_;
  int num_reducers_;
  const DistributedCache* cache_;
  PartitionerKind partitioner_kind_;
  const std::function<int(const K2&, int)>* custom_partitioner_;
  std::vector<Bucket> buckets_;
  uint64_t output_records_ = 0;
  Counters counters_;
  obs::HistogramSet histograms_;
};

/// The interface reduce tasks use to emit output records.
template <typename Out>
class ReduceContext {
 public:
  ReduceContext(int task_id, const DistributedCache* cache)
      : task_id_(task_id), cache_(cache) {}

  /// Emits one output record.
  void Emit(Out value) {
    output_bytes_ += SerializedByteSize(value);
    outputs_.push_back(std::move(value));
  }

  int task_id() const { return task_id_; }
  const DistributedCache& cache() const { return *cache_; }
  Counters& counters() { return counters_; }
  obs::HistogramSet& histograms() { return histograms_; }

 private:
  template <typename In, typename KK, typename VV, typename OO>
  friend class Job;

  int task_id_;
  const DistributedCache* cache_;
  std::vector<Out> outputs_;
  uint64_t output_bytes_ = 0;
  Counters counters_;
  obs::HistogramSet histograms_;
};

/// User map task: one instance per task attempt.
template <typename In, typename K2, typename V2>
class Mapper {
 public:
  virtual ~Mapper() = default;
  /// Called once before the first record.
  virtual void Setup(MapContext<K2, V2>& ctx) { (void)ctx; }
  /// Called once per input record.
  virtual void Map(const In& record, MapContext<K2, V2>& ctx) = 0;
  /// Called once after the last record. Batch algorithms (like the
  /// skyline mappers) emit their results here.
  virtual void Cleanup(MapContext<K2, V2>& ctx) { (void)ctx; }
};

/// User reduce task: one instance per task attempt.
template <typename K2, typename V2, typename Out>
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Setup(ReduceContext<Out>& ctx) { (void)ctx; }
  /// Called once per distinct key, with that key's values as a stream in
  /// (mapper id, emit order). Values not pulled are never deserialized.
  virtual void Reduce(const K2& key, ValueIterator<V2>& values,
                      ReduceContext<Out>& ctx) = 0;
  virtual void Cleanup(ReduceContext<Out>& ctx) { (void)ctx; }
};

/// Result of running a job: outputs in reducer-id order plus metrics.
template <typename Out>
struct JobResult {
  Status status;
  std::vector<Out> outputs;
  JobMetrics metrics;

  bool ok() const { return status.ok(); }
};

/// A configured MapReduce job. K2 must be copyable, LessThanComparable and
/// Serde-serializable; V2 and Out must be Serde-serializable.
template <typename In, typename K2, typename V2, typename Out>
class Job {
 public:
  using MapperFactory =
      std::function<std::unique_ptr<Mapper<In, K2, V2>>()>;
  using ReducerFactory =
      std::function<std::unique_ptr<Reducer<K2, V2, Out>>()>;
  /// A Hadoop-style combiner: a reducer run on each map task's output
  /// before the shuffle, re-emitting (key, value) pairs. Must be
  /// idempotent with respect to the final reducer's semantics.
  using Combiner = Reducer<K2, V2, std::pair<K2, V2>>;
  using CombinerFactory = std::function<std::unique_ptr<Combiner>()>;
  using Partitioner = std::function<int(const K2&, int)>;

  Job(std::string name, MapperFactory mapper_factory,
      ReducerFactory reducer_factory)
      : name_(std::move(name)),
        mapper_factory_(std::move(mapper_factory)),
        reducer_factory_(std::move(reducer_factory)) {}

  const std::string& name() const { return name_; }

  /// Replaces the default hash partitioner with a user function. The
  /// function's result is range-checked on every record; prefer
  /// UseModuloPartitioner for plain `key % r` routing.
  void set_partitioner(Partitioner partitioner) {
    partitioner_ = std::move(partitioner);
    partitioner_kind_ = PartitionerKind::kCustom;
  }

  /// Routes integral keys as `key % num_reducers` (treating the key as
  /// unsigned) without a std::function call per record.
  void UseModuloPartitioner() {
    static_assert(std::is_integral_v<K2>,
                  "modulo partitioning requires an integral key type");
    partitioner_kind_ = PartitionerKind::kModulo;
  }

  /// Installs a combiner, applied to each map task's emitted records
  /// (grouped by key) before the shuffle.
  void set_combiner(CombinerFactory combiner_factory) {
    combiner_factory_ = std::move(combiner_factory);
  }

  /// Runs the job over `input` with side data from `cache`.
  /// When `pool` is null a private pool of options.num_threads is used.
  JobResult<Out> Run(std::span<const In> input, const EngineOptions& options,
                     const DistributedCache& cache,
                     ThreadPool* pool = nullptr) {
    JobResult<Out> result;
    if (const Status valid = ValidateEngineOptions(options); !valid.ok()) {
      result.status = Status::InvalidArgument("job '" + name_ +
                                              "': " + valid.message());
      return result;
    }
    result.metrics.name = name_;
    SKYMR_TRACE_SPAN(std::string("job.") + name_, "mappers",
                     options.num_map_tasks, "reducers", options.num_reducers);
    if (options.query.id != 0) {
      // Correlation spine: stamp the owning query's id into the trace
      // stream under the job span, mirroring the id every log record of
      // this job carries.
      SKYMR_TRACE_INSTANT("query.job", "query",
                          static_cast<int64_t>(options.query.id));
    }
    if (options.log != nullptr) {
      options.log->LogQuery(
          obs::LogSeverity::kInfo, options.query, "job.start",
          std::to_string(options.num_map_tasks) + " mappers, " +
              std::to_string(options.num_reducers) + " reducers, " +
              std::to_string(input.size()) + " input records",
          name_);
    }
    // Live metrics (optional): gauge of jobs in flight for the sampler's
    // time series, sketches fed per task below.
    obs::ScopedGaugeDelta inflight(
        options.metrics != nullptr ? options.metrics->gauge("mr.inflight_jobs")
                                   : nullptr,
        1);
    // Cache traffic is reported per job as the delta of the cache's
    // lifetime hit/miss totals across this run.
    const uint64_t cache_hits_before = cache.hits();
    const uint64_t cache_misses_before = cache.misses();
    Stopwatch job_clock;
    std::unique_ptr<ThreadPool> owned_pool;
    if (pool == nullptr) {
      const int threads = options.num_threads > 0
                              ? options.num_threads
                              : ThreadPool::DefaultThreads();
      owned_pool = std::make_unique<ThreadPool>(threads);
      pool = owned_pool.get();
    }

    const int m = options.num_map_tasks;
    const int r = options.num_reducers;

    // One scheduler per run: worker failure counts and the blacklist
    // persist from the map wave into the reduce wave.
    TaskScheduler scheduler(options, name_);
    WaveStats wave_stats;

    // ---- Map wave ----
    // Task isolation contract: concurrent attempts touch only their own
    // task's slot of these per-task vectors, and only after winning the
    // idempotent output commit (TaskAttempt::TryCommit), so duplicate
    // attempts never race on a slot. The merge passes below run on the
    // caller's thread after the wave completes.
    std::vector<MapTaskOutput> map_outputs(static_cast<size_t>(m));
    Status wave_status;
    uint64_t map_wave_id = 0;
    {
      SKYMR_TRACE_SPAN_ID(map_wave_span, "map.wave", "tasks", m);
      map_wave_id = map_wave_span.id();
      wave_status = scheduler.RunWave(
          pool, TaskKind::kMap, m,
          [&](const TaskAttempt& attempt) {
            return RunMapAttempt(
                attempt, SplitOf(input, attempt.task_id, m), r, cache,
                map_wave_id,
                &map_outputs[static_cast<size_t>(attempt.task_id)]);
          },
          &wave_stats);
    }
    if (!wave_status.ok()) {
      if (options.log != nullptr) {
        options.log->LogQuery(obs::LogSeverity::kError, options.query,
                              "job.fail", wave_status.message(), name_);
      }
      result.status = wave_status;
      return result;
    }
    for (int task = 0; task < m; ++task) {
      // Every successful map task hands exactly one context (with one
      // bucket per reducer) to the shuffle.
      SKYMR_DCHECK(map_outputs[static_cast<size_t>(task)].context !=
                   nullptr)
          << "map task " << task << " committed without a shuffle context";
      SKYMR_DCHECK(map_outputs[static_cast<size_t>(task)]
                       .context->buckets_.size() == static_cast<size_t>(r))
          << "map task " << task << " bucket count != reducer count " << r;
    }

    // ---- Shuffle + reduce wave ----
    // The shuffle moves arenas out of the map contexts, so it runs exactly
    // once per reducer, outside the retry/speculation scheduler; every
    // reduce attempt of a task then reads the same immutable ReducerInput.
    // That is what makes a retry after a mid-iteration failure safe: the
    // re-run streams the identical sorted slice index, never re-sorted or
    // partially consumed state.
    std::vector<ReducerInput> reducer_inputs(static_cast<size_t>(r));
    std::vector<ReduceTaskOutput> reduce_outputs(static_cast<size_t>(r));
    std::vector<uint64_t> bucket_span_ids(static_cast<size_t>(r), 0);
    {
      SKYMR_TRACE_SPAN_ID(reduce_wave_span, "reduce.wave", "tasks", r);
      const uint64_t reduce_wave_id = reduce_wave_span.id();
      ParallelFor(pool, r, [&](int task) {
        // The shuffle edge: contained in the reduce wave, causally fed by
        // the map wave (the cross-wave link the span DAG rebuilds).
        SKYMR_TRACE_SPAN_ID(bucket_span, "shuffle.bucket", "reducer", task);
        bucket_span.SetParent(reduce_wave_id);
        bucket_span.SetLink(map_wave_id);
        bucket_span_ids[static_cast<size_t>(task)] = bucket_span.id();
        Stopwatch shuffle_clock;
        BuildReducerInput(map_outputs, task,
                          &reducer_inputs[static_cast<size_t>(task)]);
        reducer_inputs[static_cast<size_t>(task)].build_seconds =
            shuffle_clock.ElapsedSeconds();
      });
      wave_status = scheduler.RunWave(
          pool, TaskKind::kReduce, r,
          [&](const TaskAttempt& attempt) {
            return RunReduceAttempt(
                attempt,
                reducer_inputs[static_cast<size_t>(attempt.task_id)],
                scheduler.chaos(), cache, reduce_wave_id,
                bucket_span_ids[static_cast<size_t>(attempt.task_id)],
                &reduce_outputs[static_cast<size_t>(attempt.task_id)]);
          },
          &wave_stats);
    }

    result.metrics.map_tasks.reserve(static_cast<size_t>(m));
    for (int task = 0; task < m; ++task) {
      MapTaskOutput& out = map_outputs[static_cast<size_t>(task)];
      result.metrics.map_tasks.push_back(std::move(out.metrics));
      out.context.reset();
    }
    uint64_t shuffle_bytes = 0;
    for (const ReducerInput& in : reducer_inputs) {
      shuffle_bytes += in.input_bytes;
    }
    result.metrics.shuffle_bytes = shuffle_bytes;

    if (!wave_status.ok()) {
      if (options.log != nullptr) {
        options.log->LogQuery(obs::LogSeverity::kError, options.query,
                              "job.fail", wave_status.message(), name_);
      }
      result.status = wave_status;
      return result;
    }

    for (int task = 0; task < r; ++task) {
      ReduceTaskOutput& out = reduce_outputs[static_cast<size_t>(task)];
      result.metrics.reduce_tasks.push_back(std::move(out.metrics));
      for (Out& value : out.outputs) {
        result.outputs.push_back(std::move(value));
      }
    }

    int64_t map_input_records = 0;
    int64_t map_output_records = 0;
    int64_t reduce_output_records = 0;
    for (const TaskMetrics& t : result.metrics.map_tasks) {
      result.metrics.counters.Merge(t.counters);
      result.metrics.histograms.Merge(t.histograms);
      result.metrics.histograms.Add(
          "mr.map_task_busy_us",
          static_cast<uint64_t>(t.busy_seconds * 1e6));
      map_input_records += static_cast<int64_t>(t.input_records);
      map_output_records += static_cast<int64_t>(t.output_records);
    }
    for (const TaskMetrics& t : result.metrics.reduce_tasks) {
      result.metrics.counters.Merge(t.counters);
      result.metrics.histograms.Merge(t.histograms);
      result.metrics.histograms.Add(
          "mr.reduce_task_busy_us",
          static_cast<uint64_t>(t.busy_seconds * 1e6));
      reduce_output_records += static_cast<int64_t>(t.output_records);
    }
    // Structural export for the bench artifacts (skymr-bench-v1): task
    // and wave counts plus record totals are reproducible bit-for-bit
    // for a fixed workload, unlike the timing-derived metrics, so they
    // feed the deterministic regression gate.
    result.metrics.counters.Add("mr.map_tasks", m);
    result.metrics.counters.Add("mr.reduce_tasks", r);
    result.metrics.counters.Add("mr.map_waves", 1);
    result.metrics.counters.Add("mr.reduce_waves", 1);
    result.metrics.counters.Add("mr.map_input_records", map_input_records);
    result.metrics.counters.Add("mr.map_output_records",
                                map_output_records);
    result.metrics.counters.Add("mr.reduce_output_records",
                                reduce_output_records);
    for (const ReducerInput& in : reducer_inputs) {
      result.metrics.histograms.Add("mr.shuffle_bucket_bytes", in.input_bytes);
    }
    result.metrics.counters.Add("mr.task_retries", wave_stats.retries);
    // Fault-tolerance counters are added only when their machinery fired
    // (or was enabled), so chaos-free runs keep the exact counter set the
    // committed bench baselines were recorded with.
    if (wave_stats.backoff_waits > 0) {
      result.metrics.counters.Add("mr.backoff_waits",
                                  wave_stats.backoff_waits);
      result.metrics.counters.Add("mr.backoff_total_ms",
                                  wave_stats.backoff_total_ms);
    }
    if (options.speculative_execution) {
      result.metrics.counters.Add("mr.speculative_launched",
                                  wave_stats.speculative_launched);
      result.metrics.counters.Add("mr.speculative_wins",
                                  wave_stats.speculative_wins);
    }
    if (const int64_t blacklisted = scheduler.blacklisted_workers();
        blacklisted > 0) {
      result.metrics.counters.Add("mr.blacklisted_workers", blacklisted);
    }
    if (const ChaosEngine* chaos = scheduler.chaos(); chaos != nullptr) {
      result.metrics.counters.Add("mr.chaos_crashes_injected",
                                  chaos->crashes_injected());
      result.metrics.counters.Add("mr.chaos_slow_injected",
                                  chaos->slow_injected());
      result.metrics.counters.Add("mr.chaos_corruptions_injected",
                                  chaos->corruptions_injected());
      result.metrics.counters.Add("mr.chaos_cache_faults_injected",
                                  chaos->cache_faults_injected());
    }
    result.metrics.counters.Add(
        "mr.cache_hits",
        static_cast<int64_t>(cache.hits() - cache_hits_before));
    result.metrics.counters.Add(
        "mr.cache_misses",
        static_cast<int64_t>(cache.misses() - cache_misses_before));
    result.metrics.wall_seconds = job_clock.ElapsedSeconds();
    if (options.metrics != nullptr) {
      RecordLiveMetrics(options.metrics, result.metrics, reducer_inputs);
    }
    if (options.log != nullptr) {
      options.log->LogQuery(
          obs::LogSeverity::kInfo, options.query, "job.finish",
          std::to_string(result.outputs.size()) + " outputs, " +
              std::to_string(shuffle_bytes) + " shuffle bytes, " +
              std::to_string(static_cast<int64_t>(
                  result.metrics.wall_seconds * 1e6)) +
              " us",
          name_);
    }
    result.status = Status::OK();
    return result;
  }

 private:
  using Slice = typename ValueIterator<V2>::Slice;

  struct MapTaskOutput {
    std::unique_ptr<MapContext<K2, V2>> context;
    TaskMetrics metrics;
  };

  struct ReduceTaskOutput {
    std::vector<Out> outputs;
    TaskMetrics metrics;
  };

  /// One record after the shuffle: the key plus a view of the serialized
  /// value inside one of the owned arena segments.
  struct ShuffleEntry {
    K2 key;
    const uint8_t* value_data;
    size_t value_size;
  };

  /// Everything one reduce task consumes: the arena segments moved over
  /// from the map side (which own the bytes the entries point into) and
  /// the merged, key-sorted record index.
  struct ReducerInput {
    std::vector<std::vector<uint8_t>> segments;
    std::vector<ShuffleEntry> entries;
    std::vector<Slice> slices;
    uint64_t input_bytes = 0;
    /// Wall time BuildReducerInput took for this bucket — the shuffle
    /// edge weight the critical-path analyzer consumes.
    double build_seconds = 0.0;
  };

  /// Feeds one finished job into the live metrics registry: a completion
  /// counter (exported with rate_per_s) and the latency/byte sketches the
  /// future query server reads p50/p95/p99 from. Registration is by name,
  /// so repeated jobs accumulate into the same handles.
  void RecordLiveMetrics(obs::MetricsRegistry* metrics,
                         const JobMetrics& job,
                         const std::vector<ReducerInput>& reducer_inputs) {
    metrics->counter("mr.jobs_completed")->Add(1);
    metrics->sketch("mr.job_wall_us")->Record(job.wall_seconds * 1e6);
    obs::MetricsRegistry::Sketch* map_busy =
        metrics->sketch("mr.map_task_busy_us");
    for (const TaskMetrics& t : job.map_tasks) {
      map_busy->Record(t.busy_seconds * 1e6);
    }
    obs::MetricsRegistry::Sketch* reduce_busy =
        metrics->sketch("mr.reduce_task_busy_us");
    for (const TaskMetrics& t : job.reduce_tasks) {
      reduce_busy->Record(t.busy_seconds * 1e6);
    }
    obs::MetricsRegistry::Sketch* bucket_bytes =
        metrics->sketch("mr.shuffle_bucket_bytes");
    for (const ReducerInput& in : reducer_inputs) {
      bucket_bytes->Record(static_cast<double>(in.input_bytes));
    }
  }

  static std::span<const In> SplitOf(std::span<const In> input, int task,
                                     int m) {
    // Contiguous splits; the first (n % m) splits get one extra record.
    const size_t n = input.size();
    const size_t base = n / static_cast<size_t>(m);
    const size_t extra = n % static_cast<size_t>(m);
    const auto t = static_cast<size_t>(task);
    const size_t begin = t * base + std::min(t, extra);
    const size_t size = base + (t < extra ? 1 : 0);
    SKYMR_DCHECK(begin + size <= n)
        << "split [" << begin << ", " << begin + size
        << ") overruns input size " << n;
    return input.subspan(begin, size);
  }

  /// One map task attempt, run under the TaskScheduler. Retry isolation:
  /// every attempt gets a fresh context and a fresh mapper instance, and
  /// `out` (the task's metrics/output slot shared with the job) is written
  /// only after winning the idempotent commit — a failed or losing attempt
  /// can never leak partial state into the shuffle or metrics.
  Status RunMapAttempt(const TaskAttempt& attempt, std::span<const In> split,
                       int num_reducers, const DistributedCache& cache,
                       uint64_t wave_span_id, MapTaskOutput* out) {
    PartitionerKind kind = partitioner_kind_;
    if (kind != PartitionerKind::kCustom && num_reducers == 1) {
      kind = PartitionerKind::kSingleReducer;
    }
    auto context = std::make_unique<MapContext<K2, V2>>(
        attempt.task_id, num_reducers, &cache, kind, &partitioner_);
    SKYMR_TRACE_SPAN_ID(task_span, "map.task", "task", attempt.task_id,
                        "attempt", attempt.attempt);
    task_span.SetParent(wave_span_id);
    Stopwatch clock;
    std::unique_ptr<Mapper<In, K2, V2>> mapper = mapper_factory_();
    mapper->Setup(*context);
    for (size_t i = 0; i < split.size(); ++i) {
      if ((i & 1023u) == 0u && attempt.Cancelled()) {
        throw TaskCancelled();
      }
      mapper->Map(split[i], *context);
    }
    mapper->Cleanup(*context);
    if (combiner_factory_) {
      ApplyCombiner(attempt.task_id, cache, context.get());
    }
    if (!attempt.TryCommit()) {
      return Status::OK();  // A duplicate committed first; discard.
    }
    // Exactly one commit instant per task, under the winning attempt's
    // span id: the marker BuildSpanDag uses to drop losing attempts.
    SKYMR_TRACE_INSTANT_UNDER(task_span.id(), "task.commit", "task",
                              attempt.task_id, "attempt", attempt.attempt);
    out->metrics.busy_seconds = clock.ElapsedSeconds();
    out->metrics.input_records = split.size();
    out->metrics.output_records = context->output_records_;
    uint64_t bytes = 0;
    for (const auto& bucket : context->buckets_) {
      for (const auto& record : bucket.records) {
        bytes += record.key_bytes + record.value_bytes;
      }
    }
    out->metrics.output_bytes = bytes;
    out->metrics.attempts = attempt.attempt;
    out->metrics.counters = context->counters_;
    out->metrics.histograms = std::move(context->histograms_);
    out->context = std::move(context);
    return Status::OK();
  }

  /// Runs the combiner over one map task's emitted records (grouped by
  /// key within each reducer bucket) and replaces them with the
  /// combiner's output. Keys never span buckets, so per-bucket grouping
  /// matches Hadoop's per-spill combining.
  void ApplyCombiner(int task_id, const DistributedCache& cache,
                     MapContext<K2, V2>* context) {
    std::unique_ptr<Combiner> combiner = combiner_factory_();
    ReduceContext<std::pair<K2, V2>> combine_context(task_id, &cache);
    combiner->Setup(combine_context);
    uint64_t input_records = 0;
    std::vector<Slice> slices;
    for (auto& bucket : context->buckets_) {
      auto& records = bucket.records;
      std::stable_sort(
          records.begin(), records.end(),
          [](const auto& a, const auto& b) { return a.key < b.key; });
      const uint8_t* base = bucket.arena.data();
      slices.clear();
      slices.reserve(records.size());
      for (const auto& record : records) {
        slices.push_back(Slice{base + record.value_offset,
                               record.value_bytes});
      }
      size_t i = 0;
      while (i < records.size()) {
        size_t j = i;
        while (j < records.size() && !(records[i].key < records[j].key)) {
          ++j;
        }
        ValueIterator<V2> values(slices.data() + i, j - i);
        combiner->Reduce(records[i].key, values, combine_context);
        input_records += j - i;
        i = j;
      }
    }
    combiner->Cleanup(combine_context);
    for (auto& bucket : context->buckets_) {
      bucket.arena.Clear();
      bucket.records.clear();
    }
    context->output_records_ = 0;
    for (const auto& [key, value] : combine_context.outputs_) {
      context->Emit(key, value);
    }
    context->counters_.Add("mr.combine_input_records",
                           static_cast<int64_t>(input_records));
    context->counters_.Add(
        "mr.combine_output_records",
        static_cast<int64_t>(context->output_records_));
    context->counters_.Merge(combine_context.counters_);
  }

  /// Moves reducer `reducer`'s bucket out of every map context: arenas are
  /// taken whole (the bytes never move again), record indexes are merged
  /// in task order and stable-sorted by key, preserving (mapper, emit)
  /// order within each key as Hadoop's merge sort does.
  void BuildReducerInput(std::vector<MapTaskOutput>& map_outputs, int reducer,
                         ReducerInput* in) {
    const auto bucket_index = static_cast<size_t>(reducer);
    size_t total_records = 0;
    for (const MapTaskOutput& out : map_outputs) {
      total_records += out.context->buckets_[bucket_index].records.size();
    }
    in->segments.reserve(map_outputs.size());
    in->entries.reserve(total_records);
    for (MapTaskOutput& out : map_outputs) {
      auto& bucket = out.context->buckets_[bucket_index];
      in->segments.push_back(bucket.arena.TakeBuffer());
      const uint8_t* base = in->segments.back().data();
      for (auto& record : bucket.records) {
        in->input_bytes += record.key_bytes + record.value_bytes;
        in->entries.push_back(ShuffleEntry{std::move(record.key),
                                           base + record.value_offset,
                                           record.value_bytes});
      }
    }
    {
      SKYMR_TRACE_SPAN("shuffle.sort", "reducer", reducer, "records",
                       static_cast<int64_t>(in->entries.size()));
      std::stable_sort(
          in->entries.begin(), in->entries.end(),
          [](const ShuffleEntry& a, const ShuffleEntry& b) {
            return a.key < b.key;
          });
    }
    in->slices.reserve(in->entries.size());
    for (const ShuffleEntry& entry : in->entries) {
      in->slices.push_back(Slice{entry.value_data, entry.value_size});
    }
  }

  /// One reduce task attempt, run under the TaskScheduler. The shared
  /// ReducerInput is read-only here: retries re-stream the same sorted
  /// slice index, and chaos corruption truncates a value only in an
  /// attempt-local copy of the slices, so a retried attempt reads clean
  /// bytes.
  Status RunReduceAttempt(const TaskAttempt& attempt, const ReducerInput& in,
                          ChaosEngine* chaos, const DistributedCache& cache,
                          uint64_t wave_span_id, uint64_t bucket_span_id,
                          ReduceTaskOutput* out) {
    const std::vector<ShuffleEntry>& entries = in.entries;
    ReduceContext<Out> context(attempt.task_id, &cache);
    SKYMR_TRACE_SPAN_ID(task_span, "reduce.task", "task", attempt.task_id,
                        "attempt", attempt.attempt);
    task_span.SetParent(wave_span_id);
    task_span.SetLink(bucket_span_id);
    Stopwatch clock;
    const Slice* slices = in.slices.data();
    std::vector<Slice> corrupted;
    if (chaos != nullptr && !in.slices.empty() &&
        chaos->ShouldCorruptShuffle(attempt.task_id, attempt.attempt)) {
      corrupted = in.slices;
      Slice& victim = corrupted[chaos->CorruptIndex(
          attempt.task_id, attempt.attempt, corrupted.size())];
      if (victim.size > 0) {
        --victim.size;  // Truncated value => SerdeUnderflow on read.
      }
      slices = corrupted.data();
    }
    std::unique_ptr<Reducer<K2, V2, Out>> reducer = reducer_factory_();
    reducer->Setup(context);
    size_t i = 0;
    while (i < entries.size()) {
      if (attempt.Cancelled()) {
        throw TaskCancelled();
      }
      size_t j = i;
      while (j < entries.size() && !(entries[i].key < entries[j].key)) {
        ++j;
      }
      // Values stream out of the arena; nothing is deserialized until
      // the reducer pulls it.
      ValueIterator<V2> values(slices + i, j - i);
      reducer->Reduce(entries[i].key, values, context);
      i = j;
    }
    reducer->Cleanup(context);
    if (!attempt.TryCommit()) {
      return Status::OK();  // A duplicate committed first; discard.
    }
    SKYMR_TRACE_INSTANT_UNDER(task_span.id(), "task.commit", "task",
                              attempt.task_id, "attempt", attempt.attempt);
    out->metrics.busy_seconds = clock.ElapsedSeconds();
    out->metrics.input_records = entries.size();
    out->metrics.input_bytes = in.input_bytes;
    out->metrics.shuffle_seconds = in.build_seconds;
    out->metrics.output_records = context.outputs_.size();
    out->metrics.output_bytes = context.output_bytes_;
    out->metrics.attempts = attempt.attempt;
    out->metrics.counters = context.counters_;
    out->metrics.histograms = std::move(context.histograms_);
    out->outputs = std::move(context.outputs_);
    return Status::OK();
  }

  std::string name_;
  MapperFactory mapper_factory_;
  ReducerFactory reducer_factory_;
  CombinerFactory combiner_factory_;
  Partitioner partitioner_;
  PartitionerKind partitioner_kind_ = PartitionerKind::kHash;
};

}  // namespace skymr::mr

#endif  // SKYMR_MAPREDUCE_JOB_H_
