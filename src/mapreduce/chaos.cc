#include "src/mapreduce/chaos.h"

#include <cmath>

namespace skymr::mr {
namespace {

/// Decision-site salts: each injection site hashes with its own salt so
/// e.g. "attempt 2 crashes" and "attempt 2 is slow" are independent coins.
enum Salt : uint64_t {
  kSaltCrash = 0x1,
  kSaltSlow = 0x2,
  kSaltCorrupt = 0x3,
  kSaltCorruptIndex = 0x4,
  kSaltCache = 0x5,
};

uint64_t HashString(const std::string& s) {
  // FNV-1a, then one splitmix64 round to spread short names.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return ChaosMix64(h);
}

/// Maps a 64-bit hash onto [0, 1) with 53 bits of precision.
double UnitDouble(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

Status BadRate(const char* knob, double value) {
  return Status::InvalidArgument(
      std::string("chaos: ") + knob + " = " + std::to_string(value) +
      " is out of range");
}

}  // namespace

uint64_t ChaosMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

StatusOr<ChaosSchedule> ChaosProfile(const std::string& name) {
  ChaosSchedule schedule;
  if (name == "none") {
    return schedule;
  }
  if (name == "crash5") {
    schedule.crash_rate = 0.05;
    return schedule;
  }
  if (name == "crash20") {
    schedule.crash_rate = 0.20;
    return schedule;
  }
  if (name == "slow") {
    schedule.slow_rate = 0.15;
    schedule.slow_ms = 25.0;
    return schedule;
  }
  if (name == "corrupt") {
    schedule.corrupt_rate = 0.25;
    return schedule;
  }
  if (name == "flaky-cache") {
    schedule.cache_fail_rate = 0.10;
    return schedule;
  }
  if (name == "mixed") {
    schedule.crash_rate = 0.05;
    schedule.slow_rate = 0.05;
    schedule.slow_ms = 10.0;
    schedule.corrupt_rate = 0.05;
    schedule.cache_fail_rate = 0.05;
    return schedule;
  }
  if (name == "storm") {
    // Every task crashes on its first two attempts: 2 retries per task,
    // guaranteed to trip the doctor's retry-storm heuristic. Requires an
    // attempt budget of at least 3.
    schedule.crash_until_attempt = 2;
    return schedule;
  }
  std::string known;
  for (const std::string& profile : ChaosProfileNames()) {
    known += known.empty() ? profile : " " + profile;
  }
  return Status::InvalidArgument("unknown chaos profile '" + name +
                                 "' (known: " + known + ")");
}

std::vector<std::string> ChaosProfileNames() {
  return {"none", "crash5", "crash20", "slow", "corrupt", "flaky-cache",
          "mixed", "storm"};
}

Status ValidateChaosSchedule(const ChaosSchedule& schedule,
                             int max_task_attempts) {
  // Failure-site rates must leave room for a clean retry; a rate of 1
  // guarantees the job can never finish. Accept-form comparisons so NaN
  // (which fails every ordering) is rejected instead of slipping through
  // a reject-form `x < 0.0 || x >= 1.0` check.
  if (!(schedule.crash_rate >= 0.0 && schedule.crash_rate < 1.0)) {
    return BadRate("crash_rate (must be in [0, 1))", schedule.crash_rate);
  }
  if (!(schedule.corrupt_rate >= 0.0 && schedule.corrupt_rate < 1.0)) {
    return BadRate("corrupt_rate (must be in [0, 1))", schedule.corrupt_rate);
  }
  if (!(schedule.cache_fail_rate >= 0.0 && schedule.cache_fail_rate < 1.0)) {
    return BadRate("cache_fail_rate (must be in [0, 1))",
                   schedule.cache_fail_rate);
  }
  if (!(schedule.slow_rate >= 0.0 && schedule.slow_rate <= 1.0)) {
    return BadRate("slow_rate (must be in [0, 1])", schedule.slow_rate);
  }
  if (!(schedule.slow_ms >= 0.0 && std::isfinite(schedule.slow_ms))) {
    return BadRate("slow_ms (must be finite and >= 0)", schedule.slow_ms);
  }
  if (schedule.crash_until_attempt < 0) {
    return Status::InvalidArgument(
        "chaos: crash_until_attempt must be >= 0");
  }
  if (schedule.crash_until_attempt >= max_task_attempts &&
      schedule.crash_until_attempt > 0) {
    return Status::InvalidArgument(
        "chaos: crash_until_attempt = " +
        std::to_string(schedule.crash_until_attempt) +
        " with max_task_attempts = " + std::to_string(max_task_attempts) +
        " crashes every allowed attempt; no task can ever succeed");
  }
  return Status::OK();
}

ChaosEngine::ChaosEngine(const ChaosSchedule& schedule,
                         const std::string& job_name)
    : schedule_(schedule),
      job_hash_(HashString(job_name)),
      fail_job_hit_(!schedule.fail_job.empty() &&
                    job_name.find(schedule.fail_job) != std::string::npos) {}

double ChaosEngine::UnitHash(uint64_t salt, uint64_t a, uint64_t b,
                             uint64_t c, uint64_t d) const {
  uint64_t h = schedule_.seed ^ 0x6a09e667f3bcc909ULL;
  h = ChaosMix64(h ^ job_hash_);
  h = ChaosMix64(h ^ salt);
  h = ChaosMix64(h ^ a);
  h = ChaosMix64(h ^ b);
  h = ChaosMix64(h ^ c);
  h = ChaosMix64(h ^ d);
  return UnitDouble(h);
}

bool ChaosEngine::ShouldCrash(int kind, int task, int attempt, int worker) {
  bool hit = fail_job_hit_;
  if (!hit && attempt <= schedule_.crash_until_attempt) {
    hit = true;
  }
  if (!hit && schedule_.bad_worker >= 0 && worker == schedule_.bad_worker) {
    hit = true;
  }
  if (!hit && schedule_.crash_rate > 0.0) {
    hit = UnitHash(kSaltCrash, static_cast<uint64_t>(kind),
                   static_cast<uint64_t>(task),
                   static_cast<uint64_t>(attempt)) < schedule_.crash_rate;
  }
  if (hit) {
    crashes_.fetch_add(1, std::memory_order_relaxed);
  }
  return hit;
}

double ChaosEngine::SlowDelayMs(int kind, int task, int attempt) {
  bool hit = schedule_.slow_task >= 0 && task == schedule_.slow_task &&
             attempt <= schedule_.slow_until_attempt;
  if (!hit && schedule_.slow_rate > 0.0) {
    hit = UnitHash(kSaltSlow, static_cast<uint64_t>(kind),
                   static_cast<uint64_t>(task),
                   static_cast<uint64_t>(attempt)) < schedule_.slow_rate;
  }
  if (!hit) {
    return 0.0;
  }
  slow_.fetch_add(1, std::memory_order_relaxed);
  return schedule_.slow_ms;
}

bool ChaosEngine::ShouldCorruptShuffle(int task, int attempt) {
  if (schedule_.corrupt_rate <= 0.0) {
    return false;
  }
  const bool hit =
      UnitHash(kSaltCorrupt, static_cast<uint64_t>(task),
               static_cast<uint64_t>(attempt), 0) < schedule_.corrupt_rate;
  if (hit) {
    corruptions_.fetch_add(1, std::memory_order_relaxed);
  }
  return hit;
}

size_t ChaosEngine::CorruptIndex(int task, int attempt,
                                 size_t count) const {
  uint64_t h = schedule_.seed ^ job_hash_;
  h = ChaosMix64(h ^ kSaltCorruptIndex);
  h = ChaosMix64(h ^ static_cast<uint64_t>(task));
  h = ChaosMix64(h ^ static_cast<uint64_t>(attempt));
  return static_cast<size_t>(h % count);
}

bool ChaosEngine::ShouldFailCacheRead(int kind, int task, int attempt,
                                      uint64_t sequence) {
  if (schedule_.cache_fail_rate <= 0.0) {
    return false;
  }
  const bool hit = UnitHash(kSaltCache, static_cast<uint64_t>(kind),
                            static_cast<uint64_t>(task),
                            static_cast<uint64_t>(attempt),
                            sequence) < schedule_.cache_fail_rate;
  if (hit) {
    cache_faults_.fetch_add(1, std::memory_order_relaxed);
  }
  return hit;
}

namespace {

/// The thread's active task attempt. Lookups inside the attempt count up
/// `sequence` so each Get rolls its own deterministic coin.
struct TaskScopeState {
  ChaosEngine* engine;
  int kind;
  int task;
  int attempt;
  uint64_t sequence;
  TaskScopeState* previous;
};

thread_local TaskScopeState* tls_task_scope = nullptr;

}  // namespace

ChaosTaskScope::ChaosTaskScope(ChaosEngine* engine, int kind, int task,
                               int attempt) {
  auto* state = new TaskScopeState{engine, kind, task, attempt, 0,
                                   tls_task_scope};
  previous_ = tls_task_scope;
  tls_task_scope = state;
}

ChaosTaskScope::~ChaosTaskScope() {
  TaskScopeState* state = tls_task_scope;
  tls_task_scope = static_cast<TaskScopeState*>(previous_);
  delete state;
}

bool ChaosInjectCacheFault() {
  TaskScopeState* scope = tls_task_scope;
  if (scope == nullptr || scope->engine == nullptr) {
    return false;
  }
  return scope->engine->ShouldFailCacheRead(scope->kind, scope->task,
                                            scope->attempt,
                                            scope->sequence++);
}

}  // namespace skymr::mr
