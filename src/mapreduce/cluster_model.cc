#include "src/mapreduce/cluster_model.h"

#include <algorithm>
#include <queue>

namespace skymr::mr {

double ClusterModel::LptMakespan(std::vector<double> task_seconds,
                                 int slots) {
  if (task_seconds.empty()) {
    return 0.0;
  }
  slots = std::max(1, slots);
  std::sort(task_seconds.begin(), task_seconds.end(),
            std::greater<double>());
  // Min-heap of slot loads.
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      loads;
  for (int i = 0; i < slots; ++i) {
    loads.push(0.0);
  }
  for (const double t : task_seconds) {
    const double load = loads.top();
    loads.pop();
    loads.push(load + t);
  }
  double makespan = 0.0;
  while (!loads.empty()) {
    makespan = std::max(makespan, loads.top());
    loads.pop();
  }
  return makespan;
}

double ClusterModel::JobMakespan(const JobMetrics& metrics) const {
  std::vector<double> map_times;
  map_times.reserve(metrics.map_tasks.size());
  for (const TaskMetrics& t : metrics.map_tasks) {
    map_times.push_back(t.busy_seconds + task_startup_seconds);
  }
  std::vector<double> reduce_times;
  reduce_times.reserve(metrics.reduce_tasks.size());
  double max_reduce_in_bytes = 0.0;
  for (const TaskMetrics& t : metrics.reduce_tasks) {
    reduce_times.push_back(t.busy_seconds + task_startup_seconds);
    max_reduce_in_bytes =
        std::max(max_reduce_in_bytes, static_cast<double>(t.input_bytes));
  }
  // The shuffle is bottlenecked by the most loaded reducer's inbound link.
  const double shuffle_seconds =
      network_bytes_per_second > 0.0
          ? max_reduce_in_bytes / network_bytes_per_second
          : 0.0;
  return job_startup_seconds +
         LptMakespan(std::move(map_times), num_nodes * map_slots_per_node) +
         shuffle_seconds +
         LptMakespan(std::move(reduce_times),
                     num_nodes * reduce_slots_per_node);
}

double ClusterModel::PipelineMakespan(
    const std::vector<JobMetrics>& jobs) const {
  double total = 0.0;
  for (const JobMetrics& job : jobs) {
    total += JobMakespan(job);
  }
  return total;
}

}  // namespace skymr::mr
