// ClusterModel: maps measured per-task costs onto a modeled Hadoop cluster.
//
// The paper's experiments ran on a 13-node, 100 Mbit/s Hadoop 1.1.0 cluster.
// This repository executes the same map/reduce tasks with thread-level
// parallelism on one machine, so raw wall time serializes tasks that the
// paper ran concurrently. The ClusterModel restores the paper's notion of
// runtime: it schedules the measured per-task busy times onto a configurable
// number of map/reduce slots (LPT greedy, matching Hadoop's wave behavior),
// adds per-task startup and job overheads, and charges shuffle traffic
// against the network bandwidth. The resulting makespan preserves the
// *shape* of the paper's figures (who wins, where crossovers fall), which is
// the quantity this reproduction targets.

#ifndef SKYMR_MAPREDUCE_CLUSTER_MODEL_H_
#define SKYMR_MAPREDUCE_CLUSTER_MODEL_H_

#include <vector>

#include "src/mapreduce/task_metrics.h"

namespace skymr::mr {

/// A modeled Hadoop 1.x cluster.
struct ClusterModel {
  /// Worker nodes (the paper uses 13 commodity machines).
  int num_nodes = 13;
  /// Concurrent map tasks per node.
  int map_slots_per_node = 2;
  /// Concurrent reduce tasks per node. Hadoop allows more reducers than
  /// nodes by multi-slot nodes (Section 7.4 runs 17 reducers on 13 nodes).
  int reduce_slots_per_node = 2;
  /// Effective point-to-point bandwidth in bytes/second (100 Mbit/s LAN).
  double network_bytes_per_second = 100e6 / 8.0;
  /// Fixed job submission/initialization overhead (JobTracker scheduling,
  /// task distribution). Hadoop 1.x jobs cost tens of seconds at minimum.
  double job_startup_seconds = 15.0;
  /// Per-task startup overhead (JVM launch, split localization).
  double task_startup_seconds = 1.5;

  /// Longest-processing-time-first makespan of `task_seconds` on `slots`
  /// parallel slots. Exposed for tests.
  static double LptMakespan(std::vector<double> task_seconds, int slots);

  /// Modeled end-to-end runtime of one job:
  /// job_startup + map wave makespan + shuffle transfer + reduce wave
  /// makespan, with task_startup added to every task.
  double JobMakespan(const JobMetrics& metrics) const;

  /// Modeled runtime of a chain of jobs executed back to back (e.g. the
  /// bitstring-generation job followed by the skyline job).
  double PipelineMakespan(const std::vector<JobMetrics>& jobs) const;
};

}  // namespace skymr::mr

#endif  // SKYMR_MAPREDUCE_CLUSTER_MODEL_H_
