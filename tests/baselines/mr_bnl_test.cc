#include "src/baselines/mr_bnl.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "src/data/generator.h"
#include "src/relation/skyline_verify.h"

namespace skymr::baselines {
namespace {

std::shared_ptr<const Dataset> Share(Dataset data) {
  return std::make_shared<const Dataset>(std::move(data));
}

TEST(MrBnlTest, ComputesExactSkyline) {
  const auto data = Share(data::GenerateIndependent(2000, 3, 11));
  mr::EngineOptions engine;
  engine.num_map_tasks = 5;
  auto run = RunMrBnlJob(data, Bounds::UnitCube(3), engine);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(ExplainSkylineMismatch(*data, run->skyline.ids()), "");
}

TEST(MrBnlTest, MapperCountInvariance) {
  const auto data = Share(data::GenerateAntiCorrelated(900, 4, 13));
  std::vector<TupleId> reference;
  for (const int m : {1, 4, 11}) {
    mr::EngineOptions engine;
    engine.num_map_tasks = m;
    auto run = RunMrBnlJob(data, Bounds::UnitCube(4), engine);
    ASSERT_TRUE(run.ok());
    std::vector<TupleId> ids = run->skyline.ids();
    std::sort(ids.begin(), ids.end());
    if (reference.empty()) {
      reference = ids;
      EXPECT_EQ(ExplainSkylineMismatch(*data, ids), "");
    } else {
      EXPECT_EQ(ids, reference);
    }
  }
}

TEST(MrBnlTest, SingleReducerAlways) {
  const auto data = Share(data::GenerateIndependent(300, 2, 17));
  mr::EngineOptions engine;
  engine.num_reducers = 7;
  auto run = RunMrBnlJob(data, Bounds::UnitCube(2), engine);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->metrics.reduce_tasks.size(), 1u);
}

TEST(MrBnlTest, EmptyDataset) {
  const auto data = Share(Dataset(2));
  mr::EngineOptions engine;
  auto run = RunMrBnlJob(data, Bounds::UnitCube(2), engine);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->skyline.empty());
}

TEST(MrBnlTest, DuplicatesAndTies) {
  Dataset dataset(2);
  dataset.Append({0.25, 0.75});
  dataset.Append({0.25, 0.75});
  dataset.Append({0.75, 0.25});
  dataset.Append({0.8, 0.8});  // Dominated.
  const auto data = Share(std::move(dataset));
  mr::EngineOptions engine;
  engine.num_map_tasks = 2;
  auto run = RunMrBnlJob(data, Bounds::UnitCube(2), engine);
  ASSERT_TRUE(run.ok());
  std::vector<TupleId> ids = run->skyline.ids();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<TupleId>{0, 1, 2}));
}

TEST(MrBnlTest, NullDatasetRejected) {
  mr::EngineOptions engine;
  EXPECT_FALSE(RunMrBnlJob(nullptr, Bounds::UnitCube(2), engine).ok());
}

}  // namespace
}  // namespace skymr::baselines
