#include "src/baselines/centralized.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/data/generator.h"
#include "src/relation/skyline_verify.h"

namespace skymr::baselines {
namespace {

TEST(CentralizedTest, AllAlgorithmsMatchReference) {
  const Dataset data = data::GenerateAntiCorrelated(1200, 3, 7);
  const std::vector<TupleId> expected = ReferenceSkyline(data);
  for (const auto algorithm :
       {CentralizedAlgorithm::kBnl, CentralizedAlgorithm::kSfs,
        CentralizedAlgorithm::kNaive}) {
    const CentralizedRun run = RunCentralized(data, algorithm);
    std::vector<TupleId> ids = run.skyline.ids();
    EXPECT_TRUE(SameIdSet(ids, expected))
        << CentralizedAlgorithmName(algorithm);
    EXPECT_GE(run.wall_seconds, 0.0);
    EXPECT_GT(run.tuple_comparisons, 0u);
  }
}

TEST(CentralizedTest, EmptyDataset) {
  const Dataset data(2);
  const CentralizedRun run = RunCentralized(data,
                                            CentralizedAlgorithm::kBnl);
  EXPECT_TRUE(run.skyline.empty());
  EXPECT_EQ(run.tuple_comparisons, 0u);
}

TEST(CentralizedTest, AlgorithmNames) {
  EXPECT_STREQ(CentralizedAlgorithmName(CentralizedAlgorithm::kBnl), "bnl");
  EXPECT_STREQ(CentralizedAlgorithmName(CentralizedAlgorithm::kSfs), "sfs");
  EXPECT_STREQ(CentralizedAlgorithmName(CentralizedAlgorithm::kNaive),
               "naive");
}

TEST(CentralizedTest, SfsCheaperThanNaiveOnIndependent) {
  const Dataset data = data::GenerateIndependent(3000, 3, 9);
  const CentralizedRun sfs = RunCentralized(data,
                                            CentralizedAlgorithm::kSfs);
  const CentralizedRun naive =
      RunCentralized(data, CentralizedAlgorithm::kNaive);
  EXPECT_LT(sfs.tuple_comparisons, naive.tuple_comparisons);
}

}  // namespace
}  // namespace skymr::baselines
