#include "src/baselines/sky_quadtree.h"

#include <gtest/gtest.h>

#include "src/data/generator.h"
#include "src/relation/dominance.h"
#include "src/relation/skyline_verify.h"

namespace skymr::baselines {
namespace {

SkyQuadtree::Options SmallTree() {
  SkyQuadtree::Options options;
  options.sample_size = 256;
  options.leaf_capacity = 8;
  options.max_depth = 5;
  return options;
}

TEST(SkyQuadtreeTest, SingleLeafForTinyData) {
  Dataset data(2);
  data.Append({0.5, 0.5});
  const SkyQuadtree tree =
      SkyQuadtree::Build(data, Bounds::UnitCube(2), SmallTree());
  EXPECT_EQ(tree.num_leaves(), 1u);
  const double p[] = {0.3, 0.9};
  EXPECT_EQ(tree.LeafOf(p), 0u);
}

TEST(SkyQuadtreeTest, SplitsWhenCapacityExceeded) {
  const Dataset data = data::GenerateIndependent(2000, 2, 3);
  const SkyQuadtree tree =
      SkyQuadtree::Build(data, Bounds::UnitCube(2), SmallTree());
  EXPECT_GT(tree.num_leaves(), 4u);
  EXPECT_GT(tree.sample_count(), 100u);
}

TEST(SkyQuadtreeTest, EveryTupleLandsInItsLeafBox) {
  const Dataset data = data::GenerateAntiCorrelated(1000, 3, 5);
  const SkyQuadtree tree =
      SkyQuadtree::Build(data, Bounds::UnitCube(3), SmallTree());
  for (size_t i = 0; i < data.size(); ++i) {
    const double* row = data.RowPtr(static_cast<TupleId>(i));
    const uint32_t leaf = tree.LeafOf(row);
    ASSERT_LT(leaf, tree.num_leaves());
    const auto& lo = tree.LeafMin(leaf);
    const auto& hi = tree.LeafMax(leaf);
    for (size_t k = 0; k < 3; ++k) {
      EXPECT_GE(row[k], lo[k]);
      EXPECT_LE(row[k], hi[k]);
    }
  }
}

TEST(SkyQuadtreeTest, PrunedLeavesContainNoSkylineTuples) {
  const Dataset data = data::GenerateIndependent(3000, 2, 7);
  const SkyQuadtree tree =
      SkyQuadtree::Build(data, Bounds::UnitCube(2), SmallTree());
  EXPECT_GT(tree.num_pruned_leaves(), 0u);  // Uniform data prunes a lot.
  for (const TupleId id : ReferenceSkyline(data)) {
    EXPECT_FALSE(tree.IsPruned(tree.LeafOf(data.RowPtr(id))))
        << "skyline tuple " << id << " in pruned leaf";
  }
}

TEST(SkyQuadtreeTest, CanDominateIsSoundForTuplePairs) {
  const Dataset data = data::GenerateIndependent(500, 2, 9);
  const SkyQuadtree tree =
      SkyQuadtree::Build(data, Bounds::UnitCube(2), SmallTree());
  // If a tuple dominates another, their leaves must satisfy CanDominate
  // (or be the same leaf).
  for (TupleId a = 0; a < 100; ++a) {
    for (TupleId b = 0; b < 100; ++b) {
      if (a == b ||
          !Dominates(data.RowPtr(a), data.RowPtr(b), 2)) {
        continue;
      }
      const uint32_t leaf_a = tree.LeafOf(data.RowPtr(a));
      const uint32_t leaf_b = tree.LeafOf(data.RowPtr(b));
      if (leaf_a != leaf_b) {
        EXPECT_TRUE(tree.CanDominate(leaf_a, leaf_b))
            << "tuples " << a << "->" << b;
      }
    }
  }
}

TEST(SkyQuadtreeTest, ConstraintRestrictsSample) {
  Dataset data(2);
  data.Append({0.01, 0.01});  // Global dominator, outside the box.
  for (int i = 0; i < 200; ++i) {
    data.Append({0.4 + 0.001 * i, 0.4 + 0.001 * (200 - i)});
  }
  Box box;
  box.lo = {0.3, 0.3};
  box.hi = {0.9, 0.9};
  const SkyQuadtree tree = SkyQuadtree::Build(
      data, Bounds::UnitCube(2), SmallTree(), &box);
  // The out-of-box dominator must not prune in-box regions: no in-box
  // tuple may land in a pruned leaf unless dominated by an in-box tuple.
  for (size_t i = 1; i < data.size(); ++i) {
    const double* row = data.RowPtr(static_cast<TupleId>(i));
    const uint32_t leaf = tree.LeafOf(row);
    if (!tree.IsPruned(leaf)) {
      continue;
    }
    bool dominated_in_box = false;
    for (size_t j = 1; j < data.size() && !dominated_in_box; ++j) {
      dominated_in_box =
          j != i && Dominates(data.RowPtr(static_cast<TupleId>(j)), row, 2);
    }
    EXPECT_TRUE(dominated_in_box) << "tuple " << i;
  }
}

TEST(SkyQuadtreeTest, EmptyDataset) {
  Dataset data(3);
  const SkyQuadtree tree =
      SkyQuadtree::Build(data, Bounds::UnitCube(3), SmallTree());
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_EQ(tree.sample_count(), 0u);
  EXPECT_EQ(tree.num_pruned_leaves(), 0u);
}

TEST(SkyQuadtreeTest, DepthCapBoundsLeafCount) {
  SkyQuadtree::Options options;
  options.sample_size = 4096;
  options.leaf_capacity = 1;
  options.max_depth = 2;
  const Dataset data = data::GenerateIndependent(5000, 2, 11);
  const SkyQuadtree tree =
      SkyQuadtree::Build(data, Bounds::UnitCube(2), options);
  EXPECT_LE(tree.num_leaves(), 16u);  // (2^2)^2 at depth 2.
}

}  // namespace
}  // namespace skymr::baselines
