#include "src/baselines/mr_skymr.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "src/core/runner.h"
#include "src/data/generator.h"
#include "src/relation/skyline_verify.h"

namespace skymr::baselines {
namespace {

std::shared_ptr<const Dataset> Share(Dataset data) {
  return std::make_shared<const Dataset>(std::move(data));
}

TEST(MrSkyMrTest, ComputesExactSkyline) {
  const auto data = Share(data::GenerateIndependent(2500, 3, 61));
  mr::EngineOptions engine;
  engine.num_map_tasks = 5;
  auto run = RunSkyMrJob(data, Bounds::UnitCube(3), SkyQuadtree::Options{},
                         engine);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(ExplainSkylineMismatch(*data, run->skyline.ids()), "");
}

TEST(MrSkyMrTest, MapperCountInvariance) {
  const auto data = Share(data::GenerateAntiCorrelated(1000, 4, 67));
  std::vector<TupleId> reference;
  for (const int m : {1, 4, 10}) {
    mr::EngineOptions engine;
    engine.num_map_tasks = m;
    auto run = RunSkyMrJob(data, Bounds::UnitCube(4),
                           SkyQuadtree::Options{}, engine);
    ASSERT_TRUE(run.ok());
    std::vector<TupleId> ids = run->skyline.ids();
    std::sort(ids.begin(), ids.end());
    if (reference.empty()) {
      reference = ids;
      EXPECT_EQ(ExplainSkylineMismatch(*data, ids), "");
    } else {
      EXPECT_EQ(ids, reference) << "m=" << m;
    }
  }
}

TEST(MrSkyMrTest, SkyFilterDropsTuplesAtMappers) {
  const auto data = Share(data::GenerateIndependent(8000, 2, 71));
  mr::EngineOptions engine;
  engine.num_map_tasks = 4;
  auto run = RunSkyMrJob(data, Bounds::UnitCube(2), SkyQuadtree::Options{},
                         engine);
  ASSERT_TRUE(run.ok());
  // Uniform 2-d data: the sample skyline dominates most of the space.
  EXPECT_GT(run->metrics.counters.Get(mr::kCounterTuplesPruned), 4000);
  EXPECT_EQ(ExplainSkylineMismatch(*data, run->skyline.ids()), "");
}

TEST(MrSkyMrTest, TreeParametersDoNotChangeResult) {
  const auto data = Share(data::GenerateAntiCorrelated(1200, 3, 73));
  const std::vector<TupleId> expected = ReferenceSkyline(*data);
  for (const size_t sample : {size_t{0}, size_t{64}, size_t{2048}}) {
    for (const int depth : {0, 3, 8}) {
      SkyQuadtree::Options options;
      options.sample_size = sample;
      options.max_depth = depth;
      mr::EngineOptions engine;
      engine.num_map_tasks = 3;
      auto run =
          RunSkyMrJob(data, Bounds::UnitCube(3), options, engine);
      ASSERT_TRUE(run.ok()) << "sample=" << sample << " depth=" << depth;
      std::vector<TupleId> ids = run->skyline.ids();
      EXPECT_TRUE(SameIdSet(ids, expected))
          << "sample=" << sample << " depth=" << depth;
    }
  }
}

TEST(MrSkyMrTest, EmptyDataset) {
  const auto data = Share(Dataset(2));
  mr::EngineOptions engine;
  auto run = RunSkyMrJob(data, Bounds::UnitCube(2), SkyQuadtree::Options{},
                         engine);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->skyline.empty());
}

TEST(MrSkyMrTest, RunnerIntegration) {
  const Dataset data = data::GenerateAntiCorrelated(1500, 3, 79);
  RunnerConfig config;
  config.algorithm = Algorithm::kSkyMr;
  config.engine.num_map_tasks = 4;
  auto result = ComputeSkyline(data, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->jobs.size(), 1u);
  EXPECT_EQ(ExplainSkylineMismatch(data, result->SkylineIds()), "");
  auto parsed = ParseAlgorithm("sky-mr");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), Algorithm::kSkyMr);
}

TEST(MrSkyMrTest, ConstrainedQuery) {
  Dataset data(2);
  data.Append({0.05, 0.05});  // Outside the box, dominates everything.
  data.Append({0.3, 0.4});
  data.Append({0.4, 0.3});
  data.Append({0.5, 0.5});
  Box box;
  box.lo = {0.2, 0.2};
  box.hi = {0.8, 0.8};
  RunnerConfig config;
  config.algorithm = Algorithm::kSkyMr;
  // lint:allow(deprecated-constraint) pins the legacy shim surface
  config.constraint = box;
  auto result = ComputeSkyline(data, config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(SameIdSet(result->SkylineIds(), {1, 2}));
}

}  // namespace
}  // namespace skymr::baselines
