#include "src/baselines/mr_angle.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "src/data/generator.h"
#include "src/relation/skyline_verify.h"

namespace skymr::baselines {
namespace {

constexpr double kHalfPi = 1.57079632679489661923;

std::shared_ptr<const Dataset> Share(Dataset data) {
  return std::make_shared<const Dataset>(std::move(data));
}

TEST(AngularPartitionerTest, TwoDAnglesMatchAtan2) {
  const AngularPartitioner partitioner(2, 4, Bounds::UnitCube(2));
  const double p[] = {1.0, 1.0};
  const auto angles = partitioner.AnglesOf(p);
  ASSERT_EQ(angles.size(), 1u);
  EXPECT_NEAR(angles[0], kHalfPi / 2.0, 1e-12);  // 45 degrees.
  const double axis[] = {1.0, 0.0};
  EXPECT_NEAR(partitioner.AnglesOf(axis)[0], 0.0, 1e-12);
  const double other_axis[] = {0.0, 1.0};
  EXPECT_NEAR(partitioner.AnglesOf(other_axis)[0], kHalfPi, 1e-12);
}

TEST(AngularPartitionerTest, PartitionIdsInRange) {
  const AngularPartitioner partitioner(3, 5, Bounds::UnitCube(3));
  EXPECT_EQ(partitioner.num_partitions(), 25u);
  const Dataset data = data::GenerateIndependent(500, 3, 19);
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_LT(partitioner.PartitionOf(data.RowPtr(static_cast<TupleId>(i))),
              25u);
  }
}

TEST(AngularPartitionerTest, AnglesPartitionEvenlyIn2d) {
  const AngularPartitioner partitioner(2, 2, Bounds::UnitCube(2));
  const double low[] = {0.9, 0.1};  // Small angle -> bucket 0.
  const double high[] = {0.1, 0.9};  // Large angle -> bucket 1.
  EXPECT_EQ(partitioner.PartitionOf(low), 0u);
  EXPECT_EQ(partitioner.PartitionOf(high), 1u);
}

TEST(AngularPartitionerTest, OneDimensionalSinglePartition) {
  const AngularPartitioner partitioner(1, 9, Bounds::UnitCube(1));
  EXPECT_EQ(partitioner.num_partitions(), 1u);
  const double p[] = {0.5};
  EXPECT_EQ(partitioner.PartitionOf(p), 0u);
}

TEST(AngularPartitionerTest, ForTargetPartitionsMeetsTarget) {
  const auto partitioner = AngularPartitioner::ForTargetPartitions(
      3, 64, Bounds::UnitCube(3));
  EXPECT_GE(partitioner.num_partitions(), 64u);
  EXPECT_EQ(partitioner.parts_per_angle(), 8u);  // 8^2 = 64.
}

TEST(AngularPartitionerTest, OriginShiftRespectsBounds) {
  Bounds bounds;
  bounds.lo = {10.0, 10.0};
  bounds.hi = {20.0, 20.0};
  const AngularPartitioner partitioner(2, 2, bounds);
  const double near_x_axis[] = {19.0, 10.5};
  const double near_y_axis[] = {10.5, 19.0};
  EXPECT_EQ(partitioner.PartitionOf(near_x_axis), 0u);
  EXPECT_EQ(partitioner.PartitionOf(near_y_axis), 1u);
}

TEST(MrAngleTest, ComputesExactSkyline) {
  const auto data = Share(data::GenerateAntiCorrelated(1500, 3, 23));
  mr::EngineOptions engine;
  engine.num_map_tasks = 4;
  auto run = RunMrAngleJob(data, Bounds::UnitCube(3), 32, engine);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(ExplainSkylineMismatch(*data, run->skyline.ids()), "");
}

TEST(MrAngleTest, MapperAndPartitionInvariance) {
  const auto data = Share(data::GenerateIndependent(1200, 4, 29));
  std::vector<TupleId> reference = ReferenceSkyline(*data);
  for (const int m : {1, 3, 9}) {
    for (const uint32_t parts : {1u, 8u, 64u}) {
      mr::EngineOptions engine;
      engine.num_map_tasks = m;
      auto run = RunMrAngleJob(data, Bounds::UnitCube(4), parts, engine);
      ASSERT_TRUE(run.ok());
      std::vector<TupleId> ids = run->skyline.ids();
      EXPECT_TRUE(SameIdSet(ids, reference))
          << "m=" << m << " parts=" << parts;
    }
  }
}

TEST(MrAngleTest, EmptyDataset) {
  const auto data = Share(Dataset(3));
  mr::EngineOptions engine;
  auto run = RunMrAngleJob(data, Bounds::UnitCube(3), 16, engine);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->skyline.empty());
}

TEST(MrAngleTest, ValidatesInputs) {
  const auto data = Share(data::GenerateIndependent(10, 2, 1));
  mr::EngineOptions engine;
  EXPECT_FALSE(RunMrAngleJob(nullptr, Bounds::UnitCube(2), 4, engine).ok());
  EXPECT_FALSE(
      RunMrAngleJob(data, Bounds::UnitCube(3), 4, engine).ok());
}

}  // namespace
}  // namespace skymr::baselines
