#include "src/cost/cost_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/math_util.h"

namespace skymr::cost {
namespace {

TEST(RemainingPartitionsTest, Equation5WorkedExample) {
  // Section 6: "the number of remaining partitions after pruning for the
  // 3x3 grid is 3^2 - 2^2 = 5".
  EXPECT_DOUBLE_EQ(RemainingPartitions(3, 2), 5.0);
  EXPECT_DOUBLE_EQ(RemainingPartitions(4, 3), 64.0 - 27.0);
  EXPECT_DOUBLE_EQ(RemainingPartitions(2, 10), 1024.0 - 1.0);
  EXPECT_DOUBLE_EQ(RemainingPartitions(1, 4), 1.0);
}

TEST(PartitionComparisonsTest, Equation6WorkedExample) {
  // Section 6: partition p2 has coordinates (1, 3) -> 1*3 - 1 = 2.
  const uint32_t p2[] = {1, 3};
  EXPECT_DOUBLE_EQ(PartitionComparisons(p2, 2), 2.0);
  const uint32_t origin[] = {1, 1, 1};
  EXPECT_DOUBLE_EQ(PartitionComparisons(origin, 3), 0.0);
  const uint32_t corner[] = {3, 3};
  EXPECT_DOUBLE_EQ(PartitionComparisons(corner, 2), 8.0);
}

TEST(KappaFullGridTest, ClosedFormMatchesDirectSum) {
  // kappa(n, d) = sum over all cells of (prod coords - 1) = B^d - n^d.
  for (const uint32_t n : {2u, 3u, 5u}) {
    for (const size_t d : {size_t{1}, size_t{2}, size_t{3}}) {
      double direct = 0.0;
      const uint64_t cells = PowU64(n, static_cast<uint32_t>(d));
      for (uint64_t cell = 0; cell < cells; ++cell) {
        uint64_t rest = cell;
        double product = 1.0;
        for (size_t k = 0; k < d; ++k) {
          product *= static_cast<double>(rest % n + 1);
          rest /= n;
        }
        direct += product - 1.0;
      }
      EXPECT_DOUBLE_EQ(KappaFullGrid(n, d), direct)
          << "n=" << n << " d=" << d;
    }
  }
}

TEST(KappaSurfaceTest, ClosedFormMatchesLiteralSum) {
  for (const uint32_t n : {2u, 3u, 4u, 6u}) {
    for (const size_t d : {size_t{2}, size_t{3}, size_t{4}}) {
      for (size_t j = 1; j <= d; ++j) {
        EXPECT_DOUBLE_EQ(KappaSurface(n, d, j),
                         KappaSurfaceLiteral(n, d, j))
            << "n=" << n << " d=" << d << " j=" << j;
      }
    }
  }
}

TEST(KappaSurfaceTest, FirstSurfaceSimpleCase) {
  // 3x3, d=2, surface 1: cells (1,1), (2,1), (3,1) -> 0 + 1 + 2 = 3.
  EXPECT_DOUBLE_EQ(KappaSurface(3, 2, 1), 3.0);
  // Surface 2 removes the overlap cell (1,1): cells (1,2), (1,3) -> 1 + 2.
  EXPECT_DOUBLE_EQ(KappaSurface(3, 2, 2), 3.0);
}

TEST(KappaSurfaceTest, OneDimensionalGridHasNoComparisons) {
  EXPECT_DOUBLE_EQ(KappaSurface(5, 1, 1), 0.0);
  EXPECT_DOUBLE_EQ(MapperCost(5, 1), 0.0);
  EXPECT_DOUBLE_EQ(ReducerCost(5, 1), 0.0);
}

TEST(MapperCostTest, Equation8SumsSurfaces) {
  for (const uint32_t n : {3u, 4u}) {
    for (const size_t d : {size_t{2}, size_t{3}}) {
      double total = 0.0;
      for (size_t j = 1; j <= d; ++j) {
        total += KappaSurface(n, d, j);
      }
      EXPECT_DOUBLE_EQ(MapperCost(n, d), total);
    }
  }
}

TEST(ReducerCostTest, Equation9IsBiggestSurface) {
  // The most loaded reducer handles the largest surface (no overlap
  // discount), which is kappa_1.
  EXPECT_DOUBLE_EQ(ReducerCost(3, 2), KappaSurface(3, 2, 1));
  for (const uint32_t n : {2u, 3u, 5u}) {
    for (const size_t d : {size_t{2}, size_t{3}, size_t{4}}) {
      for (size_t j = 1; j <= d; ++j) {
        EXPECT_GE(ReducerCost(n, d) + 1e-9, KappaSurface(n, d, j))
            << "surface " << j << " exceeds kappa_1";
      }
    }
  }
}

TEST(CostModelTest, MapperCostGrowsWithPpdAndDim) {
  EXPECT_LT(MapperCost(3, 3), MapperCost(4, 3));
  EXPECT_LT(MapperCost(3, 3), MapperCost(3, 4));
  EXPECT_LT(ReducerCost(3, 3), ReducerCost(4, 3));
}

TEST(CostModelTest, ReducerCostBelowMapperCostForMultiDim) {
  // A mapper covers all d surfaces; a GPMRS reducer only one.
  for (const size_t d : {size_t{2}, size_t{3}, size_t{5}}) {
    EXPECT_LT(ReducerCost(4, d), MapperCost(4, d));
  }
}

TEST(CostModelTest, LargeValuesFinite) {
  // Paper-scale n and d must not overflow (returned as double).
  const double v = MapperCost(64, 10);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0.0);
}

}  // namespace
}  // namespace skymr::cost
