#include "src/data/generator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/relation/skyline_verify.h"

namespace skymr::data {
namespace {

TEST(GeneratorTest, CardinalityAndDimRespected) {
  for (const Distribution dist :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAntiCorrelated, Distribution::kClustered}) {
    GeneratorConfig config;
    config.distribution = dist;
    config.cardinality = 500;
    config.dim = 4;
    auto data = Generate(config);
    ASSERT_TRUE(data.ok()) << DistributionName(dist);
    EXPECT_EQ(data->size(), 500u);
    EXPECT_EQ(data->dim(), 4u);
  }
}

TEST(GeneratorTest, ValuesInUnitCube) {
  for (const Distribution dist :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAntiCorrelated, Distribution::kClustered}) {
    GeneratorConfig config;
    config.distribution = dist;
    config.cardinality = 2000;
    config.dim = 5;
    config.seed = 99;
    const Dataset data = std::move(Generate(config)).value();
    for (size_t i = 0; i < data.size(); ++i) {
      for (size_t k = 0; k < data.dim(); ++k) {
        const double v = data.Row(static_cast<TupleId>(i))[k];
        EXPECT_GE(v, 0.0) << DistributionName(dist);
        EXPECT_LT(v, 1.0) << DistributionName(dist);
      }
    }
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  const Dataset a = GenerateAntiCorrelated(100, 3, 7);
  const Dataset b = GenerateAntiCorrelated(100, 3, 7);
  EXPECT_EQ(a.values(), b.values());
  const Dataset c = GenerateAntiCorrelated(100, 3, 8);
  EXPECT_NE(a.values(), c.values());
}

TEST(GeneratorTest, ZeroCardinality) {
  const Dataset data = GenerateIndependent(0, 2, 1);
  EXPECT_TRUE(data.empty());
}

TEST(GeneratorTest, RejectsZeroDim) {
  GeneratorConfig config;
  config.dim = 0;
  config.cardinality = 10;
  EXPECT_FALSE(Generate(config).ok());
}

TEST(GeneratorTest, RejectsClusteredWithoutClusters) {
  GeneratorConfig config;
  config.distribution = Distribution::kClustered;
  config.cardinality = 10;
  config.num_clusters = 0;
  EXPECT_FALSE(Generate(config).ok());
}

TEST(GeneratorTest, IndependentDimensionsUncorrelated) {
  const Dataset data = GenerateIndependent(20000, 2, 5);
  double sx = 0.0;
  double sy = 0.0;
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  const auto n = static_cast<double>(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    const double x = data.Row(static_cast<TupleId>(i))[0];
    const double y = data.Row(static_cast<TupleId>(i))[1];
    sx += x;
    sy += y;
    sxy += x * y;
    sxx += x * x;
    syy += y * y;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double corr = cov / std::sqrt((sxx / n - (sx / n) * (sx / n)) *
                                      (syy / n - (sy / n) * (sy / n)));
  EXPECT_NEAR(corr, 0.0, 0.03);
}

TEST(GeneratorTest, CorrelatedHasPositiveAndAntiNegativeCorrelation) {
  auto pairwise_corr = [](const Dataset& data) {
    double sx = 0.0;
    double sy = 0.0;
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    const auto n = static_cast<double>(data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      const double x = data.Row(static_cast<TupleId>(i))[0];
      const double y = data.Row(static_cast<TupleId>(i))[1];
      sx += x;
      sy += y;
      sxy += x * y;
      sxx += x * x;
      syy += y * y;
    }
    const double cov = sxy / n - (sx / n) * (sy / n);
    return cov / std::sqrt((sxx / n - (sx / n) * (sx / n)) *
                           (syy / n - (sy / n) * (sy / n)));
  };
  EXPECT_GT(pairwise_corr(GenerateCorrelated(20000, 2, 6)), 0.5);
  EXPECT_LT(pairwise_corr(GenerateAntiCorrelated(20000, 2, 6)), -0.5);
}

TEST(GeneratorTest, SkylineSizeOrdering) {
  // The defining property the paper's experiments rely on (Section 7):
  // anti-correlated data has far larger skylines than independent data,
  // which in turn beats correlated data.
  constexpr size_t kN = 3000;
  constexpr size_t kD = 4;
  const size_t corr =
      ReferenceSkyline(GenerateCorrelated(kN, kD, 11)).size();
  const size_t indep =
      ReferenceSkyline(GenerateIndependent(kN, kD, 11)).size();
  const size_t anti =
      ReferenceSkyline(GenerateAntiCorrelated(kN, kD, 11)).size();
  EXPECT_LT(corr, indep);
  EXPECT_LT(indep, anti);
  EXPECT_GT(anti, kN / 20);  // Anti-correlated skylines are a large chunk.
}

TEST(GeneratorTest, DistributionNamesRoundTrip) {
  for (const Distribution dist :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAntiCorrelated, Distribution::kClustered}) {
    auto parsed = ParseDistribution(DistributionName(dist));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), dist);
  }
  EXPECT_FALSE(ParseDistribution("zipfian").ok());
}

}  // namespace
}  // namespace skymr::data
