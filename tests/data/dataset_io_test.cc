#include "src/data/dataset_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "src/data/generator.h"

namespace skymr::data {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(DatasetIoTest, RoundTripWithoutHeader) {
  const Dataset original = GenerateIndependent(50, 3, 42);
  const std::string path = TempPath("skymr_io_roundtrip.csv");
  ASSERT_TRUE(SaveCsv(original, path).ok());
  auto loaded = LoadCsv(path, /*has_header=*/false);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dim(), 3u);
  EXPECT_EQ(loaded->size(), 50u);
  // %.17g output preserves doubles exactly.
  EXPECT_EQ(loaded->values(), original.values());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RoundTripWithHeader) {
  Dataset original(2);
  original.Append({0.25, 0.75});
  const std::string path = TempPath("skymr_io_header.csv");
  ASSERT_TRUE(SaveCsv(original, path, {"price", "distance"}).ok());
  auto loaded = LoadCsv(path, /*has_header=*/true);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_DOUBLE_EQ(loaded->Row(0)[1], 0.75);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, HeaderWidthMismatchRejected) {
  Dataset original(2);
  original.Append({0.1, 0.2});
  EXPECT_FALSE(SaveCsv(original, TempPath("x.csv"), {"only-one"}).ok());
}

TEST(DatasetIoTest, NonNumericFieldRejected) {
  const std::string path = TempPath("skymr_io_bad.csv");
  {
    std::ofstream out(path);
    out << "0.1,0.2\n0.3,oops\n";
  }
  auto loaded = LoadCsv(path, false);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, RaggedRowsRejected) {
  const std::string path = TempPath("skymr_io_ragged.csv");
  {
    std::ofstream out(path);
    out << "0.1,0.2\n0.3\n";
  }
  auto loaded = LoadCsv(path, false);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, HeaderOnlyFileRejected) {
  const std::string path = TempPath("skymr_io_headeronly.csv");
  {
    std::ofstream out(path);
    out << "a,b\n";
  }
  EXPECT_FALSE(LoadCsv(path, true).ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileRejected) {
  EXPECT_FALSE(LoadCsv("/no/such/file.csv", false).ok());
}

}  // namespace
}  // namespace skymr::data
