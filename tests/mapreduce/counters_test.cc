#include "src/mapreduce/counters.h"

#include <gtest/gtest.h>

namespace skymr::mr {
namespace {

TEST(CountersTest, StartsEmpty) {
  Counters counters;
  EXPECT_TRUE(counters.empty());
  EXPECT_EQ(counters.Get("anything"), 0);
}

TEST(CountersTest, AddAccumulates) {
  Counters counters;
  counters.Add("a", 3);
  counters.Add("a", 4);
  counters.Add("b", -2);
  EXPECT_EQ(counters.Get("a"), 7);
  EXPECT_EQ(counters.Get("b"), -2);
}

TEST(CountersTest, MergeSumsPerName) {
  Counters a;
  a.Add("x", 1);
  a.Add("y", 2);
  Counters b;
  b.Add("y", 5);
  b.Add("z", 7);
  a.Merge(b);
  EXPECT_EQ(a.Get("x"), 1);
  EXPECT_EQ(a.Get("y"), 7);
  EXPECT_EQ(a.Get("z"), 7);
}

TEST(CountersTest, MergeEmptyIsNoop) {
  Counters a;
  a.Add("x", 1);
  a.Merge(Counters());
  EXPECT_EQ(a.Get("x"), 1);
}

TEST(CountersTest, ToStringDeterministicOrder) {
  Counters counters;
  counters.Add("zeta", 1);
  counters.Add("alpha", 2);
  EXPECT_EQ(counters.ToString(), "alpha=2, zeta=1");
}

TEST(CountersTest, WellKnownNamesAreDistinct) {
  EXPECT_STRNE(kCounterTupleComparisons, kCounterPartitionComparisons);
  EXPECT_STRNE(kCounterTuplesPruned, kCounterPartitionsPruned);
}

}  // namespace
}  // namespace skymr::mr
