#include "src/mapreduce/counters.h"

#include <string>

#include <gtest/gtest.h>

namespace skymr::mr {
namespace {

TEST(CountersTest, StartsEmpty) {
  Counters counters;
  EXPECT_TRUE(counters.empty());
  EXPECT_EQ(counters.Get("anything"), 0);
}

TEST(CountersTest, AddAccumulates) {
  Counters counters;
  counters.Add("a", 3);
  counters.Add("a", 4);
  counters.Add("b", -2);
  EXPECT_EQ(counters.Get("a"), 7);
  EXPECT_EQ(counters.Get("b"), -2);
}

TEST(CountersTest, MergeSumsPerName) {
  Counters a;
  a.Add("x", 1);
  a.Add("y", 2);
  Counters b;
  b.Add("y", 5);
  b.Add("z", 7);
  a.Merge(b);
  EXPECT_EQ(a.Get("x"), 1);
  EXPECT_EQ(a.Get("y"), 7);
  EXPECT_EQ(a.Get("z"), 7);
}

TEST(CountersTest, MergeEmptyIsNoop) {
  Counters a;
  a.Add("x", 1);
  a.Merge(Counters());
  EXPECT_EQ(a.Get("x"), 1);
}

TEST(CountersTest, ToStringDeterministicOrder) {
  Counters counters;
  counters.Add("zeta", 1);
  counters.Add("alpha", 2);
  EXPECT_EQ(counters.ToString(), "alpha=2, zeta=1");
}

TEST(CountersTest, WellKnownNamesAreDistinct) {
  EXPECT_STRNE(kCounterTupleComparisons, kCounterPartitionComparisons);
  EXPECT_STRNE(kCounterTuplesPruned, kCounterPartitionsPruned);
}

// ---------------------------------------------------------------------
// Interned slots: the four well-known skymr.* names bypass the map but
// must behave exactly like ad-hoc names.
// ---------------------------------------------------------------------

TEST(CountersTest, InternedNamesAccumulateLikeAdHocOnes) {
  Counters counters;
  counters.Add(kCounterTupleComparisons, 5);
  counters.Add(kCounterTupleComparisons, 7);
  counters.Add(kCounterPartitionComparisons, 1);
  EXPECT_EQ(counters.Get(kCounterTupleComparisons), 12);
  EXPECT_EQ(counters.Get(kCounterPartitionComparisons), 1);
  EXPECT_EQ(counters.Get(kCounterTuplesPruned), 0);
  EXPECT_FALSE(counters.empty());
}

TEST(CountersTest, InternedNamesWorkThroughRuntimeStrings) {
  // The same names arriving as non-literal strings must hit the same
  // slots as the constants.
  Counters counters;
  const std::string name = std::string("skymr.") + "tuples_pruned";
  counters.Add(name, 3);
  EXPECT_EQ(counters.Get(kCounterTuplesPruned), 3);
  counters.Add(kCounterTuplesPruned, 2);
  EXPECT_EQ(counters.Get(name), 5);
}

TEST(CountersTest, SimilarNamesDoNotCollideWithSlots) {
  Counters counters;
  // lint:allow(counter-registry) deliberate near-miss of a slot name
  counters.Add("skymr.tuple_comparisons2", 9);
  // lint:allow(counter-registry) deliberate near-miss of a slot name
  counters.Add("skymr.tuple_comparison", 4);
  EXPECT_EQ(counters.Get(kCounterTupleComparisons), 0);
  EXPECT_EQ(  // lint:allow(counter-registry) near-miss of a slot name
      counters.Get("skymr.tuple_comparisons2"), 9);
}

TEST(CountersTest, MergeCrossesSlotAndMapKinds) {
  Counters a;
  a.Add(kCounterTupleComparisons, 10);
  a.Add("adhoc", 1);
  Counters b;
  b.Add(kCounterTupleComparisons, 5);
  b.Add(kCounterPartitionsPruned, 2);
  b.Add("adhoc", 3);
  a.Merge(b);
  EXPECT_EQ(a.Get(kCounterTupleComparisons), 15);
  EXPECT_EQ(a.Get(kCounterPartitionsPruned), 2);
  EXPECT_EQ(a.Get("adhoc"), 4);
}

TEST(CountersTest, ValuesIncludesInternedSlotsInSortedOrder) {
  Counters counters;
  counters.Add(kCounterTupleComparisons, 1);  // skymr.tuple_comparisons
  counters.Add("aaa", 2);
  counters.Add("zzz", 3);
  const auto values = counters.values();
  ASSERT_EQ(values.size(), 3u);
  auto it = values.begin();
  EXPECT_EQ(it->first, "aaa");
  ++it;
  EXPECT_EQ(it->first, kCounterTupleComparisons);
  ++it;
  EXPECT_EQ(it->first, "zzz");
  EXPECT_EQ(counters.ToString(),
            "aaa=2, skymr.tuple_comparisons=1, zzz=3");
}

TEST(CountersTest, ZeroDeltaCreatesTheEntryForBothKinds) {
  Counters counters;
  counters.Add(kCounterTuplesPruned, 0);
  counters.Add("adhoc", 0);
  EXPECT_FALSE(counters.empty());
  const auto values = counters.values();
  EXPECT_EQ(values.size(), 2u);
  EXPECT_EQ(values.count(kCounterTuplesPruned), 1u);
  EXPECT_EQ(values.count("adhoc"), 1u);
  // Untouched well-known names stay absent.
  EXPECT_EQ(values.count(kCounterTupleComparisons), 0u);
}

}  // namespace
}  // namespace skymr::mr
